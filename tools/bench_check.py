#!/usr/bin/env python3
"""Regression guard for the committed benchmark counter baselines.

Compares a freshly produced google-benchmark JSON report against a baseline
committed under bench/baselines/.  Only *counters* are compared — the
deterministic per-run telemetry the engine emits (delivered, events_popped,
events_wheeled, parallel_sweeps, ...) — never wall-clock or CPU time, which
are machine-dependent and belong in the uploaded artifacts, not in a gate.

A counter passes when it is within --tolerance (relative) of the baseline.
The default band is 0 — the engine's fixed-seed telemetry is bit-identical
run to run, so any drift is a real behaviour change; pass a small band only
for counters that legitimately wobble.  Machine-dependent counters
(peak_rss_mb by default) are skipped.

Exit status: 0 = all rows match, 1 = a counter drifted or a baseline row is
missing from the candidate, 2 = usage / malformed input.

Usage:
  tools/bench_check.py --baseline bench/baselines/BENCH_full_pipeline.json \
                       --candidate BENCH_full_pipeline.json [--tolerance 0.0]
"""

from __future__ import annotations

import argparse
import json
import math
import sys

# Counters that depend on the machine, not the simulation: never gated.
# arena_steady_chunks is here because the lane-arena count is
# min(parallel_shards, hardware_concurrency) — a core-count artefact.
DEFAULT_SKIP = {"peak_rss_mb", "items_per_second", "arena_steady_chunks"}

# Fields of a benchmark row that are timings/bookkeeping, not counters.
NON_COUNTER_FIELDS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "aggregate_name", "aggregate_unit", "family_index",
    "per_family_instance_index", "label", "error_occurred", "error_message",
}


def load_rows(path):
    """Returns {row name: {counter: value}} for the per-iteration rows.

    Understands two schemas: google-benchmark JSON (a "benchmarks" array of
    rows with counters inline) and the figure benches' point reports (a
    "bench" name plus a "points" array keyed by peer count — every numeric
    field of a point is fixed-seed deterministic simulation output, so all
    of them gate).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_check: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in report.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue  # mean/median/stddev aggregates repeat the counters
        counters = {
            key: value
            for key, value in row.items()
            if key not in NON_COUNTER_FIELDS and isinstance(value, (int, float))
        }
        rows[row["name"]] = counters
    for point in report.get("points", []):
        name = f"{report.get('bench', 'points')}/peers:{point.get('peers')}"
        counters = {
            key: value
            for key, value in point.items()
            if key != "peers" and isinstance(value, (int, float))
        }
        rows[name] = counters
    return rows


def within(baseline, candidate, tolerance):
    if math.isnan(baseline) and math.isnan(candidate):
        return True
    if baseline == candidate:
        return True
    denom = max(abs(baseline), abs(candidate))
    return denom > 0 and abs(baseline - candidate) / denom <= tolerance


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--candidate", required=True, help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="relative tolerance band (default 0: exact)")
    parser.add_argument("--skip", default=",".join(sorted(DEFAULT_SKIP)),
                        help="comma-separated counters to ignore")
    args = parser.parse_args(argv)

    skip = {name for name in args.skip.split(",") if name}
    baseline_rows = load_rows(args.baseline)
    candidate_rows = load_rows(args.candidate)
    if not baseline_rows:
        print(f"bench_check: no benchmark rows in {args.baseline}", file=sys.stderr)
        return 2

    failures = 0
    checked = 0
    for name, baseline_counters in sorted(baseline_rows.items()):
        candidate_counters = candidate_rows.get(name)
        if candidate_counters is None:
            print(f"FAIL {name}: row missing from candidate report")
            failures += 1
            continue
        for counter, expected in sorted(baseline_counters.items()):
            if counter in skip:
                continue
            actual = candidate_counters.get(counter)
            if actual is None:
                print(f"FAIL {name}: counter {counter} missing from candidate")
                failures += 1
                continue
            checked += 1
            if not within(float(expected), float(actual), args.tolerance):
                print(f"FAIL {name}: {counter} = {actual} "
                      f"(baseline {expected}, tolerance {args.tolerance:g})")
                failures += 1
    for name in sorted(set(candidate_rows) - set(baseline_rows)):
        print(f"note {name}: new row not in baseline (refresh bench/baselines/)")

    if failures:
        print(f"bench_check: {failures} failure(s) across "
              f"{len(baseline_rows)} baseline row(s)")
        return 1
    print(f"bench_check: OK — {checked} counters over "
          f"{len(baseline_rows)} row(s) match {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
