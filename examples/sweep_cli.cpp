// General experiment driver: run any fast-vs-normal sweep from the command
// line without writing code.  The figure benches are fixed recipes; this
// tool exposes the whole configuration surface for custom studies.
//
//   ./sweep_cli --sizes 200,1000 --trials 3 --topology ring --churn 0.05
//   ./sweep_cli --sizes 500 --qs 80 --neighbor 7 --capacity-model per-link --csv out.csv
//   ./sweep_cli --sizes 10000 --tick-shard 256 --parallel-shards 8 --incremental-availability
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/config.hpp"
#include "experiments/report.hpp"
#include "experiments/runner.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace {

std::vector<std::size_t> parse_sizes(const std::string& list) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string token =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) sizes.push_back(static_cast<std::size_t>(std::stoull(token)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define("sizes", "500,1000", "comma-separated overlay sizes");
  flags.define_int("trials", 3, "paired trials per size");
  flags.define_int("seed", 1, "base seed");
  flags.define("topology", "synthetic-trace",
               "synthetic-trace|preferential|erdos-renyi|watts-strogatz|ring|trace-file");
  flags.define("trace", "", "trace file path (for --topology trace-file)");
  flags.define_int("neighbor", 5, "M: target neighbour count");
  flags.define_double("churn", 0.0, "leave/join fraction per period (0.05 = paper dynamic)");
  flags.define_int("qs", 50, "Qs: startup segments of the new source");
  flags.define_int("q", 10, "Q: consecutive segments for playback");
  flags.define_double("source-outbound", 120.0, "source outbound rate (segments/s)");
  flags.define_double("diversity", 0.25, "substrate diversity reservation fraction");
  flags.define_bool("traditional-rarity", false, "use 1/n rarity instead of eq. 8");
  flags.define("capacity-model", "shared-fifo",
               "supplier capacity model: shared-fifo|per-link|token-bucket");
  flags.define_double("token-bucket-burst", 4.0,
                      "token-bucket burst depth in segments (>= 1)");
  flags.define_bool("batch-dispatch", false,
                    "batched tick dispatch (identical metrics, fewer simulator events)");
  flags.define_bool("timing-wheel", true,
                    "timing-wheel event plane (identical metrics, O(1) schedule; "
                    "--timing-wheel=false for the binary-heap baseline)");
  flags.define_bool("plan-gate", true,
                    "plan work-set plane: quiescence gate + neighbour-major "
                    "candidate build (identical metrics, less plan work; "
                    "--plan-gate=false for the pre-gate baseline)");
  flags.define_bool("plan-gate-legacy", false,
                    "maintain a gate-only availability index under the legacy "
                    "rescan scheduler so the plan gate fires there too");
  flags.define_bool("plan-gate-recheck", false,
                    "debug cross-check: rebuild gated plans and assert they "
                    "are empty (costs what the gate saves)");
  flags.define_bool("incremental-availability", false,
                    "delta-maintained availability views (identical metrics, less scan work)");
  flags.define_bool("delta-maps", false,
                    "charge availability gossip as buffer-map deltas (implies "
                    "--incremental-availability; lowers the overhead metric)");
  flags.define_int("map-refresh", 10, "adverts between full-map refreshes under --delta-maps");
  flags.define_bool("windowed-availability", false,
                    "sliding supplier-count windows anchored at the playback cursor "
                    "(implies --incremental-availability; identical metrics, "
                    "O(buffer) per-view memory)");
  flags.define_int("tick-shard", 16, "peers per tick shard (phase group; both dispatch modes)");
  flags.define_int("parallel-shards", 0,
                   "sharded parallel core: plan lanes / event-queue shards "
                   "(identical metrics at any count; 0 = sequential)");
  flags.define_bool("sequential-delivery", false,
                    "disable the parallel delivery wave of the sharded core "
                    "(ablation; identical metrics, inline delivery pops)");
  flags.define_bool("sequential-commit", false,
                    "disable the parallel commit + book passes of the sharded "
                    "core (ablation; identical metrics, member-order commits)");
  flags.define_bool("peer-pool", false,
                    "million-peer memory plane: flat pending/buffer/arrival "
                    "structures and the plan arena (identical metrics, "
                    "smaller bytes/peer)");
  flags.define_int("flash-crowd-joins", 0,
                   "flash-crowd scenario: this many extra peers join shortly "
                   "after the first switch (0 = off)");
  flags.define_double("flash-crowd-start", 0.5,
                      "seconds after the first switch the crowd starts joining");
  flags.define_double("flash-crowd-duration", 2.0,
                      "seconds over which the crowd is admitted");
  flags.define_bool("cdn-assist", false,
                    "CDN-assisted fast switch: a capacity-limited patch source "
                    "bursts the head of the new session to switching peers "
                    "(changes dynamics by design; off = bit-identical)");
  flags.define_double("cdn-rate", 120.0, "CDN uplink capacity (segments/s)");
  flags.define_double("cdn-latency-ms", 40.0, "fixed CDN->peer latency (ms)");
  flags.define_double("cdn-pause", 3.0,
                      "buffered lead (s) at which a patch burst pauses");
  flags.define_double("cdn-resume", 1.0,
                      "buffered lead (s) under which a paused burst resumes");
  flags.define_int("cdn-span", 0,
                   "cap on patched segments per switch (0 = the full Qs prefix)");
  flags.define_bool("print-diagnostics", false,
                    "run one fast-algorithm trial per size and print the engine "
                    "diagnostics (events, probes, shard/drain counters)");
  flags.define_bool("push", false, "enable GridMedia-style fresh-segment push");
  flags.define_int("push-fanout", 2, "push fanout when --push");
  flags.define("csv", "", "write the comparison table to this CSV");
  flags.define("log", "warn", "log level");
  if (!flags.parse(argc, argv)) return 0;
  gs::util::set_log_level(gs::util::parse_log_level(flags.get("log")));

  gs::exp::Config base = gs::exp::Config::paper_static(
      1000, gs::exp::AlgorithmKind::kFast, static_cast<std::uint64_t>(flags.get_int("seed")));
  base.topology = gs::exp::topology_from_string(flags.get("topology"));
  base.trace_path = flags.get("trace");
  base.neighbor_target = static_cast<std::size_t>(flags.get_int("neighbor"));
  if (flags.get_double("churn") > 0.0) base.enable_churn(flags.get_double("churn"));
  base.engine.q_startup = static_cast<std::size_t>(flags.get_int("qs"));
  base.engine.q_consecutive = static_cast<std::size_t>(flags.get_int("q"));
  base.engine.source_outbound = flags.get_double("source-outbound");
  base.priority.diversity_fraction = flags.get_double("diversity");
  base.priority.traditional_rarity = flags.get_bool("traditional-rarity");
  base.engine.supplier_capacity = gs::exp::capacity_from_string(flags.get("capacity-model"));
  base.engine.token_bucket_burst = flags.get_double("token-bucket-burst");
  base.enable_batch_dispatch(flags.get_bool("batch-dispatch"));
  base.enable_timing_wheel(flags.get_bool("timing-wheel"));
  base.enable_plan_gate(flags.get_bool("plan-gate"), flags.get_bool("plan-gate-legacy"),
                        flags.get_bool("plan-gate-recheck"));
  base.enable_incremental_availability(
      flags.get_bool("incremental-availability") || flags.get_bool("delta-maps"),
      flags.get_bool("delta-maps"));
  base.engine.map_refresh_period = static_cast<std::size_t>(flags.get_int("map-refresh"));
  base.enable_windowed_availability(flags.get_bool("windowed-availability"));
  base.engine.tick_shard_size = static_cast<std::size_t>(flags.get_int("tick-shard"));
  base.enable_parallel_shards(static_cast<std::size_t>(flags.get_int("parallel-shards")));
  base.engine.parallel_delivery = !flags.get_bool("sequential-delivery");
  base.enable_parallel_commit(!flags.get_bool("sequential-commit"));
  base.enable_peer_pool(flags.get_bool("peer-pool"));
  if (flags.get_int("flash-crowd-joins") > 0) {
    base.enable_flash_crowd(static_cast<std::size_t>(flags.get_int("flash-crowd-joins")),
                            flags.get_double("flash-crowd-start"),
                            flags.get_double("flash-crowd-duration"));
  }
  base.engine.push_fresh_segments = flags.get_bool("push");
  base.engine.push_fanout = static_cast<std::size_t>(flags.get_int("push-fanout"));
  base.enable_cdn_assist(flags.get_bool("cdn-assist"));
  base.engine.cdn_assist_rate = flags.get_double("cdn-rate");
  base.engine.cdn_assist_latency_ms = flags.get_double("cdn-latency-ms");
  base.engine.cdn_assist_pause_s = flags.get_double("cdn-pause");
  base.engine.cdn_assist_resume_s = flags.get_double("cdn-resume");
  base.engine.cdn_assist_span = static_cast<std::size_t>(flags.get_int("cdn-span"));

  const auto sizes = parse_sizes(flags.get("sizes"));
  const auto points =
      gs::exp::sweep_sizes(base, sizes, static_cast<std::size_t>(flags.get_int("trials")));

  gs::exp::print_times_table("custom sweep: finishing / preparing times", points);
  gs::exp::print_switch_reduction("custom sweep: switch time and reduction", points);
  gs::exp::print_overhead("custom sweep: communication overhead", points);

  if (flags.get_bool("print-diagnostics")) {
    std::printf("\nengine diagnostics (one fast-algorithm trial per size)\n");
    std::printf("%8s %12s %12s %12s %9s %9s %10s %11s %11s %9s %9s %11s %10s %12s %11s %10s "
                "%8s %10s %9s %9s %8s %8s %11s %9s\n",
                "peers", "events", "wheeled", "probes", "promo", "spill_pk", "idx_upd",
                "plans_gated", "plans_built", "sweeps", "replan", "cross_shard", "dlv_batch",
                "journal_mrg", "superbatch", "colour_cls", "fixups", "par_commit", "par_book",
                "flash", "cdn_mb", "assisted", "bytes/peer", "rss_mb");
    for (const std::size_t n : sizes) {
      gs::exp::Config config = base;
      config.node_count = n;
      config.algorithm = gs::exp::AlgorithmKind::kFast;
      const gs::exp::RunResult result = gs::exp::run_once(config);
      const gs::stream::EngineStats& s = result.stats;
      // Telemetry can be absent (no /proc => peak_rss_bytes == 0; no peers
      // => bytes_per_peer is NaN): print "n/a", never a fake 0.0.
      char bytes_per_peer[32];
      char rss_mb[32];
      if (!std::isnan(s.bytes_per_peer)) {
        std::snprintf(bytes_per_peer, sizeof(bytes_per_peer), "%.0f", s.bytes_per_peer);
      } else {
        std::snprintf(bytes_per_peer, sizeof(bytes_per_peer), "n/a");
      }
      if (s.peak_rss_bytes > 0) {
        std::snprintf(rss_mb, sizeof(rss_mb), "%.1f",
                      static_cast<double>(s.peak_rss_bytes) / (1024.0 * 1024.0));
      } else {
        std::snprintf(rss_mb, sizeof(rss_mb), "n/a");
      }
      std::printf(
          "%8zu %12llu %12llu %12llu %9llu %9llu %10llu %11llu %11llu %9llu %9llu %11llu "
          "%10llu %12llu %11llu %10llu %8llu %10llu %9llu %9zu %8.1f %8zu %11s %9s\n",
          n, static_cast<unsigned long long>(s.events_popped),
          static_cast<unsigned long long>(s.events_wheeled),
          static_cast<unsigned long long>(s.availability_probes),
          static_cast<unsigned long long>(s.wheel_overflow_promotions),
          static_cast<unsigned long long>(s.spill_heap_peak),
          static_cast<unsigned long long>(s.index_updates),
          static_cast<unsigned long long>(s.plans_gated),
          static_cast<unsigned long long>(s.plans_built),
          static_cast<unsigned long long>(s.parallel_sweeps),
          static_cast<unsigned long long>(s.replanned_ticks),
          static_cast<unsigned long long>(s.cross_shard_events),
          static_cast<unsigned long long>(s.delivery_batches),
          static_cast<unsigned long long>(s.delta_journal_merges),
          static_cast<unsigned long long>(s.superbatch_sweeps),
          static_cast<unsigned long long>(s.commit_colour_classes),
          static_cast<unsigned long long>(s.commit_conflict_fixups),
          static_cast<unsigned long long>(s.parallel_commits),
          static_cast<unsigned long long>(s.parallel_books), s.flash_joins,
          static_cast<double>(s.cdn_bytes_served) / (1024.0 * 1024.0),
          s.cdn_assisted_switches, bytes_per_peer, rss_mb);
    }
  }
  if (!flags.get("csv").empty()) {
    gs::exp::write_comparison_csv(flags.get("csv"), points);
    std::printf("\nwrote %s\n", flags.get("csv").c_str());
  }
  return 0;
}
