// Engine introspection: runs one experiment and dumps distributions of the
// internal state (lag, stalls, requests, Q0) that explain the headline
// metrics.  Useful for debugging and for understanding the simulation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "experiments/config.hpp"
#include "experiments/scenario.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_int("nodes", 200, "overlay size");
  flags.define_int("seed", 7, "experiment seed");
  flags.define("algorithm", "fast", "fast|normal");
  flags.define("capacity", "shared-fifo", "supplier capacity model: shared-fifo|per-link");
  flags.define_bool("dynamic", false, "apply churn");
  if (!flags.parse(argc, argv)) return 0;

  gs::exp::Config config = gs::exp::Config::paper_static(
      static_cast<std::size_t>(flags.get_int("nodes")),
      gs::exp::algorithm_from_string(flags.get("algorithm")),
      static_cast<std::uint64_t>(flags.get_int("seed")));
  if (flags.get_bool("dynamic")) config.enable_churn();
  config.engine.supplier_capacity = gs::exp::capacity_from_string(flags.get("capacity"));
  config.engine.debug_series = true;

  auto engine = gs::exp::make_engine(config);
  const auto metrics = engine->run();
  const auto& m = metrics.front();
  const auto& stats = engine->stats();

  std::printf("=== run summary (%s, %zu nodes, %s capacity) ===\n",
              flags.get("algorithm").c_str(), config.node_count,
              std::string(gs::stream::to_string(config.engine.supplier_capacity)).c_str());
  std::printf("generated=%llu delivered=%llu requests=%llu rejected=%llu dups=%llu\n",
              (unsigned long long)stats.segments_generated,
              (unsigned long long)stats.segments_delivered,
              (unsigned long long)stats.requests_issued,
              (unsigned long long)stats.requests_rejected, (unsigned long long)stats.duplicates);
  std::printf("split_ticks=%llu old_req=%llu new_req=%llu\n",
              (unsigned long long)stats.split_ticks, (unsigned long long)stats.old_stream_requests,
              (unsigned long long)stats.new_stream_requests);
  std::printf("%s\n", m.to_string().c_str());

  std::vector<double> stalls;
  std::vector<double> q0s;
  std::vector<double> rates_in;
  for (std::size_t v = 0; v < engine->peer_count(); ++v) {
    const auto& p = engine->peer(static_cast<gs::net::NodeId>(v));
    if (p.is_source() || !p.tracked()) continue;
    stalls.push_back(p.playback.stall_time());
    q0s.push_back(static_cast<double>(p.q0_at_switch()));
    rates_in.push_back(p.inbound_rate());
  }
  std::printf("stall_time:   %s\n", gs::util::Summary::of(stalls).to_string().c_str());
  std::printf("Q0_at_switch: %s\n", gs::util::Summary::of(q0s).to_string().c_str());
  std::printf("inbound_rate: %s\n", gs::util::Summary::of(rates_in).to_string().c_str());
  std::printf("finish_times: %s\n", gs::util::Summary::of(m.finish_times).to_string().c_str());
  std::printf("prepared:     %s\n", gs::util::Summary::of(m.prepared_times).to_string().c_str());

  std::printf("\n%8s %8s %12s %14s %10s %10s %10s %10s %8s %8s\n", "time", "head", "cursor_gap",
              "frontier_gap", "max_front", "delivered", "requests", "cands", "oldreq", "newreq");
  for (const auto& d : engine->debug_series()) {
    const bool post_switch = d.time >= -1.0 && d.time <= 30.0;
    if (!post_switch && static_cast<long long>(d.time) % 5 != 0) continue;
    std::printf("%8.0f %8lld %12.1f %14.1f %10.0f %10llu %10llu %10llu %8llu %8llu\n", d.time,
                static_cast<long long>(d.head), d.mean_cursor_gap, d.mean_frontier_gap,
                d.max_frontier_gap, (unsigned long long)d.delivered_this_period,
                (unsigned long long)d.requests_this_period,
                (unsigned long long)d.candidates_this_period,
                (unsigned long long)d.old_req_this_period,
                (unsigned long long)d.new_req_this_period);
  }
  return 0;
}
