// Quickstart: run one source switch on a 200-node overlay with both
// algorithms and compare the paper's headline metric (average switch time).
//
//   ./quickstart [--nodes 200] [--seed 7] [--dynamic]
#include <cstdio>

#include "experiments/config.hpp"
#include "experiments/runner.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_int("nodes", 200, "overlay size");
  flags.define_int("seed", 7, "experiment seed");
  flags.define_bool("dynamic", false, "apply 5%/5% churn per period");
  flags.define("log", "warn", "log level (debug|info|warn|error|off)");
  if (!flags.parse(argc, argv)) return 0;
  gs::util::set_log_level(gs::util::parse_log_level(flags.get("log")));

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const bool dynamic = flags.get_bool("dynamic");

  std::printf("gossipstream quickstart: %zu nodes, seed %llu, %s environment\n", nodes,
              static_cast<unsigned long long>(seed), dynamic ? "dynamic" : "static");

  for (const auto algorithm : {gs::exp::AlgorithmKind::kNormal, gs::exp::AlgorithmKind::kFast}) {
    gs::exp::Config config = dynamic ? gs::exp::Config::paper_dynamic(nodes, algorithm, seed)
                                     : gs::exp::Config::paper_static(nodes, algorithm, seed);
    const gs::exp::RunResult result = gs::exp::run_once(config);
    const auto& m = result.primary();
    std::printf(
        "  %-6s  avg_finish_S1=%6.2fs  avg_switch=%6.2fs  max_switch=%6.2fs  overhead=%.4f  "
        "(%zu/%zu nodes completed, %.2fs wall)\n",
        std::string(gs::exp::to_string(algorithm)).c_str(), m.avg_finish_time(),
        m.avg_prepared_time(), m.max_prepared_time(), m.overhead_ratio, m.prepared_s2, m.tracked,
        result.wall_seconds);
  }
  std::printf("\nThe fast switch algorithm should show a noticeably smaller avg_switch\n"
              "at identical overhead; see bench/ for the full figure reproductions.\n");
  return 0;
}
