// Trace explorer: synthesize (or load) a dss.clip2.com-style overlay trace,
// apply the paper's M=5 degree repair, and print topology statistics.
//
//   ./trace_explorer [--nodes 1000] [--seed 1] [--out trace.txt]
//   ./trace_explorer --in existing_trace.txt
#include <algorithm>
#include <cstdio>

#include "net/topology.hpp"
#include "net/trace.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_int("nodes", 1000, "synthetic trace size");
  flags.define_int("seed", 1, "synthesis seed");
  flags.define("in", "", "load an existing trace file instead of synthesizing");
  flags.define("out", "", "write the (pre-repair) trace to this file");
  flags.define_int("repair-degree", 5, "the paper's M");
  if (!flags.parse(argc, argv)) return 0;

  gs::net::Trace trace;
  if (!flags.get("in").empty()) {
    trace = gs::net::parse_trace_file(flags.get("in"));
    std::printf("loaded trace '%s'\n", trace.name.c_str());
  } else {
    gs::net::TraceSynthesisOptions options;
    options.node_count = static_cast<std::size_t>(flags.get_int("nodes"));
    gs::util::Rng rng(static_cast<std::uint64_t>(flags.get_int("seed")));
    trace = gs::net::synthesize_trace(options, rng);
    std::printf("synthesized trace '%s'\n", trace.name.c_str());
  }
  if (!flags.get("out").empty()) {
    gs::net::write_trace_file(trace, flags.get("out"));
    std::printf("wrote trace to %s\n", flags.get("out").c_str());
  }

  std::printf("nodes: %zu, edges: %zu, avg degree: %.2f\n", trace.node_count(),
              trace.edge_count(), trace.average_degree());

  gs::util::RunningStats pings;
  for (const auto& node : trace.nodes) pings.add(node.ping_ms);
  std::printf("ping: mean %.1f ms, min %.1f, max %.1f\n", pings.mean(), pings.min(), pings.max());

  gs::net::Graph graph = trace.to_graph();
  std::vector<double> degrees;
  for (gs::net::NodeId v = 0; v < graph.node_count(); ++v) {
    degrees.push_back(static_cast<double>(graph.degree(v)));
  }
  std::printf("\npre-repair degree distribution:\n");
  gs::util::Histogram histogram(0.0, 20.0, 10);
  for (double d : degrees) histogram.add(d);
  std::printf("%s", histogram.render(30).c_str());

  const auto m = static_cast<std::size_t>(flags.get_int("repair-degree"));
  gs::util::Rng repair_rng(static_cast<std::uint64_t>(flags.get_int("seed")) + 1);
  const std::size_t added = gs::net::repair_min_degree(graph, m, repair_rng);
  std::printf("\nrepair to M=%zu added %zu edges (paper S5.1's augmentation step)\n", m, added);

  std::vector<gs::net::NodeId> ids(graph.node_count());
  for (gs::net::NodeId v = 0; v < ids.size(); ++v) ids[v] = v;
  std::printf("post-repair: min degree %zu, connected: %s\n", graph.min_degree(ids),
              graph.connected(ids) ? "yes" : "no");

  const auto hops = graph.bfs_hops(0);
  std::size_t diameter = 0;
  double hop_sum = 0.0;
  for (const std::size_t h : hops) {
    diameter = std::max(diameter, h);
    hop_sum += static_cast<double>(h);
  }
  std::printf("from node 0: eccentricity %zu, mean hops %.2f\n", diameter,
              hop_sum / static_cast<double>(hops.size()));
  return 0;
}
