// Closed-form split calculator: evaluate the paper's eq. 4 and the four
// capped cases (§4) for arbitrary parameters.
//
//   ./optimal_split --q1 128 --q2 50 --inbound 15 [--o1 8 --o2 4]
#include <cstdio>

#include "core/rate_solver.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_double("q1", 128.0, "Q1: undelivered segments of the old source");
  flags.define_double("q2", 50.0, "Q2: undelivered startup segments of the new source");
  flags.define_double("q", 10.0, "Q: consecutive segments needed for playback");
  flags.define_double("p", 10.0, "playback rate (segments/s)");
  flags.define_double("inbound", 15.0, "I: total inbound rate (segments/s)");
  flags.define_double("o1", -1.0, "O1 cap: outbound rate available for S1 (-1 = uncapped)");
  flags.define_double("o2", -1.0, "O2 cap: outbound rate available for S2 (-1 = uncapped)");
  if (!flags.parse(argc, argv)) return 0;

  gs::core::SplitInput in;
  in.q1 = flags.get_double("q1");
  in.q2 = flags.get_double("q2");
  in.q = flags.get_double("q");
  in.p = flags.get_double("p");
  in.inbound = flags.get_double("inbound");

  std::printf("inputs: Q1=%.1f Q2=%.1f Q=%.1f p=%.1f I=%.1f\n", in.q1, in.q2, in.q, in.p,
              in.inbound);

  const gs::core::RateSplit u = gs::core::solve_unconstrained(in);
  std::printf("\nunconstrained optimum (eq. 4):\n");
  std::printf("  r1=%.4f  r2=%.4f\n", u.r1, u.r2);
  std::printf("  T1' = Q1/I1 + Q/p = %.3f s\n",
              gs::core::expected_finish_time(in.q1, in.q, in.p, u.i1));
  std::printf("  T2  = Q2/I2       = %.3f s\n", gs::core::expected_prepare_time(in.q2, u.i2));

  const double o1 = flags.get_double("o1");
  const double o2 = flags.get_double("o2");
  if (o1 >= 0.0 || o2 >= 0.0) {
    const gs::core::RateSplit c = gs::core::solve_capped(
        in, o1 >= 0.0 ? o1 : 1e18, o2 >= 0.0 ? o2 : 1e18);
    std::printf("\ncapped solution (S4, case %d):\n", c.case_id);
    std::printf("  I1=%.4f  I2=%.4f\n", c.i1, c.i2);
    std::printf("  T1' = %.3f s, T2 = %.3f s\n",
                gs::core::expected_finish_time(in.q1, in.q, in.p, c.i1),
                gs::core::expected_prepare_time(in.q2, c.i2));
  }

  std::printf("\nfor comparison, the normal (sequential S1-first) policy:\n");
  std::printf("  T1' = %.3f s, T2 = %.3f s\n",
              gs::core::expected_finish_time(in.q1, in.q, in.p, in.inbound),
              (in.q1 + in.q2) / in.inbound);
  return 0;
}
