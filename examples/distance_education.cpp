// Distance-education scenario: a lecture hall with audience churn (students
// join and leave continuously) and one lecturer hand-over; reports both the
// switch delay and playback quality (stalls).
//
//   ./distance_education [--nodes 800] [--churn 0.05] [--seed 33]
#include <cstdio>

#include "experiments/config.hpp"
#include "experiments/scenario.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_int("nodes", 800, "class size");
  flags.define_double("churn", 0.05, "leave/join fraction per scheduling period");
  flags.define_int("seed", 33, "experiment seed");
  flags.define("log", "warn", "log level");
  if (!flags.parse(argc, argv)) return 0;
  gs::util::set_log_level(gs::util::parse_log_level(flags.get("log")));

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const double churn = flags.get_double("churn");
  std::printf("distance education: %zu students, %.0f%% churn per period, lecturer hand-over\n\n",
              nodes, churn * 100.0);

  for (const auto algorithm : {gs::exp::AlgorithmKind::kNormal, gs::exp::AlgorithmKind::kFast}) {
    gs::exp::Config config = gs::exp::Config::paper_static(
        nodes, algorithm, static_cast<std::uint64_t>(flags.get_int("seed")));
    config.enable_churn(churn);

    auto engine = gs::exp::make_engine(config);
    const auto metrics = engine->run();
    const auto& m = metrics.front();

    std::vector<double> stalls;
    for (std::size_t v = 0; v < engine->peer_count(); ++v) {
      const auto& peer = engine->peer(static_cast<gs::net::NodeId>(v));
      if (peer.is_source() || !peer.playback.started()) continue;
      stalls.push_back(peer.playback.stall_time());
    }
    const gs::util::Summary stall_summary = gs::util::Summary::of(stalls);

    std::printf("%s switch algorithm:\n", std::string(gs::exp::to_string(algorithm)).c_str());
    std::printf("  hand-over delay: avg %.2fs, p90 %.2fs, max %.2fs\n", m.avg_prepared_time(),
                gs::util::percentile(m.prepared_times, 0.9), m.max_prepared_time());
    std::printf("  audience: %zu tracked, %zu completed, %zu left mid-switch\n", m.tracked,
                m.prepared_s2, m.censored_prepare);
    std::printf("  playback stalls: mean %.2fs, p90 %.2fs (over %zu students)\n",
                stall_summary.mean, stall_summary.p90, stall_summary.n);
    std::printf("  churn handled: %zu joins, %zu leaves; overhead %.4f\n\n",
                engine->stats().joins, engine->stats().leaves, m.overhead_ratio);
  }
  return 0;
}
