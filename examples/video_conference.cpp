// Video conference scenario: the paper's motivating application — several
// speakers take the floor in series, and every hand-over is a source
// switch whose startup delay the fast algorithm minimizes.
//
//   ./video_conference [--nodes 400] [--speakers 4] [--talk 60] [--seed 21]
#include <cstdio>

#include "experiments/config.hpp"
#include "experiments/runner.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

int main(int argc, char** argv) {
  gs::util::Flags flags;
  flags.define_int("nodes", 400, "conference size (participants)");
  flags.define_int("speakers", 4, "number of serial speakers");
  flags.define_double("talk", 60.0, "seconds each speaker holds the floor");
  flags.define_int("seed", 21, "experiment seed");
  flags.define("log", "warn", "log level");
  if (!flags.parse(argc, argv)) return 0;
  gs::util::set_log_level(gs::util::parse_log_level(flags.get("log")));

  const auto nodes = static_cast<std::size_t>(flags.get_int("nodes"));
  const auto speakers = static_cast<std::size_t>(flags.get_int("speakers"));
  const double talk = flags.get_double("talk");

  std::printf("video conference: %zu participants, %zu speakers, %.0fs per talk\n\n", nodes,
              speakers, talk);

  for (const auto algorithm : {gs::exp::AlgorithmKind::kNormal, gs::exp::AlgorithmKind::kFast}) {
    gs::exp::Config config = gs::exp::Config::paper_static(
        nodes, algorithm, static_cast<std::uint64_t>(flags.get_int("seed")));
    config.switch_times.clear();
    for (std::size_t k = 0; k + 1 < speakers; ++k) {
      config.switch_times.push_back(talk * static_cast<double>(k));
    }
    config.engine.horizon = talk + 60.0;

    const gs::exp::RunResult result = gs::exp::run_once(config);
    std::printf("%s switch algorithm:\n", std::string(gs::exp::to_string(algorithm)).c_str());
    double total = 0.0;
    for (const auto& m : result.switches) {
      std::printf("  hand-over %d: avg startup delay %6.2fs (max %6.2fs, %zu/%zu listeners)\n",
                  m.switch_index + 1, m.avg_prepared_time(), m.max_prepared_time(), m.prepared_s2,
                  m.tracked);
      total += m.avg_prepared_time();
    }
    std::printf("  mean over hand-overs: %.2fs\n\n",
                total / static_cast<double>(result.switches.size()));
  }
  return 0;
}
