// Determinism regression for the decomposed engine: two independently
// constructed engines with the same seed must reproduce *identical*
// SwitchMetrics — every scalar, every per-node time, every track sample —
// under both algorithms, churn, the per-link capacity model and
// multi-switch timelines.  This is the oracle that the PeerNode /
// TransferPlane / SwitchTimeline decomposition (and every later scaling
// refactor) preserves the simulation bit for bit.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"
#include "net/topology.hpp"
#include "stream/commit_colouring.hpp"
#include "stream/engine.hpp"

namespace gs::stream {
namespace {

struct RunOutput {
  std::vector<SwitchMetrics> metrics;
  EngineStats stats;
};

struct RunSpec {
  std::uint64_t seed = 7;
  bool fast = true;
  bool churn = false;
  bool per_link = false;
  bool token_bucket = false;
  bool batch = false;
  bool stagger = true;
  bool incremental = false;
  bool delta_maps = false;
  bool windowed = false;
  /// The parallel delivery wave + sweep super-batching of the sharded core
  /// (effective only when parallel > 0; defaults on, like the engine).
  bool delivery_wave = true;
  /// The parallel commit + book passes of the sharded core (effective only
  /// when parallel > 0; defaults on, like the engine).
  bool commit = true;
  /// Million-peer memory plane: flat pending/buffer/arrival containers and
  /// the sequential plan arena.
  bool peer_pool = false;
  /// Flash-crowd joiners admitted shortly after the first switch (0 = off).
  std::size_t flash_joins = 0;
  /// CDN-assisted fast switch (changes dynamics by design when on; off must
  /// stay bit-identical to a build without the plane).
  bool cdn = false;
  /// Timing-wheel event plane (defaults on, like the engine; false = the
  /// binary-heap baseline backend).
  bool wheel = true;
  /// Plan work-set plane (defaults on, like the engine; false = the
  /// segment-major build with no quiescence gate).
  bool gate = true;
  /// Maintain a gate-only availability index under the legacy rescan
  /// scheduler so the gate fires there too (plan_gate_legacy).
  bool gate_legacy = false;
  /// Debug cross-check: re-build gated plans and assert emptiness.
  bool gate_recheck = false;
  /// Caught-up steady swarm (no synthetic backlog or lag): the scenario
  /// where most peers quiesce and the plan gate actually fires.
  bool steady = false;
  std::size_t parallel = 0;
  std::size_t tick_shard = 16;
  std::vector<net::NodeId> sources = {0, 1};
  std::vector<double> switch_times = {0.0};
};

RunOutput run_setup(const RunSpec& setup) {
  util::Rng rng(setup.seed);
  net::Graph graph = net::preferential_attachment(50, 2, rng);
  net::repair_min_degree(graph, 5, rng);
  std::vector<double> pings(50);
  for (auto& ping : pings) ping = rng.uniform(20.0, 200.0);

  EngineConfig config;
  config.seed = setup.seed;
  config.horizon = 120.0;
  if (setup.churn) {
    config.churn_leave_fraction = 0.05;
    config.churn_join_fraction = 0.05;
  }
  if (setup.per_link) config.supplier_capacity = SupplierCapacityModel::kPerLink;
  if (setup.token_bucket) config.supplier_capacity = SupplierCapacityModel::kTokenBucket;
  config.batch_dispatch = setup.batch;
  config.stagger_ticks = setup.stagger;
  config.incremental_availability = setup.incremental || setup.windowed;
  config.delta_maps = setup.delta_maps;
  config.windowed_availability = setup.windowed;
  config.parallel_delivery = setup.delivery_wave;
  config.parallel_commit = setup.commit;
  config.peer_pool = setup.peer_pool;
  config.flash_crowd_joins = setup.flash_joins;
  config.cdn_assist = setup.cdn;
  config.timing_wheel = setup.wheel;
  config.plan_gate = setup.gate;
  config.plan_gate_legacy = setup.gate && setup.gate_legacy;
  config.plan_gate_recheck = setup.gate && setup.gate_recheck;
  if (setup.steady) {
    config.sparse_fill = 1.0;
    config.stable_backlog_scale = 0.0;
    config.base_lag_segments = 0.0;
    config.hop_lag_seconds = 0.0;
  }
  config.parallel_shards = setup.parallel;
  config.tick_shard_size = setup.tick_shard;

  std::shared_ptr<SchedulerStrategy> strategy;
  if (setup.fast) {
    strategy = std::make_shared<core::FastSwitchScheduler>();
  } else {
    strategy = std::make_shared<core::NormalSwitchScheduler>();
  }
  auto engine = std::make_unique<Engine>(std::move(graph), net::LatencyModel(std::move(pings)),
                                         config, std::move(strategy));
  engine->set_sources(setup.sources, setup.switch_times);
  RunOutput out;
  out.metrics = engine->run();
  out.stats = engine->stats();
  return out;
}

void expect_identical(const SwitchMetrics& a, const SwitchMetrics& b) {
  EXPECT_EQ(a.switch_index, b.switch_index);
  EXPECT_EQ(a.switch_time, b.switch_time);
  EXPECT_EQ(a.tracked, b.tracked);
  EXPECT_EQ(a.finished_s1, b.finished_s1);
  EXPECT_EQ(a.prepared_s2, b.prepared_s2);
  EXPECT_EQ(a.censored_finish, b.censored_finish);
  EXPECT_EQ(a.censored_prepare, b.censored_prepare);
  EXPECT_EQ(a.finish_times, b.finish_times) << "per-node finish times diverged";
  EXPECT_EQ(a.prepared_times, b.prepared_times) << "per-node prepared times diverged";
  EXPECT_EQ(a.s2_start_times, b.s2_start_times);
  EXPECT_EQ(a.overhead_ratio, b.overhead_ratio);
  EXPECT_EQ(a.control_ratio, b.control_ratio);
  EXPECT_EQ(a.data_segments, b.data_segments);
  ASSERT_EQ(a.track.size(), b.track.size());
  for (std::size_t i = 0; i < a.track.size(); ++i) {
    EXPECT_EQ(a.track[i].time, b.track[i].time);
    EXPECT_EQ(a.track[i].undelivered_ratio_s1, b.track[i].undelivered_ratio_s1);
    EXPECT_EQ(a.track[i].delivered_ratio_s2, b.track[i].delivered_ratio_s2);
    EXPECT_EQ(a.track[i].live_tracked, b.track[i].live_tracked);
  }
}

void expect_identical(const RunOutput& a, const RunOutput& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t k = 0; k < a.metrics.size(); ++k) {
    expect_identical(a.metrics[k], b.metrics[k]);
  }
  EXPECT_EQ(a.stats.segments_generated, b.stats.segments_generated);
  EXPECT_EQ(a.stats.segments_delivered, b.stats.segments_delivered);
  EXPECT_EQ(a.stats.segments_pushed, b.stats.segments_pushed);
  EXPECT_EQ(a.stats.requests_issued, b.stats.requests_issued);
  EXPECT_EQ(a.stats.requests_rejected, b.stats.requests_rejected);
  EXPECT_EQ(a.stats.duplicates, b.stats.duplicates);
  EXPECT_EQ(a.stats.joins, b.stats.joins);
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
  EXPECT_EQ(a.stats.old_stream_requests, b.stats.old_stream_requests);
  EXPECT_EQ(a.stats.new_stream_requests, b.stats.new_stream_requests);
  EXPECT_EQ(a.stats.cdn_segments_served, b.stats.cdn_segments_served);
  EXPECT_EQ(a.stats.cdn_bytes_served, b.stats.cdn_bytes_served);
  EXPECT_EQ(a.stats.cdn_requests_rejected, b.stats.cdn_requests_rejected);
  EXPECT_EQ(a.stats.cdn_assisted_switches, b.stats.cdn_assisted_switches);
  EXPECT_EQ(a.stats.cdn_handoffs, b.stats.cdn_handoffs);
  EXPECT_EQ(a.stats.cdn_pauses, b.stats.cdn_pauses);
  EXPECT_EQ(a.stats.cdn_resumes, b.stats.cdn_resumes);
  EXPECT_EQ(a.stats.cdn_mean_assist_s, b.stats.cdn_mean_assist_s);
}

TEST(Determinism, FastSwitchReproducesIdenticalMetrics) {
  RunSpec setup;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(Determinism, NormalSwitchReproducesIdenticalMetrics) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(Determinism, ChurnRunReproducesIdenticalMetrics) {
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(Determinism, PerLinkCapacityReproducesIdenticalMetrics) {
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(Determinism, MultiSwitchReproducesIdenticalMetrics) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_setup(setup));
}

// ---------------------------------------------------------------------------
// Batched tick dispatch must be *observably invisible*: the same seed with
// batch_dispatch on and off has to reproduce every metric bit for bit, in
// every scenario dimension (algorithm, churn, capacity model, multi-switch,
// staggered and lockstep phases).  Only the event count may change.

RunOutput run_batched(RunSpec setup) {
  setup.batch = true;
  return run_setup(setup);
}

TEST(BatchDispatch, FastSwitchMatchesPerPeerDispatch) {
  RunSpec setup;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, NormalSwitchMatchesPerPeerDispatch) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, ChurnMatchesPerPeerDispatch) {
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, PerLinkCapacityMatchesPerPeerDispatch) {
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, MultiSwitchMatchesPerPeerDispatch) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, LockstepTicksMatchPerPeerDispatch) {
  // Lockstep phases force systematic timestamp ties between peer ticks,
  // generation, churn and the switch event — the hardest ordering case.
  RunSpec setup;
  setup.seed = 31;
  setup.stagger = false;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, LockstepChurnMatchesPerPeerDispatch) {
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_batched(setup));
}

TEST(BatchDispatch, BatchedRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 41;
  setup.batch = true;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(BatchDispatch, PopsFewerEventsThanPerPeerDispatch) {
  RunSpec setup;
  const RunOutput per_peer = run_setup(setup);
  const RunOutput batched = run_batched(setup);
  EXPECT_LT(batched.stats.events_popped, per_peer.stats.events_popped)
      << "batching should collapse per-peer tick events into shard sweeps";
  EXPECT_GT(batched.stats.events_popped, 0u);
}

// ---------------------------------------------------------------------------
// The incremental availability plane must be *observably invisible* exactly
// like batch dispatch: delta-maintained views, cached neighbour heads and
// cached boundary maxima have to reproduce every metric bit for bit against
// the per-tick rescan, across algorithms, churn (joins, leaves and the
// repair edges they trigger), the capacity models, multi-switch timelines
// and both dispatch modes.  Only the scan-work diagnostics may change.

RunOutput run_incremental(RunSpec setup) {
  setup.incremental = true;
  return run_setup(setup);
}

TEST(IncrementalAvailability, FastSwitchMatchesRescan) {
  RunSpec setup;
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, NormalSwitchMatchesRescan) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, ChurnMatchesRescan) {
  // Churn exercises every index maintenance path: leaves subtract supplier
  // sets, repair adds edges between existing peers mid-run, joins register
  // empty views that fill by deltas.
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, PerLinkCapacityMatchesRescan) {
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, MultiSwitchMatchesRescan) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, LockstepChurnMatchesRescan) {
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_incremental(setup));
}

TEST(IncrementalAvailability, BatchDispatchComposes) {
  // incremental x batch vs plain: the two mechanisms must stay independent.
  RunSpec setup;
  setup.seed = 43;
  RunSpec both = setup;
  both.batch = true;
  expect_identical(run_setup(setup), run_incremental(both));
}

TEST(IncrementalAvailability, BatchChurnComposes) {
  RunSpec setup;
  setup.seed = 47;
  setup.churn = true;
  RunSpec both = setup;
  both.batch = true;
  expect_identical(run_setup(setup), run_incremental(both));
}

TEST(IncrementalAvailability, IncrementalChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 53;
  setup.incremental = true;
  setup.batch = true;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(IncrementalAvailability, ProbesFewerThanRescan) {
  RunSpec setup;
  const RunOutput rescan = run_setup(setup);
  const RunOutput indexed = run_incremental(setup);
  EXPECT_LT(indexed.stats.availability_probes, rescan.stats.availability_probes)
      << "the index should skip unsupplied segments the rescan visits";
  EXPECT_GT(indexed.stats.availability_probes, 0u);
  EXPECT_GT(indexed.stats.index_updates, 0u);
  EXPECT_EQ(rescan.stats.index_updates, 0u);
}

// Delta accounting changes the *wire model*, not the dynamics: every metric
// except the overhead ratios must match the full-map incremental run, and
// the ratios must drop (that is the point of sending deltas).

TEST(IncrementalAvailability, DeltaMapsOnlyLowerTheOverheadRatio) {
  RunSpec setup;
  setup.seed = 59;
  setup.incremental = true;
  RunSpec delta = setup;
  delta.delta_maps = true;
  const RunOutput full = run_setup(setup);
  const RunOutput with_delta = run_setup(delta);
  ASSERT_EQ(full.metrics.size(), with_delta.metrics.size());
  for (std::size_t k = 0; k < full.metrics.size(); ++k) {
    EXPECT_EQ(full.metrics[k].finish_times, with_delta.metrics[k].finish_times);
    EXPECT_EQ(full.metrics[k].prepared_times, with_delta.metrics[k].prepared_times);
    EXPECT_EQ(full.metrics[k].data_segments, with_delta.metrics[k].data_segments);
    EXPECT_LT(with_delta.metrics[k].overhead_ratio, full.metrics[k].overhead_ratio);
  }
  EXPECT_EQ(full.stats.segments_delivered, with_delta.stats.segments_delivered);
  EXPECT_EQ(full.stats.requests_issued, with_delta.stats.requests_issued);
  EXPECT_GT(with_delta.stats.delta_adverts, 0u);
  EXPECT_GT(with_delta.stats.full_map_adverts, 0u);
}

TEST(IncrementalAvailability, DeltaMapsChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 61;
  setup.incremental = true;
  setup.delta_maps = true;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

// ---------------------------------------------------------------------------
// The sharded parallel core must be *observably invisible* exactly like
// batch dispatch and the incremental availability plane: the same seed at
// any shard count — per-shard event queues, parallel tick planning,
// speculative plans re-planned on capacity conflicts — has to reproduce
// every metric bit for bit against the sequential engine, across
// algorithms, churn, capacity models, dispatch modes, availability modes
// and tick-shard sizes.  Only wall clock and the shard diagnostics
// (parallel_sweeps / planned_ticks / replanned_ticks / cross_shard_events
// / events_popped) may change.

RunOutput run_sharded(RunSpec setup, std::size_t shards) {
  setup.parallel = shards;
  return run_setup(setup);
}

TEST(ParallelShards, EveryShardCountMatchesSequential) {
  RunSpec setup;
  const RunOutput sequential = run_setup(setup);
  for (const std::size_t shards : {1u, 4u, 7u}) {
    expect_identical(sequential, run_sharded(setup, shards));
  }
}

TEST(ParallelShards, NormalSwitchMatchesSequential) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, ChurnMatchesSequential) {
  // Churn exercises joiner singleton sweeps, member removal mid-run and
  // dirty-stamp growth as the peer vector extends.
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, PerLinkCapacityMatchesSequential) {
  // Per-link capacity is requester-keyed: plans can never go stale, so the
  // commit phase must apply every speculation unchanged.
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, TokenBucketCapacityMatchesSequential) {
  // Token-bucket capacity is supplier-keyed (shared), driving the
  // stale-plan re-plan path under a different backlog shape than the FIFO.
  RunSpec setup;
  setup.seed = 29;
  setup.token_bucket = true;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, MultiSwitchMatchesSequential) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, BatchDispatchComposes) {
  // parallel_shards forces batch dispatch on; the sequential arm running
  // per-peer dispatch must still match bit for bit (transitively through
  // PR 2's batch invariant).
  RunSpec setup;
  setup.seed = 43;
  RunSpec batched = setup;
  batched.batch = true;
  expect_identical(run_setup(setup), run_sharded(batched, 4));
}

TEST(ParallelShards, IncrementalAvailabilityComposes) {
  RunSpec setup;
  setup.seed = 47;
  setup.incremental = true;
  expect_identical(run_setup(setup), run_sharded(setup, 7));
}

TEST(ParallelShards, IncrementalChurnBatchComposes) {
  // The full composition: delta-maintained views, batched dispatch, churn
  // and the sharded core at once.
  RunSpec setup;
  setup.seed = 53;
  setup.churn = true;
  setup.incremental = true;
  setup.batch = true;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, LockstepChurnMatchesSequential) {
  // Lockstep phases put every sweep of a period at the same timestamp —
  // the densest same-time event mix the merge rule has to keep ordered.
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, LargeTickShardsMatchSequential) {
  // One sweep spanning many peers is the scale configuration (wide
  // parallel plans, many conflict checks per commit pass).
  RunSpec setup;
  setup.seed = 59;
  setup.tick_shard = 64;
  expect_identical(run_setup(setup), run_sharded(setup, 4));
}

TEST(ParallelShards, ShardedChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 61;
  setup.parallel = 7;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(ParallelShards, ShardDiagnosticsReportWork) {
  RunSpec setup;
  setup.tick_shard = 64;
  const RunOutput sequential = run_setup(setup);
  const RunOutput sharded = run_sharded(setup, 4);
  EXPECT_EQ(sequential.stats.parallel_sweeps, 0u);
  EXPECT_EQ(sequential.stats.planned_ticks, 0u);
  EXPECT_EQ(sequential.stats.cross_shard_events, 0u);
  EXPECT_GT(sharded.stats.parallel_sweeps, 0u);
  EXPECT_GT(sharded.stats.planned_ticks, 0u);
  EXPECT_GE(sharded.stats.planned_ticks, sharded.stats.replanned_ticks);
  // At 50 nodes every sweep member shares suppliers, so the stale-plan
  // re-plan path must actually fire (the determinism above is not vacuous).
  EXPECT_GT(sharded.stats.replanned_ticks, 0u);
  EXPECT_GT(sharded.stats.cross_shard_events, 0u);
}

// ---------------------------------------------------------------------------
// The parallel delivery wave (batched delivery pops drained through the
// mark/book/merge pipeline, plus same-timestamp sweep super-batching) must
// be *observably invisible* exactly like the sharded plan wave it extends:
// the same seed with the wave on and off — and against the fully
// sequential engine — has to reproduce every metric bit for bit at every
// shard count, across algorithms, churn, all three capacity models,
// multi-switch timelines and the batch/incremental compositions.  Only
// wall clock and the drain diagnostics (delivery_batches /
// delta_journal_merges / superbatch_sweeps) may change.

RunOutput run_delivery(RunSpec setup, std::size_t shards, bool wave = true) {
  setup.parallel = shards;
  setup.delivery_wave = wave;
  return run_setup(setup);
}

TEST(ParallelDelivery, EveryShardCountMatchesSequentialWaveOnAndOff) {
  RunSpec setup;
  const RunOutput sequential = run_setup(setup);
  for (const std::size_t shards : {0u, 1u, 4u, 7u}) {
    expect_identical(sequential, run_delivery(setup, shards, /*wave=*/true));
    expect_identical(sequential, run_delivery(setup, shards, /*wave=*/false));
  }
}

TEST(ParallelDelivery, NormalSwitchMatchesSequential) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_delivery(setup, 4));
}

TEST(ParallelDelivery, ChurnMatchesSequential) {
  // Churn exercises dead-delivery outcomes (segments in flight to leavers),
  // journal application across joiner views and view teardown mid-run.
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_delivery(setup, 4));
  expect_identical(run_setup(setup), run_delivery(setup, 4, /*wave=*/false));
}

TEST(ParallelDelivery, PerLinkCapacityMatchesSequential) {
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_delivery(setup, 4));
}

TEST(ParallelDelivery, TokenBucketCapacityMatchesSequential) {
  RunSpec setup;
  setup.seed = 29;
  setup.token_bucket = true;
  expect_identical(run_setup(setup), run_delivery(setup, 4));
}

TEST(ParallelDelivery, MultiSwitchMatchesSequential) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_delivery(setup, 4));
}

TEST(ParallelDelivery, BatchIncrementalComposes) {
  // The full mechanism stack: delta-maintained views feed the journal
  // merge wave while batched dispatch feeds the sweeps.
  RunSpec setup;
  setup.seed = 43;
  RunSpec stacked = setup;
  stacked.batch = true;
  stacked.incremental = true;
  expect_identical(run_setup(setup), run_delivery(stacked, 4));
  expect_identical(run_setup(setup), run_delivery(stacked, 7));
}

TEST(ParallelDelivery, LockstepChurnMatchesSequential) {
  // Lockstep phases put every sweep of a period at one timestamp: the
  // super-batch path runs every period, concatenating all groups into one
  // pipeline pass whose re-arms collapse to the end of the run.
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_delivery(setup, 4));
  expect_identical(run_setup(setup), run_delivery(setup, 1));
}

TEST(ParallelDelivery, WaveRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 61;
  setup.parallel = 7;
  setup.churn = true;
  setup.incremental = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(ParallelDelivery, DrainDiagnosticsReportWork) {
  RunSpec setup;
  setup.seed = 31;
  setup.stagger = false;  // lockstep: guarantees super-batched sweeps
  setup.incremental = true;
  const RunOutput sequential = run_setup(setup);
  const RunOutput waved = run_delivery(setup, 4);
  const RunOutput unwaved = run_delivery(setup, 4, /*wave=*/false);
  EXPECT_EQ(sequential.stats.delivery_batches, 0u);
  EXPECT_EQ(sequential.stats.delta_journal_merges, 0u);
  EXPECT_EQ(sequential.stats.superbatch_sweeps, 0u);
  EXPECT_EQ(unwaved.stats.delivery_batches, 0u);
  EXPECT_EQ(unwaved.stats.superbatch_sweeps, 0u);
  EXPECT_GT(waved.stats.delivery_batches, 0u);
  EXPECT_GT(waved.stats.delta_journal_merges, 0u);
  EXPECT_GT(waved.stats.superbatch_sweeps, 0u);
}

// ---------------------------------------------------------------------------
// Windowed availability views re-key supplier counts onto a sliding window
// anchored at the playback cursor.  The window is pure memory mechanism:
// every metric must match both the absolute-keyed incremental plane and
// the legacy rescan, bit for bit, including under churn (joins build
// windowed views, leaves subtract through the window, repair edges add
// suppliers across it) and composed with the sharded core's delivery wave.

RunOutput run_windowed(RunSpec setup) {
  setup.windowed = true;
  return run_setup(setup);
}

TEST(WindowedAvailability, MatchesAbsoluteKeyingAndRescan) {
  RunSpec setup;
  RunSpec absolute = setup;
  absolute.incremental = true;
  expect_identical(run_setup(absolute), run_windowed(setup));
  expect_identical(run_setup(setup), run_windowed(setup));
}

TEST(WindowedAvailability, ChurnMatchesAbsoluteKeying) {
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  RunSpec absolute = setup;
  absolute.incremental = true;
  expect_identical(run_setup(absolute), run_windowed(setup));
}

TEST(WindowedAvailability, MultiSwitchMatchesRescan) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_windowed(setup));
}

TEST(WindowedAvailability, LockstepChurnMatchesRescan) {
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_windowed(setup));
}

TEST(WindowedAvailability, ComposesWithParallelDelivery) {
  // Window slides happen in the tick pre phase and the delivery wave's
  // merge lanes apply journalled deltas against the windowed slots — the
  // full composition must still match the plain sequential engine.
  RunSpec setup;
  setup.seed = 47;
  RunSpec stacked = setup;
  stacked.windowed = true;
  stacked.parallel = 4;
  expect_identical(run_setup(setup), run_setup(stacked));
}

TEST(WindowedAvailability, WindowedChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 53;
  setup.windowed = true;
  setup.batch = true;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

// ---------------------------------------------------------------------------
// The million-peer memory plane must be *observably invisible* exactly like
// every mechanism before it: the same seed with peer_pool on and off — flat
// open-addressed pending maps instead of unordered_map nodes, ring-backed
// stream buffers instead of deque+map, the bounded arrival ring instead of
// std::map, and the per-tick plan arena on the sequential path — has to
// reproduce every metric bit for bit, across algorithms, churn, capacity
// models, multi-switch timelines, availability modes, dispatch modes and
// every shard count.  Only bytes/peer and allocation traffic may change.

RunOutput run_pooled(RunSpec setup) {
  setup.peer_pool = true;
  return run_setup(setup);
}

TEST(PeerPool, FastSwitchMatchesLegacyContainers) {
  RunSpec setup;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, NormalSwitchMatchesLegacyContainers) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, ChurnMatchesLegacyContainers) {
  // Churn exercises joiner pool growth (bind after emplace), leaver pending
  // erasure through the flat map and buffer teardown through the ring.
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, TokenBucketCapacityMatchesLegacyContainers) {
  RunSpec setup;
  setup.seed = 29;
  setup.token_bucket = true;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, MultiSwitchMatchesLegacyContainers) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, EveryShardCountMatchesLegacySequential) {
  // The arena only engages at shards=0; the sharded counts prove the flat
  // containers stay invisible when the plan wave runs without it.
  RunSpec setup;
  const RunOutput legacy = run_setup(setup);
  for (const std::size_t shards : {0u, 1u, 4u, 7u}) {
    RunSpec pooled = setup;
    pooled.parallel = shards;
    expect_identical(legacy, run_pooled(pooled));
  }
}

TEST(PeerPool, BatchIncrementalWindowedComposes) {
  // The full mechanism stack with the memory plane on top: batched
  // dispatch, delta-maintained windowed views, flat containers and the
  // plan arena at once.
  RunSpec setup;
  setup.seed = 43;
  RunSpec stacked = setup;
  stacked.batch = true;
  stacked.windowed = true;
  expect_identical(run_setup(setup), run_pooled(stacked));
}

TEST(PeerPool, LockstepChurnMatchesLegacyContainers) {
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, PooledChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 61;
  setup.peer_pool = true;
  setup.churn = true;
  setup.windowed = true;
  setup.parallel = 4;
  expect_identical(run_setup(setup), run_setup(setup));
}

// The flash-crowd scenario rides the regular join path, so it must be a
// pure workload knob: deterministic for a fixed seed, identical with the
// memory plane on and off, and it must admit exactly the configured crowd.

TEST(PeerPool, FlashCrowdMatchesAcrossMemoryPlanes) {
  RunSpec setup;
  setup.seed = 67;
  setup.flash_joins = 40;
  expect_identical(run_setup(setup), run_pooled(setup));
}

TEST(PeerPool, FlashCrowdRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 71;
  setup.flash_joins = 40;
  setup.peer_pool = true;
  setup.batch = true;
  setup.windowed = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(PeerPool, FlashCrowdAdmitsTheConfiguredCrowd) {
  RunSpec setup;
  setup.seed = 73;
  setup.flash_joins = 40;
  const RunOutput out = run_setup(setup);
  EXPECT_EQ(out.stats.flash_joins, 40u);
  EXPECT_GE(out.stats.joins, 40u) << "flash joiners are a subset of joins";
}

TEST(PeerPool, ReportsMemoryTelemetry) {
  RunSpec setup;
  setup.seed = 79;
  const RunOutput legacy = run_setup(setup);
  const RunOutput pooled = run_pooled(setup);
  EXPECT_GT(legacy.stats.peer_state_bytes, 0u);
  EXPECT_GT(pooled.stats.peer_state_bytes, 0u);
  EXPECT_GT(legacy.stats.bytes_per_peer, 0.0);
  EXPECT_LT(pooled.stats.bytes_per_peer, legacy.stats.bytes_per_peer)
      << "the flat containers should shrink the per-peer footprint";
}

// ---------------------------------------------------------------------------
// CDN-assisted fast switch.  Unlike the mechanism flags above, the assist
// changes dynamics *by design*; what must hold is (a) fixed-seed runs with
// the assist on reproduce themselves bit for bit, (b) the assist composes
// with every mechanism flag — identical metrics at every shard count and
// across the memory planes — and (c) with the assist off nothing changes
// (covered implicitly by every other suite here: those runs never construct
// the plane).

RunOutput run_assisted(RunSpec setup) {
  setup.cdn = true;
  return run_setup(setup);
}

TEST(CdnAssist, AssistedRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 83;
  setup.cdn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(CdnAssist, AssistedChurnRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 89;
  setup.cdn = true;
  setup.churn = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(CdnAssist, AssistedMetricsIdenticalAtEveryShardCount) {
  RunSpec setup;
  setup.seed = 97;
  setup.cdn = true;
  const RunOutput sequential = run_setup(setup);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{7}}) {
    RunSpec sharded = setup;
    sharded.parallel = shards;
    expect_identical(sequential, run_setup(sharded));
  }
}

TEST(CdnAssist, AssistComposesWithMemoryPlane) {
  RunSpec setup;
  setup.seed = 101;
  setup.cdn = true;
  RunSpec pooled = setup;
  pooled.peer_pool = true;
  expect_identical(run_setup(setup), run_setup(pooled));
}

TEST(CdnAssist, AssistComposesWithBatchedIncrementalWindowed) {
  RunSpec setup;
  setup.seed = 103;
  setup.cdn = true;
  RunSpec stacked = setup;
  stacked.batch = true;
  stacked.windowed = true;
  expect_identical(run_setup(setup), run_setup(stacked));
}

TEST(CdnAssist, AssistedFlashCrowdReproducesItself) {
  RunSpec setup;
  setup.seed = 107;
  setup.cdn = true;
  setup.flash_joins = 40;
  setup.parallel = 4;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(CdnAssist, AssistedTokenBucketReproducesItself) {
  RunSpec setup;
  setup.seed = 109;
  setup.cdn = true;
  setup.token_bucket = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(CdnAssist, AssistActuallyServes) {
  RunSpec setup;
  setup.seed = 113;
  const RunOutput out = run_assisted(setup);
  EXPECT_GT(out.stats.cdn_assisted_switches, 0u) << "switching peers should enroll";
  EXPECT_GT(out.stats.cdn_segments_served, 0u) << "the CDN should serve patch segments";
  EXPECT_EQ(out.stats.cdn_bytes_served,
            out.stats.cdn_segments_served * (30 * 1024 / 8));
  const RunOutput baseline = run_setup(setup);
  EXPECT_EQ(baseline.stats.cdn_segments_served, 0u);
  EXPECT_EQ(baseline.stats.cdn_assisted_switches, 0u);
}

// ---------------------------------------------------------------------------
// Parallel commit + book passes.  The commit wave colours each sweep wave by
// supplier contention and runs the colour classes on pool lanes; the book
// pass splits delivery bookkeeping into a parallel per-target phase plus a
// sequential tail that replays the global pop order.  Both are pure
// mechanism: fixed-seed metrics must match the member-order commit loop bit
// for bit at every shard count and composed with every other flag.  Only
// wall clock and the commit diagnostics (commit_colour_classes /
// commit_conflict_fixups / parallel_commits / parallel_books) may change.

RunOutput run_commit(RunSpec setup, std::size_t shards, bool commit = true) {
  setup.parallel = shards;
  setup.commit = commit;
  return run_setup(setup);
}

TEST(ParallelCommit, EveryShardCountMatchesSequentialCommitOnAndOff) {
  RunSpec setup;
  const RunOutput sequential = run_setup(setup);
  for (const std::size_t shards : {0u, 1u, 4u, 7u}) {
    expect_identical(sequential, run_commit(setup, shards, /*commit=*/true));
    expect_identical(sequential, run_commit(setup, shards, /*commit=*/false));
  }
}

TEST(ParallelCommit, NormalSwitchMatchesSequential) {
  RunSpec setup;
  setup.fast = false;
  expect_identical(run_setup(setup), run_commit(setup, 4));
}

TEST(ParallelCommit, ChurnMatchesSequential) {
  // Churn exercises fixups against vanished suppliers, dead deliveries in
  // the book phase and view teardown between waves.
  RunSpec setup;
  setup.seed = 19;
  setup.churn = true;
  expect_identical(run_setup(setup), run_commit(setup, 4));
  expect_identical(run_setup(setup), run_commit(setup, 4, /*commit=*/false));
}

TEST(ParallelCommit, PerLinkCapacityMatchesSequential) {
  // Per-link capacity has no shared-supplier contention: every wave is one
  // colour class and no fixups can fire.
  RunSpec setup;
  setup.seed = 27;
  setup.per_link = true;
  expect_identical(run_setup(setup), run_commit(setup, 4));
}

TEST(ParallelCommit, TokenBucketCapacityMatchesSequential) {
  RunSpec setup;
  setup.seed = 29;
  setup.token_bucket = true;
  expect_identical(run_setup(setup), run_commit(setup, 4));
}

TEST(ParallelCommit, MultiSwitchMatchesSequential) {
  RunSpec setup;
  setup.seed = 23;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 60.0};
  expect_identical(run_setup(setup), run_commit(setup, 4));
}

TEST(ParallelCommit, BatchIncrementalWindowedComposes) {
  RunSpec setup;
  setup.seed = 43;
  RunSpec stacked = setup;
  stacked.batch = true;
  stacked.windowed = true;
  expect_identical(run_setup(setup), run_commit(stacked, 4));
  expect_identical(run_setup(setup), run_commit(stacked, 7));
}

TEST(ParallelCommit, PeerPoolComposes) {
  RunSpec setup;
  setup.seed = 47;
  RunSpec pooled = setup;
  pooled.peer_pool = true;
  expect_identical(run_setup(setup), run_commit(pooled, 4));
  expect_identical(run_setup(setup), run_commit(pooled, 4, /*commit=*/false));
}

TEST(ParallelCommit, CdnAssistComposes) {
  // The final drain interleaves cdn_assist_tick in member order; assisted
  // runs must not notice whether commits were staged or inline.
  RunSpec setup;
  setup.seed = 97;
  setup.cdn = true;
  const RunOutput sequential = run_setup(setup);
  expect_identical(sequential, run_commit(setup, 4));
  expect_identical(sequential, run_commit(setup, 4, /*commit=*/false));
}

TEST(ParallelCommit, FlashCrowdComposes) {
  RunSpec setup;
  setup.seed = 53;
  setup.flash_joins = 40;
  const RunOutput sequential = run_setup(setup);
  expect_identical(sequential, run_commit(setup, 4));
  expect_identical(sequential, run_commit(setup, 4, /*commit=*/false));
}

TEST(ParallelCommit, LockstepChurnMatchesSequential) {
  // Lockstep phases force the super-batched sweep: the commit wave runs over
  // concatenated groups with the largest wave counts.
  RunSpec setup;
  setup.seed = 37;
  setup.stagger = false;
  setup.churn = true;
  expect_identical(run_setup(setup), run_commit(setup, 4));
  expect_identical(run_setup(setup), run_commit(setup, 1));
}

TEST(ParallelCommit, CommitRunsReproduceThemselves) {
  RunSpec setup;
  setup.seed = 61;
  setup.parallel = 7;
  setup.churn = true;
  setup.incremental = true;
  expect_identical(run_setup(setup), run_setup(setup));
}

TEST(ParallelCommit, CommitDiagnosticsReportWork) {
  RunSpec setup;
  setup.seed = 31;
  setup.incremental = true;
  const RunOutput sequential = run_setup(setup);
  const RunOutput waved = run_commit(setup, 4);
  const RunOutput unwaved = run_commit(setup, 4, /*commit=*/false);
  EXPECT_EQ(sequential.stats.parallel_commits, 0u);
  EXPECT_EQ(sequential.stats.commit_colour_classes, 0u);
  EXPECT_EQ(sequential.stats.parallel_books, 0u);
  EXPECT_EQ(unwaved.stats.parallel_commits, 0u);
  EXPECT_EQ(unwaved.stats.commit_colour_classes, 0u);
  EXPECT_EQ(unwaved.stats.parallel_books, 0u);
  EXPECT_GT(waved.stats.parallel_commits, 0u);
  EXPECT_GT(waved.stats.commit_colour_classes, 0u);
  EXPECT_GT(waved.stats.parallel_books, 0u);
}

TEST(ParallelCommit, LayeredColouringIsValid) {
  // Property check on the colouring itself: (a) every colour is below the
  // class count, (b) slots without a contention set stay in class 0, and
  // (c) any two conflicting slots i < j satisfy colour(i) < colour(j) — the
  // layered rule's order guarantee, strictly stronger than "different
  // colours", which is what lets class-by-class execution replay the
  // sequential commit order.
  util::Rng rng(12345);
  CommitColouring colouring;
  for (int round = 0; round < 50; ++round) {
    const auto nodes = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto count = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::vector<net::NodeId>> sets(count);
    std::vector<bool> null_set(count);
    for (std::size_t j = 0; j < count; ++j) {
      null_set[j] = rng.uniform() < 0.2;  // mirrors non-planned / empty slots
      const auto degree = static_cast<std::size_t>(rng.uniform_int(0, 6));
      for (std::size_t d = 0; d < degree; ++d) {
        sets[j].push_back(static_cast<net::NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(nodes) - 1)));
      }
    }
    colouring.colour_wave(count, nodes,
                          [&](std::size_t j) -> const std::vector<net::NodeId>* {
                            return null_set[j] ? nullptr : &sets[j];
                          });
    for (std::size_t j = 0; j < count; ++j) {
      EXPECT_LT(colouring.colour[j], colouring.classes);
      if (null_set[j]) {
        EXPECT_EQ(colouring.colour[j], 0u);
        continue;
      }
      for (std::size_t i = 0; i < j; ++i) {
        if (null_set[i]) continue;
        bool conflict = false;
        for (const net::NodeId a : sets[i]) {
          for (const net::NodeId b : sets[j]) conflict = conflict || a == b;
        }
        if (conflict) {
          EXPECT_LT(colouring.colour[i], colouring.colour[j]);
        }
      }
    }
  }
}

TEST(ParallelCommit, SteadyStateArenaAllocationsAreZero) {
  // The per-lane arena pool must reach a zero-allocation steady state.  The
  // adaptive fence arms only after >= 16 parallel sweeps AND 16 consecutive
  // sweeps with no chunk growth, so arena_warm_chunks > 0 proves the lanes
  // actually went quiet (a fence that never arms would report
  // arena_steady_chunks == 0 vacuously — rejected here), and
  // arena_steady_chunks == 0 is then exact: not one chunk may be malloc'd
  // after the arenas stop growing.
  RunSpec setup;
  setup.seed = 67;
  setup.parallel = 4;
  const RunOutput out = run_setup(setup);
  EXPECT_GT(out.stats.parallel_sweeps, 16u) << "run too short to pass the warm-up fence";
  EXPECT_GT(out.stats.arena_chunks, 0u) << "lane arenas should be in use";
  EXPECT_GT(out.stats.arena_warm_chunks, 0u)
      << "adaptive fence never armed: the arenas kept allocating to the end of the run";
  EXPECT_LE(out.stats.arena_warm_chunks, out.stats.arena_chunks);
  EXPECT_EQ(out.stats.arena_steady_chunks, 0u)
      << "heap allocation after the warm-up fence breaks the zero-alloc steady state";
}

// ----------------------------------------------------------- TimingWheel ---
//
// The timing-wheel event plane is pure mechanism: every pop must happen in
// the same global (time, sequence) order the binary-heap backend produces,
// so fixed-seed metrics are bit-identical wheel on vs off — across shard
// counts and composed with every other flag family.

RunOutput run_wheel(RunSpec setup, bool wheel) {
  setup.wheel = wheel;
  return run_setup(setup);
}

TEST(TimingWheel, SequentialRunMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 71;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, SingleShardMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 72;
  setup.parallel = 1;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, ShardedChurnRunMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 73;
  setup.parallel = 4;
  setup.churn = true;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, SevenShardMultiSwitchMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 74;
  setup.parallel = 7;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 40.0};
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, CdnAssistMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 75;
  setup.parallel = 4;
  setup.cdn = true;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, FlashCrowdPeerPoolMatchesHeapBackend) {
  RunSpec setup;
  setup.seed = 76;
  setup.parallel = 4;
  setup.peer_pool = true;
  setup.flash_joins = 30;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, FullCompositionMatchesHeapBackend) {
  // The kitchen sink: churn + incremental availability + windowed views +
  // peer pool + token-bucket capacity on 7 shards.
  RunSpec setup;
  setup.seed = 77;
  setup.parallel = 7;
  setup.churn = true;
  setup.incremental = true;
  setup.windowed = true;
  setup.peer_pool = true;
  setup.token_bucket = true;
  expect_identical(run_wheel(setup, false), run_wheel(setup, true));
}

TEST(TimingWheel, WheelRunsReproduceThemselvesAndReportTelemetry) {
  RunSpec setup;
  setup.seed = 78;
  setup.parallel = 4;
  setup.churn = true;
  const RunOutput a = run_wheel(setup, true);
  expect_identical(a, run_wheel(setup, true));
  EXPECT_GT(a.stats.events_wheeled, 0u) << "wheel backend reported no scheduled events";
  const RunOutput heap = run_wheel(setup, false);
  EXPECT_EQ(heap.stats.events_wheeled, 0u) << "heap backend must report zero wheel telemetry";
  EXPECT_EQ(heap.stats.wheel_overflow_promotions, 0u);
  EXPECT_EQ(heap.stats.spill_heap_peak, 0u);
}

// -------------------------------------------------------------- PlanGate ---
//
// The plan work-set plane is pure mechanism: a gated peer's tick_plan
// returns before any strategy rng draw (an empty candidate list draws
// nothing either way), and the neighbour-major candidate build emits the
// identical candidate list, supplier order and supplier values the
// segment-major build does.  So fixed-seed metrics must be bit-identical
// gate on vs off — across shard counts and composed with every other flag
// family, in both availability modes.

RunOutput run_gate(RunSpec setup, bool gate) {
  setup.gate = gate;
  return run_setup(setup);
}

TEST(PlanGate, SequentialRunMatchesUngated) {
  RunSpec setup;
  setup.seed = 81;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, SingleShardIncrementalMatchesUngated) {
  RunSpec setup;
  setup.seed = 82;
  setup.parallel = 1;
  setup.incremental = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, ShardedChurnMatchesUngated) {
  RunSpec setup;
  setup.seed = 83;
  setup.parallel = 4;
  setup.churn = true;
  setup.incremental = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, SevenShardMultiSwitchWindowedMatchesUngated) {
  RunSpec setup;
  setup.seed = 84;
  setup.parallel = 7;
  setup.windowed = true;
  setup.sources = {0, 1, 2};
  setup.switch_times = {0.0, 40.0};
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, CdnAssistMatchesUngated) {
  RunSpec setup;
  setup.seed = 85;
  setup.parallel = 4;
  setup.cdn = true;
  setup.windowed = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, FlashCrowdPeerPoolMatchesUngated) {
  RunSpec setup;
  setup.seed = 86;
  setup.parallel = 4;
  setup.peer_pool = true;
  setup.flash_joins = 30;
  setup.incremental = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, FullCompositionMatchesUngated) {
  // The kitchen sink: churn + batched dispatch + windowed views + peer
  // pool + token-bucket capacity on 7 shards.
  RunSpec setup;
  setup.seed = 87;
  setup.parallel = 7;
  setup.churn = true;
  setup.batch = true;
  setup.windowed = true;
  setup.peer_pool = true;
  setup.token_bucket = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, LegacyRescanMatchesUngated) {
  // plan_gate_legacy maintains a gate-only index under the legacy rescan
  // scheduler; the scheduler must keep reading its own rescans (candidate
  // lists, boundary discovery) exactly as if no index existed.
  RunSpec setup;
  setup.seed = 88;
  setup.gate_legacy = true;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, LegacyChurnShardedMatchesUngated) {
  RunSpec setup;
  setup.seed = 89;
  setup.gate_legacy = true;
  setup.churn = true;
  setup.parallel = 4;
  expect_identical(run_gate(setup, false), run_gate(setup, true));
}

TEST(PlanGate, SteadySwarmMatchesUngatedAndActuallyGates) {
  // The caught-up steady swarm is where quiescence really occurs; beyond
  // bit-identity, assert the gate fires (a steady-state run with zero
  // gated plans means the work summary never went quiet — a tracking bug
  // conservatism would otherwise hide).
  RunSpec setup;
  setup.seed = 90;
  setup.steady = true;
  setup.windowed = true;
  setup.batch = true;
  const RunOutput gated = run_gate(setup, true);
  expect_identical(run_gate(setup, false), gated);
  EXPECT_GT(gated.stats.plans_gated, 0u)
      << "steady swarm never gated a plan: work tracking is stuck at has-work";
  EXPECT_GT(gated.stats.plans_built, 0u);
}

TEST(PlanGate, RecheckedRunsReproduceThemselvesAndPassTheCrossCheck) {
  // plan_gate_recheck re-runs the full candidate build for every gated
  // peer and GS_CHECKs emptiness — a run completing at all is the
  // assertion; the stats must show the recheck actually covered the gate.
  RunSpec setup;
  setup.seed = 91;
  setup.steady = true;
  setup.windowed = true;
  setup.gate_recheck = true;
  const RunOutput a = run_setup(setup);
  expect_identical(a, run_setup(setup));
  EXPECT_GT(a.stats.plans_gated, 0u);
  EXPECT_EQ(a.stats.gate_rechecks, a.stats.plans_gated)
      << "every gated plan must be cross-checked when plan_gate_recheck is on";
}

TEST(PlanGate, GatedRunsReproduceThemselvesAndReportTelemetry) {
  RunSpec setup;
  setup.seed = 92;
  setup.parallel = 4;
  setup.churn = true;
  setup.windowed = true;
  const RunOutput a = run_setup(setup);
  expect_identical(a, run_setup(setup));
  EXPECT_GT(a.stats.plans_built, 0u) << "no plan ever built candidates";
  const RunOutput off = run_gate(setup, false);
  EXPECT_EQ(off.stats.plans_gated, 0u) << "gate off must report zero gated plans";
  EXPECT_EQ(off.stats.gate_rechecks, 0u);
}

TEST(Determinism, DifferentSeedsProduceDifferentRuns) {
  RunSpec a;
  RunSpec b;
  b.seed = 8;
  EXPECT_NE(run_setup(a).metrics.front().avg_prepared_time(),
            run_setup(b).metrics.front().avg_prepared_time());
}

}  // namespace
}  // namespace gs::stream
