// End-to-end properties over randomized seeds (paired fast/normal runs).
#include <gtest/gtest.h>

#include "experiments/config.hpp"
#include "experiments/runner.hpp"

namespace gs::exp {
namespace {

class PairedRunTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PairedRunTest, HeadlineInvariants) {
  const std::uint64_t seed = GetParam();
  const std::size_t nodes = 120;

  const RunResult fast =
      run_once(Config::paper_static(nodes, AlgorithmKind::kFast, seed));
  const RunResult normal =
      run_once(Config::paper_static(nodes, AlgorithmKind::kNormal, seed));
  const auto& mf = fast.primary();
  const auto& mn = normal.primary();

  // Everyone completes in a static run.
  EXPECT_EQ(mf.prepared_s2, mf.tracked);
  EXPECT_EQ(mn.prepared_s2, mn.tracked);
  EXPECT_EQ(mf.finished_s1, mf.tracked);

  // The fast algorithm never loses badly on the switch time (paired seed):
  // allow a small tolerance for stochastic scheduling noise at this scale.
  EXPECT_LE(mf.avg_prepared_time(), mn.avg_prepared_time() * 1.10)
      << "fast lost by >10% on seed " << seed;

  // The "compromise": fast may finish S1 later, but never dramatically
  // (bounded by the equalized split).
  EXPECT_LE(mf.avg_finish_time(), mn.avg_finish_time() * 1.5);

  // Overhead in the paper's band for both, fast not meaningfully worse.
  EXPECT_GT(mf.overhead_ratio, 0.002);
  EXPECT_LT(mf.overhead_ratio, 0.05);
  EXPECT_LT(mf.overhead_ratio, mn.overhead_ratio * 1.25);

  // Times are physically sensible.
  EXPECT_GT(mf.avg_prepared_time(), 1.0);
  EXPECT_LT(mf.avg_prepared_time(), 60.0);
  EXPECT_GE(mf.max_prepared_time(), mf.avg_prepared_time());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairedRunTest, ::testing::Values(101, 202, 303, 404, 505));

class DynamicRunTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicRunTest, ChurnInvariants) {
  const std::uint64_t seed = GetParam();
  const RunResult result = run_once(Config::paper_dynamic(150, AlgorithmKind::kFast, seed));
  const auto& m = result.primary();
  // Full accounting: every tracked node either completed or was censored.
  EXPECT_EQ(m.prepared_s2 + m.censored_prepare, m.tracked);
  EXPECT_EQ(m.finished_s1 + m.censored_finish, m.tracked);
  // Churn at 5%/period must not prevent the bulk from completing.
  EXPECT_GT(m.completion_fraction(), 0.5);
  EXPECT_GT(result.stats.joins, 0u);
  EXPECT_GT(result.stats.leaves, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicRunTest, ::testing::Values(11, 22, 33));

TEST(ScaleTrend, SwitchTimeGrowsWithNetworkSize) {
  // Fig. 6/7 shape: larger overlays have longer switch times.
  const Config base = Config::paper_static(100, AlgorithmKind::kFast, 9);
  const ComparisonPoint small = compare_at_size(base, 100, 2);
  const ComparisonPoint large = compare_at_size(base, 800, 2);
  EXPECT_GT(large.fast_switch_time, small.fast_switch_time);
  EXPECT_GT(large.normal_switch_time, small.normal_switch_time);
}

TEST(TrackShape, FastCompromisesS1ForS2) {
  // Fig. 5 shape at small scale: early in the switch the fast algorithm
  // has MORE undelivered S1 (it diverted rate to S2) but MORE delivered S2
  // than normal at the same instant.
  const std::uint64_t seed = 77;
  const RunResult fast = run_once(Config::paper_static(200, AlgorithmKind::kFast, seed));
  const RunResult normal = run_once(Config::paper_static(200, AlgorithmKind::kNormal, seed));
  const auto& tf = fast.primary().track;
  const auto& tn = normal.primary().track;
  ASSERT_GE(tf.size(), 5u);
  ASSERT_GE(tn.size(), 5u);
  // Compare at ~1/3 of the normal run's track length.
  const std::size_t i = std::min(tn.size() / 3, tf.size() - 1);
  EXPECT_GE(tf[i].undelivered_ratio_s1 + 0.02, tn[i].undelivered_ratio_s1)
      << "fast should not drain S1 faster than normal";
  EXPECT_GE(tf[i].delivered_ratio_s2 + 0.02, tn[i].delivered_ratio_s2)
      << "fast should be ahead on S2 delivery";
}

}  // namespace
}  // namespace gs::exp
