// Priority model (eqs. 6-9) and Algorithm 1's greedy supplier selection.
#include <gtest/gtest.h>

#include <vector>

#include "core/priority.hpp"
#include "core/supplier_selection.hpp"

namespace gs::core {
namespace {

using stream::CandidateSegment;
using stream::ScheduleContext;
using stream::StreamEpoch;
using stream::SupplierView;

SupplierView supplier(net::NodeId node, double rate, std::size_t position,
                      double queue = 0.0) {
  SupplierView s;
  s.node = node;
  s.send_rate = rate;
  s.buffer_position = position;
  s.queue_delay = queue;
  return s;
}

ScheduleContext basic_ctx() {
  ScheduleContext ctx;
  ctx.period = 1.0;
  ctx.playback_rate = 10.0;
  ctx.inbound_rate = 15.0;
  ctx.id_play = 100;
  ctx.buffer_capacity = 600;
  ctx.max_requests = 15;
  return ctx;
}

TEST(Priority, MaxReceiveRate) {
  std::vector<SupplierView> suppliers{supplier(1, 10.0, 5), supplier(2, 25.0, 5),
                                      supplier(3, 15.0, 5)};
  EXPECT_DOUBLE_EQ(max_receive_rate(suppliers), 25.0);
  EXPECT_DOUBLE_EQ(max_receive_rate({}), 0.0);
}

TEST(Priority, UrgencyFormula) {
  // eq. 7: t_i = (id_i - id_play)/p - 1/R_i; urgency = 1/t_i.
  PriorityParams params;
  // id 120 vs play 100 at p=10: deadline in 2.0s minus 0.1s transfer = 1.9.
  EXPECT_NEAR(urgency(120, 100, 10.0, 10.0, params), 1.0 / 1.9, 1e-12);
}

TEST(Priority, UrgencyMonotoneInDistance) {
  PriorityParams params;
  double last = 1e18;
  for (stream::SegmentId id = 101; id < 200; id += 7) {
    const double u = urgency(id, 100, 10.0, 20.0, params);
    EXPECT_LT(u, last) << "closer deadlines must be more urgent";
    last = u;
  }
}

TEST(Priority, OverdueClampsToCap) {
  PriorityParams params;
  params.urgency_cap = 500.0;
  // Deadline already passed: id == id_play.
  EXPECT_DOUBLE_EQ(urgency(100, 100, 10.0, 10.0, params), 500.0);
  // Slow supplier pushes t_i negative.
  EXPECT_DOUBLE_EQ(urgency(101, 100, 10.0, 1.0, params), 500.0);
}

TEST(Priority, UnobtainableSegmentHasZeroUrgency) {
  PriorityParams params;
  EXPECT_DOUBLE_EQ(urgency(120, 100, 10.0, 0.0, params), 0.0);
}

TEST(Priority, RarityProductOfPositions) {
  // eq. 8: product over suppliers of p_ij / B.
  PriorityParams params;
  std::vector<SupplierView> suppliers{supplier(1, 10.0, 300), supplier(2, 10.0, 150)};
  EXPECT_NEAR(rarity(suppliers, 600, params), (300.0 / 600.0) * (150.0 / 600.0), 1e-12);
}

TEST(Priority, RarityOldSegmentsHigher) {
  // A segment deep in every supplier's buffer (about to be replaced) must
  // out-rank a freshly inserted one.
  PriorityParams params;
  std::vector<SupplierView> old_seg{supplier(1, 10.0, 590)};
  std::vector<SupplierView> fresh_seg{supplier(1, 10.0, 3)};
  EXPECT_GT(rarity(old_seg, 600, params), rarity(fresh_seg, 600, params));
}

TEST(Priority, TraditionalRarityAblation) {
  PriorityParams params;
  params.traditional_rarity = true;
  std::vector<SupplierView> two{supplier(1, 10.0, 10), supplier(2, 10.0, 10)};
  std::vector<SupplierView> four{supplier(1, 10.0, 10), supplier(2, 10.0, 10),
                                 supplier(3, 10.0, 10), supplier(4, 10.0, 10)};
  EXPECT_DOUBLE_EQ(rarity(two, 600, params), 0.5);
  EXPECT_DOUBLE_EQ(rarity(four, 600, params), 0.25);
}

TEST(Priority, CombinedIsMaxOfUrgencyAndRarity) {
  // eq. 9.
  PriorityParams params;
  ScheduleContext ctx = basic_ctx();
  CandidateSegment near_deadline;
  near_deadline.id = 101;
  near_deadline.suppliers = {supplier(1, 10.0, 3)};
  CandidateSegment far_but_rare;
  far_but_rare.id = 500;
  far_but_rare.suppliers = {supplier(1, 10.0, 580)};
  const double p_near = segment_priority(near_deadline, ctx, params);
  const double p_far = segment_priority(far_but_rare, ctx, params);
  // Near-deadline beats on urgency; far one is carried by rarity.
  EXPECT_GT(p_near, p_far);
  EXPECT_GT(p_far, 0.5) << "rarity (580/600) dominates its tiny urgency";
}

TEST(Priority, ClassesQuantizeByPowersOfTwo) {
  EXPECT_EQ(priority_class(1.0), 0);
  EXPECT_EQ(priority_class(1.5), 0);
  EXPECT_EQ(priority_class(2.0), 1);
  EXPECT_EQ(priority_class(0.5), -1);
  EXPECT_EQ(priority_class(0.49), -2);
  EXPECT_LT(priority_class(0.0), -1000000);
  // Monotone.
  EXPECT_LE(priority_class(0.3), priority_class(0.31));
}

// ------------------------------------------------- Algorithm 1 greedy ----

TEST(GreedyAssign, PicksEarliestSupplier) {
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(1);
  candidates[0].id = 101;
  candidates[0].suppliers = {supplier(1, 10.0, 5), supplier(2, 20.0, 5)};
  const auto assignments = greedy_assign(ctx, candidates, {1.0});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].supplier, 2u) << "1/20 < 1/10";
  EXPECT_NEAR(assignments[0].expected_time, 0.05, 1e-12);
}

TEST(GreedyAssign, QueueAccumulatesPerSupplier) {
  // Two segments, single supplier at R=2: first at 0.5, second at 1.0
  // which is NOT < period -> dropped (paper line 13: t < tau).
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(2);
  candidates[0].id = 101;
  candidates[0].suppliers = {supplier(1, 2.0, 5)};
  candidates[1].id = 102;
  candidates[1].suppliers = {supplier(1, 2.0, 5)};
  const auto assignments = greedy_assign(ctx, candidates, {2.0, 1.0});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].id, 101);
}

TEST(GreedyAssign, SpillsToSecondSupplier) {
  // With the fast supplier backlogged by the first assignment, the second
  // segment should go to the other supplier if that is earlier.
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(2);
  candidates[0].id = 101;
  candidates[0].suppliers = {supplier(1, 4.0, 5), supplier(2, 3.0, 5)};
  candidates[1].id = 102;
  candidates[1].suppliers = {supplier(1, 4.0, 5), supplier(2, 3.0, 5)};
  const auto assignments = greedy_assign(ctx, candidates, {2.0, 1.0});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].supplier, 1u);  // 0.25 < 0.333
  EXPECT_EQ(assignments[1].supplier, 2u);  // 0.333 < 0.25 + 0.25
}

TEST(GreedyAssign, InitialQueueDelayRespected) {
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(1);
  candidates[0].id = 101;
  candidates[0].suppliers = {supplier(1, 100.0, 5, /*queue=*/0.99),
                             supplier(2, 2.0, 5, /*queue=*/0.0)};
  const auto assignments = greedy_assign(ctx, candidates, {1.0});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].supplier, 2u) << "0.5 beats 0.99 + 0.01";
}

TEST(GreedyAssign, SkipsSegmentsWithNoFeasibleSupplier) {
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(2);
  candidates[0].id = 101;
  candidates[0].suppliers = {supplier(1, 0.5, 5)};  // transfer 2.0 > period
  candidates[1].id = 102;
  candidates[1].suppliers = {supplier(2, 10.0, 5)};
  const auto assignments = greedy_assign(ctx, candidates, {2.0, 1.0});
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].id, 102);
}

TEST(GreedyAssign, EpochCarriedThrough) {
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(2);
  candidates[0].id = 101;
  candidates[0].epoch = StreamEpoch::kOld;
  candidates[0].suppliers = {supplier(1, 10.0, 5)};
  candidates[1].id = 500;
  candidates[1].epoch = StreamEpoch::kNew;
  candidates[1].suppliers = {supplier(2, 10.0, 5)};
  const auto assignments = greedy_assign(ctx, candidates, {2.0, 1.0});
  ASSERT_EQ(assignments.size(), 2u);
  EXPECT_EQ(assignments[0].epoch, StreamEpoch::kOld);
  EXPECT_EQ(assignments[1].epoch, StreamEpoch::kNew);
}

TEST(GreedyAssign, CapacityPropertyUnderLoad) {
  // Property: per-supplier assigned transfer time never exceeds the period.
  ScheduleContext ctx = basic_ctx();
  std::vector<CandidateSegment> candidates(100);
  std::vector<double> priorities(100);
  for (int i = 0; i < 100; ++i) {
    candidates[static_cast<std::size_t>(i)].id = 101 + i;
    candidates[static_cast<std::size_t>(i)].suppliers = {supplier(1, 7.0, 5),
                                                         supplier(2, 5.0, 5)};
    priorities[static_cast<std::size_t>(i)] = 100.0 - i;
  }
  const auto assignments = greedy_assign(ctx, candidates, priorities);
  double load1 = 0.0;
  double load2 = 0.0;
  for (const auto& a : assignments) {
    (a.supplier == 1 ? load1 : load2) += a.supplier == 1 ? 1.0 / 7.0 : 1.0 / 5.0;
    EXPECT_LT(a.expected_time, ctx.period);
  }
  EXPECT_LE(load1, 1.0 + 1e-9);
  EXPECT_LE(load2, 1.0 + 1e-9);
  // Full utilisation: 7 + 5 = 12 segments fit in one period.
  EXPECT_EQ(assignments.size(), 11u);  // strict '<' boundary drops the 12th
}

}  // namespace
}  // namespace gs::core
