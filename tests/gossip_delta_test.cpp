// BufferMapDelta: the incremental availability exchange.  Covers the
// encode/decode round-trip, diff/apply semantics under base shifts in both
// directions, the run-splitting caps, and a property test driving a
// StreamBuffer through random mark/evict/base-shift sequences and checking
// that the delta-reconstructed view always equals the full map.
#include <gtest/gtest.h>

#include "gossip/buffer_map.hpp"
#include "gossip/buffer_map_delta.hpp"
#include "gossip/message.hpp"
#include "stream/stream_buffer.hpp"
#include "util/rng.hpp"

namespace gs::gossip {
namespace {

BufferMap make_map(SegmentId base, std::size_t window, std::initializer_list<SegmentId> ids) {
  BufferMap map(base, window);
  for (const SegmentId id : ids) map.mark(id);
  return map;
}

TEST(BufferMapDelta, EmptyDiffHasNoRuns) {
  const BufferMap map = make_map(100, 64, {100, 101, 140});
  const BufferMapDelta delta = BufferMapDelta::diff(map, map);
  EXPECT_TRUE(delta.runs().empty());
  EXPECT_EQ(delta.base(), map.base());
  EXPECT_EQ(delta.wire_bits(), BufferMapDelta::kHeaderBits);
  EXPECT_EQ(delta.apply(map), map);
}

TEST(BufferMapDelta, TogglesAreRunCompressed) {
  const BufferMap from = make_map(0, 64, {0, 1, 2});
  // One contiguous gained run [10, 13] and one lost run [1, 2].
  const BufferMap to = make_map(0, 64, {0, 10, 11, 12, 13});
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  ASSERT_EQ(delta.runs().size(), 2u);
  EXPECT_EQ(delta.runs()[0].offset, 1u);
  EXPECT_EQ(delta.runs()[0].length, 2u);
  EXPECT_EQ(delta.runs()[1].offset, 10u);
  EXPECT_EQ(delta.runs()[1].length, 4u);
  EXPECT_EQ(delta.toggled_count(), 6u);
  EXPECT_EQ(delta.apply(from), to);
}

TEST(BufferMapDelta, ForwardBaseShiftDropsEvictionsForFree) {
  // FIFO steady state: window slides forward, the old tail falls out.
  const BufferMap from = make_map(100, 32, {100, 101, 130, 131});
  const BufferMap to = make_map(110, 32, {130, 131, 140, 141});
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  EXPECT_EQ(delta.base(), 110);
  // 100/101 dropped by the shift alone; only the gains 140/141 need a run.
  ASSERT_EQ(delta.runs().size(), 1u);
  EXPECT_EQ(delta.runs()[0].offset, 30u);
  EXPECT_EQ(delta.runs()[0].length, 2u);
  EXPECT_EQ(delta.apply(from), to);
}

TEST(BufferMapDelta, BackwardBaseShiftReconstructs) {
  // Rare evicted-max case: the newest id leaves and the window slides back.
  const BufferMap from = make_map(50, 16, {50, 64, 65});
  const BufferMap to = make_map(45, 16, {50, 55});
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  EXPECT_EQ(delta.apply(from), to);
}

TEST(BufferMapDelta, LongRunsSplitAtWireCap) {
  const std::size_t window = 600;
  BufferMap from(0, window);
  BufferMap to(0, window);
  for (SegmentId id = 0; id < 200; ++id) to.mark(id);
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  for (const auto& run : delta.runs()) {
    EXPECT_GE(run.length, 1u);
    EXPECT_LE(run.length, BufferMapDelta::kMaxRunLength);
  }
  EXPECT_EQ(delta.toggled_count(), 200u);
  EXPECT_EQ(delta.apply(from), to);
  EXPECT_TRUE(delta.encodable());
}

TEST(BufferMapDelta, EncodeDecodeRoundTrip) {
  const BufferMap from = make_map(123456, 600, {123456, 123500, 123501});
  const BufferMap to = make_map(123466, 600, {123500, 123501, 124000, 124060});
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  const std::vector<std::uint8_t> bytes = delta.encode();
  EXPECT_EQ(bytes.size(), 4u + 2u * delta.runs().size());
  const BufferMapDelta decoded = BufferMapDelta::decode(bytes, 600, 123400);
  EXPECT_EQ(decoded, delta);
  EXPECT_EQ(decoded.apply(from), to);
}

TEST(BufferMapDelta, WireBitsMatchTheAccountingModel) {
  const WireFormat wire = paper_wire_format();
  const BufferMap from = make_map(0, 600, {});
  const BufferMap to = make_map(0, 600, {3, 4, 5, 90});
  const BufferMapDelta delta = BufferMapDelta::diff(from, to);
  ASSERT_EQ(delta.runs().size(), 2u);
  EXPECT_EQ(delta.wire_bits(), wire.buffer_map_delta_bits(2));
  EXPECT_LT(delta.wire_bits(), wire.buffer_map_bits());
}

// The property the engine's delta accounting stands on: however the buffer
// evolves between adverts — in-order streaming, random old-hole fills, the
// FIFO evictions they trigger, head jumps that shift the window either way —
// diff/apply reconstructs the next full map exactly, and the delta always
// round-trips the wire.
TEST(BufferMapDelta, PropertyRandomBufferEvolutionReconstructs) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t window = 64 + static_cast<std::size_t>(rng.uniform_int(0, 192));
    stream::StreamBuffer buffer(window / 2);  // capacity < window forces evictions
    SegmentId head = static_cast<SegmentId>(rng.uniform_int(0, 5000));
    BufferMap advertised = buffer.build_map(window);
    for (int step = 0; step < 40; ++step) {
      // A burst of inserts: mostly advancing the head, sometimes filling
      // random holes behind it (which is what makes runs fragment).
      const int inserts = static_cast<int>(rng.uniform_int(1, 25));
      for (int i = 0; i < inserts; ++i) {
        if (rng.bernoulli(0.7)) {
          buffer.insert(head++);
        } else {
          const SegmentId lo = std::max<SegmentId>(0, head - static_cast<SegmentId>(window));
          buffer.insert(lo + rng.uniform_int(0, std::max<std::int64_t>(1, head - lo)));
        }
      }
      const BufferMap current = buffer.build_map(window);
      const BufferMapDelta delta = BufferMapDelta::diff(advertised, current);
      ASSERT_EQ(delta.apply(advertised), current)
          << "trial " << trial << " step " << step << " head " << head;
      if (delta.encodable()) {
        const BufferMapDelta decoded =
            BufferMapDelta::decode(delta.encode(), window, advertised.base());
        ASSERT_EQ(decoded, delta);
      }
      advertised = current;
    }
  }
}

}  // namespace
}  // namespace gs::gossip
