// StreamBuffer FIFO semantics, positions (p_ij), availability maps;
// Playback engine timing, stalls and gates; RateBudget; BandwidthSampler.
#include <gtest/gtest.h>

#include <vector>

#include "stream/bandwidth.hpp"
#include "stream/playback.hpp"
#include "stream/stream_buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace gs::stream {
namespace {

TEST(StreamBuffer, InsertContainsEvict) {
  StreamBuffer buffer(3);
  EXPECT_EQ(buffer.insert(10), kNoSegment);
  EXPECT_EQ(buffer.insert(11), kNoSegment);
  EXPECT_EQ(buffer.insert(12), kNoSegment);
  EXPECT_EQ(buffer.size(), 3u);
  // Fourth insert evicts the FIFO-oldest (10).
  EXPECT_EQ(buffer.insert(13), 10);
  EXPECT_FALSE(buffer.contains(10));
  EXPECT_TRUE(buffer.contains(13));
  EXPECT_EQ(buffer.eviction_count(), 1u);
}

TEST(StreamBuffer, DuplicateInsertIgnored) {
  StreamBuffer buffer(3);
  buffer.insert(5);
  EXPECT_EQ(buffer.insert(5), kNoSegment);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(StreamBuffer, FifoIsInsertionOrderNotIdOrder) {
  StreamBuffer buffer(2);
  buffer.insert(20);
  buffer.insert(10);  // out of id order
  EXPECT_EQ(buffer.insert(30), 20) << "oldest *inserted* evicted";
  EXPECT_TRUE(buffer.contains(10));
}

TEST(StreamBuffer, PositionFromTail) {
  // Paper Table 2: position is distance from the buffer tail; the paper's
  // rarity (eq. 8) uses position/B as replacement probability, so the
  // newest segment must have the smallest position.
  StreamBuffer buffer(10);
  buffer.insert(1);
  buffer.insert(2);
  buffer.insert(3);
  EXPECT_EQ(buffer.position_from_tail(3), 1u);
  EXPECT_EQ(buffer.position_from_tail(2), 2u);
  EXPECT_EQ(buffer.position_from_tail(1), 3u);
  EXPECT_EQ(buffer.position_from_tail(99), 0u) << "absent segment";
}

TEST(StreamBuffer, PositionSurvivesEviction) {
  StreamBuffer buffer(3);
  buffer.insert(1);
  buffer.insert(2);
  buffer.insert(3);
  buffer.insert(4);  // evicts 1
  EXPECT_EQ(buffer.position_from_tail(1), 0u);
  EXPECT_EQ(buffer.position_from_tail(2), 3u);
  EXPECT_EQ(buffer.position_from_tail(4), 1u);
}

TEST(StreamBuffer, OldestPositionNeverExceedsCapacity) {
  StreamBuffer buffer(50);
  for (SegmentId id = 0; id < 500; ++id) {
    buffer.insert(id);
    const SegmentId oldest = buffer.oldest();
    EXPECT_LE(buffer.position_from_tail(oldest), 50u);
  }
}

TEST(StreamBuffer, MaxIdTracking) {
  StreamBuffer buffer(3);
  EXPECT_EQ(buffer.max_id(), kNoSegment);
  buffer.insert(7);
  buffer.insert(3);
  EXPECT_EQ(buffer.max_id(), 7);
  buffer.insert(9);
  EXPECT_EQ(buffer.max_id(), 9);
  // Evicting the max triggers a rescan.
  StreamBuffer small(2);
  small.insert(10);
  small.insert(4);
  small.insert(5);  // evicts 10, the max
  EXPECT_EQ(small.max_id(), 5);
}

TEST(StreamBuffer, PresenceBitsetTracksContents) {
  StreamBuffer buffer(2);
  buffer.insert(0);
  buffer.insert(1);
  buffer.insert(2);  // evicts 0
  const auto& presence = buffer.presence();
  EXPECT_FALSE(presence.test(0));
  EXPECT_TRUE(presence.test(1));
  EXPECT_TRUE(presence.test(2));
}

TEST(StreamBuffer, BuildMapWindowEndsAtNewest) {
  StreamBuffer buffer(600);
  for (SegmentId id = 0; id < 700; ++id) buffer.insert(id);
  const auto map = buffer.build_map(600);
  EXPECT_EQ(map.base(), 100);
  EXPECT_TRUE(map.available(100));
  EXPECT_TRUE(map.available(699));
  EXPECT_FALSE(map.available(99));
  EXPECT_EQ(map.available_count(), 600u);
}

TEST(StreamBuffer, BuildMapEmptyBuffer) {
  StreamBuffer buffer(10);
  const auto map = buffer.build_map(600);
  EXPECT_EQ(map.available_count(), 0u);
}

TEST(StreamBuffer, FlatModeMatchesLegacyOnRandomWorkload) {
  // The flat ring must be observationally identical to the deque+map
  // implementation: same victims, same max, same positions, same map.
  util::Rng rng(321);
  StreamBuffer legacy(32, false);
  StreamBuffer flat(32, true);
  SegmentId next = 0;
  for (int step = 0; step < 5000; ++step) {
    // Mostly fresh ids with occasional duplicates and out-of-order inserts.
    SegmentId id;
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 7) {
      id = next++;
    } else {
      id = rng.uniform_int(0, next > 0 ? next - 1 : 0);
    }
    EXPECT_EQ(legacy.insert(id), flat.insert(id)) << "step " << step;
    ASSERT_EQ(legacy.size(), flat.size());
    EXPECT_EQ(legacy.max_id(), flat.max_id());
    EXPECT_EQ(legacy.oldest(), flat.oldest());
    const SegmentId probe = rng.uniform_int(0, next > 0 ? next - 1 : 0);
    EXPECT_EQ(legacy.contains(probe), flat.contains(probe)) << "step " << step;
    EXPECT_EQ(legacy.position_from_tail(probe), flat.position_from_tail(probe));
  }
  const auto legacy_map = legacy.build_map(64);
  const auto flat_map = flat.build_map(64);
  EXPECT_EQ(legacy_map.base(), flat_map.base());
  EXPECT_EQ(legacy_map.available_count(), flat_map.available_count());
}

// ---------------------------------------------------------------- playback

TEST(Playback, StartAndAdvance) {
  Playback pb(10.0);
  EXPECT_FALSE(pb.started());
  pb.start(0, 0.0);
  EXPECT_TRUE(pb.started());
  std::vector<std::pair<SegmentId, double>> plays;
  const auto has = [](SegmentId) { return true; };
  const auto on_play = [&](SegmentId id, double t) { plays.emplace_back(id, t); };
  pb.advance(0.35, has, on_play);
  // Due times 0.0, 0.1, 0.2, 0.3 have elapsed.
  ASSERT_EQ(plays.size(), 4u);
  EXPECT_EQ(plays[0].first, 0);
  EXPECT_DOUBLE_EQ(plays[3].second, 0.3);
  EXPECT_EQ(pb.cursor(), 4);
}

TEST(Playback, ExactTimestampsAcrossLazyCalls) {
  // Calling advance late must still assign each segment its theoretical
  // due time (event-free exactness).
  Playback pb(10.0);
  pb.start(0, 0.0);
  std::vector<double> times;
  pb.advance(1.05, [](SegmentId) { return true; },
             [&](SegmentId, double t) { times.push_back(t); });
  ASSERT_EQ(times.size(), 11u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], 0.1 * static_cast<double>(i), 1e-9);
  }
}

TEST(Playback, StallResumesAtArrival) {
  Playback pb(10.0);
  pb.start(0, 0.0);
  std::vector<std::pair<SegmentId, double>> plays;
  bool have1 = false;
  const auto has = [&](SegmentId id) { return id == 0 || (id == 1 && have1) || id > 1; };
  const auto on_play = [&](SegmentId id, double t) { plays.emplace_back(id, t); };
  pb.advance(0.5, has, on_play);  // plays 0 at 0.0, stalls on 1 (due 0.1)
  ASSERT_EQ(plays.size(), 1u);
  // Segment 1 arrives at t = 0.7: stall of 0.6 s.
  have1 = true;
  pb.notify_arrival(1, 0.7);
  pb.advance(0.7, has, on_play);
  ASSERT_EQ(plays.size(), 2u);
  EXPECT_DOUBLE_EQ(plays[1].second, 0.7) << "resumed at arrival, not retroactively";
  EXPECT_NEAR(pb.stall_time(), 0.6, 1e-9);
  // Subsequent segments continue from the resumed schedule.
  pb.advance(0.85, has, on_play);
  ASSERT_EQ(plays.size(), 3u);
  EXPECT_DOUBLE_EQ(plays[2].second, 0.8);
}

TEST(Playback, StallDetectedLazily) {
  // Even if advance() was never called while the segment was missing, an
  // arrival after the due time counts the stall.
  Playback pb(10.0);
  pb.start(0, 0.0);
  pb.notify_arrival(0, 0.5);  // first segment arrives late
  std::vector<double> times;
  pb.advance(0.5, [](SegmentId) { return true; },
             [&](SegmentId, double t) { times.push_back(t); });
  ASSERT_GE(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 0.5);
  EXPECT_NEAR(pb.stall_time(), 0.5, 1e-9);
}

TEST(Playback, GateBlocksUntilReleased) {
  Playback pb(10.0);
  pb.start(0, 0.0);
  pb.set_gate(5);
  std::vector<SegmentId> played;
  const auto has = [](SegmentId) { return true; };
  const auto on_play = [&](SegmentId id, double) { played.push_back(id); };
  pb.advance(2.0, has, on_play);
  ASSERT_EQ(played.size(), 5u) << "segments 0..4 play; 5 is gated";
  EXPECT_EQ(pb.cursor(), 5);
  pb.release_gate(2.0);
  pb.advance(2.0, has, on_play);
  ASSERT_EQ(played.size(), 6u);
  EXPECT_EQ(played.back(), 5);
}

TEST(Playback, GateReleaseSetsDueToNow) {
  Playback pb(10.0);
  pb.start(0, 0.0);
  pb.set_gate(2);
  const auto has = [](SegmentId) { return true; };
  std::vector<double> times;
  const auto on_play = [&](SegmentId, double t) { times.push_back(t); };
  pb.advance(5.0, has, on_play);  // plays 0,1; gate at 2
  pb.release_gate(5.0);
  pb.advance(5.0, has, on_play);
  ASSERT_EQ(times.size(), 3u);
  EXPECT_DOUBLE_EQ(times[2], 5.0) << "gated segment plays at release time";
}

TEST(Playback, PlayedCountAccumulates) {
  Playback pb(10.0);
  pb.start(0, 0.0);
  pb.advance(0.95, [](SegmentId) { return true; }, [](SegmentId, double) {});
  EXPECT_EQ(pb.played_count(), 10u);
}

TEST(Playback, FlatArrivalRingMatchesMapMode) {
  // Arrival-driven stall accounting must not depend on the bookkeeping
  // structure: drive both modes through identical late-arrival schedules.
  util::Rng rng(654);
  Playback map_mode(10.0, false);
  Playback flat_mode(10.0, true);
  map_mode.start(0, 0.0);
  flat_mode.start(0, 0.0);
  std::vector<bool> have(400, false);
  const auto has = [&](SegmentId id) {
    return id >= 0 && static_cast<std::size_t>(id) < have.size() &&
           have[static_cast<std::size_t>(id)];
  };
  double now = 0.0;
  SegmentId next_arrival = 0;
  for (int step = 0; step < 300; ++step) {
    now += 0.01 * static_cast<double>(rng.uniform_int(1, 20));
    // Deliver a random burst, sometimes leaving gaps that stall playback.
    const auto burst = rng.uniform_int(0, 2);
    for (SegmentId k = 0; k < burst && next_arrival < 400; ++k) {
      have[static_cast<std::size_t>(next_arrival)] = true;
      map_mode.notify_arrival(next_arrival, now);
      flat_mode.notify_arrival(next_arrival, now);
      ++next_arrival;
    }
    std::vector<std::pair<SegmentId, double>> map_plays;
    std::vector<std::pair<SegmentId, double>> flat_plays;
    map_mode.advance(now, has, [&](SegmentId id, double t) { map_plays.emplace_back(id, t); });
    flat_mode.advance(now, has, [&](SegmentId id, double t) { flat_plays.emplace_back(id, t); });
    ASSERT_EQ(map_plays, flat_plays) << "step " << step;
    EXPECT_EQ(map_mode.cursor(), flat_mode.cursor());
    EXPECT_DOUBLE_EQ(map_mode.stall_time(), flat_mode.stall_time());
  }
  EXPECT_EQ(map_mode.played_count(), flat_mode.played_count());
  EXPECT_GT(map_mode.stall_time(), 0.0) << "workload should have exercised stalls";
}

// ---------------------------------------------------------------- budgets

TEST(RateBudget, ReplenishAndSpend) {
  RateBudget budget(10.0, 1.0);
  EXPECT_EQ(budget.whole(), 0u);
  budget.replenish(1.0);
  EXPECT_EQ(budget.whole(), 10u);
  budget.spend(3.0);
  EXPECT_EQ(budget.whole(), 7u);
}

TEST(RateBudget, CarryCap) {
  RateBudget budget(10.0, 1.0);
  budget.replenish(1.0);
  budget.replenish(1.0);  // no banking beyond one period
  EXPECT_EQ(budget.whole(), 10u);
  RateBudget banked(10.0, 2.0);
  banked.replenish(1.0);
  banked.replenish(1.0);
  EXPECT_EQ(banked.whole(), 20u);
}

TEST(RateBudget, FractionalRateAccumulates) {
  RateBudget budget(0.5, 4.0);
  budget.replenish(1.0);
  EXPECT_EQ(budget.whole(), 0u);
  budget.replenish(1.0);
  EXPECT_EQ(budget.whole(), 1u);
}

TEST(BandwidthSampler, PaperInboundStatistics) {
  // I in [10, 33.3] with mean 15 (300Kbps..1Mbps, average 450Kbps).
  const BandwidthSampler sampler = BandwidthSampler::paper_inbound();
  util::Rng rng(5);
  util::RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = sampler.sample(rng);
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, sampler.max());
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 15.0, 0.15);
}

TEST(BandwidthSampler, ArbitraryMeanHit) {
  const BandwidthSampler sampler(2.0, 10.0, 7.0);
  util::Rng rng(6);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(sampler.sample(rng));
  EXPECT_NEAR(stats.mean(), 7.0, 0.1);
}

}  // namespace
}  // namespace gs::stream
