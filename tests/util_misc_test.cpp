// CSV writer, flags parser, thread pool, logging helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/csv.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace gs::util {
namespace {

std::string temp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, WritesRows) {
  const std::string path = temp_path("test.csv");
  {
    CsvWriter csv(path);
    csv.write_row({"a", "b,c"});
    csv.write_row({"1", "2"});
    csv.flush();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,c\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(Flags, DefaultsAndOverrides) {
  Flags flags;
  flags.define_int("count", 5, "a count");
  flags.define("name", "bob", "a name");
  flags.define_bool("verbose", false, "verbosity");
  flags.define_double("rate", 1.5, "a rate");

  const char* argv[] = {"prog", "--count=7", "--verbose", "--rate", "2.5"};
  ASSERT_TRUE(flags.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.get_int("count"), 7);
  EXPECT_EQ(flags.get("name"), "bob");
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_DOUBLE_EQ(flags.get_double("rate"), 2.5);
}

TEST(Flags, UnknownFlagThrows) {
  Flags flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_THROW((void)flags.parse(2, const_cast<char**>(argv)), std::runtime_error);
}

TEST(Flags, BadIntThrows) {
  Flags flags;
  flags.define_int("n", 1, "");
  const char* argv[] = {"prog", "--n=abc"};
  ASSERT_TRUE(flags.parse(2, const_cast<char**>(argv)));
  EXPECT_THROW((void)flags.get_int("n"), std::runtime_error);
}

TEST(Flags, MissingValueForTrailingFlagThrowsNamingTheFlag) {
  // A value-taking flag at the end of argv must fail loudly (naming the
  // offending flag), never fall through with the default silently.
  Flags flags;
  flags.define_int("count", 5, "a count");
  const char* argv[] = {"prog", "--count"};
  try {
    (void)flags.parse(2, const_cast<char**>(argv));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("--count"), std::string::npos)
        << "the error must name the flag: " << error.what();
  }
}

TEST(Flags, ExplicitBoolValueForms) {
  // Bare `--flag` means true; `--flag=false` (and friends) must turn a
  // defaulted-true flag off.
  Flags flags;
  flags.define_bool("on-by-default", true, "");
  flags.define_bool("off-by-default", false, "");
  const char* argv[] = {"prog", "--on-by-default=false", "--off-by-default"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.get_bool("on-by-default"));
  EXPECT_TRUE(flags.get_bool("off-by-default"));
}

TEST(Flags, BareBoolDoesNotConsumeTheNextToken) {
  // `--verbose false` keeps "false" as a positional: booleans only take a
  // value through the `=` form, so a trailing bare bool is always legal.
  Flags flags;
  flags.define_bool("verbose", false, "");
  const char* argv[] = {"prog", "--verbose", "false"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.get_bool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "false");

  Flags trailing;
  trailing.define_bool("verbose", false, "");
  const char* argv2[] = {"prog", "--verbose"};
  ASSERT_TRUE(trailing.parse(2, const_cast<char**>(argv2)));
  EXPECT_TRUE(trailing.get_bool("verbose"));
}

TEST(Flags, Positional) {
  Flags flags;
  const char* argv[] = {"prog", "file1", "file2"};
  ASSERT_TRUE(flags.parse(3, const_cast<char**>(argv)));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file1");
}

TEST(Flags, UsageListsFlags) {
  Flags flags;
  flags.define_int("alpha", 1, "the alpha");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--alpha"), std::string::npos);
  EXPECT_NE(usage.find("the alpha"), std::string::npos);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIterations) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](std::size_t i) {
                                   if (i == 13) throw std::runtime_error("unlucky");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i % 7)); });
  int expected = 0;
  for (int i = 0; i < 1000; ++i) expected += i % 7;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, RunBatchCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  pool.run_batch(200, 4, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunBatchSingleLaneRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.run_batch(16, 1, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, RunBatchZeroIterations) {
  ThreadPool pool(2);
  pool.run_batch(0, 4, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, RunBatchPropagatesFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_batch(50, 4,
                              [](std::size_t i) {
                                if (i == 13) throw std::runtime_error("unlucky");
                              }),
               std::runtime_error);
}

TEST(ThreadPool, RunBatchInsideSaturatedPoolCannotDeadlock) {
  // Every worker is busy inside a parallel_for iteration that itself calls
  // run_batch — the sharded engine under an experiment sweep.  The caller
  // lane must drain each batch even though no worker is ever free.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.run_batch(32, 4, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 4 * 32);
}

TEST(ThreadPool, RunBatchMoreLanesThanWork) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(3);
  pool.run_batch(3, 16, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Logging, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("garbage"), LogLevel::kInfo);
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  GS_LOG_DEBUG << "should be suppressed";
  set_log_level(before);
}

}  // namespace
}  // namespace gs::util
