// DynamicBitset: set/test/count, scans, serialization, resize preservation.
#include <gtest/gtest.h>

#include <algorithm>

#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace gs::util {
namespace {

TEST(DynamicBitset, StartsClear) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetAndReset) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, ResetAll) {
  DynamicBitset b(130);
  for (std::size_t i = 0; i < 130; i += 3) b.set(i);
  b.reset_all();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitset, ResizePreservesContents) {
  DynamicBitset b(10);
  b.set(3);
  b.set(9);
  b.resize(200);
  EXPECT_TRUE(b.test(3));
  EXPECT_TRUE(b.test(9));
  EXPECT_FALSE(b.test(100));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynamicBitset, ResizeShrinkTrimsTail) {
  DynamicBitset b(100);
  b.set(50);
  b.set(99);
  b.resize(60);
  EXPECT_TRUE(b.test(50));
  EXPECT_EQ(b.count(), 1u);
  // Growing back must not resurrect the trimmed bit.
  b.resize(100);
  EXPECT_FALSE(b.test(99));
}

TEST(DynamicBitset, FindFirst) {
  DynamicBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(130);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_first(6), 130u);
  EXPECT_EQ(b.find_first(131), 200u);
  EXPECT_EQ(b.find_first(5), 5u);
}

TEST(DynamicBitset, FindFirstClear) {
  DynamicBitset b(130);
  for (std::size_t i = 0; i < 130; ++i) b.set(i);
  EXPECT_EQ(b.find_first_clear(), 130u);
  b.reset(64);
  EXPECT_EQ(b.find_first_clear(), 64u);
  EXPECT_EQ(b.find_first_clear(65), 130u);
  b.reset(0);
  EXPECT_EQ(b.find_first_clear(), 0u);
  EXPECT_EQ(b.find_first_clear(1), 64u);
}

TEST(DynamicBitset, FindFirstClearBeyondSize) {
  DynamicBitset b(10);
  EXPECT_EQ(b.find_first_clear(10), 10u);
  EXPECT_EQ(b.find_first_clear(100), 10u);
}

TEST(DynamicBitset, AndOr) {
  DynamicBitset a(80);
  DynamicBitset b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(2);
  DynamicBitset a_and = a;
  a_and &= b;
  EXPECT_EQ(a_and.count(), 1u);
  EXPECT_TRUE(a_and.test(70));
  DynamicBitset a_or = a;
  a_or |= b;
  EXPECT_EQ(a_or.count(), 3u);
}

TEST(DynamicBitset, Equality) {
  DynamicBitset a(64);
  DynamicBitset b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(DynamicBitset, BytesRoundTrip) {
  Rng rng(123);
  for (const std::size_t bits : {1u, 7u, 8u, 63u, 64u, 65u, 600u, 1000u}) {
    DynamicBitset b(bits);
    for (std::size_t i = 0; i < bits; ++i) {
      if (rng.bernoulli(0.5)) b.set(i);
    }
    const auto bytes = b.to_bytes();
    EXPECT_EQ(bytes.size(), (bits + 7) / 8);
    const DynamicBitset back = DynamicBitset::from_bytes(bytes, bits);
    EXPECT_EQ(back, b) << "bits=" << bits;
  }
}

TEST(DynamicBitset, FirstSetAndClearIntersects) {
  // The candidate-loop kernel: first position set in `a`, clear in `b`.
  DynamicBitset a(200);
  DynamicBitset b(130);  // deliberately shorter: positions past b read clear
  a.set(3);
  a.set(64);
  a.set(129);
  a.set(150);
  b.set(3);
  b.set(129);
  EXPECT_EQ(DynamicBitset::first_set_and_clear(a, b, 0), 64u);
  EXPECT_EQ(DynamicBitset::first_set_and_clear(a, b, 65), 150u);
  EXPECT_EQ(DynamicBitset::first_set_and_clear(a, b, 151), 200u);
  EXPECT_EQ(DynamicBitset::first_set_and_clear(a, b, 500), 200u);
  b.reset(3);
  EXPECT_EQ(DynamicBitset::first_set_and_clear(a, b, 0), 3u);
}

TEST(DynamicBitset, FirstSetAndClearMatchesNaiveScan) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t a_bits = 1 + static_cast<std::size_t>(rng.uniform_int(0, 300));
    const std::size_t b_bits = 1 + static_cast<std::size_t>(rng.uniform_int(0, 300));
    DynamicBitset a(a_bits);
    DynamicBitset b(b_bits);
    for (std::size_t i = 0; i < a_bits; ++i) {
      if (rng.bernoulli(0.4)) a.set(i);
    }
    for (std::size_t i = 0; i < b_bits; ++i) {
      if (rng.bernoulli(0.6)) b.set(i);
    }
    for (std::size_t from = 0; from <= a_bits; ++from) {
      std::size_t expected = a_bits;
      for (std::size_t pos = from; pos < a_bits; ++pos) {
        if (a.test(pos) && !(pos < b_bits && b.test(pos))) {
          expected = pos;
          break;
        }
      }
      ASSERT_EQ(DynamicBitset::first_set_and_clear(a, b, from), expected)
          << "trial " << trial << " from " << from;
    }
  }
}

TEST(DynamicBitset, FirstSetAndClearOffsetMatchesRebasedScan) {
  // The windowed-availability walk: `a` is window-keyed (bit j = absolute
  // offset + j), `b` absolute.  Randomized against a naive rebased scan.
  util::Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t offset = 64 * static_cast<std::size_t>(rng.uniform_int(0, 5));
    const std::size_t a_bits = 1 + static_cast<std::size_t>(rng.uniform_int(0, 200));
    const std::size_t b_bits = 1 + static_cast<std::size_t>(rng.uniform_int(0, 500));
    DynamicBitset a(a_bits);
    DynamicBitset b(b_bits);
    for (std::size_t i = 0; i < a_bits; ++i) {
      if (rng.bernoulli(0.3)) a.set(i);
    }
    for (std::size_t i = 0; i < b_bits; ++i) {
      if (rng.bernoulli(0.5)) b.set(i);
    }
    for (std::size_t from = 0; from < offset + a_bits + 3; ++from) {
      std::size_t expected = offset + a_bits;
      for (std::size_t pos = std::max(from, offset); pos < offset + a_bits; ++pos) {
        const std::size_t slot = pos - offset;
        if (a.test(slot) && !(pos < b_bits && b.test(pos))) {
          expected = pos;
          break;
        }
      }
      ASSERT_EQ(DynamicBitset::first_set_and_clear_offset(a, offset, b, from), expected)
          << "trial " << trial << " offset " << offset << " from " << from;
    }
  }
}

TEST(DynamicBitset, FirstSetAndClearOffsetZeroEqualsUnoffsetted) {
  DynamicBitset a(130);
  DynamicBitset b(130);
  a.set(5);
  a.set(80);
  b.set(5);
  EXPECT_EQ(DynamicBitset::first_set_and_clear_offset(a, 0, b, 0),
            DynamicBitset::first_set_and_clear(a, b, 0));
}

TEST(DynamicBitset, ShiftDownMovesWords) {
  DynamicBitset b(256);
  b.set(0);
  b.set(64);
  b.set(70);
  b.set(200);
  b.shift_down(64);
  EXPECT_TRUE(b.test(0));        // old bit 64 (old bit 0 dropped off the end)
  EXPECT_TRUE(b.test(6));        // old bit 70
  EXPECT_TRUE(b.test(136));      // old bit 200
  EXPECT_EQ(b.count(), 3u);      // only the dropped word's bit is gone
  EXPECT_EQ(b.size(), 256u);     // size unchanged; top vacated
  EXPECT_FALSE(b.test(200));
}

TEST(DynamicBitset, ShiftDownPastSizeClears) {
  DynamicBitset b(100);
  b.set(3);
  b.set(90);
  b.shift_down(192);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(DynamicBitset, PaperBufferMapWidth) {
  // The paper's 600-slot availability window packs into 75 bytes.
  DynamicBitset b(600);
  EXPECT_EQ(b.to_bytes().size(), 75u);
}

}  // namespace
}  // namespace gs::util
