// RNG determinism, distribution sanity, and stream independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace gs::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // fork() derives from the seed, not the current state: consuming the
  // parent must not change the child stream.
  Rng a(99);
  Rng child_before = a.fork(5);
  for (int i = 0; i < 100; ++i) (void)a();
  Rng child_after = a.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child_before(), child_after());
}

TEST(Rng, ForkDistinctKeysDistinctStreams) {
  Rng a(99);
  Rng c1 = a.fork(1);
  Rng c2 = a.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (c1() == c2()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntUnbiasedAcrossBuckets) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BetaMeanMatchesShape) {
  Rng rng(11);
  RunningStats stats;
  const double alpha = 1.2;
  const double beta = 4.8;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.beta(alpha, beta);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), alpha / (alpha + beta), 0.01);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(10.0, 1.5), 10.0);
}

TEST(Rng, ParetoMedian) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.pareto(1.0, 2.0));
  // Median of Pareto(x_m, a) is x_m * 2^(1/a).
  EXPECT_NEAR(percentile(samples, 0.5), std::pow(2.0, 0.5), 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(14);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(15);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  auto original = items;
  rng.shuffle(items);
  EXPECT_NE(items, original);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(16);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picks = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(picks.size(), 10u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (std::size_t p : picks) EXPECT_LT(p, 50u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(17);
  const auto picks = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementUniform) {
  Rng rng(18);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t p : rng.sample_without_replacement(10, 3)) ++counts[p];
  }
  for (int c : counts) EXPECT_NEAR(c, trials * 3 / 10, trials * 3 / 10 * 0.1);
}

TEST(HashName, StableAndDistinct) {
  EXPECT_EQ(hash_name("churn"), hash_name("churn"));
  EXPECT_NE(hash_name("churn"), hash_name("topology"));
  EXPECT_NE(hash_name(""), hash_name("a"));
}

TEST(Splitmix, KnownProperties) {
  // Different inputs give different outputs; zero input is not a fixpoint.
  EXPECT_NE(splitmix64(0), 0u);
  EXPECT_NE(splitmix64(1), splitmix64(2));
}

}  // namespace
}  // namespace gs::util
