// The closed-form rate split (paper eq. 4 and the four capped cases of §4),
// including property tests against brute-force optimization.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/rate_solver.hpp"
#include "util/rng.hpp"

namespace gs::core {
namespace {

// Direct transcription of eq. 4 for cross-checking the stable form.
double r1_literal(const SplitInput& in) {
  const double a = in.p * (in.q1 + in.q2) / in.q;
  return (in.inbound - a + std::sqrt((a - in.inbound) * (a - in.inbound) +
                                     4.0 * in.p * in.inbound * in.q1 / in.q)) /
         2.0;
}

TEST(RateSolver, MatchesLiteralFormula) {
  const SplitInput in{/*q1=*/128, /*q2=*/50, /*q=*/10, /*p=*/10, /*inbound=*/15};
  EXPECT_NEAR(optimal_r1(in), r1_literal(in), 1e-9);
}

TEST(RateSolver, PaperFig2Regime) {
  // Fig. 2's example: I = 7, 5 segments of each stream.  The split should
  // give both streams a share (interleaving), unlike the normal algorithm.
  const SplitInput in{5, 5, 10, 10, 7};
  const RateSplit split = solve_unconstrained(in);
  EXPECT_GT(split.i1, 0.0);
  EXPECT_GT(split.i2, 0.0);
  EXPECT_NEAR(split.i1 + split.i2, 7.0, 1e-9);
}

TEST(RateSolver, ZeroQ1LargeDemandGivesAllToS2) {
  // With no old-stream backlog and p*Q2/Q >= I, eq. 4 collapses to
  // r1 = max(0, I - p*Q2/Q) = 0: everything goes to the new stream.
  const SplitInput in{0, 50, 10, 10, 15};
  const RateSplit split = solve_unconstrained(in);
  EXPECT_NEAR(split.i1, 0.0, 1e-9);
  EXPECT_NEAR(split.i2, 15.0, 1e-9);
  EXPECT_NEAR(expected_prepare_time(in.q2, split.i2), 50.0 / 15.0, 1e-9);
}

TEST(RateSolver, ZeroQ1SmallDemandPinsT2ToPlaybackTail) {
  // With spare capacity (p*Q2/Q < I), T2 is pinned at T1' = Q/p and the
  // formula parks the excess rate in I1 (useless but harmless).
  const SplitInput in{0, 5, 10, 10, 15};
  const RateSplit split = solve_unconstrained(in);
  EXPECT_NEAR(split.i1, 10.0, 1e-9);
  EXPECT_NEAR(expected_prepare_time(in.q2, split.i2), in.q / in.p, 1e-9);
}

TEST(RateSolver, ZeroQ2GivesEverythingToS1) {
  const SplitInput in{50, 0, 10, 10, 15};
  const RateSplit split = solve_unconstrained(in);
  EXPECT_NEAR(split.i1, 15.0, 1e-9);
  EXPECT_NEAR(split.i2, 0.0, 1e-9);
}

TEST(RateSolver, ConstraintSatisfiedWithEquality) {
  // At the optimum the constraint T2 >= T1' is tight (any slack could be
  // traded for a smaller T2).
  const SplitInput in{128, 50, 10, 10, 15};
  const RateSplit split = solve_unconstrained(in);
  const double t1p = expected_finish_time(in.q1, in.q, in.p, split.i1);
  const double t2 = expected_prepare_time(in.q2, split.i2);
  EXPECT_NEAR(t2, t1p, 1e-6);
}

TEST(RateSolver, ExpectedTimeEdgeCases) {
  EXPECT_EQ(expected_prepare_time(0, 0), 0.0);
  EXPECT_TRUE(std::isinf(expected_prepare_time(10, 0)));
  EXPECT_DOUBLE_EQ(expected_finish_time(0, 10, 10, 0), 1.0);
  EXPECT_TRUE(std::isinf(expected_finish_time(10, 10, 10, 0)));
}

TEST(RateSolver, CappedCase1) {
  const SplitInput in{128, 50, 10, 10, 15};
  const RateSplit u = solve_unconstrained(in);
  const RateSplit c = solve_capped(in, u.r1 + 1.0, u.r2 + 1.0);
  EXPECT_EQ(c.case_id, 1);
  EXPECT_NEAR(c.i1, u.r1, 1e-9);
  EXPECT_NEAR(c.i2, u.r2, 1e-9);
}

TEST(RateSolver, CappedCase2) {
  // r2 exceeds O2: I2 = O2, I1 = min(O1, I - O2).
  const SplitInput in{128, 50, 10, 10, 15};
  const RateSplit u = solve_unconstrained(in);
  const double o2 = u.r2 / 2.0;
  const RateSplit c = solve_capped(in, 100.0, o2);
  EXPECT_EQ(c.case_id, 2);
  EXPECT_NEAR(c.i2, o2, 1e-9);
  EXPECT_NEAR(c.i1, in.inbound - o2, 1e-9);
}

TEST(RateSolver, CappedCase3) {
  const SplitInput in{128, 50, 10, 10, 15};
  const RateSplit u = solve_unconstrained(in);
  const double o1 = u.r1 / 2.0;
  const RateSplit c = solve_capped(in, o1, 100.0);
  EXPECT_EQ(c.case_id, 3);
  EXPECT_NEAR(c.i1, o1, 1e-9);
  EXPECT_NEAR(c.i2, in.inbound - o1, 1e-9);
}

TEST(RateSolver, CappedCase4) {
  const SplitInput in{128, 50, 10, 10, 15};
  const RateSplit u = solve_unconstrained(in);
  const RateSplit c = solve_capped(in, u.r1 / 2.0, u.r2 / 2.0);
  EXPECT_EQ(c.case_id, 4);
  EXPECT_NEAR(c.i1, u.r1 / 2.0, 1e-9);
  EXPECT_NEAR(c.i2, u.r2 / 2.0, 1e-9);
}

TEST(RateSolver, CappedNeverNegative) {
  // Severe outbound shortage: I - O2 would be negative in case 2.
  const SplitInput in{10, 10, 10, 10, 5};
  const RateSplit c = solve_capped(in, 0.0, 100.0);
  EXPECT_GE(c.i1, 0.0);
  EXPECT_GE(c.i2, 0.0);
}

TEST(RateSolver, NumericalStabilityLargeBacklog) {
  // Huge Q1+Q2 makes b enormous; the conjugate form must stay accurate.
  const SplitInput in{1e9, 1e9, 10, 10, 15};
  const double r1 = optimal_r1(in);
  EXPECT_GE(r1, 0.0);
  EXPECT_LE(r1, in.inbound);
  EXPECT_FALSE(std::isnan(r1));
  // Verify against the defining quadratic: r1^2 + b*r1 - c ~ 0 at the root.
  const double b = in.p * (in.q1 + in.q2) / in.q - in.inbound;
  const double c = in.p * in.inbound * in.q1 / in.q;
  const double residual = r1 * r1 + b * r1 - c;
  EXPECT_NEAR(residual / c, 0.0, 1e-9);
}

struct RandomizedCase {
  std::uint64_t seed;
};

class SolverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverPropertyTest, OptimalAmongFeasibleSplits) {
  // Property: over a fine grid of feasible static splits (I1, I - I1), no
  // feasible point achieves a smaller T2 than the closed form.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    SplitInput in;
    in.q1 = rng.uniform(0.0, 300.0);
    in.q2 = rng.uniform(1.0, 100.0);
    in.q = rng.uniform(1.0, 30.0);
    in.p = rng.uniform(1.0, 30.0);
    in.inbound = rng.uniform(1.0, 40.0);
    const RateSplit split = solve_unconstrained(in);

    EXPECT_GE(split.i1, -1e-9);
    EXPECT_GE(split.i2, -1e-9);
    EXPECT_NEAR(split.i1 + split.i2, in.inbound, 1e-9);

    const double best_t2 = expected_prepare_time(in.q2, split.i2);
    // The optimum satisfies the playback constraint.
    EXPECT_GE(best_t2 + 1e-6, expected_finish_time(in.q1, in.q, in.p, split.i1));

    for (int g = 0; g <= 400; ++g) {
      const double i1 = in.inbound * g / 400.0;
      const double i2 = in.inbound - i1;
      const double t1p = expected_finish_time(in.q1, in.q, in.p, i1);
      const double t2 = expected_prepare_time(in.q2, i2);
      if (t2 + 1e-9 < t1p) continue;  // infeasible: violates T2 >= T1'
      EXPECT_GE(t2 + 1e-6, best_t2)
          << "grid point i1=" << i1 << " beats closed form on trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest, ::testing::Range(1, 9));

class SolverCappedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverCappedPropertyTest, CapsAlwaysRespected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000);
  for (int trial = 0; trial < 200; ++trial) {
    SplitInput in;
    in.q1 = rng.uniform(0.0, 300.0);
    in.q2 = rng.uniform(0.0, 100.0);
    in.q = rng.uniform(1.0, 30.0);
    in.p = rng.uniform(1.0, 30.0);
    in.inbound = rng.uniform(1.0, 40.0);
    const double o1 = rng.uniform(0.0, 30.0);
    const double o2 = rng.uniform(0.0, 30.0);
    const RateSplit c = solve_capped(in, o1, o2);
    EXPECT_LE(c.i1, o1 + 1e-9);
    EXPECT_LE(c.i2, o2 + 1e-9);
    EXPECT_LE(c.i1 + c.i2, in.inbound + 1e-9);
    EXPECT_GE(c.i1, 0.0);
    EXPECT_GE(c.i2, 0.0);
    EXPECT_GE(c.case_id, 1);
    EXPECT_LE(c.case_id, 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCappedPropertyTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace gs::core
