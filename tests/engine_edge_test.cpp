// Engine edge cases: short final sessions (gate fallback), lockstep ticks,
// minimal warm-start history, and overhead accounting windows.
#include <gtest/gtest.h>

#include <memory>

#include "core/fast_switch.hpp"
#include "net/topology.hpp"
#include "stream/engine.hpp"

namespace gs::stream {
namespace {

struct World {
  net::Graph graph;
  net::LatencyModel latency;
};

World make_world(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  net::Graph graph = net::preferential_attachment(n, 2, rng);
  net::repair_min_degree(graph, 5, rng);
  std::vector<double> pings(n);
  for (auto& ping : pings) ping = rng.uniform(20.0, 120.0);
  return {std::move(graph), net::LatencyModel(std::move(pings))};
}

TEST(EngineEdge, ShortFinalSessionReleasesGates) {
  // The second switch happens only 3 s after the first, so session 1 holds
  // ~30 segments — fewer than Qs=50.  Playback must not deadlock: the gate
  // release falls back to "all existing segments received".
  World world = make_world(50, 41);
  EngineConfig config;
  config.seed = 41;
  config.horizon = 90.0;
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1, 2}, {0.0, 3.0});
  const auto metrics = engine->run();
  ASSERT_EQ(metrics.size(), 2u);
  const auto& sessions = engine->sessions();
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_LT(sessions[1].last - sessions[1].first + 1, 50) << "session 1 shorter than Qs";
  // Despite the short session, playback crossed both boundaries for most
  // peers (no gate deadlock): the second switch's finish metric counts
  // nodes that finished playing session 1 entirely.
  EXPECT_GT(metrics[1].finished_s1 + metrics[1].censored_finish, 0u);
  EXPECT_GT(metrics[1].prepared_s2, metrics[1].tracked / 2);
}

TEST(EngineEdge, LockstepTicksStillComplete) {
  World world = make_world(60, 43);
  EngineConfig config;
  config.seed = 43;
  config.stagger_ticks = false;  // all peers tick at the same instants
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1}, {0.0});
  const auto metrics = engine->run();
  EXPECT_EQ(metrics.front().prepared_s2, metrics.front().tracked);
}

TEST(EngineEdge, TinyHistoryClampsCursors) {
  // History shorter than the intended lag: cursors clamp to id 0 and the
  // run must still complete.
  World world = make_world(50, 47);
  EngineConfig config;
  config.seed = 47;
  config.history_seconds = 3.0;  // only 30 segments of history
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1}, {0.0});
  const auto metrics = engine->run();
  EXPECT_EQ(metrics.front().prepared_s2, metrics.front().tracked);
}

TEST(EngineEdge, OverheadWindowExcludesWarmup) {
  // The accountant is disabled during warm-up: with a long warmup the
  // measured ratio must not inflate (same window as a short warmup).
  auto run_with_warmup = [](double warmup) {
    World world = make_world(60, 53);
    EngineConfig config;
    config.seed = 53;
    config.warmup = warmup;
    auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                           config, std::make_shared<core::FastSwitchScheduler>());
    engine->set_sources({0, 1}, {0.0});
    return engine->run().front().overhead_ratio;
  };
  const double short_warmup = run_with_warmup(2.0);
  const double long_warmup = run_with_warmup(10.0);
  EXPECT_NEAR(short_warmup, long_warmup, short_warmup * 0.5)
      << "warm-up traffic leaked into the measurement window";
}

TEST(EngineEdge, ZeroChurnFractionsMeanNoChurnTask) {
  World world = make_world(50, 59);
  EngineConfig config;
  config.seed = 59;
  config.churn_leave_fraction = 0.0;
  config.churn_join_fraction = 0.0;
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1}, {0.0});
  (void)engine->run();
  EXPECT_EQ(engine->stats().joins, 0u);
  EXPECT_EQ(engine->stats().leaves, 0u);
  EXPECT_EQ(engine->peer_count(), 50u);
}

TEST(EngineEdge, JoinOnlyChurnGrowsPopulation) {
  World world = make_world(60, 61);
  EngineConfig config;
  config.seed = 61;
  config.churn_leave_fraction = 0.0;
  config.churn_join_fraction = 0.05;
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1}, {0.0});
  (void)engine->run();
  EXPECT_GT(engine->stats().joins, 0u);
  EXPECT_EQ(engine->stats().leaves, 0u);
  EXPECT_GT(engine->peer_count(), 60u);
  // Joiners attach with the membership target degree.
  const auto& graph = engine->graph();
  for (net::NodeId v = 60; v < graph.node_count(); ++v) {
    EXPECT_GE(graph.degree(v), 1u);
  }
}

}  // namespace
}  // namespace gs::stream
