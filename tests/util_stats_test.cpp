// RunningStats, percentiles, summaries, histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/stats.hpp"

namespace gs::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Summary, OfSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.5);
  EXPECT_FALSE(s.to_string().empty());
}

TEST(MeanOf, Basics) {
  EXPECT_TRUE(std::isnan(mean_of({})));
  const std::vector<double> v{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 3.0);
}

TEST(Ci95, ZeroForSmallSamples) {
  EXPECT_EQ(ci95_halfwidth({}), 0.0);
  const std::vector<double> one{1.0};
  EXPECT_EQ(ci95_halfwidth(one), 0.0);
}

TEST(Ci95, KnownValue) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  // sd = sqrt(2.5), n = 5.
  EXPECT_NEAR(ci95_halfwidth(v), 1.96 * std::sqrt(2.5) / std::sqrt(5.0), 1e-12);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, Cdf) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(2.5);
  h.add(3.5);
  EXPECT_DOUBLE_EQ(h.cdf(0), 0.25);
  EXPECT_DOUBLE_EQ(h.cdf(3), 1.0);
}

TEST(Histogram, RenderDoesNotCrashOnEmpty) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_FALSE(h.render().empty());
}

}  // namespace
}  // namespace gs::util
