// CdnAssistPlane unit tests: the BURST/HANDOFF/OFF state machine, the
// rest-play pause/resume hysteresis, capacity-limited patch scheduling and
// the served-bytes ledger.  Engine-level behaviour (eligibility, coverage,
// determinism across shard counts) lives in stream_determinism_test.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "stream/cdn_assist.hpp"

namespace gs::stream {
namespace {

struct AssistFixture {
  sim::Simulator sim;
  std::vector<std::pair<net::NodeId, SegmentId>> delivered;
  CdnAssistPlane plane;

  explicit AssistFixture(CdnAssistConfig config = {})
      : plane(sim, config,
              [this](net::NodeId to, SegmentId id) { delivered.emplace_back(to, id); }) {
    plane.ensure_nodes(4);
  }
};

CdnAssistPlane::PeerView eligible(int switch_index, double rest_play_s = 0.0,
                                  bool cover = false) {
  CdnAssistPlane::PeerView view;
  view.switch_index = switch_index;
  view.rest_play_s = rest_play_s;
  view.suppliers_cover = cover;
  return view;
}

TEST(CdnAssist, EnrollsEligiblePeerIntoBurst) {
  AssistFixture f;
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kOff);
  EXPECT_TRUE(f.plane.control(1, eligible(0), 0.0));
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kBurst);
  EXPECT_EQ(f.plane.stats().assisted, 1u);
  // Same switch next tick: still the same assist episode.
  EXPECT_TRUE(f.plane.control(1, eligible(0), 0.5));
  EXPECT_EQ(f.plane.stats().assisted, 1u);
}

TEST(CdnAssist, IneligibleViewExitsAndRecordsAssistTime) {
  AssistFixture f;
  EXPECT_TRUE(f.plane.control(1, eligible(0), 1.0));
  EXPECT_FALSE(f.plane.control(1, CdnAssistPlane::PeerView{}, 3.5));
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kOff);
  ASSERT_EQ(f.plane.stats().assist_time_count, 1u);
  EXPECT_DOUBLE_EQ(f.plane.stats().assist_time_sum, 2.5);
}

TEST(CdnAssist, PauseResumeHysteresis) {
  CdnAssistConfig config;
  config.pause_lead_s = 3.0;
  config.resume_lead_s = 1.0;
  AssistFixture f(config);
  EXPECT_TRUE(f.plane.control(2, eligible(0, 0.0), 0.0));
  // Lead reaches the pause threshold: the burst pauses.
  EXPECT_FALSE(f.plane.control(2, eligible(0, 3.2), 0.1));
  EXPECT_TRUE(f.plane.paused(2));
  // Hysteresis: a lead between resume and pause keeps the pause.
  EXPECT_FALSE(f.plane.control(2, eligible(0, 2.0), 0.2));
  EXPECT_TRUE(f.plane.paused(2));
  // Lead falls under the resume threshold: the burst resumes.
  EXPECT_TRUE(f.plane.control(2, eligible(0, 0.8), 0.3));
  EXPECT_FALSE(f.plane.paused(2));
  EXPECT_EQ(f.plane.stats().pauses, 1u);
  EXPECT_EQ(f.plane.stats().resumes, 1u);
}

TEST(CdnAssist, CoverageHandsOffAndChurnReentersBurst) {
  AssistFixture f;
  EXPECT_TRUE(f.plane.control(1, eligible(0), 0.0));
  // Gossip suppliers cover the window: hand off, stop serving.
  EXPECT_FALSE(f.plane.control(1, eligible(0, 5.0, /*cover=*/true), 2.0));
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kHandoff);
  EXPECT_EQ(f.plane.stats().handoffs, 1u);
  ASSERT_EQ(f.plane.stats().assist_time_count, 1u);
  EXPECT_DOUBLE_EQ(f.plane.stats().assist_time_sum, 2.0);
  // Coverage broken but playback still has lead: stay in handoff.
  EXPECT_FALSE(f.plane.control(1, eligible(0, 5.0, /*cover=*/false), 2.5));
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kHandoff);
  // Coverage broken *and* the lead is about to underrun: burst again,
  // same episode (no second enrollment, no second assist-time sample).
  EXPECT_TRUE(f.plane.control(1, eligible(0, 0.5, /*cover=*/false), 3.0));
  EXPECT_EQ(f.plane.state(1), CdnAssistPlane::State::kBurst);
  EXPECT_EQ(f.plane.stats().assisted, 1u);
  EXPECT_EQ(f.plane.stats().assist_time_count, 1u);
}

TEST(CdnAssist, NewerSwitchSupersedesRunningAssist) {
  AssistFixture f;
  EXPECT_TRUE(f.plane.control(3, eligible(0), 0.0));
  EXPECT_TRUE(f.plane.control(3, eligible(1), 4.0));
  EXPECT_EQ(f.plane.state(3), CdnAssistPlane::State::kBurst);
  EXPECT_EQ(f.plane.stats().assisted, 2u);
  // The superseded burst contributed its assist time.
  EXPECT_EQ(f.plane.stats().assist_time_count, 1u);
  EXPECT_DOUBLE_EQ(f.plane.stats().assist_time_sum, 4.0);
}

TEST(CdnAssist, ServesPatchesAtUplinkRateWithFixedLatency) {
  CdnAssistConfig config;
  config.rate = 10.0;        // tx = 0.1 s
  config.latency_ms = 40.0;  // + 0.04 s
  config.data_bits = 8000;
  AssistFixture f(config);
  ASSERT_TRUE(f.plane.request(1, 100, 0.0));
  ASSERT_TRUE(f.plane.request(2, 101, 0.0));  // queues behind peer 1
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0], (std::pair<net::NodeId, SegmentId>{1, 100}));
  EXPECT_EQ(f.delivered[1], (std::pair<net::NodeId, SegmentId>{2, 101}));
  // Shared FIFO: the second patch waits for the first transmission.
  EXPECT_DOUBLE_EQ(f.sim.now(), 0.2 + 0.04);
  EXPECT_EQ(f.plane.stats().segments_served, 2u);
  EXPECT_EQ(f.plane.stats().bytes_served, 2u * 1000u);
}

TEST(CdnAssist, AcceptHorizonRejectsDeepBacklog) {
  CdnAssistConfig config;
  config.rate = 10.0;
  config.accept_horizon = 0.15;
  AssistFixture f(config);
  ASSERT_TRUE(f.plane.request(1, 100, 0.0));
  ASSERT_TRUE(f.plane.request(1, 101, 0.0));
  // Backlog now 0.2 s > horizon: rejected, nothing committed.
  EXPECT_FALSE(f.plane.request(2, 102, 0.0));
  EXPECT_EQ(f.plane.stats().requests_rejected, 1u);
  f.sim.run_all();
  EXPECT_EQ(f.plane.stats().segments_served, 2u);
}

TEST(CdnAssist, PerLinkCapacityGivesEveryPeerItsOwnLane) {
  CdnAssistConfig config;
  config.rate = 10.0;
  config.latency_ms = 0.0;
  config.capacity = SupplierCapacityModel::kPerLink;
  AssistFixture f(config);
  ASSERT_TRUE(f.plane.request(1, 100, 0.0));
  ASSERT_TRUE(f.plane.request(2, 200, 0.0));
  f.sim.run_all();
  // Independent lanes: both patches land after one transmission time.
  EXPECT_DOUBLE_EQ(f.sim.now(), 0.1);
  EXPECT_EQ(f.delivered.size(), 2u);
}

}  // namespace
}  // namespace gs::stream
