// Reporters: paper-style console output and CSV integrity.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "experiments/report.hpp"

namespace gs::exp {
namespace {

stream::SwitchMetrics make_metrics(double scale) {
  stream::SwitchMetrics m;
  m.tracked = 10;
  m.finished_s1 = 10;
  m.prepared_s2 = 10;
  m.finish_times = {4.0 * scale, 6.0 * scale};
  m.prepared_times = {8.0 * scale, 12.0 * scale};
  m.overhead_ratio = 0.012;
  for (int i = 0; i <= 10; ++i) {
    stream::TrackPoint p;
    p.time = i;
    p.undelivered_ratio_s1 = std::max(0.0, 1.0 - 0.1 * i * scale);
    p.delivered_ratio_s2 = std::min(1.0, 0.1 * i * scale);
    p.live_tracked = 10;
    m.track.push_back(p);
  }
  return m;
}

ComparisonPoint make_point(std::size_t nodes) {
  ComparisonPoint p;
  p.node_count = nodes;
  p.trials = 3;
  p.normal_switch_time = 20.0;
  p.fast_switch_time = 15.0;
  p.normal_finish_time = 8.0;
  p.fast_finish_time = 8.5;
  p.normal_overhead = 0.015;
  p.fast_overhead = 0.013;
  return p;
}

TEST(Report, RatioTracksPrintAllRows) {
  const auto fast = make_metrics(1.2);
  const auto normal = make_metrics(1.0);
  ::testing::internal::CaptureStdout();
  print_ratio_tracks("test tracks", fast, normal);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("test tracks"), std::string::npos);
  EXPECT_NE(out.find("undeliv_S1"), std::string::npos);
  // One row per second from 0 to the longer track's end.
  EXPECT_GE(std::count(out.begin(), out.end(), '\n'), 11);
}

TEST(Report, TimesTableHasPaperBarOrder) {
  ::testing::internal::CaptureStdout();
  print_times_table("t", {make_point(100), make_point(1000)});
  const std::string out = ::testing::internal::GetCapturedStdout();
  // The paper's left-to-right bar order.
  const auto norm_finish = out.find("finish_S1(norm)");
  const auto fast_finish = out.find("finish_S1(fast)");
  const auto fast_prepare = out.find("prepare_S2(fast)");
  const auto norm_prepare = out.find("prepare_S2(norm)");
  EXPECT_LT(norm_finish, fast_finish);
  EXPECT_LT(fast_finish, fast_prepare);
  EXPECT_LT(fast_prepare, norm_prepare);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
}

TEST(Report, SwitchReductionComputesRatio) {
  ::testing::internal::CaptureStdout();
  print_switch_reduction("t", {make_point(500)});
  const std::string out = ::testing::internal::GetCapturedStdout();
  // (20 - 15) / 20 = 0.25.
  EXPECT_NE(out.find("0.250"), std::string::npos);
}

TEST(Report, OverheadPrintsBothColumns) {
  ::testing::internal::CaptureStdout();
  print_overhead("t", {make_point(500)});
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("0.013"), std::string::npos);
  EXPECT_NE(out.find("0.015"), std::string::npos);
}

TEST(Report, TracksCsvRoundTrips) {
  const auto fast = make_metrics(1.2);
  const auto normal = make_metrics(1.0);
  const std::string path = std::string(::testing::TempDir()) + "/tracks.csv";
  write_tracks_csv(path, fast, normal);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "time,undelivered_s1_normal,undelivered_s1_fast,delivered_s2_normal,"
            "delivered_s2_fast");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_GE(rows, 11u);
}

TEST(Report, ComparisonCsvHasOneRowPerPoint) {
  const std::string path = std::string(::testing::TempDir()) + "/cmp2.csv";
  write_comparison_csv(path, {make_point(100), make_point(200), make_point(400)});
  std::ifstream in(path);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4u);  // header + 3
}

}  // namespace
}  // namespace gs::exp
