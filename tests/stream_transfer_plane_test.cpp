// TransferPlane unit tests: queue-delay estimates, backlog acceptance and
// delivery scheduling under both capacity models (shared FIFO vs per-link).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/latency.hpp"
#include "sim/simulator.hpp"
#include "stream/transfer_plane.hpp"

namespace gs::stream {
namespace {

struct PlaneFixture {
  sim::Simulator sim;
  net::LatencyModel latency{std::vector<double>{40.0, 40.0, 40.0, 40.0}};
  std::vector<std::pair<net::NodeId, SegmentId>> delivered;
  TransferPlane plane;
  std::vector<PeerNode> peers;

  explicit PlaneFixture(SupplierCapacityModel kind, double accept_horizon = 2.0,
                        double token_bucket_burst = 4.0)
      : plane(sim, latency, kind, accept_horizon,
              [this](net::NodeId to, SegmentId id) { delivered.emplace_back(to, id); },
              token_bucket_burst) {
    peers.resize(4);
    for (net::NodeId v = 0; v < 4; ++v) {
      PeerNode& p = peers[v];
      p.id = v;
      p.outbound_rate() = 10.0;  // tx time = 0.1 s per segment
      p.rng = util::Rng(7).fork(v);
    }
    plane.ensure_nodes(peers.size());
  }
};

TEST(TransferPlane, SharedFifoSerializesOneSupplier) {
  PlaneFixture f(SupplierCapacityModel::kSharedFifo);
  // Two different requesters hit the same supplier: the second queues
  // behind the first on the supplier's uplink FIFO.
  EXPECT_EQ(f.plane.queue_delay(0, 2, 0.0), 0.0);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(2), 0.1);
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(1, 2, 0.0), 0.1)
      << "a different requester sees the shared backlog";
  ASSERT_TRUE(f.plane.request(f.peers[1], f.peers[2], 101, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(2), 0.2);
  EXPECT_EQ(f.plane.capacity().name(), "shared-fifo");

  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_EQ(f.delivered[0], (std::pair<net::NodeId, SegmentId>{0, 100}));
  EXPECT_EQ(f.delivered[1], (std::pair<net::NodeId, SegmentId>{1, 101}));
}

TEST(TransferPlane, PerLinkIsolatesRequesters) {
  PlaneFixture f(SupplierCapacityModel::kPerLink);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  // A different requester on the same supplier sees no backlog at all.
  EXPECT_EQ(f.plane.queue_delay(1, 2, 0.0), 0.0);
  // The same requester on the same link does queue.
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(0, 2, 0.0), 0.1);
  ASSERT_TRUE(f.plane.request(f.peers[1], f.peers[2], 101, 0.0));
  EXPECT_EQ(f.plane.capacity().name(), "per-link");
  // The uplink FIFO is untouched by per-link pulls (it serves the push path).
  EXPECT_EQ(f.plane.uplink_busy_until(2), CapacityModel::kIdle);

  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(TransferPlane, AcceptHorizonRejectsDeepBacklogs) {
  PlaneFixture f(SupplierCapacityModel::kSharedFifo, /*accept_horizon=*/0.15);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 101, 0.0));
  // Backlog now 0.2 s > horizon 0.15 s: the third request is refused and
  // commits nothing.
  EXPECT_FALSE(f.plane.request(f.peers[1], f.peers[2], 102, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(2), 0.2);
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(TransferPlane, PerLinkHorizonIsPerRequester) {
  PlaneFixture f(SupplierCapacityModel::kPerLink, /*accept_horizon=*/0.15);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 101, 0.0));
  // Requester 0 saturated its link...
  EXPECT_FALSE(f.plane.request(f.peers[0], f.peers[2], 102, 0.0));
  // ...but requester 1's independent link still accepts.
  EXPECT_TRUE(f.plane.request(f.peers[1], f.peers[2], 103, 0.0));
}

TEST(TransferPlane, PushUsesUplinkFifoUnderBothModels) {
  for (const auto kind :
       {SupplierCapacityModel::kSharedFifo, SupplierCapacityModel::kPerLink}) {
    PlaneFixture f(kind);
    ASSERT_TRUE(f.plane.push(f.peers[2], 0, 50, 0.0));
    EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(2), 0.1)
        << "push contends on the pusher's own uplink regardless of model";
    ASSERT_TRUE(f.plane.push(f.peers[2], 1, 50, 0.0));
    EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(2), 0.2);
    f.sim.run_all();
    ASSERT_EQ(f.delivered.size(), 2u);
    EXPECT_EQ(f.delivered[0].second, 50);
  }
}

TEST(TransferPlane, PushRejectsSaturatedUplink) {
  PlaneFixture f(SupplierCapacityModel::kSharedFifo, /*accept_horizon=*/0.15);
  ASSERT_TRUE(f.plane.push(f.peers[2], 0, 50, 0.0));
  ASSERT_TRUE(f.plane.push(f.peers[2], 1, 51, 0.0));
  EXPECT_FALSE(f.plane.push(f.peers[2], 3, 52, 0.0));
}

TEST(TokenBucket, BurstPassesAtZeroDelayThenRateLimits) {
  PlaneFixture f(SupplierCapacityModel::kTokenBucket, /*accept_horizon=*/2.0, /*burst=*/3.0);
  EXPECT_EQ(f.plane.capacity().name(), "token-bucket");
  EXPECT_TRUE(f.plane.supplier_shared());
  // A full bucket (3 tokens at rate 10/s) serves three transfers back to
  // back with no queueing...
  for (int k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(f.plane.queue_delay(0, 2, 0.0), 0.0) << "token " << k;
    ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100 + k, 0.0));
  }
  // ...then the next transfers space at one token per tx = 0.1 s.
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(1, 2, 0.0), 0.1)
      << "the bucket is supplier-shared: a different requester sees it empty";
  ASSERT_TRUE(f.plane.request(f.peers[1], f.peers[2], 103, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(1, 2, 0.0), 0.2);
  // An idle stretch refills the bucket: at t=1.0 the backlog is gone.
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(0, 2, 1.0), 0.0);
  // The uplink FIFO is untouched by token-bucket pulls (push path only).
  EXPECT_EQ(f.plane.uplink_busy_until(2), CapacityModel::kIdle);
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 4u);
}

TEST(TokenBucket, BurstOneDegeneratesToSharedFifoSpacing) {
  PlaneFixture fifo(SupplierCapacityModel::kSharedFifo);
  PlaneFixture bucket(SupplierCapacityModel::kTokenBucket, 2.0, /*burst=*/1.0);
  for (int k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(fifo.plane.queue_delay(0, 2, 0.0), bucket.plane.queue_delay(0, 2, 0.0))
        << "transfer " << k;
    ASSERT_TRUE(fifo.plane.request(fifo.peers[0], fifo.peers[2], 100 + k, 0.0));
    ASSERT_TRUE(bucket.plane.request(bucket.peers[0], bucket.peers[2], 100 + k, 0.0));
  }
  EXPECT_DOUBLE_EQ(fifo.plane.queue_delay(1, 2, 0.0), 0.3);
  EXPECT_DOUBLE_EQ(bucket.plane.queue_delay(1, 2, 0.0), 0.3);
}

TEST(TokenBucket, AcceptHorizonBoundsTheBurstDebt) {
  PlaneFixture f(SupplierCapacityModel::kTokenBucket, /*accept_horizon=*/0.15, /*burst=*/2.0);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 101, 0.0));  // bucket empty
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 102, 0.0));  // 0.1 s debt
  // 0.2 s of token debt exceeds the 0.15 s horizon: refused, no commit.
  EXPECT_FALSE(f.plane.request(f.peers[1], f.peers[2], 103, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(1, 2, 0.0), 0.2);
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 3u);
}

TEST(TokenBucket, PushAndPullShareOneTokenLedger) {
  // A supplier must not serve pulls at full rate while also pushing at
  // full rate: pushes draw from the same bucket as pulls.
  PlaneFixture f(SupplierCapacityModel::kTokenBucket, /*accept_horizon=*/2.0, /*burst=*/2.0);
  ASSERT_TRUE(f.plane.push(f.peers[2], 0, 50, 0.0));
  ASSERT_TRUE(f.plane.push(f.peers[2], 1, 51, 0.0));  // bucket drained
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(0, 2, 0.0), 0.1)
      << "a pull after two pushes must see the token debt";
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 52, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.queue_delay(1, 2, 0.0), 0.2);
  // The FIFO vector is untouched: the ledger is the bucket for both paths.
  EXPECT_EQ(f.plane.uplink_busy_until(2), CapacityModel::kIdle);
  f.sim.run_all();
  EXPECT_EQ(f.delivered.size(), 3u);
}

TEST(TransferPlane, SupplierSharedReflectsCapacityKeying) {
  EXPECT_TRUE(PlaneFixture(SupplierCapacityModel::kSharedFifo).plane.supplier_shared());
  EXPECT_FALSE(PlaneFixture(SupplierCapacityModel::kPerLink).plane.supplier_shared());
}

TEST(TransferPlane, DeliveryIncludesTransmissionAndLatency) {
  PlaneFixture f(SupplierCapacityModel::kSharedFifo);
  ASSERT_TRUE(f.plane.request(f.peers[0], f.peers[2], 100, 0.0));
  f.sim.run_all();
  ASSERT_EQ(f.delivered.size(), 1u);
  // tx = 0.1 s; one-way latency (40 + 40)/4 = 20 ms with +-20% jitter.
  EXPECT_GE(f.sim.now(), 0.1 + 0.016);
  EXPECT_LE(f.sim.now(), 0.1 + 0.024);
}

TEST(TransferPlane, EnsureNodesGrowsForJoiners) {
  PlaneFixture f(SupplierCapacityModel::kSharedFifo);
  f.peers.resize(6);
  for (net::NodeId v = 4; v < 6; ++v) {
    f.peers[v].id = v;
    f.peers[v].outbound_rate() = 5.0;
    f.peers[v].rng = util::Rng(7).fork(v);
    f.latency.add_node(40.0);
  }
  f.plane.ensure_nodes(f.peers.size());
  EXPECT_EQ(f.plane.uplink_busy_until(5), CapacityModel::kIdle);
  EXPECT_TRUE(f.plane.request(f.peers[4], f.peers[5], 7, 0.0));
  EXPECT_DOUBLE_EQ(f.plane.uplink_busy_until(5), 0.2);
}

}  // namespace
}  // namespace gs::stream
