// Streaming engine integration at small scale: end-to-end switch runs,
// determinism, churn, multi-switch, push extension, capacity models.
#include <gtest/gtest.h>

#include <memory>

#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"
#include "net/topology.hpp"
#include "stream/engine.hpp"

namespace gs::stream {
namespace {

struct SmallWorld {
  net::Graph graph;
  net::LatencyModel latency;
};

SmallWorld make_world(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  net::Graph graph = net::preferential_attachment(n, 2, rng);
  net::repair_min_degree(graph, 5, rng);
  std::vector<double> pings(n);
  for (auto& ping : pings) ping = rng.uniform(20.0, 200.0);
  return {std::move(graph), net::LatencyModel(std::move(pings))};
}

EngineConfig small_config(std::uint64_t seed) {
  EngineConfig config;
  config.seed = seed;
  config.horizon = 120.0;
  return config;
}

std::unique_ptr<Engine> make_engine(std::size_t n, std::uint64_t seed, EngineConfig config,
                                    bool fast = true) {
  SmallWorld world = make_world(n, seed);
  std::shared_ptr<SchedulerStrategy> strategy;
  if (fast) {
    strategy = std::make_shared<core::FastSwitchScheduler>();
  } else {
    strategy = std::make_shared<core::NormalSwitchScheduler>();
  }
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::move(strategy));
  engine->set_sources({0, 1}, {0.0});
  return engine;
}

TEST(Engine, CompletesSwitchExperiment) {
  auto engine = make_engine(60, 1, small_config(1));
  const auto metrics = engine->run();
  ASSERT_EQ(metrics.size(), 1u);
  const SwitchMetrics& m = metrics.front();
  EXPECT_EQ(m.tracked, 58u) << "two sources excluded";
  EXPECT_EQ(m.finished_s1, 58u);
  EXPECT_EQ(m.prepared_s2, 58u);
  EXPECT_EQ(m.censored_finish, 0u);
  EXPECT_GT(m.avg_prepared_time(), 0.0);
  EXPECT_GT(m.avg_finish_time(), 0.0);
}

TEST(Engine, DeterministicUnderFixedSeed) {
  const auto run = [] {
    auto engine = make_engine(50, 7, small_config(7));
    const auto metrics = engine->run();
    return std::make_tuple(metrics.front().avg_prepared_time(),
                           metrics.front().avg_finish_time(),
                           engine->stats().segments_delivered,
                           engine->stats().requests_issued);
  };
  EXPECT_EQ(run(), run());
}

TEST(Engine, DifferentSeedsDiffer) {
  auto a = make_engine(50, 3, small_config(3));
  auto b = make_engine(50, 4, small_config(4));
  const auto ma = a->run();
  const auto mb = b->run();
  EXPECT_NE(ma.front().avg_prepared_time(), mb.front().avg_prepared_time());
}

TEST(Engine, TrackRatiosMonotone) {
  auto engine = make_engine(60, 5, small_config(5));
  const auto metrics = engine->run();
  const auto& track = metrics.front().track;
  ASSERT_GE(track.size(), 3u);
  for (std::size_t i = 1; i < track.size(); ++i) {
    EXPECT_LE(track[i].undelivered_ratio_s1, track[i - 1].undelivered_ratio_s1 + 1e-9)
        << "undelivered ratio of S1 never rises";
    EXPECT_GE(track[i].delivered_ratio_s2, track[i - 1].delivered_ratio_s2 - 1e-9)
        << "delivered ratio of S2 never falls";
  }
  EXPECT_GE(track.front().undelivered_ratio_s1, 0.0);
  EXPECT_LE(track.front().delivered_ratio_s2, 0.1) << "S2 starts undelivered";
}

TEST(Engine, OverheadInPaperBand) {
  auto engine = make_engine(80, 9, small_config(9));
  const auto metrics = engine->run();
  // S5.3: "a little larger than 1%".
  EXPECT_GT(metrics.front().overhead_ratio, 0.003);
  EXPECT_LT(metrics.front().overhead_ratio, 0.05);
}

TEST(Engine, WarmStartSeedsBacklog) {
  auto engine = make_engine(60, 11, small_config(11));
  (void)engine->run();
  // Q0 snapshots: non-source peers carry a backlog at the switch.
  std::size_t with_backlog = 0;
  for (std::size_t v = 0; v < engine->peer_count(); ++v) {
    const Peer& p = engine->peer(static_cast<net::NodeId>(v));
    if (!p.is_source() && p.q0_at_switch() > 0) ++with_backlog;
  }
  EXPECT_GT(with_backlog, engine->peer_count() / 2);
}

TEST(Engine, SourcesExcludedFromPlayback) {
  auto engine = make_engine(50, 13, small_config(13));
  (void)engine->run();
  EXPECT_FALSE(engine->peer(0).playback.started());
  EXPECT_FALSE(engine->peer(1).playback.started());
  EXPECT_EQ(engine->peer(0).requests_issued, 0u);
}

TEST(Engine, SessionBoundariesRecorded) {
  auto engine = make_engine(50, 15, small_config(15));
  (void)engine->run();
  const auto& sessions = engine->sessions();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_TRUE(sessions[0].ended());
  EXPECT_TRUE(sessions[1].started());
  EXPECT_EQ(sessions[1].first, sessions[0].last + 1) << "id_begin = id_end + 1 (S3)";
  // Generation rate: history + warmup at p = 10.
  const auto& registry = engine->registry();
  EXPECT_GT(registry.size(), 500u);
}

TEST(Engine, AnnouncementCarriedByNewSessionSegments) {
  auto engine = make_engine(50, 17, small_config(17));
  (void)engine->run();
  const auto& registry = engine->registry();
  const auto& sessions = engine->sessions();
  const SegmentInfo& first_s2 = registry.info(sessions[1].first);
  EXPECT_EQ(first_s2.prev_session_end, sessions[0].last);
  EXPECT_EQ(first_s2.session, 1);
}

TEST(Engine, ChurnRunCompletes) {
  EngineConfig config = small_config(19);
  config.churn_leave_fraction = 0.05;
  config.churn_join_fraction = 0.05;
  auto engine = make_engine(80, 19, config);
  const auto metrics = engine->run();
  const SwitchMetrics& m = metrics.front();
  EXPECT_GT(engine->stats().joins, 0u);
  EXPECT_GT(engine->stats().leaves, 0u);
  // Every tracked node is accounted for: prepared or censored.
  EXPECT_EQ(m.prepared_s2 + m.censored_prepare, m.tracked);
  EXPECT_EQ(m.finished_s1 + m.censored_finish, m.tracked);
  EXPECT_GT(m.prepared_s2, m.tracked / 2) << "most nodes complete despite churn";
}

TEST(Engine, ChurnKeepsPopulationStable) {
  EngineConfig config = small_config(21);
  config.churn_leave_fraction = 0.05;
  config.churn_join_fraction = 0.05;
  auto engine = make_engine(80, 21, config);
  (void)engine->run();
  std::size_t alive = 0;
  for (std::size_t v = 0; v < engine->peer_count(); ++v) {
    if (engine->peer(static_cast<net::NodeId>(v)).alive()) ++alive;
  }
  EXPECT_NEAR(static_cast<double>(alive), 80.0, 12.0);
}

TEST(Engine, MultiSwitchSerialSessions) {
  SmallWorld world = make_world(60, 23);
  EngineConfig config = small_config(23);
  config.horizon = 200.0;
  auto engine = std::make_unique<Engine>(std::move(world.graph), std::move(world.latency),
                                         config, std::make_shared<core::FastSwitchScheduler>());
  engine->set_sources({0, 1, 2}, {0.0, 60.0});
  const auto metrics = engine->run();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_GT(metrics[0].prepared_s2, 0u);
  EXPECT_GT(metrics[1].prepared_s2, 0u);
  EXPECT_DOUBLE_EQ(metrics[1].switch_time, 60.0);
  const auto& sessions = engine->sessions();
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_EQ(sessions[2].first, sessions[1].last + 1);
}

TEST(Engine, PushExtensionDeliversAndCostsMore) {
  EngineConfig plain = small_config(25);
  auto a = make_engine(60, 25, plain);
  (void)a->run();

  EngineConfig push = small_config(25);
  push.push_fresh_segments = true;
  push.push_fanout = 2;
  auto b = make_engine(60, 25, push);
  (void)b->run();

  EXPECT_GT(b->stats().segments_pushed, 0u);
  // Push creates redundant deliveries (GridMedia's trade-off).
  EXPECT_GE(b->stats().duplicates, a->stats().duplicates);
}

TEST(Engine, PerLinkCapacityModelRuns) {
  EngineConfig config = small_config(27);
  config.supplier_capacity = SupplierCapacityModel::kPerLink;
  auto engine = make_engine(60, 27, config);
  const auto metrics = engine->run();
  EXPECT_EQ(metrics.front().prepared_s2, metrics.front().tracked);
}

TEST(Engine, ColdStartStillCompletes) {
  // Without warm start the mesh is less efficient but the experiment must
  // still finish within the horizon at small scale.
  EngineConfig config = small_config(29);
  config.warm_start = false;
  config.warmup = 20.0;
  auto engine = make_engine(40, 29, config);
  const auto metrics = engine->run();
  EXPECT_GT(metrics.front().prepared_s2, 0u);
}

TEST(Engine, FinishTimesAfterSwitchAreNonNegative) {
  auto engine = make_engine(60, 31, small_config(31));
  const auto metrics = engine->run();
  for (const double t : metrics.front().finish_times) EXPECT_GE(t, 0.0);
  for (const double t : metrics.front().prepared_times) EXPECT_GT(t, 0.0);
}

TEST(Engine, SubsystemWiring) {
  // The decomposed engine exposes its subsystems: the transfer plane
  // carries the configured capacity model and the timeline closes the run.
  EngineConfig config = small_config(35);
  config.supplier_capacity = SupplierCapacityModel::kPerLink;
  auto engine = make_engine(60, 35, config);
  EXPECT_EQ(engine->transfers().kind(), SupplierCapacityModel::kPerLink);
  EXPECT_EQ(engine->transfers().capacity().name(), "per-link");
  EXPECT_EQ(engine->timeline().current_switch(), -1) << "no switch before run()";
  (void)engine->run();
  EXPECT_EQ(engine->timeline().current_switch(), 0);
  EXPECT_TRUE(engine->timeline().experiment_complete());
  EXPECT_EQ(engine->timeline().sessions().size(), engine->sessions().size());
}

TEST(Engine, StatsConsistency) {
  auto engine = make_engine(60, 33, small_config(33));
  (void)engine->run();
  const EngineStats& stats = engine->stats();
  EXPECT_LE(stats.segments_delivered, stats.requests_issued + stats.segments_pushed);
  EXPECT_GT(stats.split_ticks, 0u);
  EXPECT_GT(stats.new_stream_requests, 0u);
}

}  // namespace
}  // namespace gs::stream
