// Config validation/defaults, scenario building, runner comparisons.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "experiments/config.hpp"
#include "experiments/report.hpp"
#include "experiments/runner.hpp"
#include "experiments/scenario.hpp"

namespace gs::exp {
namespace {

TEST(Config, PaperDefaultsMatchTable) {
  // Table 1/2 and S5.1 parameters.
  const Config config = Config::paper_static(1000, AlgorithmKind::kFast);
  EXPECT_DOUBLE_EQ(config.engine.tau, 1.0);
  EXPECT_DOUBLE_EQ(config.engine.playback_rate, 10.0);
  EXPECT_EQ(config.engine.buffer_capacity, 600u);
  EXPECT_EQ(config.engine.q_consecutive, 10u);
  EXPECT_EQ(config.engine.q_startup, 50u);
  EXPECT_EQ(config.neighbor_target, 5u);
  EXPECT_NEAR(config.engine.inbound.mean(), 15.0, 1e-9);
  EXPECT_NEAR(config.engine.inbound.min(), 10.0, 1e-9);
  EXPECT_EQ(config.engine.wire.buffer_map_bits(), 620u);
  EXPECT_EQ(config.engine.wire.data_bits(), 30u * 1024u);
  EXPECT_EQ(config.switch_times.size(), 1u);
  EXPECT_EQ(config.source_count(), 2u);
  EXPECT_DOUBLE_EQ(config.engine.churn_leave_fraction, 0.0);
}

TEST(Config, PaperDynamicChurn) {
  const Config config = Config::paper_dynamic(500, AlgorithmKind::kNormal);
  EXPECT_DOUBLE_EQ(config.engine.churn_leave_fraction, 0.05);
  EXPECT_DOUBLE_EQ(config.engine.churn_join_fraction, 0.05);
}

TEST(Config, ValidationErrors) {
  Config config = Config::paper_static(100, AlgorithmKind::kFast);
  config.switch_times = {};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config::paper_static(100, AlgorithmKind::kFast);
  config.switch_times = {0.0, 0.0};
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config::paper_static(2, AlgorithmKind::kFast);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config = Config::paper_static(100, AlgorithmKind::kFast);
  config.topology = TopologyKind::kTraceFile;
  EXPECT_THROW(config.validate(), std::invalid_argument) << "missing trace path";
}

TEST(Config, EnumStringRoundTrip) {
  EXPECT_EQ(algorithm_from_string("fast"), AlgorithmKind::kFast);
  EXPECT_EQ(algorithm_from_string("normal"), AlgorithmKind::kNormal);
  EXPECT_THROW((void)algorithm_from_string("bogus"), std::invalid_argument);
  EXPECT_EQ(topology_from_string(std::string(to_string(TopologyKind::kSyntheticTrace))),
            TopologyKind::kSyntheticTrace);
  EXPECT_EQ(topology_from_string("ring"), TopologyKind::kRing);
  EXPECT_EQ(capacity_from_string("shared-fifo"), stream::SupplierCapacityModel::kSharedFifo);
  EXPECT_EQ(capacity_from_string("per-link"), stream::SupplierCapacityModel::kPerLink);
  EXPECT_EQ(capacity_from_string(std::string(to_string(stream::SupplierCapacityModel::kPerLink))),
            stream::SupplierCapacityModel::kPerLink);
  EXPECT_THROW((void)capacity_from_string("bogus"), std::invalid_argument);
}

TEST(Scenario, BuildsRepairedOverlay) {
  const Config config = Config::paper_static(300, AlgorithmKind::kFast, 5);
  const BuiltScenario scenario = build_scenario(config);
  EXPECT_EQ(scenario.graph.node_count(), 300u);
  EXPECT_EQ(scenario.latency.node_count(), 300u);
  // Paper: "add random edges ... to let every node hold M=5 connected
  // neighbors".
  for (net::NodeId v = 0; v < scenario.graph.node_count(); ++v) {
    EXPECT_GE(scenario.graph.degree(v), 5u);
  }
  ASSERT_EQ(scenario.sources.size(), 2u);
  EXPECT_NE(scenario.sources[0], scenario.sources[1]);
}

TEST(Scenario, DeterministicInSeed) {
  const Config config = Config::paper_static(200, AlgorithmKind::kFast, 11);
  const BuiltScenario a = build_scenario(config);
  const BuiltScenario b = build_scenario(config);
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.sources, b.sources);
  for (net::NodeId v = 0; v < a.graph.node_count(); ++v) {
    EXPECT_DOUBLE_EQ(a.latency.ping_ms(v), b.latency.ping_ms(v));
  }
}

TEST(Scenario, AllTopologyKindsBuild) {
  for (const TopologyKind kind :
       {TopologyKind::kSyntheticTrace, TopologyKind::kPreferential, TopologyKind::kErdosRenyi,
        TopologyKind::kWattsStrogatz, TopologyKind::kRing}) {
    Config config = Config::paper_static(120, AlgorithmKind::kFast, 3);
    config.topology = kind;
    const BuiltScenario scenario = build_scenario(config);
    EXPECT_EQ(scenario.graph.node_count(), 120u) << to_string(kind);
    EXPECT_GE(scenario.graph.min_degree(
                  [&] {
                    std::vector<net::NodeId> ids(scenario.graph.node_count());
                    for (net::NodeId v = 0; v < ids.size(); ++v) ids[v] = v;
                    return ids;
                  }()),
              5u);
  }
}

TEST(Scenario, StrategyFactory) {
  Config config = Config::paper_static(100, AlgorithmKind::kFast);
  EXPECT_EQ(make_strategy(config)->name(), "fast");
  config.algorithm = AlgorithmKind::kNormal;
  EXPECT_EQ(make_strategy(config)->name(), "normal");
}

TEST(Runner, RunOnceCompletes) {
  const Config config = Config::paper_static(80, AlgorithmKind::kFast, 2);
  const RunResult result = run_once(config);
  ASSERT_EQ(result.switches.size(), 1u);
  EXPECT_EQ(result.primary().prepared_s2, result.primary().tracked);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST(Runner, ComparisonPointPaired) {
  const Config base = Config::paper_static(80, AlgorithmKind::kFast, 5);
  const ComparisonPoint point = compare_at_size(base, 80, 2);
  EXPECT_EQ(point.node_count, 80u);
  EXPECT_EQ(point.trials, 2u);
  EXPECT_GT(point.fast_switch_time, 0.0);
  EXPECT_GT(point.normal_switch_time, 0.0);
  EXPECT_GT(point.fast_overhead, 0.0);
  // Reduction is (normal - fast)/normal of the stored means.
  EXPECT_NEAR(point.reduction(),
              (point.normal_switch_time - point.fast_switch_time) / point.normal_switch_time,
              1e-12);
}

TEST(Runner, SweepProducesOnePointPerSize) {
  const Config base = Config::paper_static(80, AlgorithmKind::kFast, 7);
  const auto points = sweep_sizes(base, {40, 80}, 1);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].node_count, 40u);
  EXPECT_EQ(points[1].node_count, 80u);
}

TEST(Runner, PaperSizesAxis) {
  const auto sizes = paper_sizes();
  ASSERT_EQ(sizes.size(), 6u);
  EXPECT_EQ(sizes.front(), 100u);
  EXPECT_EQ(sizes.back(), 8000u);
}

TEST(Report, CsvOutputs) {
  const Config base = Config::paper_static(60, AlgorithmKind::kFast, 9);
  const auto points = sweep_sizes(base, {60}, 1);
  const std::string path = std::string(::testing::TempDir()) + "/cmp.csv";
  write_comparison_csv(path, points);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("reduction"), std::string::npos);
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
}

}  // namespace
}  // namespace gs::exp
