// Property tests: StreamBuffer against a reference model under randomized
// workloads; Playback under randomized arrival schedules.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "stream/playback.hpp"
#include "stream/stream_buffer.hpp"
#include "util/rng.hpp"

namespace gs::stream {
namespace {

/// Straightforward reference implementation of the FIFO buffer.
class ReferenceBuffer {
 public:
  explicit ReferenceBuffer(std::size_t capacity) : capacity_(capacity) {}

  SegmentId insert(SegmentId id) {
    if (present_.count(id) != 0) return kNoSegment;
    order_.push_back(id);
    present_.insert(id);
    if (order_.size() > capacity_) {
      const SegmentId victim = order_.front();
      order_.pop_front();
      present_.erase(victim);
      return victim;
    }
    return kNoSegment;
  }

  [[nodiscard]] bool contains(SegmentId id) const { return present_.count(id) != 0; }

  [[nodiscard]] std::size_t position_from_tail(SegmentId id) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (order_[order_.size() - 1 - i] == id) return i + 1;
    }
    return 0;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }

 private:
  std::size_t capacity_;
  std::deque<SegmentId> order_;
  std::set<SegmentId> present_;
};

class BufferModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BufferModelTest, AgreesWithReferenceUnderRandomOps) {
  util::Rng rng(GetParam());
  const std::size_t capacity = static_cast<std::size_t>(rng.uniform_int(1, 64));
  StreamBuffer buffer(capacity);
  ReferenceBuffer reference(capacity);
  SegmentId horizon = 0;
  for (int op = 0; op < 3000; ++op) {
    // Mostly-forward id stream with occasional re-inserts and gaps.
    SegmentId id;
    if (rng.bernoulli(0.7)) {
      id = horizon++;
    } else if (rng.bernoulli(0.5) && horizon > 0) {
      id = rng.uniform_int(0, horizon - 1);  // duplicate / old id
    } else {
      horizon += rng.uniform_int(1, 5);  // skip ahead (out-of-order arrival)
      id = horizon++;
    }
    ASSERT_EQ(buffer.insert(id), reference.insert(id)) << "op " << op;
    ASSERT_EQ(buffer.size(), reference.size());
    // Spot-check membership and positions on a few random ids.
    for (int probe = 0; probe < 3; ++probe) {
      const SegmentId q = rng.uniform_int(0, std::max<SegmentId>(1, horizon));
      ASSERT_EQ(buffer.contains(q), reference.contains(q)) << "op " << op << " id " << q;
      ASSERT_EQ(buffer.position_from_tail(q), reference.position_from_tail(q))
          << "op " << op << " id " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferModelTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class PlaybackPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlaybackPropertyTest, InvariantsUnderRandomArrivals) {
  // Segments 0..N-1 arrive at random times; advance() is called at random
  // instants.  Invariants: play times are strictly increasing by >= 1/p
  // between consecutive segments, a segment never plays before it arrived,
  // and all segments eventually play.
  util::Rng rng(GetParam());
  const double rate = 10.0;
  const int n = 200;
  std::vector<double> arrival(n);
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.exponential(12.0);
    arrival[static_cast<std::size_t>(i)] = t;
  }
  // Shuffle arrival order while keeping each segment's own arrival time:
  // swap times between neighbours to emulate out-of-order delivery.
  for (int i = 0; i + 1 < n; ++i) {
    if (rng.bernoulli(0.3)) {
      std::swap(arrival[static_cast<std::size_t>(i)], arrival[static_cast<std::size_t>(i) + 1]);
    }
  }

  Playback pb(rate);
  pb.start(0, 0.0);
  std::vector<double> play_time(n, -1.0);
  std::vector<char> have(static_cast<std::size_t>(n), 0);
  const auto has = [&](SegmentId id) {
    return id >= 0 && id < n && have[static_cast<std::size_t>(id)] != 0;
  };
  const auto on_play = [&](SegmentId id, double when) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, n);
    play_time[static_cast<std::size_t>(id)] = when;
  };

  // Event loop: interleave arrivals (in time order) with random advances.
  std::multimap<double, SegmentId> events;
  for (int i = 0; i < n; ++i) {
    events.emplace(arrival[static_cast<std::size_t>(i)], static_cast<SegmentId>(i));
  }
  double clock = 0.0;
  for (const auto& [when, id] : events) {
    // Random advance strictly before the next arrival.
    if (rng.bernoulli(0.5) && when > clock) {
      const double mid = clock + (when - clock) * rng.uniform();
      pb.advance(mid, has, on_play);
    }
    clock = when;
    have[static_cast<std::size_t>(id)] = 1;
    pb.notify_arrival(id, clock);
    pb.advance(clock, has, on_play);
  }
  pb.advance(clock + static_cast<double>(n) / rate + 1.0, has, on_play);

  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_GE(play_time[idx], 0.0) << "segment " << i << " never played";
    EXPECT_GE(play_time[idx] + 1e-9, arrival[idx]) << "played before arrival";
    if (i > 0) {
      EXPECT_GE(play_time[idx] - play_time[idx - 1], 1.0 / rate - 1e-9)
          << "playback faster than p between " << i - 1 << " and " << i;
    }
  }
  EXPECT_EQ(pb.played_count(), static_cast<std::uint64_t>(n));
  EXPECT_GE(pb.stall_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlaybackPropertyTest,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18, 19, 20));

}  // namespace
}  // namespace gs::stream
