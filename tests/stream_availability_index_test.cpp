// Property test for the availability plane's plan-gate work summary: an
// AvailabilityIndex with work tracking on is driven by a randomized delta
// stream (deliveries, evictions, leaves, joins, repair edges, boundary
// learns, window slides) and, at every checkpoint, each built view's
// summary must satisfy the *conservative* contract behind the engine's
// quiescence gate:
//   - the supplied bitset exactly equals the OR of the alive neighbours'
//     buffer presence over the window (this part is never approximate);
//   - the work mask covers every word that really holds supplied ∧
//     ¬received work — under-reporting is the bug class that would make
//     the gate skip a peer with schedulable work and drift fixed-seed
//     metrics (stream_determinism_test's PlanGate suite pins that end to
//     end); over-reporting is allowed between bulk recomputes and only
//     costs a wasted build;
//   - work_words equals the mask's popcount and the pool has_work lane
//     mirrors its zero/nonzero state;
//   - try_quiesce clears the summary iff the view truly has no work, and
//     deliveries after a quiesce re-arm the summary (the set-only wake
//     path).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/graph.hpp"
#include "net/topology.hpp"
#include "stream/availability_index.hpp"
#include "stream/peer_node.hpp"
#include "util/rng.hpp"

namespace gs::stream {
namespace {

constexpr std::size_t kWordBits = 64;

/// Absolute bit test treating out-of-range positions as clear, mirroring
/// how the index reads owner received sets that have not grown yet.
bool test_oob0(const util::DynamicBitset& bits, std::size_t pos) {
  return (bits.extract_word(pos - pos % kWordBits) >> (pos % kWordBits)) & 1u;
}

struct Swarm {
  net::Graph graph{0};
  PeerPool pool;
  std::vector<PeerNode> peers;
  AvailabilityIndex index;
  std::vector<bool> built;       // view exists (alive, non-source, registered)
  std::vector<SegmentId> cursor; // monotone window anchor fed to sync_window
};

class AvailabilityWorkSummaryTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

void verify_views(Swarm& s) {
  for (net::NodeId v = 0; v < s.peers.size(); ++v) {
    if (!s.built[v]) continue;
    const AvailabilityIndex::View& w = s.index.view(v);

    // Alive-neighbour list equals the graph adjacency filtered by liveness.
    std::vector<net::NodeId> alive;
    for (const net::NodeId nb : s.graph.neighbors(v)) {
      if (s.peers[nb].alive()) alive.push_back(nb);
    }
    ASSERT_EQ(w.alive_neighbors, alive) << "view " << v << " neighbour list drifted";

    // The supplied bitset exactly equals the OR of alive neighbours'
    // presence over the window; the work mask must *cover* every word that
    // really holds supplied ∧ ¬received work (conservative contract).
    bool exact_any = false;
    std::uint32_t mask_words = 0;
    const std::size_t words = (w.supplied.size() + kWordBits - 1) / kWordBits;
    for (std::size_t word = 0; word < words; ++word) {
      std::uint64_t expect_sup = 0;
      for (std::size_t bit = 0; bit < kWordBits; ++bit) {
        const std::size_t slot = word * kWordBits + bit;
        if (slot >= w.supplied.size()) break;
        const std::size_t id = w.window_base + slot;
        bool held = false;
        for (const net::NodeId nb : alive) {
          if (test_oob0(s.peers[nb].buffer.presence(), id)) {
            held = true;
            break;
          }
        }
        if (held) expect_sup |= std::uint64_t{1} << bit;
      }
      ASSERT_EQ(w.supplied.extract_word(word * kWordBits), expect_sup)
          << "view " << v << " supplied word " << word << " drifted";
      const std::uint64_t rec =
          s.peers[v].received.extract_word(w.window_base + word * kWordBits);
      const bool has = (expect_sup & ~rec) != 0;
      if (has) {
        exact_any = true;
        ASSERT_TRUE(w.work_mask.test(word))
            << "view " << v << " work mask under-reports word " << word
            << " — the gate would skip schedulable work";
      }
      if (w.work_mask.test(word)) ++mask_words;
    }
    ASSERT_EQ(w.work_words, mask_words)
        << "view " << v << " work_words out of sync with its mask";
    ASSERT_EQ(s.pool.has_work(v) != 0, w.work_words != 0)
        << "view " << v << " pool has_work lane out of sync";

    // try_quiesce is the exactness restorer: it must clear the summary iff
    // the view truly has no work anywhere in the supplied range.  After the
    // call the summary is exact, so later checkpoints also exercise the
    // set-only re-arm path in apply_gain.
    const bool cleared = s.index.try_quiesce(v, s.peers[v].received, 0);
    if (exact_any) {
      ASSERT_FALSE(cleared) << "view " << v << " quiesced away real work";
      ASSERT_GT(s.index.view(v).work_words, 0u);
    } else {
      ASSERT_EQ(s.index.view(v).work_words, 0u)
          << "view " << v << " failed to quiesce with no work";
      ASSERT_EQ(s.pool.has_work(v), 0) << "view " << v << " lane survived quiesce";
    }
  }
}

TEST_P(AvailabilityWorkSummaryTest, CoversFromScratchRecomputeUnderRandomDeltas) {
  const auto [seed, windowed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));

  constexpr std::size_t kCore = 20;    // wired and alive from the start
  constexpr std::size_t kJoiners = 4;  // dead slots admitted mid-run
  constexpr std::size_t kTotal = kCore + kJoiners;

  Swarm s;
  s.graph = net::preferential_attachment(kCore, 2, rng);
  net::repair_min_degree(s.graph, 4, rng);
  for (std::size_t j = 0; j < kJoiners; ++j) s.graph.add_node();
  s.pool.resize(kTotal);
  s.peers.resize(kTotal);
  s.built.assign(kTotal, false);
  s.cursor.assign(kTotal, 0);
  for (net::NodeId v = 0; v < kTotal; ++v) {
    s.peers[v].bind(s.pool, v);
    s.peers[v].id = v;
    s.peers[v].buffer = StreamBuffer(48);  // small capacity: frequent evictions
  }
  s.pool.is_source(0) = 1;  // supplies neighbours but owns no view
  for (std::size_t j = kCore; j < kTotal; ++j) s.pool.alive(j) = 0;

  // Seed some pre-build buffer state so build() starts from non-trivial
  // supplier counts and work words.
  for (net::NodeId v = 0; v < kCore; ++v) {
    for (auto k = rng.uniform_int(0, 12); k > 0; --k) {
      (void)s.peers[v].mark_received(static_cast<SegmentId>(rng.uniform_int(0, 63)));
    }
  }

  if (windowed) s.index.set_window(256);
  s.index.enable_work_tracking(&s.pool);
  s.index.build(s.graph, s.peers);
  for (net::NodeId v = 1; v < kCore; ++v) s.built[v] = true;
  verify_views(s);

  std::vector<net::NodeId> joinable;
  for (std::size_t j = kCore; j < kTotal; ++j) joinable.push_back(j);
  std::size_t alive_count = kCore - 1;
  SegmentId stream_head = 64;

  const auto random_live = [&]() -> net::NodeId {
    for (;;) {
      const auto v = static_cast<net::NodeId>(rng.uniform_int(0, kTotal - 1));
      if (s.peers[v].alive() && !s.peers[v].is_source()) return v;
    }
  };

  for (int op = 0; op < 600; ++op) {
    const int kind = rng.uniform_int(0, 99);
    if (kind < 55) {
      // Delivery: a random live peer (or the source) gains a segment near
      // the head; the buffer may evict.  Mirrors the engine's delta order:
      // gain first, then the eviction.  The owner's own receive fires no
      // summary update — the conservative design leaves stale marks for
      // try_quiesce to collect.
      const bool source_gain = rng.uniform_int(0, 9) == 0;
      const net::NodeId v = source_gain ? 0 : random_live();
      stream_head += rng.uniform_int(0, 2);
      const auto id = static_cast<SegmentId>(
          std::max<SegmentId>(0, stream_head - rng.uniform_int(0, 40)));
      SegmentId evicted = kNoSegment;
      if (s.peers[v].mark_received(id, &evicted)) {
        s.index.on_gain(s.graph, s.peers, v, id);
        if (evicted != kNoSegment) s.index.on_evict(s.graph, s.peers, v, evicted);
      }
    } else if (kind < 70) {
      // Window slide: the owner's playback advanced.
      const net::NodeId v = random_live();
      s.cursor[v] += rng.uniform_int(0, 96);
      s.index.sync_window(s.peers, v, s.cursor[v]);
    } else if (kind < 80) {
      // Boundary learn.
      const net::NodeId v = random_live();
      const int b =
          std::max(s.peers[v].known_boundary(), static_cast<int>(rng.uniform_int(0, 3)));
      s.peers[v].known_boundary() = b;
      s.index.on_boundary(s.graph, v, b);
    } else if (kind < 90) {
      // Repair edge between two live peers.
      const net::NodeId u = random_live();
      const net::NodeId v = random_live();
      if (u != v && s.graph.add_edge(u, v)) s.index.connect(s.peers, u, v);
    } else if (kind < 95 && !joinable.empty()) {
      // Join: wire a dead slot to a few live peers, then register it.
      const net::NodeId v = joinable.back();
      joinable.pop_back();
      for (int e = 0; e < 4; ++e) (void)s.graph.add_edge(v, random_live());
      s.pool.alive(v) = 1;
      s.index.add_peer(s.graph, s.peers, v);
      s.built[v] = true;
      ++alive_count;
    } else if (alive_count > 3) {
      // Leave: unregister while the graph still holds the edges.
      const net::NodeId v = random_live();
      s.index.remove_peer(s.graph, s.peers, v);
      s.pool.alive(v) = 0;
      s.built[v] = false;
      --alive_count;
    }
    if (op % 50 == 49) verify_views(s);
  }
  verify_views(s);
}

INSTANTIATE_TEST_SUITE_P(SeedsByMode, AvailabilityWorkSummaryTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                                            ::testing::Bool()));

}  // namespace
}  // namespace gs::stream
