// Graph operations, topology generators, degree repair, traces, latency.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "net/graph.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "net/trace.hpp"
#include "util/rng.hpp"

namespace gs::net {
namespace {

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> ids(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) ids[v] = v;
  return ids;
}

TEST(Graph, AddAndQueryEdges) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(0, 1)) << "duplicate rejected";
  EXPECT_FALSE(g.add_edge(1, 0)) << "reverse duplicate rejected";
  EXPECT_FALSE(g.add_edge(2, 2)) << "self loop rejected";
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto n = g.neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_EQ(n[2], 4u);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.degree(0), 0u);
}

TEST(Graph, Isolate) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(Graph, AddNode) {
  Graph g(2);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.add_edge(v, 0));
}

TEST(Graph, ConnectivityAndBfs) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.connected(all_nodes(g)));
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  EXPECT_TRUE(g.connected(all_nodes(g)));
  const auto hops = g.bfs_hops(0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[4], 4u);
}

TEST(Graph, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto hops = g.bfs_hops(0);
  EXPECT_EQ(hops[2], std::numeric_limits<std::size_t>::max());
}

TEST(Topology, PreferentialAttachmentBasics) {
  util::Rng rng(1);
  const Graph g = preferential_attachment(500, 2, rng);
  EXPECT_EQ(g.node_count(), 500u);
  // Every node attaches with >= 1 edge.
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_GE(g.degree(v), 1u);
  // Power-law-ish: some hub should greatly exceed the average degree.
  std::size_t max_degree = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) max_degree = std::max(max_degree, g.degree(v));
  EXPECT_GE(max_degree, 15u);
}

TEST(Topology, ErdosRenyiEdgeCount) {
  util::Rng rng(2);
  const Graph g = erdos_renyi(100, 250, rng);
  EXPECT_EQ(g.edge_count(), 250u);
}

TEST(Topology, WattsStrogatzDegreePreserved) {
  util::Rng rng(3);
  const Graph g = watts_strogatz(100, 2, 0.2, rng);
  // Rewiring preserves the total edge count of the ring lattice.
  EXPECT_EQ(g.edge_count(), 200u);
}

TEST(Topology, RingWithChords) {
  util::Rng rng(4);
  const Graph g = ring_with_chords(50, 10, rng);
  EXPECT_EQ(g.edge_count(), 60u);
  EXPECT_TRUE(g.connected(all_nodes(g)));
}

TEST(Topology, ConnectComponents) {
  util::Rng rng(5);
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  const std::size_t added = connect_components(g, rng);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(g.connected(all_nodes(g)));
}

class RepairTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RepairTest, ReachesMinDegreeAndConnectivity) {
  // The paper's repair step: after it, every node holds >= M=5 neighbours
  // and the overlay is connected, for any generator output.
  const std::size_t n = GetParam();
  util::Rng rng(n);
  Graph g = preferential_attachment(n, 2, rng);
  repair_min_degree(g, 5, rng);
  for (NodeId v = 0; v < g.node_count(); ++v) EXPECT_GE(g.degree(v), 5u);
  EXPECT_TRUE(g.connected(all_nodes(g)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RepairTest, ::testing::Values(10, 50, 100, 500, 1000, 4000));

TEST(Repair, AddsFewEdges) {
  // Pairing deficient nodes keeps the augmentation near the lower bound of
  // sum(deficits)/2; allow 2x slack.
  util::Rng rng(7);
  Graph g = preferential_attachment(1000, 2, rng);
  std::size_t deficit = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    deficit += g.degree(v) < 5 ? 5 - g.degree(v) : 0;
  }
  const std::size_t added = repair_min_degree(g, 5, rng);
  EXPECT_LE(added, deficit);  // each edge fixes >= 1 deficit unit, usually 2
}

TEST(Trace, SynthesizeShape) {
  util::Rng rng(8);
  TraceSynthesisOptions options;
  options.node_count = 300;
  const Trace trace = synthesize_trace(options, rng);
  EXPECT_EQ(trace.node_count(), 300u);
  EXPECT_GT(trace.edge_count(), 298u);  // connected PA graph
  // Average degree "too small for media streaming" (paper: needs repair).
  EXPECT_LT(trace.average_degree(), 5.0);
  for (const auto& node : trace.nodes) {
    EXPECT_GE(node.ping_ms, 10.0);
    EXPECT_LE(node.ping_ms, 800.0);
    EXPECT_GT(node.speed_kbps, 0.0);
    EXPECT_FALSE(node.ip.empty());
  }
}

TEST(Trace, RoundTripSerialization) {
  util::Rng rng(9);
  TraceSynthesisOptions options;
  options.node_count = 50;
  const Trace trace = synthesize_trace(options, rng);
  std::stringstream buffer;
  write_trace(trace, buffer);
  const Trace back = parse_trace(buffer);
  EXPECT_EQ(back.name, trace.name);
  ASSERT_EQ(back.node_count(), trace.node_count());
  ASSERT_EQ(back.edge_count(), trace.edge_count());
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    EXPECT_EQ(back.nodes[i].ip, trace.nodes[i].ip);
    EXPECT_NEAR(back.nodes[i].ping_ms, trace.nodes[i].ping_ms, 1e-6);
  }
  EXPECT_EQ(back.edges, trace.edges);
}

TEST(Trace, ParseRejectsMalformed) {
  std::stringstream bad1("node 0 1.2.3.4 6346 10.0 56\nedge 0 5\n");
  EXPECT_THROW((void)parse_trace(bad1), std::runtime_error);
  std::stringstream bad2("frob 1 2\n");
  EXPECT_THROW((void)parse_trace(bad2), std::runtime_error);
  std::stringstream bad3("node 3 1.2.3.4 6346 10.0 56\n");
  EXPECT_THROW((void)parse_trace(bad3), std::runtime_error) << "ids must be dense";
}

TEST(Trace, FamilySpansSizes) {
  const auto family = synthesize_trace_family(5, 100, 1600, 42);
  ASSERT_EQ(family.size(), 5u);
  EXPECT_EQ(family.front().node_count(), 100u);
  EXPECT_EQ(family.back().node_count(), 1600u);
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_GT(family[i].node_count(), family[i - 1].node_count());
  }
}

TEST(Trace, FamilyDeterministic) {
  const auto a = synthesize_trace_family(3, 100, 400, 7);
  const auto b = synthesize_trace_family(3, 100, 400, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].edges, b[i].edges);
  }
}

TEST(Latency, LinkDelayFormula) {
  LatencyModel model({100.0, 200.0, 60.0});
  EXPECT_DOUBLE_EQ(model.ping_ms(1), 200.0);
  // (100 + 200) / 4 ms one way = 75 ms.
  EXPECT_DOUBLE_EQ(model.link_delay_s(0, 1), 0.075);
  EXPECT_DOUBLE_EQ(model.link_delay_s(1, 0), 0.075);
}

TEST(Latency, JitterBounded) {
  LatencyModel model({100.0, 100.0});
  util::Rng rng(10);
  const double base = model.link_delay_s(0, 1);
  for (int i = 0; i < 1000; ++i) {
    const double d = model.jittered_delay_s(0, 1, rng);
    EXPECT_GE(d, base * 0.8 - 1e-12);
    EXPECT_LE(d, base * 1.2 + 1e-12);
  }
}

TEST(Latency, AddNode) {
  LatencyModel model({50.0});
  model.add_node(150.0);
  EXPECT_EQ(model.node_count(), 2u);
  EXPECT_DOUBLE_EQ(model.link_delay_s(0, 1), 0.05);
}

}  // namespace
}  // namespace gs::net
