// SegmentRegistry, Session bookkeeping, SwitchMetrics helpers.
#include <gtest/gtest.h>

#include "stream/metrics.hpp"
#include "stream/segment.hpp"

namespace gs::stream {
namespace {

TEST(SegmentRegistry, AppendAssignsSequentialIds) {
  SegmentRegistry registry;
  EXPECT_EQ(registry.next_id(), 0);
  const SegmentId a = registry.append(0, -45.0, kNoSegment);
  const SegmentId b = registry.append(0, -44.9, kNoSegment);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.next_id(), 2);
}

TEST(SegmentRegistry, InfoRoundTrip) {
  SegmentRegistry registry;
  registry.append(0, -1.0, kNoSegment);
  const SegmentId id = registry.append(1, 0.0, /*prev_session_end=*/0);
  const SegmentInfo& info = registry.info(id);
  EXPECT_EQ(info.id, id);
  EXPECT_EQ(info.session, 1);
  EXPECT_DOUBLE_EQ(info.created_at, 0.0);
  EXPECT_EQ(info.prev_session_end, 0);
}

TEST(Session, LifecycleFlags) {
  Session s;
  EXPECT_FALSE(s.started());
  EXPECT_FALSE(s.ended());
  s.first = 10;
  EXPECT_TRUE(s.started());
  EXPECT_FALSE(s.ended());
  EXPECT_EQ(s.generated(15), 5u);
  s.last = 19;
  EXPECT_TRUE(s.ended());
  EXPECT_EQ(s.generated(100), 10u);
}

TEST(SwitchMetrics, Averages) {
  SwitchMetrics m;
  m.tracked = 3;
  m.finish_times = {2.0, 4.0};
  m.prepared_times = {10.0, 20.0, 30.0};
  m.finished_s1 = 2;
  m.prepared_s2 = 3;
  EXPECT_DOUBLE_EQ(m.avg_finish_time(), 3.0);
  EXPECT_DOUBLE_EQ(m.avg_prepared_time(), 20.0);
  EXPECT_DOUBLE_EQ(m.max_prepared_time(), 30.0);
  EXPECT_DOUBLE_EQ(m.max_finish_time(), 4.0);
  EXPECT_NEAR(m.completion_fraction(), 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(m.to_string().empty());
}

TEST(SwitchMetrics, EmptySafe) {
  SwitchMetrics m;
  EXPECT_EQ(m.avg_finish_time(), 0.0);
  EXPECT_EQ(m.avg_prepared_time(), 0.0);
  EXPECT_EQ(m.completion_fraction(), 1.0);
}

TEST(ReductionRatio, PaperDefinition) {
  EXPECT_NEAR(reduction_ratio(20.0, 15.0), 0.25, 1e-12);
  EXPECT_EQ(reduction_ratio(0.0, 5.0), 0.0);
  EXPECT_LT(reduction_ratio(10.0, 12.0), 0.0) << "fast slower -> negative";
}

}  // namespace
}  // namespace gs::stream
