// Direct unit tests for SwitchTimeline's session/boundary bookkeeping
// (previously only covered indirectly through whole-engine runs).
#include <gtest/gtest.h>

#include <vector>

#include "stream/switch_timeline.hpp"

namespace gs::stream {
namespace {

SwitchTimeline two_switch_timeline() {
  SwitchTimeline timeline;
  timeline.set_sources(10, {0, 1, 2}, {0.0, 60.0});
  return timeline;
}

TEST(SwitchTimeline, SetSourcesBuildsSessionsAndMetricRows) {
  SwitchTimeline timeline = two_switch_timeline();
  EXPECT_TRUE(timeline.configured());
  ASSERT_EQ(timeline.session_count(), 3u);
  EXPECT_EQ(timeline.switch_count(), 2u);
  EXPECT_EQ(timeline.session(0).source, 0u);
  EXPECT_EQ(timeline.session(2).source, 2u);
  EXPECT_FALSE(timeline.session(0).started());
  EXPECT_EQ(timeline.current_switch(), -1);
  ASSERT_EQ(timeline.results().size(), 2u);
  EXPECT_EQ(timeline.results()[1].switch_index, 1);
  EXPECT_DOUBLE_EQ(timeline.results()[1].switch_time, 60.0);
}

TEST(SwitchTimeline, BeginSwitchEndsSessionAndIndexesBoundary) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.25, 99);
  EXPECT_EQ(timeline.current_switch(), 0);
  EXPECT_TRUE(timeline.session(0).ended());
  EXPECT_EQ(timeline.session(0).last, 99);
  EXPECT_EQ(timeline.switch_ending_at(99), 0);
  EXPECT_EQ(timeline.switch_ending_at(98), -1);
  EXPECT_DOUBLE_EQ(timeline.metrics(0).switch_time, 0.25);
}

TEST(SwitchTimeline, RequiredPrefixClampsToShortFinalSession) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 99);
  // Session 1 still streaming: the full Qs is required.
  EXPECT_EQ(timeline.required_prefix(0, 50), 50u);
  // Session 1 ended after only 20 segments: the prefix clamps.
  timeline.session(1).first = 100;
  timeline.begin_switch(1, 60.0, 119);
  EXPECT_EQ(timeline.required_prefix(0, 50), 20u);
}

TEST(SwitchTimeline, InitSwitchCountersComputesQ1Q2FromReceivedSet) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 49);

  PeerNode p;
  p.start_id() = 10;
  for (SegmentId id = 10; id < 30; ++id) p.preload(id);  // 30..49 missing
  p.preload(52);                                          // one S2 segment
  timeline.init_switch_counters(p, 0, 0.0, /*q_startup=*/10);
  EXPECT_EQ(p.active_switch(), 0);
  EXPECT_EQ(p.sw_lo(), 10);
  EXPECT_EQ(p.q1_missing(), 20u);
  EXPECT_EQ(p.q0_at_switch(), 20u);
  EXPECT_EQ(p.q2_missing(), 9u) << "prefix 50..59 minus the received 52";
  EXPECT_FALSE(p.sw_finished());
  EXPECT_FALSE(p.sw_prepared());
  EXPECT_FALSE(p.gate_armed());
}

TEST(SwitchTimeline, InitSwitchCountersReleasesStaleGate) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 49);

  PeerNode p;
  p.playback = Playback(10.0);
  p.playback.start(0, 0.0);
  p.playback.set_gate(40);
  p.gate_armed() = true;
  timeline.init_switch_counters(p, 0, 1.0, 10);
  EXPECT_EQ(p.playback.gate(), kNoSegment) << "stale gate released";
}

TEST(SwitchTimeline, CensorStaleCountsOnlyUnfinishedEarlierSwitches) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 49);

  PeerNode p;
  p.tracked() = true;
  p.active_switch() = 0;
  p.sw_finished() = true;
  p.sw_prepared() = false;
  timeline.censor_stale(p, 1);
  EXPECT_EQ(timeline.metrics(0).censored_finish, 0u);
  EXPECT_EQ(timeline.metrics(0).censored_prepare, 1u);
  // A peer already on the new switch is not censored again.
  p.active_switch() = 1;
  timeline.censor_stale(p, 1);
  EXPECT_EQ(timeline.metrics(0).censored_prepare, 1u);
}

TEST(SwitchTimeline, ExperimentCompleteRequiresLastSwitchClosed) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  EXPECT_FALSE(timeline.experiment_complete());

  timeline.begin_switch(0, 0.0, 49);
  timeline.metrics(0).tracked = 2;
  timeline.metrics(0).finished_s1 = 2;
  timeline.metrics(0).prepared_s2 = 2;
  EXPECT_TRUE(timeline.switch_closed(0));
  EXPECT_FALSE(timeline.experiment_complete()) << "switch 1 has not fired";

  timeline.session(1).first = 50;
  timeline.begin_switch(1, 60.0, 119);
  timeline.metrics(1).tracked = 2;
  timeline.metrics(1).finished_s1 = 1;
  timeline.metrics(1).censored_finish = 1;
  timeline.metrics(1).prepared_s2 = 1;
  EXPECT_FALSE(timeline.experiment_complete());
  timeline.metrics(1).censored_prepare = 1;
  EXPECT_TRUE(timeline.experiment_complete()) << "censoring closes the books too";
}

TEST(SwitchTimeline, SampleTracksAveragesTrackedPeers) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 49);
  timeline.metrics(0).tracked = 2;

  std::vector<PeerNode> peers(3);
  for (std::size_t i = 0; i < 2; ++i) {
    PeerNode& p = peers[i];
    p.tracked() = true;
    p.active_switch() = 0;
    p.q0_at_switch() = 10;
  }
  peers[0].q1_missing() = 5;   // half drained
  peers[0].q2_missing() = 10;  // nothing of S2 yet
  peers[1].q1_missing() = 0;   // done with S1
  peers[1].q2_missing() = 0;   // fully prepared
  peers[2].tracked() = false;  // must be ignored

  timeline.sample_tracks(2.0, peers, /*q_startup=*/10);
  ASSERT_EQ(timeline.metrics(0).track.size(), 1u);
  const TrackPoint& point = timeline.metrics(0).track.front();
  EXPECT_DOUBLE_EQ(point.time, 2.0);
  EXPECT_EQ(point.live_tracked, 2u);
  EXPECT_DOUBLE_EQ(point.undelivered_ratio_s1, 0.25);  // mean of 0.5 and 0.0
  EXPECT_DOUBLE_EQ(point.delivered_ratio_s2, 0.5);     // mean of 0.0 and 1.0
}

TEST(SwitchTimeline, CensorUnfinishedClosesTheBooksAtHorizon) {
  SwitchTimeline timeline = two_switch_timeline();
  timeline.session(0).first = 0;
  timeline.begin_switch(0, 0.0, 49);

  std::vector<PeerNode> peers(2);
  peers[0].tracked() = true;
  peers[0].active_switch() = 0;
  peers[0].sw_finished() = true;   // finished but never prepared
  peers[1].tracked() = false;      // untracked: ignored
  timeline.censor_unfinished(peers);
  EXPECT_EQ(timeline.metrics(0).censored_finish, 0u);
  EXPECT_EQ(timeline.metrics(0).censored_prepare, 1u);
}

}  // namespace
}  // namespace gs::stream
