// Direct unit tests for PeerNode's node-local bookkeeping (previously only
// covered indirectly through whole-engine runs): the received set, the
// startup run, pending-request pruning and the next_missing helper.
#include <gtest/gtest.h>

#include "stream/peer_node.hpp"

namespace gs::stream {
namespace {

TEST(PeerNode, MarkReceivedGrowsSetAndFillsBuffer) {
  PeerNode p;
  EXPECT_FALSE(p.has_received(0));
  EXPECT_TRUE(p.mark_received(0));
  EXPECT_TRUE(p.mark_received(5000));  // far beyond the initial bitset size
  EXPECT_TRUE(p.has_received(0));
  EXPECT_TRUE(p.has_received(5000));
  EXPECT_FALSE(p.has_received(4999));
  EXPECT_TRUE(p.buffer.contains(5000));
}

TEST(PeerNode, MarkReceivedRejectsDuplicates) {
  PeerNode p;
  EXPECT_TRUE(p.mark_received(42));
  EXPECT_FALSE(p.mark_received(42));
}

TEST(PeerNode, HasReceivedHandlesOutOfRangeIds) {
  PeerNode p;
  p.mark_received(3);
  EXPECT_FALSE(p.has_received(kNoSegment));  // negative sentinel
  EXPECT_FALSE(p.has_received(1'000'000));   // beyond the bitset
}

TEST(PeerNode, CountMissingCountsGapsInclusively) {
  PeerNode p;
  for (const SegmentId id : {10, 11, 13, 15}) p.mark_received(id);
  EXPECT_EQ(p.count_missing(10, 15), 2u);  // 12 and 14
  EXPECT_EQ(p.count_missing(0, 9), 10u);
  EXPECT_EQ(p.count_missing(10, 11), 0u);
  EXPECT_EQ(p.count_missing(20, 10), 0u) << "empty range";
  EXPECT_EQ(p.count_missing(14, 200), 186u) << "ids past the bitset are missing";
}

TEST(PeerNode, NextMissingSkipsReceivedRuns) {
  PeerNode p;
  for (SegmentId id = 0; id < 8; ++id) p.mark_received(id);
  p.mark_received(9);
  EXPECT_EQ(next_missing(p.received, 0), 8);
  EXPECT_EQ(next_missing(p.received, 8), 8);
  EXPECT_EQ(next_missing(p.received, 9), 10);
  // From beyond the bitset, everything is implicitly clear.
  EXPECT_EQ(next_missing(p.received, 1'000'000), 1'000'000);
}

TEST(PeerNode, ExtendStartRunFollowsContiguousPrefix) {
  PeerNode p;
  p.start_id() = 100;
  for (const SegmentId id : {100, 101, 102, 104}) p.mark_received(id);
  p.extend_start_run();
  EXPECT_EQ(p.start_run(), 3u) << "run stops at the 103 gap";
  p.mark_received(103);
  p.extend_start_run();
  EXPECT_EQ(p.start_run(), 5u) << "filling the gap extends through 104";
}

TEST(PeerNode, PrunePendingDropsOnlyExpiredEntries) {
  for (const bool flat : {false, true}) {
    PeerNode p;
    p.pending.use_flat(flat);
    p.pending.set(1, 5.0);  // retry-eligible at t=5
    p.pending.set(2, 10.0);
    p.pending.set(3, 7.5);
    p.prune_pending(7.5);
    EXPECT_EQ(p.pending.size(), 1u) << "flat=" << flat;
    EXPECT_TRUE(p.pending.contains(2)) << "flat=" << flat;
    p.prune_pending(10.0);
    EXPECT_TRUE(p.pending.empty()) << "flat=" << flat;
  }
}

TEST(PeerNode, PreloadIsIdempotentAvailabilityOnly) {
  PeerNode p;
  p.preload(7);
  p.preload(7);
  EXPECT_TRUE(p.has_received(7));
  EXPECT_EQ(p.duplicates_received, 0u) << "preload is not a wire delivery";
  EXPECT_FALSE(p.playback.started());
}

TEST(PeerNode, DefaultsMatchDispatchExpectations) {
  PeerNode p;
  EXPECT_EQ(p.tick_group, kNoTickGroup);
  EXPECT_EQ(p.tick_task, nullptr);
  EXPECT_TRUE(p.alive());
  EXPECT_EQ(p.active_switch(), -1);
  EXPECT_EQ(p.known_boundary(), -1);
}

}  // namespace
}  // namespace gs::stream
