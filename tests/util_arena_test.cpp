// Unit tests for the bump arena backing the per-tick plan transients:
// alignment, chunk growth, oversized requests, reset-and-reuse, and the
// std::vector-compatible ArenaAllocator (including its heap fallback).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

namespace gs::util {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  auto* a = static_cast<std::byte*>(arena.allocate(13, 1));
  auto* b = static_cast<std::byte*>(arena.allocate(8, 8));
  auto* c = static_cast<std::byte*>(arena.allocate(24, 16));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  // Writing each block fully must not disturb the others.
  std::memset(a, 0xAA, 13);
  std::memset(b, 0xBB, 8);
  std::memset(c, 0xCC, 24);
  EXPECT_EQ(std::to_integer<int>(a[12]), 0xAA);
  EXPECT_EQ(std::to_integer<int>(b[7]), 0xBB);
  EXPECT_EQ(std::to_integer<int>(c[23]), 0xCC);
}

TEST(Arena, GrowsBeyondTheFirstChunk) {
  Arena arena(64);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(arena.allocate(48, 8), nullptr);
  }
  EXPECT_GE(arena.capacity_bytes(), 100u * 48u);
  EXPECT_GE(arena.allocated_bytes(), 100u * 48u);
}

TEST(Arena, OversizedRequestGetsItsOwnChunk) {
  Arena arena(64);
  auto* big = static_cast<std::byte*>(arena.allocate(10'000, 8));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 10'000);
  EXPECT_EQ(std::to_integer<int>(big[9'999]), 0x5A);
}

TEST(Arena, ResetReusesCapacityWithoutFreeing) {
  Arena arena(128);
  for (int i = 0; i < 50; ++i) (void)arena.allocate(100, 8);
  const std::size_t grown = arena.capacity_bytes();
  arena.reset();
  EXPECT_EQ(arena.capacity_bytes(), grown) << "reset keeps the chunks";
  // The rewound arena serves the same workload without growing further.
  for (int i = 0; i < 50; ++i) (void)arena.allocate(100, 8);
  EXPECT_EQ(arena.capacity_bytes(), grown);
}

TEST(ArenaAllocator, VectorRoundTripInArena) {
  Arena arena(1024);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i * 3);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i * 3);
  EXPECT_GT(arena.allocated_bytes(), 1000u * sizeof(int) - 1);
}

TEST(ArenaAllocator, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v;  // default allocator: no arena
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocator, EqualityFollowsTheArena) {
  Arena a(64);
  Arena b(64);
  EXPECT_TRUE(ArenaAllocator<int>(&a) == ArenaAllocator<int>(&a));
  EXPECT_TRUE(ArenaAllocator<int>(&a) != ArenaAllocator<int>(&b));
  EXPECT_TRUE(ArenaAllocator<int>() == ArenaAllocator<double>());
}

TEST(ArenaAllocator, MoveAssignmentPropagatesTheArena) {
  Arena arena(1024);
  std::vector<int, ArenaAllocator<int>> src{ArenaAllocator<int>(&arena)};
  src.assign(64, 7);
  std::vector<int, ArenaAllocator<int>> dst;  // heap-backed
  dst = std::move(src);                       // POCMA: dst adopts the arena
  EXPECT_EQ(dst.size(), 64u);
  EXPECT_EQ(dst[63], 7);
  EXPECT_EQ(dst.get_allocator().arena(), &arena);
}

}  // namespace
}  // namespace gs::util
