// Event queue ordering/cancellation and simulator clock semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"

namespace gs::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(7.0, [] {});
  q.schedule(4.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterRunFails) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop_and_run();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelBogusIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(999));
}

TEST(EventQueue, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  const EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(1);
    q.schedule(2.0, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, ClockAdvances) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  double seen = -1.0;
  sim.at(2.5, [&] { seen = sim.now(); });
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, NegativeStartTime) {
  Simulator sim(-45.0);
  EXPECT_DOUBLE_EQ(sim.now(), -45.0);
  std::vector<double> times;
  sim.after(5.0, [&] { times.push_back(sim.now()); });
  sim.at(-10.0, [&] { times.push_back(sim.now()); });
  sim.run_until(0.0);
  EXPECT_EQ(times, (std::vector<double>{-40.0, -10.0}));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int ran = 0;
  sim.at(1.0, [&] { ++ran; });
  sim.at(5.0, [&] { ++ran; });
  EXPECT_EQ(sim.run_until(3.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.pending());
  EXPECT_EQ(sim.run_until(10.0), 1u);
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.at(3.0, [&] { ran = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(ran);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator sim;
  int ran = 0;
  sim.at(1.0, [&] {
    ++ran;
    sim.stop();
  });
  sim.at(2.0, [&] { ++ran; });
  sim.run_all();
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.pending());
}

TEST(Simulator, RunAllDrains) {
  Simulator sim;
  int ran = 0;
  for (int i = 1; i <= 5; ++i) {
    sim.at(i, [&] { ++ran; });
  }
  EXPECT_EQ(sim.run_all(), 5u);
  EXPECT_EQ(ran, 5);
  EXPECT_FALSE(sim.pending());
}

TEST(Periodic, FiresAtFixedInterval) {
  Simulator sim;
  std::vector<double> fire_times;
  PeriodicTask task(sim, 1.0, 0.5, [&](double t) { fire_times.push_back(t); });
  sim.run_until(3.0);
  ASSERT_EQ(fire_times.size(), 5u);
  EXPECT_DOUBLE_EQ(fire_times[0], 1.0);
  EXPECT_DOUBLE_EQ(fire_times[4], 3.0);
}

TEST(Periodic, CancelStopsFiring) {
  Simulator sim;
  int fired = 0;
  PeriodicTask task(sim, 1.0, 1.0, [&](double) { ++fired; });
  sim.run_until(2.5);
  EXPECT_EQ(fired, 2);
  task.cancel();
  EXPECT_FALSE(task.active());
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Periodic, CancelFromWithinAction) {
  Simulator sim;
  int fired = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(sim, 1.0, 1.0, [&](double) {
    if (++fired == 3) handle->cancel();
  });
  handle = &task;
  sim.run_until(100.0);
  EXPECT_EQ(fired, 3);
}

TEST(Periodic, DestructionCancels) {
  Simulator sim;
  int fired = 0;
  {
    PeriodicTask task(sim, 1.0, 1.0, [&](double) { ++fired; });
    sim.run_until(1.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Periodic, TwoTasksInterleave) {
  Simulator sim;
  std::vector<int> order;
  PeriodicTask a(sim, 0.0, 1.0, [&](double) { order.push_back(1); });
  PeriodicTask b(sim, 0.5, 1.0, [&](double) { order.push_back(2); });
  sim.run_until(2.2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1}));
}

}  // namespace
}  // namespace gs::sim
