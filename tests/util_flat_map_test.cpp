// Unit tests for the open-addressed FlatSegmentMap that replaces the
// per-peer unordered_map bookkeeping: round-trips, growth across rehash,
// backward-shift deletion (including wrapped clusters), and erase_if's
// hole re-examination ordering.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace gs::util {
namespace {

TEST(FlatSegmentMap, EmptyMapAllocatesNothing) {
  FlatSegmentMap<double> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.memory_bytes(), 0u);
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_FALSE(map.erase(0));
}

TEST(FlatSegmentMap, SetFindOverwriteErase) {
  FlatSegmentMap<double> map;
  map.set(10, 1.5);
  map.set(11, 2.5);
  ASSERT_NE(map.find(10), nullptr);
  EXPECT_EQ(*map.find(10), 1.5);
  map.set(10, 9.0);  // overwrite, not a second slot
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(*map.find(10), 9.0);
  EXPECT_TRUE(map.erase(10));
  EXPECT_FALSE(map.contains(10));
  EXPECT_TRUE(map.contains(11));
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatSegmentMap, GrowthPreservesAllEntries) {
  FlatSegmentMap<std::int64_t> map;
  for (std::int64_t k = 0; k < 5000; ++k) map.set(k * 7, k);
  EXPECT_EQ(map.size(), 5000u);
  for (std::int64_t k = 0; k < 5000; ++k) {
    const std::int64_t* v = map.find(k * 7);
    ASSERT_NE(v, nullptr) << "key " << k * 7 << " lost in growth";
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(map.find(1), nullptr);
}

TEST(FlatSegmentMap, RandomizedAgainstUnorderedMap) {
  Rng rng(1234);
  FlatSegmentMap<int> flat;
  std::unordered_map<std::int64_t, int> reference;
  for (int step = 0; step < 20000; ++step) {
    const auto key = rng.uniform_int(0, 499);
    const int op = static_cast<int>(rng.uniform_int(0, 2));
    if (op == 0) {
      flat.set(key, step);
      reference[key] = step;
    } else if (op == 1) {
      EXPECT_EQ(flat.erase(key), reference.erase(key) > 0) << "step " << step;
    } else {
      const int* v = flat.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(v, nullptr) << "step " << step;
      } else {
        ASSERT_NE(v, nullptr) << "step " << step;
        EXPECT_EQ(*v, it->second);
      }
    }
  }
  EXPECT_EQ(flat.size(), reference.size());
  std::size_t visited = 0;
  flat.for_each([&](std::int64_t key, int value) {
    ++visited;
    const auto it = reference.find(key);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, reference.size());
}

TEST(FlatSegmentMap, BackwardShiftKeepsProbeChainsReachable) {
  // Dense consecutive keys force long probe clusters at small capacities;
  // erasing from the middle of a cluster must not strand later entries.
  FlatSegmentMap<int> map;
  for (std::int64_t k = 0; k < 64; ++k) map.set(k, static_cast<int>(k));
  for (std::int64_t k = 0; k < 64; k += 2) EXPECT_TRUE(map.erase(k));
  for (std::int64_t k = 1; k < 64; k += 2) {
    const int* v = map.find(k);
    ASSERT_NE(v, nullptr) << "key " << k << " stranded by backward shift";
    EXPECT_EQ(*v, static_cast<int>(k));
  }
  // Erased keys can be reinserted and found again.
  for (std::int64_t k = 0; k < 64; k += 2) map.set(k, -1);
  for (std::int64_t k = 0; k < 64; k += 2) {
    ASSERT_NE(map.find(k), nullptr);
    EXPECT_EQ(*map.find(k), -1);
  }
}

TEST(FlatSegmentMap, EraseIfReexaminesTheHoleSlot) {
  // After a backward shift the erased slot holds a new candidate; erase_if
  // must test it too or consecutive doomed entries survive.  Exercise many
  // layouts and check against the reference filter.
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    FlatSegmentMap<int> map;
    std::unordered_map<std::int64_t, int> reference;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 99));
    for (int i = 0; i < n; ++i) {
      const auto key = rng.uniform_int(0, 63);
      const int value = static_cast<int>(rng.uniform_int(0, 9));
      map.set(key, value);
      reference[key] = value;
    }
    map.erase_if([](int value) { return value < 5; });
    for (auto it = reference.begin(); it != reference.end();) {
      it = it->second < 5 ? reference.erase(it) : ++it;
    }
    EXPECT_EQ(map.size(), reference.size()) << "round " << round;
    for (const auto& [key, value] : reference) {
      const int* v = map.find(key);
      ASSERT_NE(v, nullptr) << "round " << round << " key " << key;
      EXPECT_EQ(*v, value);
    }
  }
}

TEST(FlatSegmentMap, ClearKeepsCapacity) {
  FlatSegmentMap<int> map;
  for (std::int64_t k = 0; k < 100; ++k) map.set(k, 1);
  const std::size_t bytes = map.memory_bytes();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.memory_bytes(), bytes);
  map.set(5, 2);
  EXPECT_EQ(map.size(), 1u);
}

}  // namespace
}  // namespace gs::util
