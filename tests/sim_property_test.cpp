// Property tests for the event queue's ordering contract and the batched
// tick dispatcher.
//
// The contract under test is what every determinism guarantee in the repo
// rests on: events pop in (time, insertion-sequence) order — a stable sort
// of the schedule — no matter how insertions, ties, cancellations and the
// two entry kinds (closure / pooled plain-struct) interleave.  BatchTicker
// must additionally reproduce, event for event, the schedule an equivalent
// set of per-member PeriodicTasks would produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gs::sim {
namespace {

struct Scheduled {
  Time at = 0.0;
  int tag = 0;
  EventId id = 0;
  bool cancelled = false;
};

/// Pops everything and records the tags in execution order.
std::vector<int> drain(EventQueue& queue, std::vector<int>& fired) {
  while (!queue.empty()) queue.pop_and_run();
  return fired;
}

TEST(EventQueueProperty, TiesPopInInsertionOrderUnderRandomInterleaving) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue queue;
    std::vector<int> fired;
    std::vector<Scheduled> reference;
    const int count = 3 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < count; ++i) {
      // A small discrete time domain forces heavy timestamp collisions.
      const Time at = static_cast<Time>(rng.uniform_int(0, 5));
      Scheduled s;
      s.at = at;
      s.tag = i;
      s.id = queue.schedule(at, [&fired, i] { fired.push_back(i); });
      reference.push_back(s);
    }
    // Random cancellations (the churn path).
    for (Scheduled& s : reference) {
      if (rng.bernoulli(0.2)) {
        EXPECT_TRUE(queue.cancel(s.id));
        s.cancelled = true;
      }
    }
    std::vector<int> expected;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Scheduled& a, const Scheduled& b) { return a.at < b.at; });
    for (const Scheduled& s : reference) {
      if (!s.cancelled) expected.push_back(s.tag);
    }
    EXPECT_EQ(drain(queue, fired), expected) << "trial " << trial;
  }
}

struct RecordingSink final : EventSink {
  std::vector<int>* fired = nullptr;
  void on_event(std::uint64_t a, std::uint64_t /*b*/) override {
    fired->push_back(static_cast<int>(a));
  }
};

TEST(EventQueueProperty, PooledAndClosureEventsShareOneOrderingDomain) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue queue;
    std::vector<int> fired;
    RecordingSink sink;
    sink.fired = &fired;
    std::vector<Scheduled> reference;
    const int count = 3 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < count; ++i) {
      const Time at = static_cast<Time>(rng.uniform_int(0, 5));
      Scheduled s;
      s.at = at;
      s.tag = i;
      if (rng.bernoulli(0.5)) {
        s.id = queue.schedule(at, sink, static_cast<std::uint64_t>(i), 0);
      } else {
        s.id = queue.schedule(at, [&fired, i] { fired.push_back(i); });
      }
      reference.push_back(s);
    }
    std::vector<int> expected;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Scheduled& a, const Scheduled& b) { return a.at < b.at; });
    for (const Scheduled& s : reference) expected.push_back(s.tag);
    EXPECT_EQ(drain(queue, fired), expected) << "trial " << trial;
  }
}

TEST(EventQueueProperty, PooledEventsCancelLikeClosures) {
  EventQueue queue;
  std::vector<int> fired;
  RecordingSink sink;
  sink.fired = &fired;
  const EventId keep = queue.schedule(1.0, sink, 1, 0);
  const EventId drop = queue.schedule(1.0, sink, 2, 0);
  EXPECT_TRUE(queue.cancel(drop));
  EXPECT_FALSE(queue.cancel(drop));
  queue.pop_and_run();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.cancel(keep));
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

// ---------------------------------------------------------- BatchTicker ---

/// One (time, member) observation per tick, whichever dispatcher fired it.
using Observation = std::pair<Time, std::uint32_t>;

TEST(EventQueueProperty, ShardedPopOrderEqualsUnshardedOrder) {
  // The sharded core's merge contract: however events are distributed over
  // shard heaps, the pop sequence must equal the single-queue (time,
  // insertion-sequence) order.  Random times (with forced ties), random
  // shard targets, random cancellations — mirrored into an unsharded
  // reference queue.
  util::Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    EventQueue sharded;
    sharded.set_shard_count(1 + static_cast<std::size_t>(rng.uniform_int(1, 6)));
    EventQueue reference;
    std::vector<int> sharded_fired;
    std::vector<int> reference_fired;
    std::vector<EventId> sharded_ids;
    std::vector<EventId> reference_ids;
    for (int tag = 0; tag < 200; ++tag) {
      const Time at = std::floor(rng.uniform(0.0, 20.0));  // dense ties
      const auto shard =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(sharded.shard_count()) - 1));
      sharded_ids.push_back(sharded.schedule_on(shard, at, [tag, &sharded_fired] {
        sharded_fired.push_back(tag);
      }));
      reference_ids.push_back(reference.schedule(at, [tag, &reference_fired] {
        reference_fired.push_back(tag);
      }));
    }
    for (int k = 0; k < 30; ++k) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(0, 199));
      EXPECT_EQ(sharded.cancel(sharded_ids[victim]), reference.cancel(reference_ids[victim]));
    }
    EXPECT_EQ(sharded.size(), reference.size());
    while (!reference.empty()) {
      ASSERT_FALSE(sharded.empty());
      EXPECT_EQ(sharded.next_time(), reference.next_time());
      std::size_t from_shard = 99;
      sharded.pop_and_run(&from_shard);
      EXPECT_LT(from_shard, sharded.shard_count());
      reference.pop_and_run();
    }
    EXPECT_TRUE(sharded.empty());
    EXPECT_EQ(sharded_fired, reference_fired) << "shard layout changed execution order";
  }
}

TEST(BatchTickerProperty, SweepsMembersInArmOrderRegardlessOfInsertionInterleaving) {
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Simulator sim;
    std::vector<Observation> seen;
    BatchTicker ticker(sim, 1.0, [&seen](std::uint32_t member, Time now) {
      seen.emplace_back(now, member);
    });
    // Interleave group creation and member insertion arbitrarily; phases
    // collide on purpose (two groups share each phase).
    const std::size_t group_count = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    std::vector<std::size_t> groups;
    std::vector<std::vector<std::uint32_t>> expected_members(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      groups.push_back(ticker.add_group(static_cast<Time>(g % 2) * 0.5));
    }
    std::uint32_t next_member = 0;
    for (int i = 0; i < 20; ++i) {
      const auto g = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(group_count) - 1));
      ticker.add_member(groups[g], next_member);
      expected_members[g].push_back(next_member);
      ++next_member;
    }
    sim.run_until(2.25);  // fires at 0, 0.5, 1, 1.5, 2 (three even, two odd)
    // Reference: groups ordered by (fire time, creation order), members in
    // arm order within each sweep.
    std::vector<Observation> expected;
    for (Time t = 0.0; t <= 2.25; t += 0.5) {
      for (std::size_t g = 0; g < group_count; ++g) {
        const Time phase = static_cast<Time>(g % 2) * 0.5;
        const double k = (t - phase) / 1.0;
        if (t < phase || k != std::floor(k)) continue;
        for (const std::uint32_t m : expected_members[g]) expected.emplace_back(t, m);
      }
    }
    EXPECT_EQ(seen, expected) << "trial " << trial;
  }
}

TEST(BatchTickerProperty, MatchesPerMemberPeriodicTaskSchedule) {
  // The mini-model of the engine's determinism guarantee: the same phase
  // assignment driven by N PeriodicTasks and by a BatchTicker must observe
  // identical (time, member) sequences — including timestamp ties across
  // groups and with an unrelated periodic event.
  util::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t members = 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    const std::size_t shard = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<Time> phases;
    for (std::size_t s = 0; s <= members / shard; ++s) {
      phases.push_back(rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 1.0));
    }

    std::vector<Observation> per_member;
    {
      Simulator sim;
      std::vector<std::unique_ptr<PeriodicTask>> tasks;
      PeriodicTask other(sim, 0.0, 0.25, [&per_member](double now) {
        per_member.emplace_back(now, 9999);
      });
      for (std::uint32_t m = 0; m < members; ++m) {
        tasks.push_back(std::make_unique<PeriodicTask>(
            sim, phases[m / shard], 1.0,
            [&per_member, m](double now) { per_member.emplace_back(now, m); }));
      }
      sim.run_until(5.0);
    }

    std::vector<Observation> batched;
    {
      Simulator sim;
      PeriodicTask other(sim, 0.0, 0.25, [&batched](double now) {
        batched.emplace_back(now, 9999);
      });
      BatchTicker ticker(sim, 1.0, [&batched](std::uint32_t member, Time now) {
        batched.emplace_back(now, member);
      });
      std::vector<std::size_t> groups;
      for (std::uint32_t m = 0; m < members; ++m) {
        const std::size_t s = m / shard;
        if (s >= groups.size()) groups.push_back(ticker.add_group(phases[s]));
        ticker.add_member(groups[s], m);
      }
      sim.run_until(5.0);
    }
    EXPECT_EQ(per_member, batched) << "trial " << trial;
  }
}

TEST(BatchTickerProperty, RemovalPreservesOrderAndEmptyGroupsGoDormant) {
  Simulator sim;
  std::vector<Observation> seen;
  BatchTicker ticker(sim, 1.0, [&seen](std::uint32_t member, Time now) {
    seen.emplace_back(now, member);
  });
  const std::size_t g = ticker.add_group(0.0);
  for (std::uint32_t m = 0; m < 4; ++m) ticker.add_member(g, m);
  sim.run_until(0.5);
  ticker.remove_member(g, 1);
  ticker.remove_member(g, 3);
  EXPECT_EQ(ticker.member_count(g), 2u);
  sim.run_until(1.5);
  ticker.remove_member(g, 0);
  ticker.remove_member(g, 2);
  sim.run_until(5.0);
  EXPECT_FALSE(ticker.group_live(g)) << "group with no members must stop re-arming";
  EXPECT_FALSE(sim.pending());
  const std::vector<Observation> expected = {
      {0.0, 0}, {0.0, 1}, {0.0, 2}, {0.0, 3}, {1.0, 0}, {1.0, 2}};
  EXPECT_EQ(seen, expected);
}

// ----------------------------------------------------------- batched pops ---

/// Batchable across times: mimics the transfer plane's delivery drain
/// (processing schedules nothing).  Records (time, tag) per item.
struct BatchableSink final : EventSink {
  std::vector<Observation>* fired = nullptr;
  Simulator* sim = nullptr;
  std::uint64_t batches = 0;
  void on_event(std::uint64_t a, std::uint64_t /*b*/) override {
    fired->emplace_back(sim->now(), static_cast<std::uint32_t>(a));
  }
  [[nodiscard]] bool batchable() const noexcept override { return true; }
  [[nodiscard]] bool batch_across_times() const noexcept override { return true; }
  void on_batch(const PooledBatchItem* items, std::size_t count) override {
    ++batches;
    for (std::size_t i = 0; i < count; ++i) {
      fired->emplace_back(items[i].at, static_cast<std::uint32_t>(items[i].a));
    }
  }
};

TEST(BatchPopProperty, BatchedRunsPreserveThePopOrderAcrossTimes) {
  // The delivery-drain contract: with batched pops enabled, a mix of
  // batchable pooled events and closure events must observe exactly the
  // (time, sequence) order the unbatched loop produces — runs merely
  // arrive through on_batch, carrying each item's own fire time.
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Observation> batched;
    std::vector<Observation> reference;
    std::uint64_t batch_count = 0;
    for (const bool batch_pop : {true, false}) {
      Simulator sim;
      sim.enable_batch_pop(batch_pop);
      BatchableSink sink;
      std::vector<Observation>& out = batch_pop ? batched : reference;
      sink.fired = &out;
      sink.sim = &sim;
      util::Rng gen(static_cast<std::uint64_t>(trial) + 7);
      for (std::uint32_t tag = 0; tag < 120; ++tag) {
        const Time at = std::floor(gen.uniform(0.0, 12.0));  // dense ties
        if (gen.bernoulli(0.75)) {
          sim.at(at, sink, tag, 0);
        } else {
          sim.at(at, [&out, tag, &sim] { out.emplace_back(sim.now(), 100000 + tag); });
        }
      }
      const std::size_t ran = sim.run_until(20.0);
      EXPECT_EQ(ran, 120u);
      if (batch_pop) batch_count = sink.batches;
    }
    EXPECT_EQ(batched, reference) << "trial " << trial;
    EXPECT_GT(batch_count, 0u);
  }
}

TEST(BatchPopProperty, NonBatchableSinksPopSingly) {
  Simulator sim;
  sim.enable_batch_pop(true);
  RecordingSink sink;  // batchable() = false
  std::vector<int> ints;
  sink.fired = &ints;
  for (int i = 0; i < 5; ++i) sim.at(1.0, sink, static_cast<std::uint64_t>(i), 0);
  sim.run_until(2.0);
  EXPECT_EQ(ints, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BatchTickerProperty, SuperBatchedSweepsEqualPerGroupSweeps) {
  // The super-batch contract: with batched pops enabled, same-timestamp
  // groups are swept as ONE concatenated whole-group pass; the observed
  // (time, member) sequence must equal the per-group sweeps — including
  // under random tie-heavy phases and with an unrelated periodic closure
  // breaking runs mid-timestamp-cluster.
  util::Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t group_count = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    std::vector<Time> phases;
    for (std::size_t g = 0; g < group_count; ++g) {
      // Heavy collisions: half the groups fire at 0, the rest at 0 or 0.5.
      phases.push_back(rng.bernoulli(0.5) ? 0.0 : (rng.bernoulli(0.5) ? 0.5 : 0.0));
    }
    std::vector<std::vector<std::uint32_t>> members(group_count);
    std::uint32_t next_member = 0;
    for (int i = 0; i < 24; ++i) {
      members[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(group_count) - 1))]
          .push_back(next_member++);
    }

    std::vector<Observation> super_batched;
    std::vector<Observation> per_group;
    std::uint64_t superbatches = 0;
    for (const bool batch_pop : {true, false}) {
      Simulator sim;
      sim.enable_batch_pop(batch_pop);
      std::vector<Observation>& out = batch_pop ? super_batched : per_group;
      PeriodicTask other(sim, 0.0, 0.25,
                         [&out](double now) { out.emplace_back(now, 9999); });
      BatchTicker ticker(sim, 1.0, [&out](std::uint32_t member, Time now) {
        out.emplace_back(now, member);
      });
      ticker.set_batch_sweep(
          [&out](const std::vector<std::uint32_t>& swept, Time now) {
            for (const std::uint32_t m : swept) out.emplace_back(now, m);
          });
      for (std::size_t g = 0; g < group_count; ++g) {
        if (members[g].empty()) continue;
        const std::size_t group = ticker.add_group(phases[g]);
        for (const std::uint32_t m : members[g]) ticker.add_member(group, m);
      }
      sim.run_until(4.25);
      if (batch_pop) superbatches = ticker.superbatch_count();
    }
    EXPECT_EQ(super_batched, per_group) << "trial " << trial;
    // With >= 2 non-empty groups tied at phase 0 a super-batch must fire.
    std::size_t tied_at_zero = 0;
    for (std::size_t g = 0; g < group_count; ++g) {
      if (!members[g].empty() && phases[g] == 0.0) ++tied_at_zero;
    }
    if (tied_at_zero >= 2) {
      EXPECT_GT(superbatches, 0u) << "trial " << trial;
    }
  }
}

TEST(BatchTickerProperty, DestructionCancelsPendingSweeps) {
  Simulator sim;
  int fired = 0;
  {
    BatchTicker ticker(sim, 1.0, [&fired](std::uint32_t, Time) { ++fired; });
    ticker.add_member(ticker.add_group(1.0), 7);
    sim.run_until(1.5);
    EXPECT_EQ(fired, 1);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace gs::sim
