// Property tests for the event queue's ordering contract and the batched
// tick dispatcher.
//
// The contract under test is what every determinism guarantee in the repo
// rests on: events pop in (time, insertion-sequence) order — a stable sort
// of the schedule — no matter how insertions, ties, cancellations and the
// two entry kinds (closure / pooled plain-struct) interleave.  BatchTicker
// must additionally reproduce, event for event, the schedule an equivalent
// set of per-member PeriodicTasks would produce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace gs::sim {
namespace {

struct Scheduled {
  Time at = 0.0;
  int tag = 0;
  EventId id = 0;
  bool cancelled = false;
};

/// Pops everything and records the tags in execution order.
std::vector<int> drain(EventQueue& queue, std::vector<int>& fired) {
  while (!queue.empty()) queue.pop_and_run();
  return fired;
}

TEST(EventQueueProperty, TiesPopInInsertionOrderUnderRandomInterleaving) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue queue;
    std::vector<int> fired;
    std::vector<Scheduled> reference;
    const int count = 3 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < count; ++i) {
      // A small discrete time domain forces heavy timestamp collisions.
      const Time at = static_cast<Time>(rng.uniform_int(0, 5));
      Scheduled s;
      s.at = at;
      s.tag = i;
      s.id = queue.schedule(at, [&fired, i] { fired.push_back(i); });
      reference.push_back(s);
    }
    // Random cancellations (the churn path).
    for (Scheduled& s : reference) {
      if (rng.bernoulli(0.2)) {
        EXPECT_TRUE(queue.cancel(s.id));
        s.cancelled = true;
      }
    }
    std::vector<int> expected;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Scheduled& a, const Scheduled& b) { return a.at < b.at; });
    for (const Scheduled& s : reference) {
      if (!s.cancelled) expected.push_back(s.tag);
    }
    EXPECT_EQ(drain(queue, fired), expected) << "trial " << trial;
  }
}

struct RecordingSink final : EventSink {
  std::vector<int>* fired = nullptr;
  void on_event(std::uint64_t a, std::uint64_t /*b*/) override {
    fired->push_back(static_cast<int>(a));
  }
};

TEST(EventQueueProperty, PooledAndClosureEventsShareOneOrderingDomain) {
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    EventQueue queue;
    std::vector<int> fired;
    RecordingSink sink;
    sink.fired = &fired;
    std::vector<Scheduled> reference;
    const int count = 3 + static_cast<int>(rng.uniform_int(0, 60));
    for (int i = 0; i < count; ++i) {
      const Time at = static_cast<Time>(rng.uniform_int(0, 5));
      Scheduled s;
      s.at = at;
      s.tag = i;
      if (rng.bernoulli(0.5)) {
        s.id = queue.schedule(at, sink, static_cast<std::uint64_t>(i), 0);
      } else {
        s.id = queue.schedule(at, [&fired, i] { fired.push_back(i); });
      }
      reference.push_back(s);
    }
    std::vector<int> expected;
    std::stable_sort(reference.begin(), reference.end(),
                     [](const Scheduled& a, const Scheduled& b) { return a.at < b.at; });
    for (const Scheduled& s : reference) expected.push_back(s.tag);
    EXPECT_EQ(drain(queue, fired), expected) << "trial " << trial;
  }
}

TEST(EventQueueProperty, PooledEventsCancelLikeClosures) {
  EventQueue queue;
  std::vector<int> fired;
  RecordingSink sink;
  sink.fired = &fired;
  const EventId keep = queue.schedule(1.0, sink, 1, 0);
  const EventId drop = queue.schedule(1.0, sink, 2, 0);
  EXPECT_TRUE(queue.cancel(drop));
  EXPECT_FALSE(queue.cancel(drop));
  queue.pop_and_run();
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.cancel(keep));
  EXPECT_EQ(fired, (std::vector<int>{1}));
}

// ---------------------------------------------------------- BatchTicker ---

/// One (time, member) observation per tick, whichever dispatcher fired it.
using Observation = std::pair<Time, std::uint32_t>;

TEST(EventQueueProperty, ShardedPopOrderEqualsUnshardedOrder) {
  // The sharded core's merge contract: however events are distributed over
  // shard heaps, the pop sequence must equal the single-queue (time,
  // insertion-sequence) order.  Random times (with forced ties), random
  // shard targets, random cancellations — mirrored into an unsharded
  // reference queue.
  util::Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    EventQueue sharded;
    sharded.set_shard_count(1 + static_cast<std::size_t>(rng.uniform_int(1, 6)));
    EventQueue reference;
    std::vector<int> sharded_fired;
    std::vector<int> reference_fired;
    std::vector<EventId> sharded_ids;
    std::vector<EventId> reference_ids;
    for (int tag = 0; tag < 200; ++tag) {
      const Time at = std::floor(rng.uniform(0.0, 20.0));  // dense ties
      const auto shard =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(sharded.shard_count()) - 1));
      sharded_ids.push_back(sharded.schedule_on(shard, at, [tag, &sharded_fired] {
        sharded_fired.push_back(tag);
      }));
      reference_ids.push_back(reference.schedule(at, [tag, &reference_fired] {
        reference_fired.push_back(tag);
      }));
    }
    for (int k = 0; k < 30; ++k) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(0, 199));
      EXPECT_EQ(sharded.cancel(sharded_ids[victim]), reference.cancel(reference_ids[victim]));
    }
    EXPECT_EQ(sharded.size(), reference.size());
    while (!reference.empty()) {
      ASSERT_FALSE(sharded.empty());
      EXPECT_EQ(sharded.next_time(), reference.next_time());
      std::size_t from_shard = 99;
      sharded.pop_and_run(&from_shard);
      EXPECT_LT(from_shard, sharded.shard_count());
      reference.pop_and_run();
    }
    EXPECT_TRUE(sharded.empty());
    EXPECT_EQ(sharded_fired, reference_fired) << "shard layout changed execution order";
  }
}

TEST(BatchTickerProperty, SweepsMembersInArmOrderRegardlessOfInsertionInterleaving) {
  util::Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    Simulator sim;
    std::vector<Observation> seen;
    BatchTicker ticker(sim, 1.0, [&seen](std::uint32_t member, Time now) {
      seen.emplace_back(now, member);
    });
    // Interleave group creation and member insertion arbitrarily; phases
    // collide on purpose (two groups share each phase).
    const std::size_t group_count = 2 + static_cast<std::size_t>(rng.uniform_int(0, 3));
    std::vector<std::size_t> groups;
    std::vector<std::vector<std::uint32_t>> expected_members(group_count);
    for (std::size_t g = 0; g < group_count; ++g) {
      groups.push_back(ticker.add_group(static_cast<Time>(g % 2) * 0.5));
    }
    std::uint32_t next_member = 0;
    for (int i = 0; i < 20; ++i) {
      const auto g = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(group_count) - 1));
      ticker.add_member(groups[g], next_member);
      expected_members[g].push_back(next_member);
      ++next_member;
    }
    sim.run_until(2.25);  // fires at 0, 0.5, 1, 1.5, 2 (three even, two odd)
    // Reference: groups ordered by (fire time, creation order), members in
    // arm order within each sweep.
    std::vector<Observation> expected;
    for (Time t = 0.0; t <= 2.25; t += 0.5) {
      for (std::size_t g = 0; g < group_count; ++g) {
        const Time phase = static_cast<Time>(g % 2) * 0.5;
        const double k = (t - phase) / 1.0;
        if (t < phase || k != std::floor(k)) continue;
        for (const std::uint32_t m : expected_members[g]) expected.emplace_back(t, m);
      }
    }
    EXPECT_EQ(seen, expected) << "trial " << trial;
  }
}

TEST(BatchTickerProperty, MatchesPerMemberPeriodicTaskSchedule) {
  // The mini-model of the engine's determinism guarantee: the same phase
  // assignment driven by N PeriodicTasks and by a BatchTicker must observe
  // identical (time, member) sequences — including timestamp ties across
  // groups and with an unrelated periodic event.
  util::Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t members = 1 + static_cast<std::size_t>(rng.uniform_int(0, 12));
    const std::size_t shard = 1 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<Time> phases;
    for (std::size_t s = 0; s <= members / shard; ++s) {
      phases.push_back(rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 1.0));
    }

    std::vector<Observation> per_member;
    {
      Simulator sim;
      std::vector<std::unique_ptr<PeriodicTask>> tasks;
      PeriodicTask other(sim, 0.0, 0.25, [&per_member](double now) {
        per_member.emplace_back(now, 9999);
      });
      for (std::uint32_t m = 0; m < members; ++m) {
        tasks.push_back(std::make_unique<PeriodicTask>(
            sim, phases[m / shard], 1.0,
            [&per_member, m](double now) { per_member.emplace_back(now, m); }));
      }
      sim.run_until(5.0);
    }

    std::vector<Observation> batched;
    {
      Simulator sim;
      PeriodicTask other(sim, 0.0, 0.25, [&batched](double now) {
        batched.emplace_back(now, 9999);
      });
      BatchTicker ticker(sim, 1.0, [&batched](std::uint32_t member, Time now) {
        batched.emplace_back(now, member);
      });
      std::vector<std::size_t> groups;
      for (std::uint32_t m = 0; m < members; ++m) {
        const std::size_t s = m / shard;
        if (s >= groups.size()) groups.push_back(ticker.add_group(phases[s]));
        ticker.add_member(groups[s], m);
      }
      sim.run_until(5.0);
    }
    EXPECT_EQ(per_member, batched) << "trial " << trial;
  }
}

TEST(BatchTickerProperty, RemovalPreservesOrderAndEmptyGroupsGoDormant) {
  Simulator sim;
  std::vector<Observation> seen;
  BatchTicker ticker(sim, 1.0, [&seen](std::uint32_t member, Time now) {
    seen.emplace_back(now, member);
  });
  const std::size_t g = ticker.add_group(0.0);
  for (std::uint32_t m = 0; m < 4; ++m) ticker.add_member(g, m);
  sim.run_until(0.5);
  ticker.remove_member(g, 1);
  ticker.remove_member(g, 3);
  EXPECT_EQ(ticker.member_count(g), 2u);
  sim.run_until(1.5);
  ticker.remove_member(g, 0);
  ticker.remove_member(g, 2);
  sim.run_until(5.0);
  EXPECT_FALSE(ticker.group_live(g)) << "group with no members must stop re-arming";
  EXPECT_FALSE(sim.pending());
  const std::vector<Observation> expected = {
      {0.0, 0}, {0.0, 1}, {0.0, 2}, {0.0, 3}, {1.0, 0}, {1.0, 2}};
  EXPECT_EQ(seen, expected);
}

// ----------------------------------------------------------- batched pops ---

/// Batchable across times: mimics the transfer plane's delivery drain
/// (processing schedules nothing).  Records (time, tag) per item.
struct BatchableSink final : EventSink {
  std::vector<Observation>* fired = nullptr;
  Simulator* sim = nullptr;
  std::uint64_t batches = 0;
  void on_event(std::uint64_t a, std::uint64_t /*b*/) override {
    fired->emplace_back(sim->now(), static_cast<std::uint32_t>(a));
  }
  [[nodiscard]] bool batchable() const noexcept override { return true; }
  [[nodiscard]] bool batch_across_times() const noexcept override { return true; }
  void on_batch(const PooledBatchItem* items, std::size_t count) override {
    ++batches;
    for (std::size_t i = 0; i < count; ++i) {
      fired->emplace_back(items[i].at, static_cast<std::uint32_t>(items[i].a));
    }
  }
};

TEST(BatchPopProperty, BatchedRunsPreserveThePopOrderAcrossTimes) {
  // The delivery-drain contract: with batched pops enabled, a mix of
  // batchable pooled events and closure events must observe exactly the
  // (time, sequence) order the unbatched loop produces — runs merely
  // arrive through on_batch, carrying each item's own fire time.
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Observation> batched;
    std::vector<Observation> reference;
    std::uint64_t batch_count = 0;
    for (const bool batch_pop : {true, false}) {
      Simulator sim;
      sim.enable_batch_pop(batch_pop);
      BatchableSink sink;
      std::vector<Observation>& out = batch_pop ? batched : reference;
      sink.fired = &out;
      sink.sim = &sim;
      util::Rng gen(static_cast<std::uint64_t>(trial) + 7);
      for (std::uint32_t tag = 0; tag < 120; ++tag) {
        const Time at = std::floor(gen.uniform(0.0, 12.0));  // dense ties
        if (gen.bernoulli(0.75)) {
          sim.at(at, sink, tag, 0);
        } else {
          sim.at(at, [&out, tag, &sim] { out.emplace_back(sim.now(), 100000 + tag); });
        }
      }
      const std::size_t ran = sim.run_until(20.0);
      EXPECT_EQ(ran, 120u);
      if (batch_pop) batch_count = sink.batches;
    }
    EXPECT_EQ(batched, reference) << "trial " << trial;
    EXPECT_GT(batch_count, 0u);
  }
}

TEST(BatchPopProperty, NonBatchableSinksPopSingly) {
  Simulator sim;
  sim.enable_batch_pop(true);
  RecordingSink sink;  // batchable() = false
  std::vector<int> ints;
  sink.fired = &ints;
  for (int i = 0; i < 5; ++i) sim.at(1.0, sink, static_cast<std::uint64_t>(i), 0);
  sim.run_until(2.0);
  EXPECT_EQ(ints, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BatchTickerProperty, SuperBatchedSweepsEqualPerGroupSweeps) {
  // The super-batch contract: with batched pops enabled, same-timestamp
  // groups are swept as ONE concatenated whole-group pass; the observed
  // (time, member) sequence must equal the per-group sweeps — including
  // under random tie-heavy phases and with an unrelated periodic closure
  // breaking runs mid-timestamp-cluster.
  util::Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t group_count = 2 + static_cast<std::size_t>(rng.uniform_int(0, 5));
    std::vector<Time> phases;
    for (std::size_t g = 0; g < group_count; ++g) {
      // Heavy collisions: half the groups fire at 0, the rest at 0 or 0.5.
      phases.push_back(rng.bernoulli(0.5) ? 0.0 : (rng.bernoulli(0.5) ? 0.5 : 0.0));
    }
    std::vector<std::vector<std::uint32_t>> members(group_count);
    std::uint32_t next_member = 0;
    for (int i = 0; i < 24; ++i) {
      members[static_cast<std::size_t>(
                  rng.uniform_int(0, static_cast<std::int64_t>(group_count) - 1))]
          .push_back(next_member++);
    }

    std::vector<Observation> super_batched;
    std::vector<Observation> per_group;
    std::uint64_t superbatches = 0;
    for (const bool batch_pop : {true, false}) {
      Simulator sim;
      sim.enable_batch_pop(batch_pop);
      std::vector<Observation>& out = batch_pop ? super_batched : per_group;
      PeriodicTask other(sim, 0.0, 0.25,
                         [&out](double now) { out.emplace_back(now, 9999); });
      BatchTicker ticker(sim, 1.0, [&out](std::uint32_t member, Time now) {
        out.emplace_back(now, member);
      });
      ticker.set_batch_sweep(
          [&out](const std::vector<std::uint32_t>& swept, Time now) {
            for (const std::uint32_t m : swept) out.emplace_back(now, m);
          });
      for (std::size_t g = 0; g < group_count; ++g) {
        if (members[g].empty()) continue;
        const std::size_t group = ticker.add_group(phases[g]);
        for (const std::uint32_t m : members[g]) ticker.add_member(group, m);
      }
      sim.run_until(4.25);
      if (batch_pop) superbatches = ticker.superbatch_count();
    }
    EXPECT_EQ(super_batched, per_group) << "trial " << trial;
    // With >= 2 non-empty groups tied at phase 0 a super-batch must fire.
    std::size_t tied_at_zero = 0;
    for (std::size_t g = 0; g < group_count; ++g) {
      if (!members[g].empty() && phases[g] == 0.0) ++tied_at_zero;
    }
    if (tied_at_zero >= 2) {
      EXPECT_GT(superbatches, 0u) << "trial " << trial;
    }
  }
}

// --------------------------------------------------- timing-wheel backend ---
//
// The wheel's entire contract is backend equivalence: whatever the workload,
// the pop sequence must be bit-identical to the binary-heap backend's global
// (time, sequence) order.  These properties drive both backends with the
// same random scripts and compare execution traces.

/// One scripted schedule operation, applied identically to both backends.
struct WheelScript {
  Time at = 0.0;
  int tag = 0;
  bool pooled = false;
  bool rearm = false;   ///< closure schedules a follow-up from inside its pop
  Time rearm_at = 0.0;  ///< may precede `at` (exercises the late-arrival path)
};

/// Loads a script into one queue; returns the ids of the top-level entries.
std::vector<EventId> load_script(EventQueue& queue, RecordingSink& sink,
                                 std::vector<int>& fired,
                                 const std::vector<WheelScript>& script) {
  std::vector<EventId> ids;
  for (const WheelScript& s : script) {
    if (s.pooled) {
      ids.push_back(queue.schedule(s.at, sink, static_cast<std::uint64_t>(s.tag), 0));
    } else if (s.rearm) {
      ids.push_back(queue.schedule(s.at, [&queue, &fired, s] {
        fired.push_back(s.tag);
        queue.schedule(s.rearm_at, [&fired, s] { fired.push_back(s.tag + 100000); });
      }));
    } else {
      ids.push_back(queue.schedule(s.at, [&fired, s] { fired.push_back(s.tag); }));
    }
  }
  return ids;
}

std::vector<WheelScript> random_script(util::Rng& rng, int count) {
  std::vector<WheelScript> script;
  for (int tag = 0; tag < count; ++tag) {
    WheelScript s;
    const double shape = rng.uniform();
    if (shape < 0.55) {
      // Dense integer ties, including pre-anchor (warm-up) times.
      s.at = static_cast<Time>(rng.uniform_int(-3, 20));
    } else if (shape < 0.85) {
      // Continuous near/coarse-horizon times.
      s.at = rng.uniform(0.0, 400.0);
    } else {
      // Far horizon: overflows the near and coarse wheels into the spill
      // heap at every quantum under test.
      s.at = rng.uniform(0.0, 60000.0);
    }
    s.tag = tag;
    s.pooled = rng.bernoulli(0.4);
    if (!s.pooled && rng.bernoulli(0.3)) {
      s.rearm = true;
      // Follow-ups may land before their parent (late arrival into a bucket
      // the cursor already passed) or far ahead.
      s.rearm_at = s.at + rng.uniform(-8.0, 40.0);
    }
    script.push_back(s);
  }
  return script;
}

TEST(TimingWheelProperty, MixedWorkloadPopsIdenticallyToHeapBackend) {
  util::Rng rng(31337);
  for (const double quantum : {0.25, 1.0, 3.0}) {
    for (int trial = 0; trial < 12; ++trial) {
      EventQueue heap;
      EventQueue wheel;
      wheel.enable_timing_wheel(quantum);
      std::vector<int> heap_fired;
      std::vector<int> wheel_fired;
      RecordingSink heap_sink;
      heap_sink.fired = &heap_fired;
      RecordingSink wheel_sink;
      wheel_sink.fired = &wheel_fired;
      const std::vector<WheelScript> script = random_script(rng, 150);
      const std::vector<EventId> heap_ids = load_script(heap, heap_sink, heap_fired, script);
      const std::vector<EventId> wheel_ids =
          load_script(wheel, wheel_sink, wheel_fired, script);
      // Random cancellations, mirrored; both backends must agree on hits.
      for (int k = 0; k < 25; ++k) {
        const auto victim = static_cast<std::size_t>(rng.uniform_int(0, 149));
        EXPECT_EQ(heap.cancel(heap_ids[victim]), wheel.cancel(wheel_ids[victim]));
      }
      EXPECT_EQ(heap.size(), wheel.size());
      while (!heap.empty() || !wheel.empty()) {
        ASSERT_FALSE(heap.empty());
        ASSERT_FALSE(wheel.empty());
        ASSERT_EQ(heap.next_time(), wheel.next_time())
            << "quantum " << quantum << " trial " << trial;
        heap.pop_and_run();
        wheel.pop_and_run();
      }
      EXPECT_EQ(heap_fired, wheel_fired) << "quantum " << quantum << " trial " << trial;
      EXPECT_GT(wheel.wheel_telemetry().scheduled, 0u);
      EXPECT_EQ(heap.wheel_telemetry().scheduled, 0u);
    }
  }
}

TEST(TimingWheelProperty, ShardedWheelMatchesShardedHeap) {
  // Cross-shard routing on wheel shards: the merged pop sequence (and the
  // shard each pop drains from) must equal the heap-backed sharded queue's.
  // Alternates enable order to prove set_shard_count and
  // enable_timing_wheel compose both ways.
  util::Rng rng(90210);
  for (int round = 0; round < 12; ++round) {
    const std::size_t shards = 1 + static_cast<std::size_t>(rng.uniform_int(1, 6));
    EventQueue heap;
    heap.set_shard_count(shards);
    EventQueue wheel;
    if (round % 2 == 0) {
      wheel.set_shard_count(shards);
      wheel.enable_timing_wheel(0.5);
    } else {
      wheel.enable_timing_wheel(0.5);
      wheel.set_shard_count(shards);
    }
    std::vector<int> heap_fired;
    std::vector<int> wheel_fired;
    std::vector<EventId> heap_ids;
    std::vector<EventId> wheel_ids;
    for (int tag = 0; tag < 200; ++tag) {
      // Dense ties plus a far-horizon tail that lands in the spill heap.
      const Time at = rng.bernoulli(0.8) ? std::floor(rng.uniform(0.0, 20.0))
                                         : std::floor(rng.uniform(0.0, 30000.0));
      const auto shard = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(shards) - 1));
      heap_ids.push_back(
          heap.schedule_on(shard, at, [tag, &heap_fired] { heap_fired.push_back(tag); }));
      wheel_ids.push_back(
          wheel.schedule_on(shard, at, [tag, &wheel_fired] { wheel_fired.push_back(tag); }));
    }
    for (int k = 0; k < 30; ++k) {
      const auto victim = static_cast<std::size_t>(rng.uniform_int(0, 199));
      EXPECT_EQ(heap.cancel(heap_ids[victim]), wheel.cancel(wheel_ids[victim]));
    }
    while (!heap.empty()) {
      ASSERT_FALSE(wheel.empty());
      EXPECT_EQ(heap.next_time(), wheel.next_time());
      std::size_t heap_shard = 99;
      std::size_t wheel_shard = 99;
      heap.pop_and_run(&heap_shard);
      wheel.pop_and_run(&wheel_shard);
      EXPECT_EQ(heap_shard, wheel_shard) << "pop drained a different shard";
    }
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(heap_fired, wheel_fired) << "round " << round;
  }
}

TEST(TimingWheelProperty, BatchedPopsMatchHeapBackendBatchedPops) {
  // pop_batch over wheel shards: batchable pooled runs must be cut at the
  // same points and carry the same (time, tag) items as the heap backend's.
  util::Rng rng(555);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Observation> by_backend[2];
    std::uint64_t batches[2] = {0, 0};
    for (const bool use_wheel : {false, true}) {
      Simulator sim;
      sim.enable_batch_pop(true);
      if (use_wheel) sim.enable_timing_wheel(1.0);
      BatchableSink sink;
      std::vector<Observation>& out = by_backend[use_wheel ? 1 : 0];
      sink.fired = &out;
      sink.sim = &sim;
      util::Rng gen(static_cast<std::uint64_t>(trial) * 31 + 5);
      for (std::uint32_t tag = 0; tag < 140; ++tag) {
        const Time at = std::floor(gen.uniform(0.0, 12.0));  // dense ties
        if (gen.bernoulli(0.7)) {
          sim.at(at, sink, tag, 0);
        } else {
          sim.at(at, [&out, tag, &sim] { out.emplace_back(sim.now(), 100000 + tag); });
        }
      }
      const std::size_t ran = sim.run_until(20.0);
      EXPECT_EQ(ran, 140u);
      batches[use_wheel ? 1 : 0] = sink.batches;
    }
    EXPECT_EQ(by_backend[0], by_backend[1]) << "trial " << trial;
    // Identical pop order implies identical run boundaries.
    EXPECT_EQ(batches[0], batches[1]) << "trial " << trial;
    EXPECT_GT(batches[1], 0u);
  }
}

TEST(TimingWheelProperty, FarHorizonWorkloadExercisesCoarseWheelAndSpill) {
  // Telemetry sanity: a workload far beyond the near horizon must route
  // through the overflow levels (promotions as the cursor advances, a
  // non-empty spill peak) and still pop in nondecreasing time order.
  util::Rng rng(2718);
  EventQueue queue;
  queue.enable_timing_wheel(1.0);
  for (int i = 0; i < 400; ++i) {
    queue.schedule(rng.uniform(0.0, 50000.0), [] {});
  }
  Time last = -1.0;
  while (!queue.empty()) {
    const Time next = queue.next_time();
    EXPECT_GE(next, last);
    last = next;
    queue.pop_and_run();
  }
  const EventQueue::WheelTelemetry telemetry = queue.wheel_telemetry();
  EXPECT_EQ(telemetry.scheduled, 400u);
  EXPECT_GT(telemetry.overflow_promotions, 0u)
      << "50000s horizon never promoted out of the overflow levels";
  EXPECT_GT(telemetry.spill_peak, 0u)
      << "50000s horizon never reached the spill heap (near+coarse cover ~16384s)";
}

TEST(EventQueueDeathTest, ShardLayoutChangeWithPendingEventsAborts) {
  // set_shard_count while events are pending would scramble the shard
  // residency of queued entries; it must fail loudly, not rehome silently.
  EventQueue queue;
  queue.schedule(1.0, [] {});
  EXPECT_DEATH(queue.set_shard_count(4),
               "shard layout may only change while the queue is empty");
}

TEST(EventQueueDeathTest, BackendChangeWithPendingEventsAborts) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  EXPECT_DEATH(queue.enable_timing_wheel(1.0),
               "backing store may only change while the queue is empty");
}

TEST(BatchTickerProperty, DestructionCancelsPendingSweeps) {
  Simulator sim;
  int fired = 0;
  {
    BatchTicker ticker(sim, 1.0, [&fired](std::uint32_t, Time) { ++fired; });
    ticker.add_member(ticker.add_group(1.0), 7);
    sim.run_until(1.5);
    EXPECT_EQ(fired, 1);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace gs::sim
