// FastSwitchScheduler and NormalSwitchScheduler behaviour, including the
// paper's Fig. 2 example (7-per-period budget, 5 S1 + 5 S2 available).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"

namespace gs::core {
namespace {

using stream::CandidateSegment;
using stream::ScheduleContext;
using stream::ScheduledRequest;
using stream::StreamEpoch;
using stream::SupplierView;

SupplierView supplier(net::NodeId node, double rate, std::size_t position) {
  SupplierView s;
  s.node = node;
  s.send_rate = rate;
  s.buffer_position = position;
  return s;
}

/// Fig. 2 setup: the node plays id 100; S1 ends at 105 (5 undelivered:
/// 101..105); S2 starts at 106 with its first 5 segments available; the
/// inbound budget is 7 per period.  Suppliers are ample.
struct Fig2 {
  ScheduleContext ctx;
  std::vector<CandidateSegment> candidates;

  Fig2() {
    ctx.period = 1.0;
    ctx.playback_rate = 10.0;
    ctx.inbound_rate = 7.0;
    ctx.id_play = 101;
    ctx.s1_end = 105;
    ctx.s2_begin = 106;
    ctx.q_consecutive = 10;
    ctx.q_startup = 50;
    ctx.q1_remaining = 5;
    ctx.q2_remaining = 5;
    ctx.buffer_capacity = 600;
    ctx.max_requests = 7;
    for (stream::SegmentId id = 101; id <= 110; ++id) {
      CandidateSegment c;
      c.id = id;
      c.epoch = id <= 105 ? StreamEpoch::kOld : StreamEpoch::kNew;
      c.suppliers = {supplier(1, 30.0, 50), supplier(2, 25.0, 80)};
      candidates.push_back(c);
    }
  }
};

std::size_t count_epoch(const std::vector<ScheduledRequest>& requests,
                        stream::SegmentId s1_end, bool new_epoch) {
  std::size_t n = 0;
  for (const auto& r : requests) {
    if ((r.id > s1_end) == new_epoch) ++n;
  }
  return n;
}

TEST(NormalSwitch, Fig2TakesAllS1FirstThenLeftoverS2) {
  Fig2 fig;
  NormalSwitchScheduler scheduler;
  const auto requests = scheduler.schedule(fig.ctx, fig.candidates);
  ASSERT_EQ(requests.size(), 7u);
  // Paper Fig. 2 normal order: S1#1..S1#5 then S2#1, S2#2.
  for (int i = 0; i < 5; ++i) EXPECT_LE(requests[static_cast<std::size_t>(i)].id, 105);
  EXPECT_GT(requests[5].id, 105);
  EXPECT_GT(requests[6].id, 105);
  EXPECT_EQ(count_epoch(requests, 105, false), 5u);
  EXPECT_EQ(count_epoch(requests, 105, true), 2u);
}

TEST(FastSwitch, Fig2Interleaves) {
  Fig2 fig;
  FastSwitchScheduler scheduler;
  const auto requests = scheduler.schedule(fig.ctx, fig.candidates);
  ASSERT_EQ(requests.size(), 7u);
  const std::size_t s1 = count_epoch(requests, 105, false);
  const std::size_t s2 = count_epoch(requests, 105, true);
  // Both streams get a share (the paper's fast order mixes S1 and S2).
  EXPECT_GE(s1, 3u);
  EXPECT_GE(s2, 2u);
  // And the orders interleave: an S2 request appears before the last S1.
  std::size_t first_s2 = requests.size();
  std::size_t last_s1 = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].id > 105 && first_s2 == requests.size()) first_s2 = i;
    if (requests[i].id <= 105) last_s1 = i;
  }
  EXPECT_LT(first_s2, last_s1);
}

TEST(FastSwitch, SplitMatchesClosedForm) {
  Fig2 fig;
  FastSwitchScheduler scheduler;
  RateSplit split{};
  (void)scheduler.schedule_with_split(fig.ctx, fig.candidates, &split);
  const SplitInput in{5, 5, 10, 10, 7};
  EXPECT_NEAR(split.r1, optimal_r1(in), 1e-9);
}

TEST(FastSwitch, NoSwitchMeansPlainPriority) {
  Fig2 fig;
  fig.ctx.s1_end = stream::kNoSegment;
  fig.ctx.s2_begin = stream::kNoSegment;
  FastSwitchScheduler fast;
  NormalSwitchScheduler normal;
  auto candidates_copy = fig.candidates;
  const auto fast_requests = fast.schedule(fig.ctx, fig.candidates);
  const auto normal_requests = normal.schedule(fig.ctx, candidates_copy);
  // Outside a switch the two algorithms are the same smart-pull scheduler.
  ASSERT_EQ(fast_requests.size(), normal_requests.size());
  for (std::size_t i = 0; i < fast_requests.size(); ++i) {
    EXPECT_EQ(fast_requests[i].id, normal_requests[i].id);
    EXPECT_EQ(fast_requests[i].supplier, normal_requests[i].supplier);
  }
}

TEST(Strategies, RespectBudget) {
  Fig2 fig;
  fig.ctx.max_requests = 3;
  FastSwitchScheduler fast;
  NormalSwitchScheduler normal;
  auto copy = fig.candidates;
  EXPECT_LE(fast.schedule(fig.ctx, fig.candidates).size(), 3u);
  EXPECT_LE(normal.schedule(fig.ctx, copy).size(), 3u);
}

TEST(Strategies, NoDuplicateSegments) {
  Fig2 fig;
  FastSwitchScheduler fast;
  const auto requests = fast.schedule(fig.ctx, fig.candidates);
  std::set<stream::SegmentId> ids;
  for (const auto& r : requests) EXPECT_TRUE(ids.insert(r.id).second);
}

TEST(Strategies, SuppliersComeFromCandidateLists) {
  Fig2 fig;
  FastSwitchScheduler fast;
  const auto requests = fast.schedule(fig.ctx, fig.candidates);
  for (const auto& r : requests) {
    EXPECT_TRUE(r.supplier == 1u || r.supplier == 2u);
  }
}

TEST(Strategies, EmptyCandidates) {
  Fig2 fig;
  std::vector<CandidateSegment> empty;
  FastSwitchScheduler fast;
  NormalSwitchScheduler normal;
  EXPECT_TRUE(fast.schedule(fig.ctx, empty).empty());
  EXPECT_TRUE(normal.schedule(fig.ctx, empty).empty());
}

TEST(Strategies, ZeroBudget) {
  Fig2 fig;
  fig.ctx.max_requests = 0;
  FastSwitchScheduler fast;
  EXPECT_TRUE(fast.schedule(fig.ctx, fig.candidates).empty());
}

TEST(FastSwitch, FillStageUsesLeftoverBudget) {
  // With a huge budget, fast should not stop at I1+I2: remaining
  // assignments are appended so inbound capacity is never idled.
  Fig2 fig;
  fig.ctx.max_requests = 10;
  fig.ctx.inbound_rate = 7.0;  // split still computed from I=7
  FastSwitchScheduler fast;
  const auto requests = fast.schedule(fig.ctx, fig.candidates);
  EXPECT_EQ(requests.size(), 10u);
}

TEST(FastSwitch, OnlyOldStreamCandidates) {
  // All S2 already fetched: O2 empty; everything goes to S1.
  Fig2 fig;
  fig.candidates.resize(5);  // only the S1 ids remain
  fig.ctx.q2_remaining = 0;
  FastSwitchScheduler fast;
  const auto requests = fast.schedule(fig.ctx, fig.candidates);
  EXPECT_EQ(requests.size(), 5u);
  EXPECT_EQ(count_epoch(requests, 105, true), 0u);
}

TEST(FastSwitch, OnlyNewStreamCandidates) {
  Fig2 fig;
  fig.candidates.erase(fig.candidates.begin(), fig.candidates.begin() + 5);
  fig.ctx.q1_remaining = 0;
  FastSwitchScheduler fast;
  const auto requests = fast.schedule(fig.ctx, fig.candidates);
  EXPECT_EQ(requests.size(), 5u);
  EXPECT_EQ(count_epoch(requests, 105, false), 0u);
}

TEST(SortByPriority, DescendingClasses) {
  Fig2 fig;
  PriorityParams params;
  const auto priorities = sort_by_priority(fig.ctx, fig.candidates, params);
  for (std::size_t i = 1; i < priorities.size(); ++i) {
    EXPECT_GE(priority_class(priorities[i - 1]), priority_class(priorities[i]));
  }
}

TEST(PromoteFresh, MovesFreshPicksToFront) {
  Fig2 fig;
  fig.ctx.s1_end = stream::kNoSegment;  // steady state only
  PriorityParams params;
  params.diversity_fraction = 0.3;
  util::Rng rng(5);
  fig.ctx.rng = &rng;
  auto priorities = sort_by_priority(fig.ctx, fig.candidates, params);
  const auto n_fresh = static_cast<std::size_t>(
      std::llround(params.diversity_fraction * static_cast<double>(fig.ctx.max_requests)));
  promote_fresh_candidates(fig.ctx, fig.candidates, priorities, params);
  // The first n_fresh entries must come from the freshest-3*n window.
  std::vector<stream::SegmentId> ids;
  for (const auto& c : fig.candidates) ids.push_back(c.id);
  for (std::size_t i = 0; i < n_fresh; ++i) {
    EXPECT_GE(ids[i], 110 - static_cast<stream::SegmentId>(3 * n_fresh) + 1);
  }
  // No candidates lost.
  EXPECT_EQ(ids.size(), 10u);
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], 101 + static_cast<stream::SegmentId>(i));
  }
}

TEST(PromoteFresh, DisabledByZeroFraction) {
  Fig2 fig;
  PriorityParams params;
  params.diversity_fraction = 0.0;
  auto priorities = sort_by_priority(fig.ctx, fig.candidates, params);
  const auto before = fig.candidates;
  promote_fresh_candidates(fig.ctx, fig.candidates, priorities, params);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(fig.candidates[i].id, before[i].id);
  }
}

}  // namespace
}  // namespace gs::core
