// Buffer-map wire format, overhead accounting, membership protocol.
#include <gtest/gtest.h>

#include "gossip/buffer_map.hpp"
#include "gossip/membership.hpp"
#include "gossip/message.hpp"
#include "gossip/overhead.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gs::gossip {
namespace {

TEST(BufferMap, WindowSemantics) {
  BufferMap map(100, 600);
  EXPECT_EQ(map.base(), 100);
  EXPECT_EQ(map.window(), 600u);
  EXPECT_TRUE(map.in_window(100));
  EXPECT_TRUE(map.in_window(699));
  EXPECT_FALSE(map.in_window(99));
  EXPECT_FALSE(map.in_window(700));
}

TEST(BufferMap, MarkAndQuery) {
  BufferMap map(100, 600);
  map.mark(100);
  map.mark(350);
  map.mark(699);
  map.mark(99);    // outside: ignored
  map.mark(1000);  // outside: ignored
  EXPECT_EQ(map.available_count(), 3u);
  EXPECT_TRUE(map.available(350));
  EXPECT_FALSE(map.available(351));
  EXPECT_FALSE(map.available(99));
}

TEST(BufferMap, FirstAvailable) {
  BufferMap map(10, 100);
  EXPECT_FALSE(map.first_available(0).has_value());
  map.mark(50);
  map.mark(20);
  EXPECT_EQ(map.first_available(0).value(), 20);
  EXPECT_EQ(map.first_available(21).value(), 50);
  EXPECT_EQ(map.first_available(50).value(), 50);
  EXPECT_FALSE(map.first_available(51).has_value());
}

TEST(BufferMap, WireBitsMatchPaper) {
  // "getting the buffer information of one neighbor takes 620 bits".
  BufferMap map(0, 600);
  EXPECT_EQ(map.wire_bits(), 620u);
}

TEST(BufferMap, EncodeDecodeRoundTrip) {
  util::Rng rng(1);
  BufferMap map(12345, 600);
  for (SegmentId id = 12345; id < 12345 + 600; ++id) {
    if (rng.bernoulli(0.4)) map.mark(id);
  }
  const auto bytes = map.encode();
  EXPECT_EQ(bytes.size(), 3u + 75u);
  const BufferMap back = BufferMap::decode(bytes, 600, /*base_hint=*/12000);
  EXPECT_EQ(back, map);
}

TEST(BufferMap, DecodeRecoversBaseAcross20BitWrap) {
  // Bases beyond 2^20 are truncated on the wire; the hint disambiguates.
  const SegmentId base = (SegmentId{1} << 20) + 777;
  BufferMap map(base, 64);
  map.mark(base + 5);
  const BufferMap back = BufferMap::decode(map.encode(), 64, base - 100);
  EXPECT_EQ(back.base(), base);
  EXPECT_TRUE(back.available(base + 5));
}

TEST(WireFormat, PaperNumbers) {
  constexpr WireFormat wire = paper_wire_format();
  EXPECT_EQ(wire.buffer_map_bits(), 620u);
  EXPECT_EQ(wire.data_bits(), 30u * 1024u);
  EXPECT_EQ(wire.request_bits(3), 60u);
}

TEST(Overhead, PaperRatioApproximation) {
  // S5.3: a node getting p=10 segments/s from M=5 neighbours pays
  // 620*5 control bits per 10*30Kb data bits ~ 1%.
  OverheadAccountant acc;
  for (int period = 0; period < 100; ++period) {
    for (int nb = 0; nb < 5; ++nb) acc.charge_buffer_map_exchange();
    for (int seg = 0; seg < 10; ++seg) acc.charge_data_segment();
  }
  EXPECT_NEAR(acc.overhead_ratio(), 620.0 * 5 / (10.0 * 30 * 1024), 1e-9);
  EXPECT_NEAR(acc.overhead_ratio(), 0.01, 0.002);
}

TEST(Overhead, DisabledWindowDropsCharges) {
  OverheadAccountant acc;
  acc.set_enabled(false);
  acc.charge_buffer_map_exchange();
  acc.charge_data_segment();
  acc.charge_request(5);
  EXPECT_EQ(acc.buffer_map_bits(), 0u);
  EXPECT_EQ(acc.data_bits(), 0u);
  acc.set_enabled(true);
  acc.charge_data_segment();
  EXPECT_EQ(acc.data_segments(), 1u);
}

TEST(Overhead, ControlRatioIncludesRequests) {
  OverheadAccountant acc;
  acc.charge_buffer_map_exchange();
  acc.charge_request(10);
  acc.charge_data_segment();
  EXPECT_GT(acc.control_ratio(), acc.overhead_ratio());
}

TEST(Overhead, ZeroDataMeansZeroRatio) {
  OverheadAccountant acc;
  acc.charge_buffer_map_exchange();
  EXPECT_EQ(acc.overhead_ratio(), 0.0);
}

TEST(Overhead, Reset) {
  OverheadAccountant acc;
  acc.charge_data_segment();
  acc.reset();
  EXPECT_EQ(acc.data_bits(), 0u);
  EXPECT_EQ(acc.data_segments(), 0u);
}

class MembershipFixture : public ::testing::Test {
 protected:
  MembershipFixture() : rng_(99) {
    graph_ = net::preferential_attachment(200, 2, rng_);
    net::repair_min_degree(graph_, 5, rng_);
    membership_ = std::make_unique<MembershipProtocol>(graph_, 5, rng_.fork(1), &overhead_);
    membership_->bootstrap_all_live();
  }

  util::Rng rng_;
  net::Graph graph_;
  OverheadAccountant overhead_;
  std::unique_ptr<MembershipProtocol> membership_;
};

TEST_F(MembershipFixture, BootstrapMarksAllLive) {
  EXPECT_EQ(membership_->live_count(), 200u);
  for (net::NodeId v = 0; v < 200; ++v) EXPECT_TRUE(membership_->alive(v));
}

TEST_F(MembershipFixture, JoinWiresToTargetDegree) {
  const net::NodeId v = membership_->join();
  EXPECT_EQ(v, 200u);
  EXPECT_TRUE(membership_->alive(v));
  EXPECT_EQ(graph_.degree(v), 5u);
  EXPECT_EQ(membership_->live_count(), 201u);
  EXPECT_EQ(membership_->join_count(), 1u);
}

TEST_F(MembershipFixture, LeaveDetachesAndRepairs) {
  const net::NodeId victim = 42;
  const std::vector<net::NodeId> old_neighbors(graph_.neighbors(victim).begin(),
                                               graph_.neighbors(victim).end());
  membership_->leave(victim);
  EXPECT_FALSE(membership_->alive(victim));
  EXPECT_EQ(graph_.degree(victim), 0u);
  EXPECT_EQ(membership_->live_count(), 199u);
  for (const net::NodeId u : old_neighbors) {
    EXPECT_GE(graph_.degree(u), 5u) << "repair restored neighbour " << u;
  }
}

TEST_F(MembershipFixture, OnJoinCallbackFires) {
  net::NodeId seen = 0;
  membership_->set_on_join([&](net::NodeId v) { seen = v; });
  const net::NodeId v = membership_->join();
  EXPECT_EQ(seen, v);
}

TEST_F(MembershipFixture, RandomLiveReturnsLiveNodes) {
  membership_->leave(0);
  membership_->leave(1);
  for (int i = 0; i < 200; ++i) {
    const net::NodeId v = membership_->random_live();
    EXPECT_TRUE(membership_->alive(v));
  }
}

TEST_F(MembershipFixture, ChurnStormKeepsInvariants) {
  // The paper's dynamic setting: 5% leave + 5% join per period, here
  // exaggerated over many rounds.  Live nodes must keep degree >= 5
  // (when enough peers exist) and the live list must stay consistent.
  util::Rng churn(7);
  for (int round = 0; round < 50; ++round) {
    for (int k = 0; k < 10; ++k) {
      const net::NodeId victim = membership_->random_live();
      membership_->leave(victim);
    }
    for (int k = 0; k < 10; ++k) (void)membership_->join();
    membership_->repair_all();
  }
  EXPECT_EQ(membership_->live_count(), 200u);
  EXPECT_EQ(membership_->leave_count(), 500u);
  std::size_t checked = 0;
  for (const net::NodeId v : membership_->live_nodes()) {
    EXPECT_TRUE(membership_->alive(v));
    EXPECT_GE(graph_.degree(v), 5u);
    ++checked;
  }
  EXPECT_EQ(checked, 200u);
}

TEST_F(MembershipFixture, MembershipTrafficCharged) {
  const auto before = overhead_.membership_bits();
  (void)membership_->join();
  EXPECT_GT(overhead_.membership_bits(), before);
}

}  // namespace
}  // namespace gs::gossip
