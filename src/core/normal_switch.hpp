// Baseline: the normal switch algorithm (paper §5.1).
//
// "For a node n, when its neighbours can supply data segments of both S1
// and S2, node n would retrieve data segments of S1 in priority.  If n
// still has available inbound rate after retrieving data segments of S1,
// it would allocate the remaining inbound rate to retrieve data segments
// of S2."  I.e. strict S1-before-S2 ordering, with the same per-segment
// priority metric and greedy supplier selection as the fast algorithm —
// the only difference is the absence of interleaving.
#pragma once

#include "core/priority.hpp"
#include "stream/scheduler.hpp"

namespace gs::core {

class NormalSwitchScheduler final : public stream::SchedulerStrategy {
 public:
  explicit NormalSwitchScheduler(PriorityParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "normal"; }

  [[nodiscard]] std::vector<stream::ScheduledRequest> schedule(
      const stream::ScheduleContext& ctx,
      std::vector<stream::CandidateSegment>& candidates) override;

 private:
  PriorityParams params_;
};

}  // namespace gs::core
