// Closed-form inbound rate split (paper §3 and §4).
//
// During a switch a node divides its inbound rate I into I1 (old stream,
// Q1 undelivered segments, with Q/p seconds of playback after the last
// arrival) and I2 (new stream, Q2 undelivered startup segments).  The paper
// minimises T2 = Q2/I2 subject to T2 >= T1' = Q1/I1 + Q/p, giving
//
//   I1 = r1 = ( I - p(Q1+Q2)/Q + sqrt( (p(Q1+Q2)/Q - I)^2 + 4 p I Q1 / Q ) ) / 2
//
// (eq. 4; the other quadratic root is negative).  §4 caps the split by the
// available outbound rates O1/O2 of the suppliers, yielding four cases.
#pragma once

namespace gs::core {

/// Inputs in the paper's notation.  All rates in segments/second.
struct SplitInput {
  double q1 = 0.0;       ///< Q1: undelivered segments of the old stream
  double q2 = 0.0;       ///< Q2: undelivered startup segments of the new stream
  double q = 10.0;       ///< Q: consecutive segments buffered for playback
  double p = 10.0;       ///< playback rate
  double inbound = 15.0; ///< I: total inbound rate
};

/// The chosen split.  `case_id` names the §4 case (1..4) or 0 for the
/// unconstrained solution.
struct RateSplit {
  double i1 = 0.0;
  double i2 = 0.0;
  double r1 = 0.0;  ///< unconstrained optimum for reference
  double r2 = 0.0;
  int case_id = 0;
};

/// Expected time to finish the old stream's playback: T1' = Q1/I1 + Q/p.
/// Returns +inf when i1 == 0 but q1 > 0.
[[nodiscard]] double expected_finish_time(double q1, double q, double p, double i1);

/// Expected time to gather the new stream's prefix: T2 = Q2/I2.
/// Returns +inf when i2 == 0 but q2 > 0; 0 when q2 == 0.
[[nodiscard]] double expected_prepare_time(double q2, double i2);

/// eq. 4, clamped into [0, I].  Requires q > 0, p > 0, inbound > 0 and
/// q1, q2 >= 0.  Numerically stable for large b (uses the conjugate form).
[[nodiscard]] double optimal_r1(const SplitInput& in);

/// Unconstrained optimum: I1 = r1, I2 = I - r1 (§3).
[[nodiscard]] RateSplit solve_unconstrained(const SplitInput& in);

/// Capped solution (§4): O1/O2 are the total outbound rates available for
/// the old/new stream (segments/second).  Implements the four cases:
///   1. r1 <= O1, r2 <= O2 -> I1 = r1,             I2 = r2
///   2. r1 <= O1, r2 >  O2 -> I1 = min(O1, I-O2),  I2 = O2
///   3. r1 >  O1, r2 <= O2 -> I1 = O1,             I2 = min(O2, I-O1)
///   4. r1 >  O1, r2 >  O2 -> I1 = O1,             I2 = O2
[[nodiscard]] RateSplit solve_capped(const SplitInput& in, double o1, double o2);

}  // namespace gs::core
