// Segment requesting priority (paper eqs. 6-9).
//
//   R_i       = max_j R_ij                                   (eq. 6)
//   t_i       = (id_i - id_play)/p - 1/R_i,  urgency = 1/t_i (eq. 7)
//   rarity_i  = prod_j (p_ij / B)                            (eq. 8)
//   priority  = max(urgency_i, rarity_i)                     (eq. 9)
//
// The paper argues the buffer-position product (eq. 8) estimates the
// probability the segment is about to be FIFO-replaced at *all* suppliers,
// and calls the classical 1/n_i rarity less reasonable; both are provided
// (the classical one for the ablation bench).
#pragma once

#include <span>

#include "stream/scheduler.hpp"

namespace gs::core {

struct PriorityParams {
  /// Upper clamp for urgency; also used when the deadline has passed
  /// (t_i <= 0 means "needed immediately").
  double urgency_cap = 1e6;
  /// Ablation: use the traditional rarity 1/n_i instead of eq. 8.
  bool traditional_rarity = false;
  /// Fraction of the per-period request budget reserved for randomized
  /// fetches of the freshest available segments (segment diversity /
  /// swarming).  Without it, deadline-ordered pulling concentrates all
  /// upload load on the peers nearest the source and the mesh cannot
  /// sustain the playback rate (see bench_ablation_diversity).  Applies
  /// only outside an active switch; both algorithms share it.
  double diversity_fraction = 0.25;
};

/// eq. 6: best advertised sending rate across suppliers (0 if none).
[[nodiscard]] double max_receive_rate(std::span<const stream::SupplierView> suppliers) noexcept;

/// eq. 7.  `id_play` is the segment currently playing (the paper's
/// id_play); the shared id space makes this meaningful for both streams.
[[nodiscard]] double urgency(stream::SegmentId id, stream::SegmentId id_play,
                             double playback_rate, double max_rate,
                             const PriorityParams& params) noexcept;

/// eq. 8 (or 1/n when params.traditional_rarity).
[[nodiscard]] double rarity(std::span<const stream::SupplierView> suppliers,
                            std::size_t buffer_capacity, const PriorityParams& params) noexcept;

/// eq. 9 for a full candidate under a scheduling context.
[[nodiscard]] double segment_priority(const stream::CandidateSegment& candidate,
                                      const stream::ScheduleContext& ctx,
                                      const PriorityParams& params) noexcept;

/// Quantizes a priority into a factor-of-two class (floor(log2)); segments
/// in the same class are considered equally important and may be requested
/// in randomized order (segment diversity).  Monotone in the priority.
[[nodiscard]] int priority_class(double priority) noexcept;

}  // namespace gs::core
