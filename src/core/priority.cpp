#include "core/priority.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace gs::core {

double max_receive_rate(std::span<const stream::SupplierView> suppliers) noexcept {
  double best = 0.0;
  for (const auto& s : suppliers) best = std::max(best, s.send_rate);
  return best;
}

double urgency(stream::SegmentId id, stream::SegmentId id_play, double playback_rate,
               double max_rate, const PriorityParams& params) noexcept {
  GS_DCHECK(playback_rate > 0.0);
  if (max_rate <= 0.0) return 0.0;  // unobtainable: no supplier
  const double deadline_left =
      static_cast<double>(id - id_play) / playback_rate - 1.0 / max_rate;
  if (deadline_left <= 0.0) return params.urgency_cap;  // overdue: maximal urgency
  return std::min(1.0 / deadline_left, params.urgency_cap);
}

double rarity(std::span<const stream::SupplierView> suppliers, std::size_t buffer_capacity,
              const PriorityParams& params) noexcept {
  if (suppliers.empty()) return 0.0;
  if (params.traditional_rarity) {
    return 1.0 / static_cast<double>(suppliers.size());
  }
  double product = 1.0;
  for (const auto& s : suppliers) {
    const double position = std::clamp<double>(static_cast<double>(s.buffer_position), 1.0,
                                               static_cast<double>(buffer_capacity));
    product *= position / static_cast<double>(buffer_capacity);
  }
  return product;
}

double segment_priority(const stream::CandidateSegment& candidate,
                        const stream::ScheduleContext& ctx,
                        const PriorityParams& params) noexcept {
  const double r_max = max_receive_rate(candidate.suppliers);
  const double u = urgency(candidate.id, ctx.id_play, ctx.playback_rate, r_max, params);
  const double r = rarity(candidate.suppliers, ctx.buffer_capacity, params);
  return std::max(u, r);
}

int priority_class(double priority) noexcept {
  if (priority <= 0.0) return std::numeric_limits<int>::min();
  return std::ilogb(priority);
}

}  // namespace gs::core
