#include "core/rate_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace gs::core {

double expected_finish_time(double q1, double q, double p, double i1) {
  const double tail = q / p;
  if (q1 <= 0.0) return tail;
  if (i1 <= 0.0) return std::numeric_limits<double>::infinity();
  return q1 / i1 + tail;
}

double expected_prepare_time(double q2, double i2) {
  if (q2 <= 0.0) return 0.0;
  if (i2 <= 0.0) return std::numeric_limits<double>::infinity();
  return q2 / i2;
}

double optimal_r1(const SplitInput& in) {
  GS_CHECK_GT(in.q, 0.0);
  GS_CHECK_GT(in.p, 0.0);
  GS_CHECK_GT(in.inbound, 0.0);
  GS_CHECK_GE(in.q1, 0.0);
  GS_CHECK_GE(in.q2, 0.0);
  // Quadratic I1^2 + b*I1 - c >= 0 with
  //   b = p(Q1+Q2)/Q - I,  c = p*I*Q1/Q >= 0.
  const double b = in.p * (in.q1 + in.q2) / in.q - in.inbound;
  const double c = in.p * in.inbound * in.q1 / in.q;
  const double disc = std::sqrt(b * b + 4.0 * c);
  // r1 = (-b + disc)/2; for b > 0 use the conjugate form to avoid
  // catastrophic cancellation.
  const double r1 = b > 0.0 ? (2.0 * c) / (b + disc) : (disc - b) / 2.0;
  return std::clamp(r1, 0.0, in.inbound);
}

RateSplit solve_unconstrained(const SplitInput& in) {
  RateSplit split;
  split.r1 = optimal_r1(in);
  split.r2 = in.inbound - split.r1;
  split.i1 = split.r1;
  split.i2 = split.r2;
  split.case_id = 0;
  return split;
}

RateSplit solve_capped(const SplitInput& in, double o1, double o2) {
  GS_CHECK_GE(o1, 0.0);
  GS_CHECK_GE(o2, 0.0);
  RateSplit split;
  split.r1 = optimal_r1(in);
  split.r2 = in.inbound - split.r1;
  const bool r1_fits = split.r1 <= o1;
  const bool r2_fits = split.r2 <= o2;
  if (r1_fits && r2_fits) {
    split.case_id = 1;
    split.i1 = split.r1;
    split.i2 = split.r2;
  } else if (r1_fits && !r2_fits) {
    split.case_id = 2;
    split.i2 = o2;
    split.i1 = std::min(o1, in.inbound - o2);
  } else if (!r1_fits && r2_fits) {
    split.case_id = 3;
    split.i1 = o1;
    split.i2 = std::min(o2, in.inbound - o1);
  } else {
    split.case_id = 4;
    split.i1 = o1;
    split.i2 = o2;
  }
  // Outbound shortage can make I - O2 (cases 2/3) negative; rates are
  // physically non-negative.
  split.i1 = std::max(0.0, split.i1);
  split.i2 = std::max(0.0, split.i2);
  return split;
}

}  // namespace gs::core
