// The paper's contribution: the fast source switch algorithm (Algorithm 1).
//
// Per scheduling period:
//   1. compute each candidate's priority (eqs. 6-9) and sort descending;
//   2. greedily assign suppliers (earliest expected receive time within the
//      period), building the ordered sets O1 (old stream) and O2 (new
//      stream prefix);
//   3. split the inbound rate by the closed form (eq. 4) capped by
//      O1 = |O1|, O2 = |O2| via the four §4 cases;
//   4. request the first I1*tau segments of O1 and the first I2*tau of O2.
// A final fill stage spends any leftover inbound budget on the remaining
// assignments in priority order (never letting capacity idle, mirroring
// the normal algorithm's leftover rule).
//
// Outside a known switch the strategy degenerates to pure priority pulling,
// which is the standard smart-pull gossip scheduler.
#pragma once

#include "core/priority.hpp"
#include "core/rate_solver.hpp"
#include "core/supplier_selection.hpp"
#include "stream/scheduler.hpp"

namespace gs::core {

class FastSwitchScheduler final : public stream::SchedulerStrategy {
 public:
  explicit FastSwitchScheduler(PriorityParams params = {}) : params_(params) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "fast"; }

  /// Stateless per call — one instance is shared by every peer, and the
  /// sharded engine core invokes it concurrently from plan lanes, so the
  /// strategy must not touch instance state besides the immutable params.
  [[nodiscard]] std::vector<stream::ScheduledRequest> schedule(
      const stream::ScheduleContext& ctx,
      std::vector<stream::CandidateSegment>& candidates) override;

  /// schedule() variant reporting the closed-form split it chose when a
  /// switch was active (diagnostics / tests; `split_out` may be null and is
  /// untouched when no split happened).
  [[nodiscard]] std::vector<stream::ScheduledRequest> schedule_with_split(
      const stream::ScheduleContext& ctx, std::vector<stream::CandidateSegment>& candidates,
      RateSplit* split_out);

 private:
  PriorityParams params_;
};

/// Shared helper: sort candidates by priority (descending, stable) and
/// return the matching priority values.  Exposed for the normal scheduler
/// and for tests.
[[nodiscard]] std::vector<double> sort_by_priority(const stream::ScheduleContext& ctx,
                                                   std::vector<stream::CandidateSegment>& candidates,
                                                   const PriorityParams& params);

/// Shared helper: moves a randomized sample of the freshest candidates to
/// the front of the (priority-sorted) list so they claim supplier capacity
/// first.  This is the diversity reservation described in PriorityParams;
/// call only when no switch split is active.
void promote_fresh_candidates(const stream::ScheduleContext& ctx,
                              std::vector<stream::CandidateSegment>& candidates,
                              std::vector<double>& priorities, const PriorityParams& params);

}  // namespace gs::core
