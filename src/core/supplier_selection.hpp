// Greedy supplier selection — Step 1 of the paper's Algorithm 1.
//
// Candidates arrive in descending priority order.  For each, pick the
// supplier with the earliest expected receive time (its accumulated local
// queueing time tau(j) plus the transfer time 1/R(j)); accept only if that
// time stays within the scheduling period.  The chosen supplier's queueing
// time is advanced, so later (lower-priority) segments see the backlog.
// The general assignment problem is NP-hard (parallel machine scheduling);
// this greedy keeps high-priority segments earliest, as in the paper.
#pragma once

#include <unordered_map>
#include <vector>

#include "stream/scheduler.hpp"

namespace gs::core {

/// One accepted assignment, in input (priority) order.
struct Assignment {
  stream::SegmentId id = stream::kNoSegment;
  net::NodeId supplier = 0;
  stream::StreamEpoch epoch = stream::StreamEpoch::kOld;
  /// Expected receive time within the period (tau(j) + 1/R(j)).
  double expected_time = 0.0;
  /// Priority the caller sorted by (carried through for later stages).
  double priority = 0.0;
};

/// Runs the greedy over `candidates` (already sorted by descending
/// priority, with `priorities[i]` the priority of `candidates[i]`).
/// Segments whose best supplier cannot deliver within `ctx.period` are
/// skipped.  Initial per-supplier queueing times are zero (the paper's
/// initialisation) plus any SupplierView::queue_delay.
[[nodiscard]] std::vector<Assignment> greedy_assign(
    const stream::ScheduleContext& ctx, const std::vector<stream::CandidateSegment>& candidates,
    const std::vector<double>& priorities);

}  // namespace gs::core
