#include "core/fast_switch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace gs::core {

std::vector<double> sort_by_priority(const stream::ScheduleContext& ctx,
                                     std::vector<stream::CandidateSegment>& candidates,
                                     const PriorityParams& params) {
  std::vector<double> priorities(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    priorities[i] = segment_priority(candidates[i], ctx, params);
  }
  // Sort by quantized priority class (factor-of-two buckets), randomized
  // within a class.  Exact float ordering would make every peer pull in
  // strict id order, so same-depth peers would hold identical segment sets
  // and have nothing to trade — collapsing the mesh into a source-rooted
  // tree whose interior relays saturate.  Randomizing among near-equal
  // priorities is the standard swarming ingredient of pull-based streaming
  // (both algorithms share it; deadlines still dominate across classes).
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  if (ctx.rng != nullptr) ctx.rng->shuffle(order);
  std::stable_sort(order.begin(), order.end(), [&priorities](std::size_t a, std::size_t b) {
    return priority_class(priorities[a]) > priority_class(priorities[b]);
  });
  std::vector<stream::CandidateSegment> sorted;
  sorted.reserve(candidates.size());
  std::vector<double> sorted_priorities;
  sorted_priorities.reserve(candidates.size());
  for (const std::size_t idx : order) {
    sorted.push_back(std::move(candidates[idx]));
    sorted_priorities.push_back(priorities[idx]);
  }
  candidates = std::move(sorted);
  return sorted_priorities;
}

void promote_fresh_candidates(const stream::ScheduleContext& ctx,
                              std::vector<stream::CandidateSegment>& candidates,
                              std::vector<double>& priorities, const PriorityParams& params) {
  if (params.diversity_fraction <= 0.0 || candidates.size() < 2 || ctx.max_requests == 0) return;
  const auto n_fresh = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(params.diversity_fraction * static_cast<double>(ctx.max_requests))));
  if (n_fresh >= candidates.size()) return;

  // The freshest window: the 3*n_fresh highest ids on offer.  Sampling
  // n_fresh of them at random (rather than taking the very freshest)
  // decorrelates the picks of neighbouring peers — the whole point.
  std::vector<std::size_t> by_id(candidates.size());
  std::iota(by_id.begin(), by_id.end(), 0);
  std::sort(by_id.begin(), by_id.end(), [&candidates](std::size_t a, std::size_t b) {
    return candidates[a].id > candidates[b].id;
  });
  const std::size_t window = std::min(candidates.size(), n_fresh * 3);
  by_id.resize(window);
  if (ctx.rng != nullptr) ctx.rng->shuffle(by_id);
  by_id.resize(std::min(n_fresh, window));

  std::vector<char> chosen(candidates.size(), 0);
  for (const std::size_t idx : by_id) chosen[idx] = 1;
  std::vector<stream::CandidateSegment> reordered;
  std::vector<double> reordered_priorities;
  reordered.reserve(candidates.size());
  reordered_priorities.reserve(candidates.size());
  for (const std::size_t idx : by_id) {
    reordered.push_back(std::move(candidates[idx]));
    reordered_priorities.push_back(priorities[idx]);
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (chosen[i]) continue;
    reordered.push_back(std::move(candidates[i]));
    reordered_priorities.push_back(priorities[i]);
  }
  candidates = std::move(reordered);
  priorities = std::move(reordered_priorities);
}

std::vector<stream::ScheduledRequest> FastSwitchScheduler::schedule(
    const stream::ScheduleContext& ctx, std::vector<stream::CandidateSegment>& candidates) {
  return schedule_with_split(ctx, candidates, nullptr);
}

std::vector<stream::ScheduledRequest> FastSwitchScheduler::schedule_with_split(
    const stream::ScheduleContext& ctx, std::vector<stream::CandidateSegment>& candidates,
    RateSplit* split_out) {
  std::vector<stream::ScheduledRequest> requests;
  if (candidates.empty() || ctx.max_requests == 0) return requests;

  std::vector<double> priorities = sort_by_priority(ctx, candidates, params_);
  if (ctx.s1_end == stream::kNoSegment) {
    promote_fresh_candidates(ctx, candidates, priorities, params_);
  }
  const std::vector<Assignment> assignments = greedy_assign(ctx, candidates, priorities);
  if (assignments.empty()) return requests;

  if (ctx.s1_end == stream::kNoSegment) {
    // No switch in sight: plain smart-pull by priority.
    for (const Assignment& a : assignments) {
      if (requests.size() >= ctx.max_requests) break;
      requests.push_back({a.id, a.supplier});
    }
    return requests;
  }

  // Step 1 output: O1 / O2 in descending priority order.
  std::vector<const Assignment*> o1;
  std::vector<const Assignment*> o2;
  for (const Assignment& a : assignments) {
    (a.epoch == stream::StreamEpoch::kOld ? o1 : o2).push_back(&a);
  }

  // Step 2: the capped closed-form split.  |O1|/tau and |O2|/tau are the
  // achievable outbound rates toward this node this period.
  SplitInput in;
  in.q1 = static_cast<double>(ctx.q1_remaining);
  in.q2 = static_cast<double>(ctx.q2_remaining);
  in.q = static_cast<double>(ctx.q_consecutive);
  in.p = ctx.playback_rate;
  in.inbound = std::max(ctx.inbound_rate, 1e-9);
  const double o1_rate = static_cast<double>(o1.size()) / ctx.period;
  const double o2_rate = static_cast<double>(o2.size()) / ctx.period;
  // A local, not instance state: schedule() must stay safe to call
  // concurrently from the sharded engine's plan lanes.
  const RateSplit split = solve_capped(in, o1_rate, o2_rate);
  if (split_out != nullptr) *split_out = split;

  // Round the shares to whole segments; +0.5 on i1 keeps the pair summing
  // near the budget without systematically starving either side.
  auto n1 = static_cast<std::size_t>(std::floor(split.i1 * ctx.period + 0.5));
  auto n2 = static_cast<std::size_t>(std::floor(split.i2 * ctx.period + 0.5));
  n1 = std::min(n1, o1.size());
  n2 = std::min(n2, o2.size());

  // Step 3: take the heads of both sets, *interleaved* proportionally to
  // the split (Fig. 2: "S1#1, S1#2, S2#1, S1#3, S2#2, ...").  Interleaving
  // matters beyond aesthetics: the request order is the order transfers
  // queue at suppliers, so a block of S1 requests ahead of every S2 request
  // would push the new stream to the back of every uplink.
  std::vector<const Assignment*> chosen;
  chosen.reserve(n1 + n2);
  {
    std::size_t i1_taken = 0;
    std::size_t i2_taken = 0;
    // Bresenham-style merge: at every step emit from the set that is most
    // behind its target share.
    while (i1_taken < n1 || i2_taken < n2) {
      const double deficit1 =
          n1 == 0 ? -1.0
                  : static_cast<double>(n1 - i1_taken) / static_cast<double>(n1);
      const double deficit2 =
          n2 == 0 ? -1.0
                  : static_cast<double>(n2 - i2_taken) / static_cast<double>(n2);
      if (i2_taken >= n2 || (i1_taken < n1 && deficit1 >= deficit2)) {
        chosen.push_back(o1[i1_taken++]);
      } else {
        chosen.push_back(o2[i2_taken++]);
      }
    }
  }

  std::vector<char> taken(assignments.size(), 0);
  auto index_of = [&assignments](const Assignment* a) {
    return static_cast<std::size_t>(a - assignments.data());
  };
  for (const Assignment* a : chosen) {
    if (requests.size() >= ctx.max_requests) break;
    requests.push_back({a->id, a->supplier});
    taken[index_of(a)] = 1;
  }
  // Fill: leftover budget goes to the remaining assignments by priority.
  for (const Assignment& a : assignments) {
    if (requests.size() >= ctx.max_requests) break;
    if (taken[index_of(&a)]) continue;
    requests.push_back({a.id, a.supplier});
  }
  return requests;
}

}  // namespace gs::core
