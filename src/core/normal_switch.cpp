#include "core/normal_switch.hpp"

#include <algorithm>

#include "core/fast_switch.hpp"
#include "core/supplier_selection.hpp"

namespace gs::core {

std::vector<stream::ScheduledRequest> NormalSwitchScheduler::schedule(
    const stream::ScheduleContext& ctx, std::vector<stream::CandidateSegment>& candidates) {
  std::vector<stream::ScheduledRequest> requests;
  if (candidates.empty() || ctx.max_requests == 0) return requests;

  std::vector<double> priorities = sort_by_priority(ctx, candidates, params_);

  if (ctx.s1_end == stream::kNoSegment) {
    promote_fresh_candidates(ctx, candidates, priorities, params_);
  } else {
    // Strict S1-first: stable-partition the priority order so every old-
    // stream candidate precedes every new-stream one (priority order is
    // preserved within each class).
    std::vector<stream::CandidateSegment> reordered;
    std::vector<double> reordered_priorities;
    reordered.reserve(candidates.size());
    reordered_priorities.reserve(candidates.size());
    for (int pass = 0; pass < 2; ++pass) {
      const auto wanted = pass == 0 ? stream::StreamEpoch::kOld : stream::StreamEpoch::kNew;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].epoch != wanted) continue;
        reordered.push_back(std::move(candidates[i]));
        reordered_priorities.push_back(priorities[i]);
      }
    }
    candidates = std::move(reordered);
    priorities = std::move(reordered_priorities);
  }

  const std::vector<Assignment> assignments = greedy_assign(ctx, candidates, priorities);
  for (const Assignment& a : assignments) {
    if (requests.size() >= ctx.max_requests) break;
    requests.push_back({a.id, a.supplier});
  }
  return requests;
}

}  // namespace gs::core
