#include "core/supplier_selection.hpp"

#include <limits>

#include "util/check.hpp"

namespace gs::core {

std::vector<Assignment> greedy_assign(const stream::ScheduleContext& ctx,
                                      const std::vector<stream::CandidateSegment>& candidates,
                                      const std::vector<double>& priorities) {
  GS_CHECK_EQ(candidates.size(), priorities.size());
  std::vector<Assignment> accepted;
  accepted.reserve(candidates.size());
  // tau(j): local queueing bookkeeping, lazily initialised per supplier.
  std::unordered_map<net::NodeId, double> queue_time;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const stream::CandidateSegment& c = candidates[i];
    double best_time = std::numeric_limits<double>::infinity();
    const stream::SupplierView* best = nullptr;
    for (const stream::SupplierView& s : c.suppliers) {
      if (s.send_rate <= 0.0) continue;
      const double transfer = 1.0 / s.send_rate;
      auto it = queue_time.find(s.node);
      const double queued = (it == queue_time.end() ? s.queue_delay : it->second);
      const double t = queued + transfer;
      // Paper line 13: accept only suppliers delivering within the period.
      if (t < best_time && t < ctx.period) {
        best_time = t;
        best = &s;
      }
    }
    if (best == nullptr) continue;
    queue_time[best->node] = best_time;  // paper line 18
    Assignment a;
    a.id = c.id;
    a.supplier = best->node;
    a.epoch = c.epoch;
    a.expected_time = best_time;
    a.priority = priorities[i];
    accepted.push_back(a);
  }
  return accepted;
}

}  // namespace gs::core
