// Hierarchical timing wheel: the O(1) backing store for the event queue.
//
// The protocol's event population is clustered in the near future — fixed-
// cadence tick sweeps one period ahead and segment deliveries a few periods
// out — so a bucketed wheel quantized at the tick cadence turns almost every
// schedule into a plain vector append and almost every pop into a bump of a
// cursor through a pre-sorted bucket.  Three levels cover the full horizon:
//
//   near wheel    kNearSlots buckets of one quantum each.  Every resident
//                 entry's bucket index lies in (cursor, cursor + kNearSlots],
//                 which is exactly one bucket per slot — collection takes the
//                 whole slot, no revolution filtering.
//   coarse wheel  kCoarseSlots slots of kNearSlots buckets each (the
//                 overflow wheel).  When the cursor enters a coarse slot its
//                 entries scatter into the near wheel.
//   spill heap    a (time, id) min-heap for anything beyond the coarse
//                 horizon; pulled into the wheels as the horizon advances.
//
// Determinism rule: a bucket is sorted by the global (time, sequence) key
// before it drains, and buckets drain in increasing index order.  Bucket
// indexing is monotone in time, so the resulting pop sequence is exactly the
// order a single (time, sequence) binary heap would produce — bit-identical,
// which is what lets EventQueue swap backends under a flag without touching
// any fixed-seed metric.
//
// Late arrivals — an executing event scheduling into the current (already
// collected) or an earlier bucket — go to a small side heap that the
// top()/pop() pair merges with the sorted front bucket by (time, id).  Both
// planes hold only entries at or below the cursor while the wheels hold only
// entries above it, so the merge never crosses the bucket order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace gs::sim {

/// Simulation time in seconds (may be negative: warm-up runs at t < 0).
using Time = double;

/// Identifies a scheduled event for cancellation; assigned globally in
/// scheduling order, which makes (time, id) the total pop order.
using EventId = std::uint64_t;

class EventSink;

/// One pending event.  Two kinds share the struct (and the sequence
/// domain): closure events carry `action`; pooled plain-struct events carry
/// a sink plus two inline payload words and never allocate.
struct QueueEntry {
  Time at = 0.0;
  EventId id = 0;
  /// Non-null selects the pooled plain-struct path; `action` is unused.
  EventSink* sink = nullptr;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::function<void()> action;
};

/// "a fires after b" — the heap comparator: a max-heap under this order
/// (std::push_heap/pop_heap) pops the earliest (time, sequence) entry first.
struct QueueEntryLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.id > b.id;
  }
};

/// One shard's wheel.  Not thread-safe (the queue is driven by one thread).
class TimingWheel {
 public:
  struct Telemetry {
    std::uint64_t scheduled = 0;            ///< entries ever pushed
    std::uint64_t overflow_promotions = 0;  ///< coarse->near + spill->wheel moves
    std::uint64_t spill_peak = 0;           ///< max spill-heap occupancy
  };

  explicit TimingWheel(double quantum = 1.0);

  void push(QueueEntry entry);
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// The (time, id)-minimum resident entry; requires !empty().  Non-const:
  /// reaching the next bucket advances the cursor (observable order never
  /// changes, only which level stores what).
  [[nodiscard]] const QueueEntry& top();
  /// Removes and returns top(); requires !empty().
  QueueEntry pop();

  /// True if `fn(entry)` holds for any resident entry (cancellation's
  /// pendingness scan).  O(resident), like the heap backend's linear scan.
  template <typename Fn>
  [[nodiscard]] bool any(Fn&& fn) const {
    for (std::size_t i = front_pos_; i < front_.size(); ++i) {
      if (fn(front_[i])) return true;
    }
    for (const QueueEntry& e : side_) {
      if (fn(e)) return true;
    }
    for (const std::vector<QueueEntry>& slot : near_) {
      for (const QueueEntry& e : slot) {
        if (fn(e)) return true;
      }
    }
    for (const std::vector<QueueEntry>& slot : coarse_) {
      for (const QueueEntry& e : slot) {
        if (fn(e)) return true;
      }
    }
    for (const QueueEntry& e : spill_) {
      if (fn(e)) return true;
    }
    return false;
  }

  /// Drops every resident entry; the anchor resets so the next push may sit
  /// anywhere on the time axis.  Telemetry persists (lifetime counters).
  void clear() noexcept;

  [[nodiscard]] const Telemetry& telemetry() const noexcept { return telemetry_; }

 private:
  static constexpr int kNearBits = 8;  ///< 256 one-quantum near buckets
  static constexpr std::int64_t kNearSlots = std::int64_t{1} << kNearBits;
  static constexpr std::int64_t kNearMask = kNearSlots - 1;
  static constexpr int kCoarseBits = 6;  ///< 64 overflow slots of kNearSlots each
  static constexpr std::int64_t kCoarseSlots = std::int64_t{1} << kCoarseBits;
  static constexpr std::int64_t kCoarseMask = kCoarseSlots - 1;

  /// floor(at / quantum) as a signed bucket index — monotone in `at` and
  /// well-defined for negative warm-up times, which is all the determinism
  /// argument needs from the quantization.
  [[nodiscard]] std::int64_t bucket_of(Time at) const noexcept;

  /// Routes an entry to side/near/coarse/spill by its bucket index.
  void place(QueueEntry entry, std::int64_t bucket);
  /// Scatters the coarse slot at coarse_cursor_ into the near wheel.
  void promote_coarse();
  /// Moves spill entries that entered the coarse horizon into the wheels.
  void pull_spill();
  /// Advances the cursor to the next occupied bucket and loads it into
  /// front_ (sorted by (time, id)).  Requires an entry resident in the
  /// wheels or the spill heap.
  void advance();
  /// Sorted-front / side-heap merge used by top() and pop(): true when the
  /// front head exists and fires before the side head.
  [[nodiscard]] bool front_is_next() const noexcept;

  double inv_quantum_;
  /// Cursor anchors lazily at the first push (times may start anywhere,
  /// including negative warm-up).
  bool anchored_ = false;
  /// Buckets <= cursor_ have been collected; wheel residents are strictly
  /// above it.
  std::int64_t cursor_ = 0;
  std::int64_t coarse_cursor_ = 0;  ///< == cursor_ >> kNearBits
  std::vector<std::vector<QueueEntry>> near_;
  std::vector<std::vector<QueueEntry>> coarse_;
  std::vector<QueueEntry> spill_;  ///< (time, id) min-heap beyond the coarse horizon
  std::vector<QueueEntry> side_;   ///< (time, id) min-heap of late arrivals (bucket <= cursor_)
  std::vector<QueueEntry> front_;  ///< current bucket, ascending (time, id)
  std::size_t front_pos_ = 0;
  std::size_t near_live_ = 0;
  std::size_t coarse_live_ = 0;
  std::size_t size_ = 0;
  Telemetry telemetry_;
};

}  // namespace gs::sim
