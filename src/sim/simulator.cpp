#include "sim/simulator.hpp"

#include <limits>
#include <utility>

#include "util/check.hpp"

namespace gs::sim {

void Simulator::enable_shards(std::size_t shards, ShardRouter router) {
  GS_CHECK_GE(shards, 1u);
  GS_CHECK(router != nullptr);
  queue_.set_shard_count(shards);
  router_ = std::move(router);
}

std::size_t Simulator::route(const EventSink& sink, std::uint64_t a, std::uint64_t b) {
  if (!router_) return 0;
  const std::size_t shard = router_(sink, a, b);
  GS_CHECK_LT(shard, queue_.shard_count());
  if (shard != executing_shard_) ++cross_shard_scheduled_;
  return shard;
}

EventId Simulator::at(Time when, std::function<void()> action) {
  GS_CHECK_GE(when, now_);
  return queue_.schedule_on(0, when, std::move(action));
}

EventId Simulator::after(Time delay, std::function<void()> action) {
  GS_CHECK_GE(delay, 0.0);
  return queue_.schedule_on(0, now_ + delay, std::move(action));
}

EventId Simulator::at(Time when, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  GS_CHECK_GE(when, now_);
  return queue_.schedule_on(route(sink, a, b), when, sink, a, b);
}

EventId Simulator::after(Time delay, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  GS_CHECK_GE(delay, 0.0);
  return queue_.schedule_on(route(sink, a, b), now_ + delay, sink, a, b);
}

std::size_t Simulator::drive(Time until) {
  stop_requested_ = false;
  std::size_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Time next = queue_.next_time();
    if (next > until) break;
    if (batch_pop_ && queue_.top_is_batchable()) {
      // Drain the maximal batchable run in one dispatch.  The run is a
      // prefix of the canonical pop order; the sink processes items in
      // order using each item's own time, with the clock parked at the
      // run's end.  Batches execute as the control shard: batchable sinks
      // either schedule nothing (delivery drains) or schedule from control
      // events (tick sweeps), so cross-shard accounting is unchanged.
      EventSink* sink = nullptr;
      const std::size_t count = queue_.pop_batch(until, batch_scratch_, &sink);
      now_ = batch_scratch_[count - 1].at;
      executing_shard_ = 0;
      sink->on_batch(batch_scratch_.data(), count);
      ran += count;
      continue;
    }
    now_ = next;
    queue_.pop_and_run(&executing_shard_);
    executing_shard_ = 0;
    ++ran;
  }
  return ran;
}

std::size_t Simulator::run_until(Time until) {
  const std::size_t ran = drive(until);
  // Advance the clock to the horizon even if no event sits exactly there,
  // so successive run_until calls observe monotone time.
  if (now_ < until && !stop_requested_) now_ = until;
  return ran;
}

std::size_t Simulator::run_all() {
  return drive(std::numeric_limits<Time>::infinity());
}

}  // namespace gs::sim
