#include "sim/simulator.hpp"

#include <utility>

#include "util/check.hpp"

namespace gs::sim {

void Simulator::enable_shards(std::size_t shards, ShardRouter router) {
  GS_CHECK_GE(shards, 1u);
  GS_CHECK(router != nullptr);
  queue_.set_shard_count(shards);
  router_ = std::move(router);
}

std::size_t Simulator::route(const EventSink& sink, std::uint64_t a, std::uint64_t b) {
  if (!router_) return 0;
  const std::size_t shard = router_(sink, a, b);
  GS_CHECK_LT(shard, queue_.shard_count());
  if (shard != executing_shard_) ++cross_shard_scheduled_;
  return shard;
}

EventId Simulator::at(Time when, std::function<void()> action) {
  GS_CHECK_GE(when, now_);
  return queue_.schedule_on(0, when, std::move(action));
}

EventId Simulator::after(Time delay, std::function<void()> action) {
  GS_CHECK_GE(delay, 0.0);
  return queue_.schedule_on(0, now_ + delay, std::move(action));
}

EventId Simulator::at(Time when, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  GS_CHECK_GE(when, now_);
  return queue_.schedule_on(route(sink, a, b), when, sink, a, b);
}

EventId Simulator::after(Time delay, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  GS_CHECK_GE(delay, 0.0);
  return queue_.schedule_on(route(sink, a, b), now_ + delay, sink, a, b);
}

std::size_t Simulator::run_until(Time until) {
  stop_requested_ = false;
  std::size_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    const Time next = queue_.next_time();
    if (next > until) break;
    now_ = next;
    queue_.pop_and_run(&executing_shard_);
    executing_shard_ = 0;
    ++ran;
  }
  // Advance the clock to the horizon even if no event sits exactly there,
  // so successive run_until calls observe monotone time.
  if (now_ < until && !stop_requested_) now_ = until;
  return ran;
}

std::size_t Simulator::run_all() {
  stop_requested_ = false;
  std::size_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    now_ = queue_.next_time();
    queue_.pop_and_run(&executing_shard_);
    executing_shard_ = 0;
    ++ran;
  }
  return ran;
}

}  // namespace gs::sim
