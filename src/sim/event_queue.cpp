#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::sim {

void EventQueue::set_shard_count(std::size_t shards) {
  GS_CHECK_GE(shards, 1u);
  GS_CHECK(empty()) << "shard layout may only change while the queue is empty";
  heaps_.assign(shards, {});
  cached_top_ = kNoShard;
}

EventId EventQueue::push_entry(std::size_t shard, Entry entry) {
  GS_CHECK_LT(shard, heaps_.size());
  entry.id = next_id_++;
  const EventId id = entry.id;
  std::vector<Entry>& heap = heaps_[shard];
  heap.push_back(std::move(entry));
  std::push_heap(heap.begin(), heap.end(), Later{});
  ++live_;
  cached_top_ = kNoShard;  // the new entry may beat the cached head
  return id;
}

EventId EventQueue::schedule(Time at, std::function<void()> action) {
  return schedule_on(0, at, std::move(action));
}

EventId EventQueue::schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  return schedule_on(0, at, sink, a, b);
}

EventId EventQueue::schedule_on(std::size_t shard, Time at, std::function<void()> action) {
  Entry entry;
  entry.at = at;
  entry.action = std::move(action);
  return push_entry(shard, std::move(entry));
}

EventId EventQueue::schedule_on(std::size_t shard, Time at, EventSink& sink, std::uint64_t a,
                                std::uint64_t b) {
  Entry entry;
  entry.at = at;
  entry.sink = &sink;
  entry.a = a;
  entry.b = b;
  return push_entry(shard, std::move(entry));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: mark and skip at pop time.  A second cancel of the same
  // id must fail, as must cancelling an event that already ran; both are
  // detected by the insert result and the live counter bookkeeping.
  const bool inserted = cancelled_.insert(id).second;
  if (!inserted) return false;
  // The id might belong to an event that already fired; verify it is still
  // in a heap.  Linear scan is fine: cancels are rare (churn only).
  bool pending = false;
  for (const std::vector<Entry>& heap : heaps_) {
    pending = std::any_of(heap.begin(), heap.end(),
                          [id](const Entry& e) { return e.id == id; });
    if (pending) break;
  }
  if (!pending) {
    cancelled_.erase(id);
    return false;
  }
  GS_CHECK_GT(live_, 0u);
  --live_;
  cached_top_ = kNoShard;  // the cached head may be the cancelled entry
  return true;
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

std::size_t EventQueue::size() const noexcept { return live_; }

void EventQueue::skip_cancelled(std::size_t shard) {
  std::vector<Entry>& heap = heaps_[shard];
  while (!heap.empty()) {
    const auto it = cancelled_.find(heap.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap.begin(), heap.end(), Later{});
    heap.pop_back();
  }
}

std::size_t EventQueue::top_shard() {
  if (cached_top_ != kNoShard) return cached_top_;
  // The deterministic cross-shard merge: among the live shard heads, the
  // (time, sequence) minimum is exactly the entry a single global queue
  // would pop next.  Linear scan — shard counts are small (cores, not
  // peers) and the per-shard heaps already did the log-factor work.  The
  // memo makes the run loop's next_time() + pop_and_run() pair pay for one
  // scan, not two.
  std::size_t best = heaps_.size();
  for (std::size_t shard = 0; shard < heaps_.size(); ++shard) {
    skip_cancelled(shard);
    const std::vector<Entry>& heap = heaps_[shard];
    if (heap.empty()) continue;
    if (best == heaps_.size() || Later{}(heaps_[best].front(), heap.front())) {
      best = shard;
    }
  }
  GS_CHECK_LT(best, heaps_.size());
  cached_top_ = best;
  return best;
}

Time EventQueue::next_time() const {
  GS_CHECK(!empty());
  // top_shard() is non-const (it drops cancelled heads), but observable
  // state is unchanged — logical constness via const_cast.
  auto* self = const_cast<EventQueue*>(this);
  return self->heaps_[self->top_shard()].front().at;
}

Time EventQueue::pop_and_run(std::size_t* shard_out) {
  GS_CHECK(!empty());
  const std::size_t shard = top_shard();
  if (shard_out != nullptr) *shard_out = shard;
  std::vector<Entry>& heap = heaps_[shard];
  std::pop_heap(heap.begin(), heap.end(), Later{});
  Entry entry = std::move(heap.back());
  heap.pop_back();
  --live_;
  cached_top_ = kNoShard;
  if (entry.sink != nullptr) {
    entry.sink->on_event(entry.a, entry.b);
  } else {
    entry.action();
  }
  return entry.at;
}

bool EventQueue::top_is_batchable() {
  const Entry& head = heaps_[top_shard()].front();
  return head.sink != nullptr && head.sink->batchable();
}

std::size_t EventQueue::pop_batch(Time limit, std::vector<PooledBatchItem>& out,
                                  EventSink** sink_out) {
  GS_CHECK(!empty());
  out.clear();
  std::size_t shard = top_shard();
  EventSink* const sink = heaps_[shard].front().sink;
  GS_CHECK(sink != nullptr);
  const bool across_times = sink->batch_across_times();
  const Time first_at = heaps_[shard].front().at;
  for (;;) {
    std::vector<Entry>& heap = heaps_[shard];
    out.push_back({heap.front().at, heap.front().a, heap.front().b});
    std::pop_heap(heap.begin(), heap.end(), Later{});
    heap.pop_back();
    --live_;
    cached_top_ = kNoShard;
    if (out.size() >= kMaxBatch || empty()) break;
    // Extend only while the *global* head continues the run: same sink,
    // within the horizon, and (unless the sink allows it) the same
    // timestamp.  Stopping at the first mismatch keeps the batch a prefix
    // of the canonical pop order.
    shard = top_shard();
    const Entry& next = heaps_[shard].front();
    if (next.sink != sink || next.at > limit) break;
    if (!across_times && next.at != first_at) break;
  }
  *sink_out = sink;
  return out.size();
}

void EventQueue::clear() noexcept {
  for (std::vector<Entry>& heap : heaps_) heap.clear();
  cancelled_.clear();
  live_ = 0;
  cached_top_ = kNoShard;
}

}  // namespace gs::sim
