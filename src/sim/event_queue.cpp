#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::sim {

void EventQueue::set_shard_count(std::size_t shards) {
  GS_CHECK_GE(shards, 1u);
  GS_CHECK(empty()) << "shard layout may only change while the queue is empty";
  heaps_.assign(shards, {});
  if (wheel_on_) wheels_.assign(shards, TimingWheel(wheel_quantum_));
  cached_top_ = kNoShard;
}

void EventQueue::enable_timing_wheel(double quantum) {
  GS_CHECK_GT(quantum, 0.0);
  GS_CHECK(empty()) << "the backing store may only change while the queue is empty";
  wheel_on_ = true;
  wheel_quantum_ = quantum;
  wheels_.assign(heaps_.size(), TimingWheel(quantum));
  cached_top_ = kNoShard;
}

EventQueue::WheelTelemetry EventQueue::wheel_telemetry() const noexcept {
  WheelTelemetry out;
  for (const TimingWheel& wheel : wheels_) {
    const TimingWheel::Telemetry& t = wheel.telemetry();
    out.scheduled += t.scheduled;
    out.overflow_promotions += t.overflow_promotions;
    out.spill_peak = std::max(out.spill_peak, t.spill_peak);
  }
  return out;
}

EventId EventQueue::push_entry(std::size_t shard, Entry entry) {
  GS_CHECK_LT(shard, shard_count());
  entry.id = next_id_++;
  const EventId id = entry.id;
  if (wheel_on_) {
    wheels_[shard].push(std::move(entry));
  } else {
    std::vector<Entry>& heap = heaps_[shard];
    heap.push_back(std::move(entry));
    std::push_heap(heap.begin(), heap.end(), Later{});
  }
  ++live_;
  cached_top_ = kNoShard;  // the new entry may beat the cached head
  return id;
}

EventId EventQueue::schedule(Time at, std::function<void()> action) {
  return schedule_on(0, at, std::move(action));
}

EventId EventQueue::schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  return schedule_on(0, at, sink, a, b);
}

EventId EventQueue::schedule_on(std::size_t shard, Time at, std::function<void()> action) {
  Entry entry;
  entry.at = at;
  entry.action = std::move(action);
  return push_entry(shard, std::move(entry));
}

EventId EventQueue::schedule_on(std::size_t shard, Time at, EventSink& sink, std::uint64_t a,
                                std::uint64_t b) {
  Entry entry;
  entry.at = at;
  entry.sink = &sink;
  entry.a = a;
  entry.b = b;
  return push_entry(shard, std::move(entry));
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: mark and skip at pop time.  A second cancel of the same
  // id must fail, as must cancelling an event that already ran; both are
  // detected by the insert result and the live counter bookkeeping.
  const bool inserted = cancelled_.insert(id).second;
  if (!inserted) return false;
  // The id might belong to an event that already fired; verify it is still
  // resident.  Linear scan is fine: cancels are rare (churn only).
  bool pending = false;
  if (wheel_on_) {
    for (const TimingWheel& wheel : wheels_) {
      pending = wheel.any([id](const Entry& e) { return e.id == id; });
      if (pending) break;
    }
  } else {
    for (const std::vector<Entry>& heap : heaps_) {
      pending = std::any_of(heap.begin(), heap.end(),
                            [id](const Entry& e) { return e.id == id; });
      if (pending) break;
    }
  }
  if (!pending) {
    cancelled_.erase(id);
    return false;
  }
  GS_CHECK_GT(live_, 0u);
  --live_;
  cached_top_ = kNoShard;  // the cached head may be the cancelled entry
  return true;
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

std::size_t EventQueue::size() const noexcept { return live_; }

bool EventQueue::shard_has(std::size_t shard) const {
  return wheel_on_ ? !wheels_[shard].empty() : !heaps_[shard].empty();
}

const EventQueue::Entry& EventQueue::shard_head(std::size_t shard) {
  if (wheel_on_) return wheels_[shard].top();
  return heaps_[shard].front();
}

EventQueue::Entry EventQueue::shard_take(std::size_t shard) {
  if (wheel_on_) return wheels_[shard].pop();
  std::vector<Entry>& heap = heaps_[shard];
  std::pop_heap(heap.begin(), heap.end(), Later{});
  Entry entry = std::move(heap.back());
  heap.pop_back();
  return entry;
}

void EventQueue::skip_cancelled(std::size_t shard) {
  while (shard_has(shard)) {
    const auto it = cancelled_.find(shard_head(shard).id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    shard_take(shard);
  }
}

std::size_t EventQueue::top_shard() {
  if (cached_top_ != kNoShard) return cached_top_;
  // The deterministic cross-shard merge: among the live shard heads, the
  // (time, sequence) minimum is exactly the entry a single global queue
  // would pop next.  Linear scan — shard counts are small (cores, not
  // peers) and the per-shard stores already did the ordering work.  The
  // memo makes the run loop's next_time() + pop_and_run() pair pay for one
  // scan, not two.
  const std::size_t shards = shard_count();
  std::size_t best = shards;
  for (std::size_t shard = 0; shard < shards; ++shard) {
    skip_cancelled(shard);
    if (!shard_has(shard)) continue;
    if (best == shards || Later{}(shard_head(best), shard_head(shard))) {
      best = shard;
    }
  }
  GS_CHECK_LT(best, shards);
  cached_top_ = best;
  return best;
}

Time EventQueue::next_time() const {
  GS_CHECK(!empty());
  // top_shard() is non-const (it drops cancelled heads), but observable
  // state is unchanged — logical constness via const_cast.
  auto* self = const_cast<EventQueue*>(this);
  return self->shard_head(self->top_shard()).at;
}

Time EventQueue::pop_and_run(std::size_t* shard_out) {
  GS_CHECK(!empty());
  const std::size_t shard = top_shard();
  if (shard_out != nullptr) *shard_out = shard;
  Entry entry = shard_take(shard);
  --live_;
  cached_top_ = kNoShard;
  if (entry.sink != nullptr) {
    entry.sink->on_event(entry.a, entry.b);
  } else {
    entry.action();
  }
  return entry.at;
}

bool EventQueue::top_is_batchable() {
  const Entry& head = shard_head(top_shard());
  return head.sink != nullptr && head.sink->batchable();
}

std::size_t EventQueue::pop_batch(Time limit, std::vector<PooledBatchItem>& out,
                                  EventSink** sink_out) {
  GS_CHECK(!empty());
  out.clear();
  std::size_t shard = top_shard();
  EventSink* const sink = shard_head(shard).sink;
  GS_CHECK(sink != nullptr);
  const bool across_times = sink->batch_across_times();
  const Time first_at = shard_head(shard).at;
  for (;;) {
    const Entry entry = shard_take(shard);
    out.push_back({entry.at, entry.a, entry.b});
    --live_;
    cached_top_ = kNoShard;
    if (out.size() >= kMaxBatch || empty()) break;
    // Extend only while the *global* head continues the run: same sink,
    // within the horizon, and (unless the sink allows it) the same
    // timestamp.  Stopping at the first mismatch keeps the batch a prefix
    // of the canonical pop order.
    shard = top_shard();
    const Entry& next = shard_head(shard);
    if (next.sink != sink || next.at > limit) break;
    if (!across_times && next.at != first_at) break;
  }
  *sink_out = sink;
  return out.size();
}

void EventQueue::clear() noexcept {
  for (std::vector<Entry>& heap : heaps_) heap.clear();
  for (TimingWheel& wheel : wheels_) wheel.clear();
  cancelled_.clear();
  live_ = 0;
  cached_top_ = kNoShard;
}

}  // namespace gs::sim
