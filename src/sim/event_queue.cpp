#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::sim {

EventId EventQueue::schedule(Time at, std::function<void()> action) {
  const EventId id = next_id_++;
  Entry entry;
  entry.at = at;
  entry.id = id;
  entry.action = std::move(action);
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

EventId EventQueue::schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b) {
  const EventId id = next_id_++;
  Entry entry;
  entry.at = at;
  entry.id = id;
  entry.sink = &sink;
  entry.a = a;
  entry.b = b;
  heap_.push_back(std::move(entry));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy deletion: mark and skip at pop time.  A second cancel of the same
  // id must fail, as must cancelling an event that already ran; both are
  // detected by the insert result and the live counter bookkeeping.
  const bool inserted = cancelled_.insert(id).second;
  if (!inserted) return false;
  // The id might belong to an event that already fired; verify it is still
  // in the heap.  Linear scan is fine: cancels are rare (churn only).
  const bool pending = std::any_of(heap_.begin(), heap_.end(),
                                   [id](const Entry& e) { return e.id == id; });
  if (!pending) {
    cancelled_.erase(id);
    return false;
  }
  GS_CHECK_GT(live_, 0u);
  --live_;
  return true;
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

std::size_t EventQueue::size() const noexcept { return live_; }

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const {
  GS_CHECK(!empty());
  // skip_cancelled() is non-const; emulate by scanning from the top.  The
  // head is guaranteed live after pop_and_run/schedule maintain the heap,
  // but cancels may leave dead entries at the top, so do the cleanup here
  // via const_cast (logical constness: observable state is unchanged).
  auto* self = const_cast<EventQueue*>(this);
  self->skip_cancelled();
  GS_CHECK(!heap_.empty());
  return heap_.front().at;
}

Time EventQueue::pop_and_run() {
  GS_CHECK(!empty());
  skip_cancelled();
  GS_CHECK(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  --live_;
  if (entry.sink != nullptr) {
    entry.sink->on_event(entry.a, entry.b);
  } else {
    entry.action();
  }
  return entry.at;
}

void EventQueue::clear() noexcept {
  heap_.clear();
  cancelled_.clear();
  live_ = 0;
}

}  // namespace gs::sim
