#include "sim/timing_wheel.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace gs::sim {

TimingWheel::TimingWheel(double quantum)
    : inv_quantum_(1.0 / quantum),
      near_(static_cast<std::size_t>(kNearSlots)),
      coarse_(static_cast<std::size_t>(kCoarseSlots)) {
  GS_CHECK_GT(quantum, 0.0);
}

std::int64_t TimingWheel::bucket_of(Time at) const noexcept {
  return static_cast<std::int64_t>(std::floor(at * inv_quantum_));
}

void TimingWheel::push(QueueEntry entry) {
  const std::int64_t bucket = bucket_of(entry.at);
  if (!anchored_) {
    // Anchor one bucket behind the first entry so it routes into the near
    // wheel; anything later scheduled further in the past (legal before the
    // run starts) simply lands in the side heap.
    anchored_ = true;
    cursor_ = bucket - 1;
    coarse_cursor_ = cursor_ >> kNearBits;
  }
  ++telemetry_.scheduled;
  ++size_;
  place(std::move(entry), bucket);
}

void TimingWheel::place(QueueEntry entry, std::int64_t bucket) {
  if (bucket <= cursor_) {
    // Late arrival: the bucket was already collected (or lies behind the
    // anchor).  The side heap merges with the sorted front at top()/pop().
    side_.push_back(std::move(entry));
    std::push_heap(side_.begin(), side_.end(), QueueEntryLater{});
    return;
  }
  if (bucket - cursor_ <= kNearSlots) {
    // Window (cursor_, cursor_ + kNearSlots]: exactly kNearSlots distinct
    // bucket values, one per slot.  The inclusive upper bound matters — a
    // coarse slot promoted at cursor_ = boundary - 1 spans buckets
    // [cursor_ + 1, cursor_ + kNearSlots] and must land here whole.
    near_[static_cast<std::size_t>(bucket & kNearMask)].push_back(std::move(entry));
    ++near_live_;
    return;
  }
  const std::int64_t coarse = bucket >> kNearBits;
  if (coarse < coarse_cursor_ + kCoarseSlots) {
    coarse_[static_cast<std::size_t>(coarse & kCoarseMask)].push_back(std::move(entry));
    ++coarse_live_;
    return;
  }
  spill_.push_back(std::move(entry));
  std::push_heap(spill_.begin(), spill_.end(), QueueEntryLater{});
  telemetry_.spill_peak =
      std::max<std::uint64_t>(telemetry_.spill_peak, spill_.size());
}

void TimingWheel::promote_coarse() {
  std::vector<QueueEntry>& slot = coarse_[static_cast<std::size_t>(coarse_cursor_ & kCoarseMask)];
  coarse_live_ -= slot.size();
  telemetry_.overflow_promotions += slot.size();
  for (QueueEntry& e : slot) {
    const std::int64_t bucket = bucket_of(e.at);
    place(std::move(e), bucket);
  }
  slot.clear();
}

void TimingWheel::pull_spill() {
  while (!spill_.empty()) {
    const std::int64_t bucket = bucket_of(spill_.front().at);
    if ((bucket >> kNearBits) >= coarse_cursor_ + kCoarseSlots) return;
    std::pop_heap(spill_.begin(), spill_.end(), QueueEntryLater{});
    QueueEntry e = std::move(spill_.back());
    spill_.pop_back();
    ++telemetry_.overflow_promotions;
    place(std::move(e), bucket);
  }
}

void TimingWheel::advance() {
  for (;;) {
    if (near_live_ == 0 && coarse_live_ == 0) {
      // Everything resident lies beyond the coarse horizon: jump the whole
      // wheel to the spill head's bucket instead of stepping empty slots.
      GS_CHECK(!spill_.empty());
      cursor_ = bucket_of(spill_.front().at) - 1;
      coarse_cursor_ = cursor_ >> kNearBits;
      pull_spill();
      continue;
    }
    if (near_live_ == 0) {
      // Jump to the next coarse boundary; the crossing branch below does
      // the promotion.  At most kCoarseSlots hops reach any coarse entry.
      cursor_ = ((coarse_cursor_ + 1) << kNearBits) - 1;
    }
    const std::int64_t next = cursor_ + 1;
    if ((next >> kNearBits) > coarse_cursor_) {
      // Crossing into a new coarse slot: scatter it before draining any of
      // its buckets (promoted entries have bucket > cursor_, so they land
      // in the near wheel, never the side heap).
      coarse_cursor_ = next >> kNearBits;
      promote_coarse();
      pull_spill();
      continue;
    }
    cursor_ = next;
    std::vector<QueueEntry>& slot = near_[static_cast<std::size_t>(cursor_ & kNearMask)];
    if (slot.empty()) continue;
    // The whole slot is exactly bucket `cursor_` (one bucket per slot; see
    // header).  The stable in-bucket order: sort by the global (time,
    // sequence) key — ids are unique, so the order is total and the drain
    // reproduces the binary heap's pop sequence bit for bit.
    near_live_ -= slot.size();
    front_.clear();
    front_.swap(slot);
    front_pos_ = 0;
    std::sort(front_.begin(), front_.end(), [](const QueueEntry& a, const QueueEntry& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.id < b.id;
    });
    return;
  }
}

bool TimingWheel::front_is_next() const noexcept {
  if (front_pos_ >= front_.size()) return false;
  if (side_.empty()) return true;
  return !QueueEntryLater{}(front_[front_pos_], side_.front());
}

const QueueEntry& TimingWheel::top() {
  GS_CHECK_GT(size_, 0u);
  if (front_pos_ >= front_.size() && side_.empty()) advance();
  if (front_is_next()) return front_[front_pos_];
  return side_.front();
}

QueueEntry TimingWheel::pop() {
  GS_CHECK_GT(size_, 0u);
  if (front_pos_ >= front_.size() && side_.empty()) advance();
  --size_;
  if (front_is_next()) {
    return std::move(front_[front_pos_++]);
  }
  std::pop_heap(side_.begin(), side_.end(), QueueEntryLater{});
  QueueEntry out = std::move(side_.back());
  side_.pop_back();
  return out;
}

void TimingWheel::clear() noexcept {
  for (std::vector<QueueEntry>& slot : near_) slot.clear();
  for (std::vector<QueueEntry>& slot : coarse_) slot.clear();
  spill_.clear();
  side_.clear();
  front_.clear();
  front_pos_ = 0;
  near_live_ = 0;
  coarse_live_ = 0;
  size_ = 0;
  anchored_ = false;
  cursor_ = 0;
  coarse_cursor_ = 0;
}

}  // namespace gs::sim
