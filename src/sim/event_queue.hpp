// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence): the sequence number makes
// same-time events fire in insertion order, which keeps runs bit-for-bit
// reproducible regardless of heap internals.
//
// Two kinds of entry share the one sequence domain (so their mutual
// ordering at a timestamp is still insertion order):
//   - closure events: an arbitrary std::function<void()>;
//   - pooled plain-struct events: an EventSink* plus two payload words
//     stored inline in the heap entry.  Scheduling one never allocates —
//     the entry vector IS the pool — which is what keeps the hot delivery
//     path (one event per segment transfer) allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace gs::sim {

/// Simulation time in seconds.
using Time = double;

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

/// Receiver of pooled plain-struct events.  The two payload words are
/// whatever the scheduler packed (e.g. TransferPlane packs the requester
/// node id and the segment id of a delivery).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(std::uint64_t a, std::uint64_t b) = 0;
};

class EventQueue {
 public:
  /// Schedules `action` at absolute time `at`.  Returns an id usable with
  /// cancel().  `at` may equal the current head time; ties fire in
  /// scheduling order.
  EventId schedule(Time at, std::function<void()> action);

  /// Schedules a pooled plain-struct event: at time `at`, calls
  /// `sink.on_event(a, b)`.  Same ordering domain and cancellation rules as
  /// the closure overload, but the entry carries the payload inline, so
  /// this never allocates.  `sink` must outlive the event.
  EventId schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest pending event; requires !empty().
  /// Returns the time of the event that ran.
  Time pop_and_run();

  /// Drops all pending events.
  void clear() noexcept;

 private:
  struct Entry {
    Time at;
    EventId id;
    /// Non-null selects the pooled plain-struct path; `action` is unused.
    EventSink* sink = nullptr;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Removes cancelled entries sitting at the heap top.
  void skip_cancelled();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace gs::sim
