// Pending-event set for the discrete-event simulator.
//
// Entries are keyed by (time, sequence): the sequence number makes
// same-time events fire in insertion order, which keeps runs bit-for-bit
// reproducible regardless of the backing store's internals.
//
// Two interchangeable backends store the pending set:
//   - binary heaps (the default): O(log n) schedule and pop;
//   - hierarchical timing wheels (enable_timing_wheel): amortized O(1)
//     schedule and O(bucket) pops — see sim/timing_wheel.hpp.  Each bucket
//     drains through a stable (time, sequence) sort, so the pop order (and
//     therefore every fixed-seed metric downstream) is bit-identical to the
//     heap backend; only the schedule/pop cost changes.
//
// The queue is optionally *sharded*: set_shard_count(P) partitions the
// pending set into P independent stores, and schedule_on(shard, ...) places
// an event in a specific partition (the sharded engine routes each peer's
// delivery events to that peer's shard).  Sequence numbers stay GLOBAL
// across shards, and the pop side merges the shard heads by
// (time, sequence) — so the execution order is exactly the order a single
// unsharded queue would produce, no matter how events are distributed.
// That merge rule is what keeps sharded runs bit-identical to sequential
// ones; the shard dimension only buys smaller stores (cheaper push/pop at
// scale) and a per-peer-partitioned pending set.
//
// Two kinds of entry share the one sequence domain (so their mutual
// ordering at a timestamp is still insertion order):
//   - closure events: an arbitrary std::function<void()>;
//   - pooled plain-struct events: an EventSink* plus two payload words
//     stored inline in the entry.  Scheduling one never allocates —
//     the entry storage IS the pool — which is what keeps the hot delivery
//     path (one event per segment transfer) allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/timing_wheel.hpp"  // Time, EventId, QueueEntry, TimingWheel

namespace gs::sim {

/// One pooled entry of a batched pop: its fire time plus the two payload
/// words.  pop_batch hands the sink a contiguous run of these.
struct PooledBatchItem {
  Time at = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Receiver of pooled plain-struct events.  The two payload words are
/// whatever the scheduler packed (e.g. TransferPlane packs the requester
/// node id and the segment id of a delivery).
///
/// A sink may additionally opt into *batched* pops (see
/// EventQueue::pop_batch): a maximal run of consecutive — in global
/// (time, sequence) order — pooled entries sharing this sink is then
/// delivered through one on_batch call instead of per-entry on_event
/// calls.  Batching never reorders anything; it only changes how many
/// entries one dispatch hands over, which is what lets the engine drain a
/// whole delivery wave (or a super-batch of tick sweeps) in one pass.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(std::uint64_t a, std::uint64_t b) = 0;

  /// Opt-in to batched pops.  A batchable sink must process on_batch items
  /// in order and honour each item's own fire time (the driver's clock is
  /// parked at the *last* item's time for the duration of the batch).
  [[nodiscard]] virtual bool batchable() const noexcept { return false; }
  /// When false (default) a batch only spans entries with one identical
  /// timestamp.  A sink may return true ONLY if processing its events
  /// schedules nothing: with nothing new entering the queue, a run of
  /// consecutive heads stays the exact pop sequence even across distinct
  /// times (the engine's delivery drain qualifies; tick sweeps do not —
  /// they schedule re-arms and transfers).
  [[nodiscard]] virtual bool batch_across_times() const noexcept { return false; }
  /// Processes a batched run in order.  The default loops on_event, which
  /// is byte-for-byte the unbatched dispatch.
  virtual void on_batch(const PooledBatchItem* items, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_event(items[i].a, items[i].b);
  }
};

class EventQueue {
 public:
  EventQueue() : heaps_(1) {}

  /// Partitions the pending set into `shards` independent stores (>= 1).
  /// Must be called while the queue is empty — pending events are never
  /// rehomed (rejected loudly; silently redistributing them would move
  /// entries between schedule_on targets).  Pop order is unaffected (global
  /// (time, sequence) merge); only schedule_on targets change meaning.
  void set_shard_count(std::size_t shards);
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return wheel_on_ ? wheels_.size() : heaps_.size();
  }

  /// Swaps the backing store from per-shard binary heaps to per-shard
  /// hierarchical timing wheels quantized at `quantum` seconds (the tick
  /// cadence, for the engine).  Must be called while the queue is empty.
  /// Pop order is bit-identical to the heap backend (each bucket drains
  /// through a stable (time, sequence) sort); only schedule/pop cost and
  /// the wheel telemetry change.  Composes with set_shard_count in either
  /// order.
  void enable_timing_wheel(double quantum);
  [[nodiscard]] bool timing_wheel_enabled() const noexcept { return wheel_on_; }

  /// Wheel-plane telemetry aggregated over the shards (all zero while the
  /// heap backend is active): entries scheduled through the wheels, entries
  /// promoted from the overflow wheel / spill heap into finer levels, and
  /// the spill heap's peak occupancy (max across shards).
  struct WheelTelemetry {
    std::uint64_t scheduled = 0;
    std::uint64_t overflow_promotions = 0;
    std::uint64_t spill_peak = 0;
  };
  [[nodiscard]] WheelTelemetry wheel_telemetry() const noexcept;

  /// Schedules `action` at absolute time `at` on shard 0.  Returns an id
  /// usable with cancel().  `at` may equal the current head time; ties fire
  /// in scheduling order.
  EventId schedule(Time at, std::function<void()> action);

  /// Schedules a pooled plain-struct event on shard 0: at time `at`, calls
  /// `sink.on_event(a, b)`.  Same ordering domain and cancellation rules as
  /// the closure overload, but the entry carries the payload inline, so
  /// this never allocates.  `sink` must outlive the event.
  EventId schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b);

  /// schedule() variants targeting a specific shard's store.
  EventId schedule_on(std::size_t shard, Time at, std::function<void()> action);
  EventId schedule_on(std::size_t shard, Time at, EventSink& sink, std::uint64_t a,
                      std::uint64_t b);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest pending event (the (time, sequence) min
  /// across every shard head); requires !empty().  Returns the time of the
  /// event that ran; `shard_out`, when non-null, receives the shard it was
  /// popped from.
  Time pop_and_run(std::size_t* shard_out = nullptr);

  /// True when the next entry to pop is a pooled event whose sink opted
  /// into batched pops; requires !empty().
  [[nodiscard]] bool top_is_batchable();

  /// Pops the maximal batchable run at the head of the queue WITHOUT
  /// running it: starting from the current head (which must satisfy
  /// top_is_batchable()), consecutive global-order heads are drained into
  /// `out` while they are pooled entries of the same sink, fire no later
  /// than `limit`, and — unless the sink batches across times — share the
  /// first entry's timestamp.  Returns the number of entries popped (>= 1)
  /// and stores the common sink in `sink_out`; the caller dispatches the
  /// run via sink->on_batch.  The run is exactly a prefix of the sequence
  /// pop_and_run would produce, so dispatching it in order preserves every
  /// determinism guarantee.
  std::size_t pop_batch(Time limit, std::vector<PooledBatchItem>& out, EventSink** sink_out);

  /// Drops all pending events.
  void clear() noexcept;

 private:
  using Entry = QueueEntry;
  using Later = QueueEntryLater;

  EventId push_entry(std::size_t shard, Entry entry);
  /// Backend-neutral shard primitives: occupancy, head peek, head removal.
  [[nodiscard]] bool shard_has(std::size_t shard) const;
  [[nodiscard]] const Entry& shard_head(std::size_t shard);
  Entry shard_take(std::size_t shard);
  /// Removes cancelled entries sitting at `shard`'s head.
  void skip_cancelled(std::size_t shard);
  /// Shard holding the globally earliest live entry; requires !empty().
  /// Drops cancelled heads as a side effect and caches the winner so the
  /// usual next_time() + pop_and_run() pair scans the shard heads once.
  [[nodiscard]] std::size_t top_shard();

  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  /// pop_batch scratch bound: correctness never depends on where a run is
  /// cut (the remainder simply forms the next batch), so this only caps
  /// the caller's scratch memory.
  static constexpr std::size_t kMaxBatch = 4096;

  /// One binary heap per shard (heap backend; the unsharded queue is the
  /// 1-shard case).  Unused while the wheel backend is active.
  std::vector<std::vector<Entry>> heaps_;
  /// One timing wheel per shard (wheel backend; see enable_timing_wheel).
  std::vector<TimingWheel> wheels_;
  bool wheel_on_ = false;
  double wheel_quantum_ = 1.0;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  /// top_shard() memo; kNoShard whenever the stores may have changed.
  std::size_t cached_top_ = kNoShard;
};

}  // namespace gs::sim
