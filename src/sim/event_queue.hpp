// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence): the sequence number makes
// same-time events fire in insertion order, which keeps runs bit-for-bit
// reproducible regardless of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace gs::sim {

/// Simulation time in seconds.
using Time = double;

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `action` at absolute time `at`.  Returns an id usable with
  /// cancel().  `at` may equal the current head time; ties fire in
  /// scheduling order.
  EventId schedule(Time at, std::function<void()> action);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest pending event; requires !empty().
  /// Returns the time of the event that ran.
  Time pop_and_run();

  /// Drops all pending events.
  void clear() noexcept;

 private:
  struct Entry {
    Time at;
    EventId id;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Removes cancelled entries sitting at the heap top.
  void skip_cancelled();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace gs::sim
