// Pending-event set for the discrete-event simulator.
//
// Binary heaps keyed by (time, sequence): the sequence number makes
// same-time events fire in insertion order, which keeps runs bit-for-bit
// reproducible regardless of heap internals.
//
// The queue is optionally *sharded*: set_shard_count(P) partitions the
// pending set into P independent heaps, and schedule_on(shard, ...) places
// an event in a specific partition (the sharded engine routes each peer's
// delivery events to that peer's shard).  Sequence numbers stay GLOBAL
// across shards, and the pop side merges the shard heads by
// (time, sequence) — so the execution order is exactly the order a single
// unsharded queue would produce, no matter how events are distributed.
// That merge rule is what keeps sharded runs bit-identical to sequential
// ones; the shard dimension only buys smaller heaps (cheaper push/pop at
// scale) and a per-peer-partitioned pending set.
//
// Two kinds of entry share the one sequence domain (so their mutual
// ordering at a timestamp is still insertion order):
//   - closure events: an arbitrary std::function<void()>;
//   - pooled plain-struct events: an EventSink* plus two payload words
//     stored inline in the heap entry.  Scheduling one never allocates —
//     the entry vector IS the pool — which is what keeps the hot delivery
//     path (one event per segment transfer) allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace gs::sim {

/// Simulation time in seconds.
using Time = double;

/// Identifies a scheduled event for cancellation.
using EventId = std::uint64_t;

/// One pooled entry of a batched pop: its fire time plus the two payload
/// words.  pop_batch hands the sink a contiguous run of these.
struct PooledBatchItem {
  Time at = 0.0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Receiver of pooled plain-struct events.  The two payload words are
/// whatever the scheduler packed (e.g. TransferPlane packs the requester
/// node id and the segment id of a delivery).
///
/// A sink may additionally opt into *batched* pops (see
/// EventQueue::pop_batch): a maximal run of consecutive — in global
/// (time, sequence) order — pooled entries sharing this sink is then
/// delivered through one on_batch call instead of per-entry on_event
/// calls.  Batching never reorders anything; it only changes how many
/// entries one dispatch hands over, which is what lets the engine drain a
/// whole delivery wave (or a super-batch of tick sweeps) in one pass.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(std::uint64_t a, std::uint64_t b) = 0;

  /// Opt-in to batched pops.  A batchable sink must process on_batch items
  /// in order and honour each item's own fire time (the driver's clock is
  /// parked at the *last* item's time for the duration of the batch).
  [[nodiscard]] virtual bool batchable() const noexcept { return false; }
  /// When false (default) a batch only spans entries with one identical
  /// timestamp.  A sink may return true ONLY if processing its events
  /// schedules nothing: with nothing new entering the queue, a run of
  /// consecutive heads stays the exact pop sequence even across distinct
  /// times (the engine's delivery drain qualifies; tick sweeps do not —
  /// they schedule re-arms and transfers).
  [[nodiscard]] virtual bool batch_across_times() const noexcept { return false; }
  /// Processes a batched run in order.  The default loops on_event, which
  /// is byte-for-byte the unbatched dispatch.
  virtual void on_batch(const PooledBatchItem* items, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_event(items[i].a, items[i].b);
  }
};

class EventQueue {
 public:
  EventQueue() : heaps_(1) {}

  /// Partitions the pending set into `shards` independent heaps (>= 1).
  /// Must be called while the queue is empty; existing entries are not
  /// redistributed.  Pop order is unaffected (global (time, sequence)
  /// merge); only schedule_on targets change meaning.
  void set_shard_count(std::size_t shards);
  [[nodiscard]] std::size_t shard_count() const noexcept { return heaps_.size(); }

  /// Schedules `action` at absolute time `at` on shard 0.  Returns an id
  /// usable with cancel().  `at` may equal the current head time; ties fire
  /// in scheduling order.
  EventId schedule(Time at, std::function<void()> action);

  /// Schedules a pooled plain-struct event on shard 0: at time `at`, calls
  /// `sink.on_event(a, b)`.  Same ordering domain and cancellation rules as
  /// the closure overload, but the entry carries the payload inline, so
  /// this never allocates.  `sink` must outlive the event.
  EventId schedule(Time at, EventSink& sink, std::uint64_t a, std::uint64_t b);

  /// schedule() variants targeting a specific shard's heap.
  EventId schedule_on(std::size_t shard, Time at, std::function<void()> action);
  EventId schedule_on(std::size_t shard, Time at, EventSink& sink, std::uint64_t a,
                      std::uint64_t b);

  /// Cancels a pending event.  Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest pending event; requires !empty().
  [[nodiscard]] Time next_time() const;

  /// Pops and runs the earliest pending event (the (time, sequence) min
  /// across every shard head); requires !empty().  Returns the time of the
  /// event that ran; `shard_out`, when non-null, receives the shard it was
  /// popped from.
  Time pop_and_run(std::size_t* shard_out = nullptr);

  /// True when the next entry to pop is a pooled event whose sink opted
  /// into batched pops; requires !empty().
  [[nodiscard]] bool top_is_batchable();

  /// Pops the maximal batchable run at the head of the queue WITHOUT
  /// running it: starting from the current head (which must satisfy
  /// top_is_batchable()), consecutive global-order heads are drained into
  /// `out` while they are pooled entries of the same sink, fire no later
  /// than `limit`, and — unless the sink batches across times — share the
  /// first entry's timestamp.  Returns the number of entries popped (>= 1)
  /// and stores the common sink in `sink_out`; the caller dispatches the
  /// run via sink->on_batch.  The run is exactly a prefix of the sequence
  /// pop_and_run would produce, so dispatching it in order preserves every
  /// determinism guarantee.
  std::size_t pop_batch(Time limit, std::vector<PooledBatchItem>& out, EventSink** sink_out);

  /// Drops all pending events.
  void clear() noexcept;

 private:
  struct Entry {
    Time at = 0.0;
    EventId id = 0;
    /// Non-null selects the pooled plain-struct path; `action` is unused.
    EventSink* sink = nullptr;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::function<void()> action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  EventId push_entry(std::size_t shard, Entry entry);
  /// Removes cancelled entries sitting at `shard`'s heap top.
  void skip_cancelled(std::size_t shard);
  /// Shard holding the globally earliest live entry; requires !empty().
  /// Drops cancelled heads as a side effect and caches the winner so the
  /// usual next_time() + pop_and_run() pair scans the shard heads once.
  [[nodiscard]] std::size_t top_shard();

  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);
  /// pop_batch scratch bound: correctness never depends on where a run is
  /// cut (the remainder simply forms the next batch), so this only caps
  /// the caller's scratch memory.
  static constexpr std::size_t kMaxBatch = 4096;

  /// One binary heap per shard; the unsharded queue is the 1-shard case.
  std::vector<std::vector<Entry>> heaps_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;
  /// top_shard() memo; kNoShard whenever the heaps may have changed.
  std::size_t cached_top_ = kNoShard;
};

}  // namespace gs::sim
