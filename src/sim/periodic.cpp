#include "sim/periodic.hpp"

#include "util/check.hpp"

namespace gs::sim {

PeriodicTask::PeriodicTask(Simulator& sim, Time start, Time period,
                           std::function<void(Time)> action)
    : sim_(sim), period_(period), action_(std::move(action)), state_(std::make_shared<State>()) {
  GS_CHECK_GT(period, 0.0);
  arm(start);
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!state_ || !state_->active) return;
  state_->active = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTask::arm(Time when) {
  // The shared state keeps the fired lambda safe if the task is destroyed
  // between scheduling and firing (the event then no-ops).
  std::shared_ptr<State> state = state_;
  pending_ = sim_.at(when, [this, state, when] {
    if (!state->active) return;
    pending_ = 0;
    action_(when);
    if (state->active) arm(when + period_);
  });
}

}  // namespace gs::sim
