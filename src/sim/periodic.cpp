#include "sim/periodic.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::sim {

PeriodicTask::PeriodicTask(Simulator& sim, Time start, Time period,
                           std::function<void(Time)> action)
    : sim_(sim), period_(period), action_(std::move(action)), state_(std::make_shared<State>()) {
  GS_CHECK_GT(period, 0.0);
  arm(start);
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (!state_ || !state_->active) return;
  state_->active = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTask::arm(Time when) {
  // The shared state keeps the fired lambda safe if the task is destroyed
  // between scheduling and firing (the event then no-ops).
  std::shared_ptr<State> state = state_;
  pending_ = sim_.at(when, [this, state, when] {
    if (!state->active) return;
    pending_ = 0;
    action_(when);
    if (state->active) arm(when + period_);
  });
}

// ---------------------------------------------------------- BatchTicker ---

BatchTicker::BatchTicker(Simulator& sim, Time period, Sweep sweep)
    : sim_(sim), period_(period), sweep_(std::move(sweep)) {
  GS_CHECK_GT(period, 0.0);
  GS_CHECK(sweep_ != nullptr);
}

BatchTicker::~BatchTicker() {
  for (Group& group : groups_) {
    if (group.pending != 0) sim_.cancel(group.pending);
  }
}

std::size_t BatchTicker::add_group(Time first) {
  const std::size_t index = groups_.size();
  groups_.emplace_back();
  Group& group = groups_.back();
  group.next = first;
  group.pending = sim_.at(first, *this, index, 0);
  return index;
}

void BatchTicker::add_member(std::size_t group, std::uint32_t member) {
  GS_CHECK_LT(group, groups_.size());
  GS_CHECK(!groups_[group].sweeping) << "cannot mutate a group mid-sweep";
  Group& g = groups_[group];
  GS_CHECK(g.pending != 0) << "group went dormant; create a new one";
  g.members.push_back(member);
}

void BatchTicker::remove_member(std::size_t group, std::uint32_t member) {
  GS_CHECK_LT(group, groups_.size());
  GS_CHECK(!groups_[group].sweeping) << "cannot mutate a group mid-sweep";
  auto& members = groups_[group].members;
  const auto it = std::find(members.begin(), members.end(), member);
  GS_CHECK(it != members.end());
  members.erase(it);
}

std::size_t BatchTicker::member_count(std::size_t group) const {
  GS_CHECK_LT(group, groups_.size());
  return groups_[group].members.size();
}

bool BatchTicker::group_live(std::size_t group) const {
  GS_CHECK_LT(group, groups_.size());
  return groups_[group].pending != 0;
}

void BatchTicker::on_event(std::uint64_t a, std::uint64_t /*b*/) {
  const auto index = static_cast<std::size_t>(a);
  groups_[index].pending = 0;
  const Time now = groups_[index].next;
  // Index access throughout: a sweep that creates *other* groups (joiner
  // singletons) may reallocate groups_; mutating this group's own member
  // list mid-sweep is rejected by add_member/remove_member.
  groups_[index].sweeping = true;
  if (batch_sweep_) {
    // Hand the callback a stable copy: a sweep that creates other groups
    // (joiner singletons) may reallocate groups_, which would dangle a
    // reference into it.  The scratch keeps its capacity, so steady state
    // is one memcpy per sweep, no allocation.
    batch_scratch_.assign(groups_[index].members.begin(), groups_[index].members.end());
    batch_sweep_(batch_scratch_, now);
  } else {
    for (std::size_t i = 0; i < groups_[index].members.size(); ++i) {
      sweep_(groups_[index].members[i], now);
    }
  }
  groups_[index].sweeping = false;
  Group& group = groups_[index];
  if (group.members.empty()) return;  // dormant: every member was removed
  // Re-arm one period ahead.  Under the timing-wheel event plane this is
  // the fast path the wheel is quantized for: the next tick lands exactly
  // one near-wheel bucket ahead, so the re-arm is a single bucket append
  // (no heap sift), and a period's sweeps sort once as that bucket drains.
  group.next = now + period_;
  group.pending = sim_.at(group.next, *this, a, 0);
}

void BatchTicker::on_batch(const PooledBatchItem* items, std::size_t count) {
  if (count <= 1 || !batch_sweep_) {
    // Per-group dispatch: byte-for-byte the unbatched pop sequence.
    for (std::size_t i = 0; i < count; ++i) on_event(items[i].a, items[i].b);
    return;
  }
  // Super-batch: every item is a group firing at the same timestamp
  // (batchable sinks without batch_across_times never span times).
  // Concatenating the member lists in item order and sweeping once equals
  // the per-group sweeps: member order is preserved, and the sweep
  // callback (the engine's wave pipeline) re-derives any member state an
  // earlier member's commit invalidated, exactly as it does across waves
  // of one group.  The re-arms collapse to the end of the run; only
  // continuous-time transfer events are scheduled during sweeps, so the
  // collapse cannot flip any cross-event ordering.
  ++superbatches_;
  const Time now = groups_[static_cast<std::size_t>(items[0].a)].next;
  batch_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    Group& group = groups_[static_cast<std::size_t>(items[i].a)];
    group.pending = 0;
    group.sweeping = true;
    batch_scratch_.insert(batch_scratch_.end(), group.members.begin(), group.members.end());
  }
  batch_sweep_(batch_scratch_, now);
  for (std::size_t i = 0; i < count; ++i) {
    const auto index = static_cast<std::size_t>(items[i].a);
    Group& group = groups_[index];
    group.sweeping = false;
    if (group.members.empty()) continue;  // dormant: every member was removed
    group.next = now + period_;
    group.pending = sim_.at(group.next, *this, items[i].a, 0);
  }
}

}  // namespace gs::sim
