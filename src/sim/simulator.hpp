// Discrete-event simulation driver: a clock plus the pending-event set.
//
// Time is allowed to be negative — experiments use the paper's convention
// where t=0 is the source-switch instant and warm-up runs at t<0.
//
// The driver can run *sharded*: enable_shards(P, router) partitions the
// pending set into P per-shard queues (see EventQueue::set_shard_count) and
// routes every pooled plain-struct event through `router` to pick its
// shard.  Closure events always live on shard 0 (the control shard: ticks,
// generation, churn, switches).  Execution order is unchanged — the queue
// merges shard heads by (time, global sequence), so a sharded run pops the
// exact event sequence an unsharded run would — but every event scheduled
// from inside one shard's event into a *different* shard is counted as
// cross-shard outbox traffic (deliveries crossing peer shards), the
// diagnostic for how much inter-shard talk the overlay generates.
#pragma once

#include <functional>
#include <limits>

#include "sim/event_queue.hpp"

namespace gs::sim {

class Simulator {
 public:
  /// Picks the shard of a pooled event from its sink and payload (e.g. the
  /// engine routes deliveries by target peer id).  Must be deterministic.
  using ShardRouter = std::function<std::size_t(const EventSink& sink, std::uint64_t a,
                                                std::uint64_t b)>;

  /// Starts the clock at `start` (may be negative for warm-up phases).
  explicit Simulator(Time start = 0.0) : now_(start) {}

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Splits the pending set into `shards` per-shard queues and installs the
  /// pooled-event router.  Call before anything is scheduled.  Shard 0 is
  /// the control shard (all closure events); the router may use the full
  /// range [0, shards).
  void enable_shards(std::size_t shards, ShardRouter router);
  [[nodiscard]] std::size_t shard_count() const noexcept { return queue_.shard_count(); }

  /// Swaps the pending set's backing store from per-shard binary heaps to
  /// hierarchical timing wheels quantized at `quantum` seconds (the engine
  /// passes the tick cadence tau).  Call before anything is scheduled.
  /// Pure mechanism: pop order is bit-identical to the heap backend (see
  /// EventQueue::enable_timing_wheel), so everything downstream — metrics,
  /// rng draws, event ids — is unchanged; only schedule/pop cost and the
  /// wheel telemetry differ.  Composes with enable_shards in either order.
  void enable_timing_wheel(double quantum) { queue_.enable_timing_wheel(quantum); }
  [[nodiscard]] bool timing_wheel_enabled() const noexcept {
    return queue_.timing_wheel_enabled();
  }
  /// Wheel telemetry aggregated over the shards (zeros while on heaps).
  [[nodiscard]] EventQueue::WheelTelemetry wheel_telemetry() const noexcept {
    return queue_.wheel_telemetry();
  }

  /// Batched pops: when enabled, a maximal run of consecutive pooled
  /// events whose sink opted in (EventSink::batchable) is dispatched as
  /// ONE on_batch call instead of per-event on_event calls.  The run is
  /// exactly a prefix of the canonical pop order, so execution semantics
  /// are unchanged; only dispatch granularity grows (the engine's parallel
  /// delivery drain and super-batched tick sweeps ride on this).  During a
  /// batch the clock is parked at the *last* item's time; batchable sinks
  /// use each item's own `at` for per-item time semantics.
  void enable_batch_pop(bool on) { batch_pop_ = on; }
  [[nodiscard]] bool batch_pop_enabled() const noexcept { return batch_pop_; }

  /// Schedules at an absolute time; must not be in the past.
  EventId at(Time when, std::function<void()> action);
  /// Schedules `delay >= 0` seconds from now.
  EventId after(Time delay, std::function<void()> action);
  /// Pooled plain-struct variants: at `when` / after `delay`, calls
  /// `sink.on_event(a, b)`.  Never allocates (payload is stored inline in
  /// the queue entry); same ordering/cancellation semantics as the closure
  /// overloads.  Routed to a shard when sharding is enabled.
  EventId at(Time when, EventSink& sink, std::uint64_t a, std::uint64_t b);
  EventId after(Time delay, EventSink& sink, std::uint64_t a, std::uint64_t b);
  /// Cancels a pending event; false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `until`
  /// (events at exactly `until` run).  Returns the number of events run.
  std::size_t run_until(Time until);

  /// Runs until the queue drains or stop() is called.
  std::size_t run_all();

  /// Makes the current run_* call return after the in-flight event.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] bool pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const noexcept { return queue_.size(); }

  /// Events scheduled from inside an executing event into a different
  /// shard's queue (0 while unsharded) — the cross-shard outbox volume.
  [[nodiscard]] std::uint64_t cross_shard_scheduled() const noexcept {
    return cross_shard_scheduled_;
  }

 private:
  [[nodiscard]] std::size_t route(const EventSink& sink, std::uint64_t a, std::uint64_t b);
  /// Shared drive loop of run_until/run_all (`until` = +inf for run_all).
  std::size_t drive(Time until);

  EventQueue queue_;
  ShardRouter router_;
  Time now_;
  bool stop_requested_ = false;
  bool batch_pop_ = false;
  /// Shard of the event currently executing (0 when idle/unsharded).
  std::size_t executing_shard_ = 0;
  std::uint64_t cross_shard_scheduled_ = 0;
  /// pop_batch scratch (capacity reused across batches).
  std::vector<PooledBatchItem> batch_scratch_;
};

}  // namespace gs::sim
