// Discrete-event simulation driver: a clock plus the pending-event set.
//
// Time is allowed to be negative — experiments use the paper's convention
// where t=0 is the source-switch instant and warm-up runs at t<0.
#pragma once

#include <functional>
#include <limits>

#include "sim/event_queue.hpp"

namespace gs::sim {

class Simulator {
 public:
  /// Starts the clock at `start` (may be negative for warm-up phases).
  explicit Simulator(Time start = 0.0) : now_(start) {}

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules at an absolute time; must not be in the past.
  EventId at(Time when, std::function<void()> action);
  /// Schedules `delay >= 0` seconds from now.
  EventId after(Time delay, std::function<void()> action);
  /// Pooled plain-struct variants: at `when` / after `delay`, calls
  /// `sink.on_event(a, b)`.  Never allocates (payload is stored inline in
  /// the queue entry); same ordering/cancellation semantics as the closure
  /// overloads.
  EventId at(Time when, EventSink& sink, std::uint64_t a, std::uint64_t b);
  EventId after(Time delay, EventSink& sink, std::uint64_t a, std::uint64_t b);
  /// Cancels a pending event; false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the clock passes `until`
  /// (events at exactly `until` run).  Returns the number of events run.
  std::size_t run_until(Time until);

  /// Runs until the queue drains or stop() is called.
  std::size_t run_all();

  /// Makes the current run_* call return after the in-flight event.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] bool pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_;
  bool stop_requested_ = false;
};

}  // namespace gs::sim
