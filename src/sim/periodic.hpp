// Periodic task helper: re-arms a callback every `period` seconds.
//
// Used for per-node scheduling ticks (τ = 1 s in the paper) and the churn
// process.  Cancellation is needed when a node leaves the overlay.
//
// BatchTicker is the batched counterpart: groups of members that share a
// tick phase are swept by ONE simulator event per group per period instead
// of one PeriodicTask per member.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace gs::sim {

/// Owns a repeating event.  Destroying or cancel()ing the task stops the
/// repetition; the callback is never invoked afterwards.
class PeriodicTask {
 public:
  /// Schedules `action` at start, start+period, start+2*period, ...
  /// `start` is absolute; must be >= sim.now().
  PeriodicTask(Simulator& sim, Time start, Time period, std::function<void(Time)> action);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops future firings.  Safe to call from within the action.
  void cancel();

  [[nodiscard]] bool active() const noexcept { return state_ && state_->active; }
  [[nodiscard]] Time period() const noexcept { return period_; }

 private:
  struct State {
    bool active = true;
  };

  void arm(Time when);

  Simulator& sim_;
  Time period_;
  std::function<void(Time)> action_;
  std::shared_ptr<State> state_;
  EventId pending_ = 0;
};

/// Batched tick dispatch: each group holds members that tick at the same
/// times (`first + k * period`), and one pooled simulator event per group
/// per period sweeps them all.
///
/// The dispatch order is *exactly* the order the equivalent per-member
/// PeriodicTasks would produce, which is what lets fixed-seed runs stay
/// bit-identical when switching between the two dispatch modes:
///   - members of a group are swept in add order (a per-member task armed
///     later would carry a later event sequence number);
///   - groups whose fire times tie run in group-creation order (creation
///     schedules each group's first event, claiming a sequence slot, and
///     re-arms happen in sweep order every period thereafter);
///   - the group's re-arm is scheduled at the end of its sweep, collapsing
///     the per-member run of re-arm sequence numbers into one.  No foreign
///     event can land inside that run (only deliveries are scheduled while
///     a sweep executes, and they target continuous, strictly later
///     times), so the collapse preserves every cross-event ordering.
///
/// Under batched pops (Simulator::enable_batch_pop) the ticker additionally
/// *super-batches*: a run of groups firing at the same timestamp arrives as
/// one on_batch call, and with a whole-group BatchSweep installed their
/// member lists are concatenated (item order, members in add order) into a
/// SINGLE sweep — one pre/plan/commit pipeline pass covers every tied group
/// instead of one fork/join per group.  This reproduces the per-group
/// outcome exactly: member order is preserved, the sweep callback re-plans
/// any member whose speculation an earlier member invalidated, and the
/// groups' re-arms collapse to the end of the super-batch by the same
/// continuous-delivery-times argument that justifies the per-group re-arm
/// collapse above.  Lockstep configurations (no tick stagger) put
/// N/tick_shard_size groups at every period boundary, so this is where the
/// sweep dispatch cost of the lockstep scale runs goes.
class BatchTicker final : public EventSink {
 public:
  /// `sweep(member, now)` is invoked once per member per period.
  using Sweep = std::function<void(std::uint32_t member, Time now)>;
  /// Whole-group variant: receives the live member list (add order) of the
  /// firing group.  Installed by the sharded engine so one sweep can run
  /// its members through barrier-phased passes (plan in parallel, commit in
  /// member order); the callee must preserve the per-member semantics of
  /// `sweep` and must not mutate the list.
  using BatchSweep = std::function<void(const std::vector<std::uint32_t>& members, Time now)>;

  BatchTicker(Simulator& sim, Time period, Sweep sweep);
  ~BatchTicker() override;

  /// Routes sweeps through `batch` instead of per-member `sweep` calls
  /// (nullptr restores the per-member path).
  void set_batch_sweep(BatchSweep batch) { batch_sweep_ = std::move(batch); }

  BatchTicker(const BatchTicker&) = delete;
  BatchTicker& operator=(const BatchTicker&) = delete;

  /// Creates a group whose sweeps fire at `first + k * period` (`first` >=
  /// sim.now()) and returns its index.  The first event is scheduled here,
  /// so relative to other events already pending at `first` the group
  /// orders by this call — the sequence slot a PeriodicTask armed at the
  /// same call site would take.
  std::size_t add_group(Time first);

  /// Appends `member` to `group`'s sweep, after all existing members.  The
  /// group must still be live (a group goes dormant once it fires with no
  /// members left).
  void add_member(std::size_t group, std::uint32_t member);

  /// Removes `member` from `group`; remaining members keep their order.
  void remove_member(std::size_t group, std::uint32_t member);

  [[nodiscard]] std::size_t group_count() const noexcept { return groups_.size(); }
  [[nodiscard]] std::size_t member_count(std::size_t group) const;
  /// True until the group fires with no members (then it stops re-arming).
  [[nodiscard]] bool group_live(std::size_t group) const;

  /// Same-timestamp group runs merged into one concatenated sweep
  /// (batched-pop dispatch with a BatchSweep installed only).
  [[nodiscard]] std::uint64_t superbatch_count() const noexcept { return superbatches_; }

  /// Batched pops opt-in: same-time runs only (sweeps schedule re-arms and
  /// transfers, so a batch must not span timestamps).
  [[nodiscard]] bool batchable() const noexcept override { return true; }

 private:
  struct Group {
    Time next = 0.0;
    EventId pending = 0;
    std::vector<std::uint32_t> members;
    /// Guard: a sweep callback cannot mutate a member list being iterated.
    bool sweeping = false;
  };

  /// Sweeps group `a` at its fire time, then re-arms it.
  void on_event(std::uint64_t a, std::uint64_t b) override;
  /// Super-batch: sweeps a same-timestamp run of groups as one
  /// concatenated BatchSweep pass, then re-arms each group in run order.
  void on_batch(const PooledBatchItem* items, std::size_t count) override;

  Simulator& sim_;
  Time period_;
  Sweep sweep_;
  BatchSweep batch_sweep_;
  /// Stable member-list copy handed to batch_sweep_ (reused capacity).
  std::vector<std::uint32_t> batch_scratch_;
  std::vector<Group> groups_;
  std::uint64_t superbatches_ = 0;
};

}  // namespace gs::sim
