// Periodic task helper: re-arms a callback every `period` seconds.
//
// Used for per-node scheduling ticks (τ = 1 s in the paper) and the churn
// process.  Cancellation is needed when a node leaves the overlay.
#pragma once

#include <functional>
#include <memory>

#include "sim/simulator.hpp"

namespace gs::sim {

/// Owns a repeating event.  Destroying or cancel()ing the task stops the
/// repetition; the callback is never invoked afterwards.
class PeriodicTask {
 public:
  /// Schedules `action` at start, start+period, start+2*period, ...
  /// `start` is absolute; must be >= sim.now().
  PeriodicTask(Simulator& sim, Time start, Time period, std::function<void(Time)> action);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Stops future firings.  Safe to call from within the action.
  void cancel();

  [[nodiscard]] bool active() const noexcept { return state_ && state_->active; }
  [[nodiscard]] Time period() const noexcept { return period_; }

 private:
  struct State {
    bool active = true;
  };

  void arm(Time when);

  Simulator& sim_;
  Time period_;
  std::function<void(Time)> action_;
  std::shared_ptr<State> state_;
  EventId pending_ = 0;
};

}  // namespace gs::sim
