// The switch timeline: epoch/session bookkeeping for single- and
// multi-switch runs.
//
// Owns what "switch k" means — the serial source sessions, the boundary
// ids, the per-switch metrics rows, overhead snapshots and the completion
// predicate.  The engine owns the clock and the peers; it tells the
// timeline when a switch fires and the timeline keeps the books.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gossip/overhead.hpp"
#include "net/graph.hpp"
#include "stream/metrics.hpp"
#include "stream/peer_node.hpp"
#include "stream/segment.hpp"

namespace gs::stream {

class SwitchTimeline {
 public:
  /// Declares the serial source timeline: sources[k] streams session k;
  /// session k (k>=1) starts at switch_times[k-1] (strictly increasing).
  /// `node_count` bounds the source ids.
  void set_sources(std::size_t node_count, std::vector<net::NodeId> sources,
                   std::vector<double> switch_times);

  [[nodiscard]] bool configured() const noexcept { return !sessions_.empty(); }
  [[nodiscard]] const std::vector<Session>& sessions() const noexcept { return sessions_; }
  [[nodiscard]] Session& session(std::size_t k);
  [[nodiscard]] const Session& session(std::size_t k) const;
  [[nodiscard]] std::size_t session_count() const noexcept { return sessions_.size(); }
  [[nodiscard]] const std::vector<double>& switch_times() const noexcept {
    return switch_times_;
  }
  [[nodiscard]] std::size_t switch_count() const noexcept { return switch_times_.size(); }
  /// Most recent switch that fired (-1 before the first).
  [[nodiscard]] int current_switch() const noexcept { return current_switch_; }

  [[nodiscard]] SwitchMetrics& metrics(int k);
  [[nodiscard]] const std::vector<SwitchMetrics>& results() const noexcept { return metrics_; }

  /// Marks switch k fired at `now`: ends session k at segment `last_of_old`,
  /// records the boundary -> switch mapping and stamps the metrics row.
  void begin_switch(int k, double now, SegmentId last_of_old);

  /// Switch index whose old session ends at `id`; -1 when `id` is not a
  /// session boundary.
  [[nodiscard]] int switch_ending_at(SegmentId id) const;

  /// The new stream's startup-prefix length for switch k: Qs, clamped to
  /// the next session's length when it already ended shorter.
  [[nodiscard]] std::size_t required_prefix(int k, std::size_t q_startup) const;

  /// Initialises a peer's Q1/Q2 counters for switch k, releasing any
  /// still-armed gate from a previous switch at time `now` (serial model:
  /// the peer follows the stream; its startup buffering now concerns the
  /// newest boundary).
  void init_switch_counters(PeerNode& p, int k, double now, std::size_t q_startup) const;

  /// Censors a peer still mid-way through a switch before `new_switch`.
  void censor_stale(const PeerNode& p, int new_switch);

  /// True when every tracked node of switch k finished/prepared or was
  /// censored.
  [[nodiscard]] bool switch_closed(int k) const;
  /// True when the last switch has fired and is closed.
  [[nodiscard]] bool experiment_complete() const;

  /// Appends one per-period sample of the Fig. 5/9 ratio tracks for the
  /// current switch (no-op before the first switch or once it closed).
  void sample_tracks(double now, const std::vector<PeerNode>& peers, std::size_t q_startup);

  /// Censors peers that never completed within the horizon (run end).
  void censor_unfinished(const std::vector<PeerNode>& peers);

  /// Captures the overhead counters at a switch instant so per-switch
  /// ratios can be computed as deltas.
  void capture_overhead(const gossip::OverheadAccountant& overhead);
  /// Captures the run-end counters and fills the per-switch overhead
  /// ratios from the snapshot deltas.
  void finalize_overhead(const gossip::OverheadAccountant& overhead);

 private:
  struct OverheadSnapshot {
    std::uint64_t buffer_map_bits = 0;
    std::uint64_t request_bits = 0;
    std::uint64_t data_bits = 0;
    std::uint64_t data_segments = 0;
  };
  [[nodiscard]] static OverheadSnapshot take_snapshot(
      const gossip::OverheadAccountant& overhead);

  std::vector<Session> sessions_;
  std::vector<double> switch_times_;
  /// session end id -> switch index (filled as switches fire).
  std::unordered_map<SegmentId, int> session_end_index_;
  std::vector<SwitchMetrics> metrics_;
  std::vector<OverheadSnapshot> overhead_snapshots_;
  int current_switch_ = -1;
};

}  // namespace gs::stream
