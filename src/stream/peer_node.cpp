#include "stream/peer_node.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

SegmentId next_missing(const util::DynamicBitset& bits, SegmentId from) {
  GS_CHECK_GE(from, 0);
  if (static_cast<std::size_t>(from) >= bits.size()) return from;
  const std::size_t pos = bits.find_first_clear(static_cast<std::size_t>(from));
  return static_cast<SegmentId>(pos);  // == bits.size() means "just past", still correct
}

bool PeerNode::mark_received(SegmentId id, SegmentId* evicted) {
  if (evicted != nullptr) *evicted = kNoSegment;
  if (static_cast<std::size_t>(id) >= received.size()) {
    received.resize(std::max<std::size_t>(static_cast<std::size_t>(id) + 1,
                                          received.size() * 2 + 64));
  }
  if (received.test(static_cast<std::size_t>(id))) return false;
  received.set(static_cast<std::size_t>(id));
  const SegmentId victim = buffer.insert(id);
  if (evicted != nullptr) *evicted = victim;
  return true;
}

bool PeerNode::has_received(SegmentId id) const noexcept {
  return id >= 0 && static_cast<std::size_t>(id) < received.size() &&
         received.test(static_cast<std::size_t>(id));
}

std::size_t PeerNode::count_missing(SegmentId lo, SegmentId hi) const {
  if (lo > hi) return 0;
  std::size_t missing = 0;
  for (SegmentId id = lo; id <= hi; ++id) {
    if (!has_received(id)) ++missing;
  }
  return missing;
}

void PeerNode::extend_start_run() {
  const std::size_t base = static_cast<std::size_t>(start_id());
  std::uint32_t& run = start_run();
  while (base + run < received.size() && received.test(base + run)) {
    ++run;
  }
}

std::size_t PeerNode::memory_bytes() const noexcept {
  return sizeof(PeerNode) + buffer.memory_bytes() + playback.memory_bytes() +
         received.memory_bytes() + pending.memory_bytes() +
         advertised_map.memory_bytes();
}

}  // namespace gs::stream
