// Per-peer state and node-local bookkeeping.
//
// A PeerNode owns everything that belongs to exactly one peer: its stream
// buffer and playback engine, its bandwidth budget, its scheduler-strategy
// handle, its gossip availability state (received set, pending requests) and
// its per-switch Q1/Q2 counters.  Cross-peer mechanism — uplink queues,
// deliveries, the switch timeline — lives in TransferPlane / SwitchTimeline;
// the engine wires them together.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/graph.hpp"
#include "sim/periodic.hpp"
#include "stream/bandwidth.hpp"
#include "stream/playback.hpp"
#include "stream/scheduler.hpp"
#include "stream/stream_buffer.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"

namespace gs::stream {

/// "No batch-ticker group" sentinel for PeerNode::tick_group.
inline constexpr std::size_t kNoTickGroup = static_cast<std::size_t>(-1);

struct PeerNode {
  net::NodeId id = 0;
  bool is_source = false;
  bool alive = true;
  double inbound_rate = 0.0;
  double outbound_rate = 0.0;

  StreamBuffer buffer{600};
  Playback playback{10.0};
  RateBudget in_budget;
  /// Scheduling policy this peer runs each period (shared across peers
  /// today — strategies are stateless per call — but held per node so
  /// heterogeneous policies stay a config change, not a refactor).
  std::shared_ptr<SchedulerStrategy> strategy;

  /// Ever-received segment ids (play/accounting source of truth; survives
  /// buffer eviction).
  util::DynamicBitset received;
  /// id -> retry-eligible time for in-flight requests.
  std::unordered_map<SegmentId, double> pending;

  /// First id this peer needs (joiners skip the back catalogue).
  SegmentId start_id = 0;
  /// Contiguous run of received ids starting at start_id (startup rule).
  std::size_t start_run = 0;

  /// Highest switch index whose boundary this peer knows (-1 = none).
  int known_boundary = -1;
  /// Switch currently being worked (-1 = none).  Valid once the timeline's
  /// switch event initialised the counters below.
  int active_switch = -1;
  /// Q1: undelivered old-stream segments for the active switch.
  std::size_t q1_missing = 0;
  /// Q2: undelivered segments of the new stream's Qs-prefix.
  std::size_t q2_missing = 0;
  /// Snapshot of q1_missing at the switch instant (Q0).
  std::size_t q0_at_switch = 0;
  /// Lower bound of this peer's old-stream needs for the active switch.
  SegmentId sw_lo = 0;
  bool sw_finished = false;  ///< finished playback of the old stream
  bool sw_prepared = false;  ///< gathered the new stream's prefix
  bool tracked = false;      ///< counted in the active switch's metrics
  bool gate_armed = false;   ///< playback gate set for the active switch

  util::Rng rng;
  /// Per-peer dispatch: the repeating tick event (null under batching).
  std::unique_ptr<sim::PeriodicTask> tick_task;
  /// Batched dispatch: index of this peer's sim::BatchTicker group
  /// (kNoTickGroup when per-peer dispatch is active or the peer left).
  std::size_t tick_group = kNoTickGroup;

  /// Delta availability gossip (EngineConfig::delta_maps): the last full
  /// map this peer advertised — the receivers' reconstruction baseline —
  /// and the adverts sent since the last full-map refresh.
  gossip::BufferMap advertised_map;
  std::uint32_t adverts_since_refresh = 0;

  // Diagnostics.
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t duplicates_received = 0;

  /// Marks `id` received (growing the bitset as needed) and inserts it into
  /// the stream buffer.  Returns false when it was already received.  When
  /// the insert evicts a segment, its id is reported through `evicted`
  /// (kNoSegment otherwise) so availability views can track the loss.
  bool mark_received(SegmentId id, SegmentId* evicted = nullptr);

  /// True when `id` is a valid, already-received segment id.
  [[nodiscard]] bool has_received(SegmentId id) const noexcept;

  /// First id this peer currently wants: the playback cursor once started,
  /// start_id before.  The candidate range, the windowed availability
  /// anchor and the per-tick window sync all derive from this one value —
  /// their agreement is what guarantees the sliding window always covers
  /// the candidate scan.
  [[nodiscard]] SegmentId playback_anchor() const noexcept {
    return playback.started() ? playback.cursor() : start_id;
  }

  /// Undelivered segments in [lo, hi] (0 when the range is empty).
  [[nodiscard]] std::size_t count_missing(SegmentId lo, SegmentId hi) const;

  /// Raw warm-start fill: availability and buffer only — no playback,
  /// announcement or metrics effects (those do not exist yet).
  void preload(SegmentId id) { (void)mark_received(id); }

  /// Drops expired in-flight entries so the segments become requestable
  /// again.
  void prune_pending(double now);

  /// Extends the contiguous received run from start_id (startup rule).
  void extend_start_run();
};

/// Historical name, kept for call sites that predate the decomposition.
using Peer = PeerNode;

/// First id >= `from` that is clear in `bits` (ids beyond the bitset's size
/// are implicitly clear).
[[nodiscard]] SegmentId next_missing(const util::DynamicBitset& bits, SegmentId from);

}  // namespace gs::stream
