// Per-peer state and node-local bookkeeping.
//
// A PeerNode owns everything that belongs to exactly one peer: its stream
// buffer and playback engine, its gossip availability state (received set,
// pending requests) and its identity.  The per-tick-hot scalars — alive
// flag, rates, budget, switch counters — live in a struct-of-arrays
// PeerPool (see peer_pool.hpp); PeerNode holds a (pool, index) binding and
// exposes reference-returning accessors so call sites keep their shape
// (`p.alive() = false`, `--p.q1_missing()`).  The engine binds all peers to
// one shared pool; an unbound node lazily creates a private single-slot
// pool on first access, so standalone PeerNodes (tests, transients) still
// work and default construction allocates nothing.
//
// Cross-peer mechanism — uplink queues, deliveries, the switch timeline —
// lives in TransferPlane / SwitchTimeline; the engine wires them together.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/graph.hpp"
#include "sim/periodic.hpp"
#include "stream/peer_pool.hpp"
#include "stream/playback.hpp"
#include "stream/scheduler.hpp"
#include "stream/stream_buffer.hpp"
#include "util/bitset.hpp"
#include "util/flat_map.hpp"
#include "util/rng.hpp"

namespace gs::stream {

/// "No batch-ticker group" sentinel for PeerNode::tick_group.
inline constexpr std::size_t kNoTickGroup = static_cast<std::size_t>(-1);

/// In-flight request book: segment id -> retry-eligible time.  Runs in one
/// of two modes chosen at peer init: the legacy std::unordered_map, or the
/// flat open-addressed FlatSegmentMap (EngineConfig::peer_pool) which keeps
/// entries inline and owns no heap while empty.  Both modes expose the same
/// operations and, because the engine only ever asks point queries and
/// value-predicate prunes, identical observable behaviour.
class PendingMap {
 public:
  /// Selects the flat backend.  Only valid while empty (peer init).
  void use_flat(bool flat) noexcept { flat_mode_ = flat; }

  [[nodiscard]] std::size_t size() const noexcept {
    return flat_mode_ ? flat_.size() : legacy_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] const double* find(SegmentId id) const noexcept {
    if (flat_mode_) return flat_.find(id);
    const auto it = legacy_.find(id);
    return it == legacy_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool contains(SegmentId id) const noexcept { return find(id) != nullptr; }

  /// Inserts or overwrites the retry time for `id`.
  void set(SegmentId id, double retry_at) {
    if (flat_mode_) {
      flat_.set(id, retry_at);
    } else {
      legacy_[id] = retry_at;
    }
  }

  bool erase(SegmentId id) noexcept {
    return flat_mode_ ? flat_.erase(id) : legacy_.erase(id) > 0;
  }

  /// Drops every entry whose retry time is <= `now`.
  void prune(double now) {
    if (flat_mode_) {
      flat_.erase_if([now](double retry_at) { return retry_at <= now; });
      return;
    }
    for (auto it = legacy_.begin(); it != legacy_.end();) {
      it = it->second <= now ? legacy_.erase(it) : std::next(it);
    }
  }

  void clear() noexcept {
    flat_.clear();
    legacy_.clear();
  }

  /// Heap bytes owned by the active backend.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    if (flat_mode_) return flat_.memory_bytes();
    // Node-based estimate: bucket array + one node (two pointers of
    // overhead plus the payload) per entry.
    return legacy_.bucket_count() * sizeof(void*) +
           legacy_.size() * (sizeof(std::pair<SegmentId, double>) + 2 * sizeof(void*));
  }

 private:
  util::FlatSegmentMap<double> flat_;
  std::unordered_map<SegmentId, double> legacy_;
  bool flat_mode_ = false;
};

struct PeerNode {
  net::NodeId id = 0;

  StreamBuffer buffer{600};
  Playback playback{10.0};

  /// Ever-received segment ids (play/accounting source of truth; survives
  /// buffer eviction).
  util::DynamicBitset received;
  /// id -> retry-eligible time for in-flight requests.
  PendingMap pending;

  util::Rng rng;
  /// Per-peer dispatch: the repeating tick event (null under batching).
  std::unique_ptr<sim::PeriodicTask> tick_task;
  /// Batched dispatch: index of this peer's sim::BatchTicker group
  /// (kNoTickGroup when per-peer dispatch is active or the peer left).
  std::size_t tick_group = kNoTickGroup;

  /// Delta availability gossip (EngineConfig::delta_maps): the last full
  /// map this peer advertised — the receivers' reconstruction baseline —
  /// and the adverts sent since the last full-map refresh.
  gossip::BufferMap advertised_map;
  std::uint32_t adverts_since_refresh = 0;

  // Diagnostics.
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t duplicates_received = 0;

  /// Attaches this node to slot `index` of an engine-owned pool.  The pool
  /// must outlive the node (the engine owns both).
  void bind(PeerPool& pool, std::size_t index) noexcept {
    pool_ = &pool;
    idx_ = index;
  }

  // Hot-scalar accessors.  Non-const overloads return references into the
  // pool (uint8_t for flags: `p.tracked() = true` and `if (p.tracked())`
  // both work); const overloads return values.
  [[nodiscard]] bool is_source() const { return pool().is_source(idx_) != 0; }
  [[nodiscard]] std::uint8_t& is_source() { return pool().is_source(idx_); }
  [[nodiscard]] bool alive() const { return pool().alive(idx_) != 0; }
  [[nodiscard]] std::uint8_t& alive() { return pool().alive(idx_); }
  [[nodiscard]] double inbound_rate() const { return pool().inbound_rate(idx_); }
  [[nodiscard]] double& inbound_rate() { return pool().inbound_rate(idx_); }
  [[nodiscard]] double outbound_rate() const { return pool().outbound_rate(idx_); }
  [[nodiscard]] double& outbound_rate() { return pool().outbound_rate(idx_); }
  [[nodiscard]] const RateBudget& in_budget() const { return pool().in_budget(idx_); }
  [[nodiscard]] RateBudget& in_budget() { return pool().in_budget(idx_); }
  /// First id this peer needs (joiners skip the back catalogue).
  [[nodiscard]] SegmentId start_id() const { return pool().start_id(idx_); }
  [[nodiscard]] SegmentId& start_id() { return pool().start_id(idx_); }
  /// Contiguous run of received ids starting at start_id (startup rule).
  [[nodiscard]] std::uint32_t start_run() const { return pool().start_run(idx_); }
  [[nodiscard]] std::uint32_t& start_run() { return pool().start_run(idx_); }
  /// Highest switch index whose boundary this peer knows (-1 = none).
  [[nodiscard]] int known_boundary() const { return pool().known_boundary(idx_); }
  [[nodiscard]] int& known_boundary() { return pool().known_boundary(idx_); }
  /// Switch currently being worked (-1 = none).  Valid once the timeline's
  /// switch event initialised the counters below.
  [[nodiscard]] int active_switch() const { return pool().active_switch(idx_); }
  [[nodiscard]] int& active_switch() { return pool().active_switch(idx_); }
  /// Q1: undelivered old-stream segments for the active switch.
  [[nodiscard]] std::uint32_t q1_missing() const { return pool().q1_missing(idx_); }
  [[nodiscard]] std::uint32_t& q1_missing() { return pool().q1_missing(idx_); }
  /// Q2: undelivered segments of the new stream's Qs-prefix.
  [[nodiscard]] std::uint32_t q2_missing() const { return pool().q2_missing(idx_); }
  [[nodiscard]] std::uint32_t& q2_missing() { return pool().q2_missing(idx_); }
  /// Snapshot of q1_missing at the switch instant (Q0).
  [[nodiscard]] std::uint32_t q0_at_switch() const { return pool().q0_at_switch(idx_); }
  [[nodiscard]] std::uint32_t& q0_at_switch() { return pool().q0_at_switch(idx_); }
  /// Lower bound of this peer's old-stream needs for the active switch.
  [[nodiscard]] SegmentId sw_lo() const { return pool().sw_lo(idx_); }
  [[nodiscard]] SegmentId& sw_lo() { return pool().sw_lo(idx_); }
  /// Finished playback of the old stream.
  [[nodiscard]] bool sw_finished() const { return pool().sw_finished(idx_) != 0; }
  [[nodiscard]] std::uint8_t& sw_finished() { return pool().sw_finished(idx_); }
  /// Gathered the new stream's prefix.
  [[nodiscard]] bool sw_prepared() const { return pool().sw_prepared(idx_) != 0; }
  [[nodiscard]] std::uint8_t& sw_prepared() { return pool().sw_prepared(idx_); }
  /// Counted in the active switch's metrics.
  [[nodiscard]] bool tracked() const { return pool().tracked(idx_) != 0; }
  [[nodiscard]] std::uint8_t& tracked() { return pool().tracked(idx_); }
  /// Playback gate set for the active switch.
  [[nodiscard]] bool gate_armed() const { return pool().gate_armed(idx_) != 0; }
  [[nodiscard]] std::uint8_t& gate_armed() { return pool().gate_armed(idx_); }
  /// Index into the engine's scheduler-strategy registry (strategies are
  /// stateless per call and shared; peers carry a one-byte handle so
  /// heterogeneous policies stay a config change, not a refactor).
  [[nodiscard]] std::uint8_t strategy_index() const { return pool().strategy(idx_); }
  [[nodiscard]] std::uint8_t& strategy_index() { return pool().strategy(idx_); }

  /// Marks `id` received (growing the bitset as needed) and inserts it into
  /// the stream buffer.  Returns false when it was already received.  When
  /// the insert evicts a segment, its id is reported through `evicted`
  /// (kNoSegment otherwise) so availability views can track the loss.
  bool mark_received(SegmentId id, SegmentId* evicted = nullptr);

  /// True when `id` is a valid, already-received segment id.
  [[nodiscard]] bool has_received(SegmentId id) const noexcept;

  /// First id this peer currently wants: the playback cursor once started,
  /// start_id before.  The candidate range, the windowed availability
  /// anchor and the per-tick window sync all derive from this one value —
  /// their agreement is what guarantees the sliding window always covers
  /// the candidate scan.
  [[nodiscard]] SegmentId playback_anchor() const {
    return playback.started() ? playback.cursor() : start_id();
  }

  /// Undelivered segments in [lo, hi] (0 when the range is empty).
  [[nodiscard]] std::size_t count_missing(SegmentId lo, SegmentId hi) const;

  /// Raw warm-start fill: availability and buffer only — no playback,
  /// announcement or metrics effects (those do not exist yet).
  void preload(SegmentId id) { (void)mark_received(id); }

  /// Drops expired in-flight entries so the segments become requestable
  /// again.
  void prune_pending(double now) { pending.prune(now); }

  /// Extends the contiguous received run from start_id (startup rule).
  void extend_start_run();

  /// Heap bytes owned by this node's cold state (buffer, playback, received
  /// set, pending book, advertised map) plus the node itself.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  [[nodiscard]] PeerPool& pool() const {
    if (pool_ == nullptr) {
      own_ = std::make_unique<PeerPool>();
      own_->resize(1);
      pool_ = own_.get();
    }
    return *pool_;
  }

  // Engine-bound nodes point into the engine's pool; unbound nodes lazily
  // own a single-slot pool.  Mutable so const reads work before binding;
  // own_ lives on the heap so the binding survives vector reallocation.
  mutable PeerPool* pool_ = nullptr;
  mutable std::unique_ptr<PeerPool> own_;
  std::size_t idx_ = 0;
};

/// Historical name, kept for call sites that predate the decomposition.
using Peer = PeerNode;

/// First id >= `from` that is clear in `bits` (ids beyond the bitset's size
/// are implicitly clear).
[[nodiscard]] SegmentId next_missing(const util::DynamicBitset& bits, SegmentId from);

}  // namespace gs::stream
