// Node bandwidth model.
//
// Rates are measured in segments/second like the paper's I and O (a 300 Kbps
// stream of 30 Kb segments gives p = 10 seg/s; 450 Kbps average inbound is
// I = 15 seg/s).  Each scheduling period a node may issue floor(budget)
// requests where the budget accrues rate * tau with bounded carry, so
// fractional rates are honoured over time without unbounded banking.
//
// The paper draws rates "randomly ... (from 300 Kbps to 1 Mbps)" with a
// 450 Kbps average — a mean well below the range midpoint, i.e. a skewed
// distribution.  BandwidthSampler reproduces that with a scaled Beta draw
// whose shape is solved from (min, max, mean).
#pragma once

#include <cstdint>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace gs::stream {

/// Per-period token budget with bounded carry-over.
class RateBudget {
 public:
  RateBudget() = default;
  /// `rate` in segments/second; `carry_periods` bounds how many periods of
  /// unused budget may accumulate (1.0 = no banking beyond one period).
  explicit RateBudget(double rate, double carry_periods = 1.0)
      : rate_(rate), carry_periods_(carry_periods) {
    GS_CHECK_GE(rate, 0.0);
    GS_CHECK_GE(carry_periods, 1.0);
  }

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double available() const noexcept { return tokens_; }
  /// Whole segments spendable right now.
  [[nodiscard]] std::size_t whole() const noexcept {
    return tokens_ < 1.0 ? 0 : static_cast<std::size_t>(tokens_);
  }

  /// Adds one period's worth of tokens (rate * tau), clamped to the carry
  /// bound (carry_periods * rate * tau).
  void replenish(double tau) noexcept;

  /// Spends `amount` tokens; requires amount <= available().
  void spend(double amount) noexcept;

 private:
  double rate_ = 0.0;
  double carry_periods_ = 1.0;
  double tokens_ = 0.0;
};

/// Draws per-node rates in [min, max] with a prescribed mean.
class BandwidthSampler {
 public:
  /// Requires min < max and mean strictly inside (min, max).
  BandwidthSampler(double min, double max, double mean);

  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  [[nodiscard]] double sample(util::Rng& rng) const;

  /// Paper defaults: I in [10, 33.3] seg/s averaging 15 (300 Kbps - 1 Mbps,
  /// avg 450 Kbps, 30 Kb segments).
  [[nodiscard]] static BandwidthSampler paper_inbound();
  /// "The arrangement of outbound rate is alike."
  [[nodiscard]] static BandwidthSampler paper_outbound();

 private:
  double min_;
  double max_;
  double mean_;
  double alpha_;
  double beta_;
};

}  // namespace gs::stream
