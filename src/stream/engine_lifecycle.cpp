// Engine lifecycle: peer initialisation, warm start, churn, the debug
// series and the run loop.  The per-tick pipeline lives in engine.cpp.
#include <algorithm>
#include <cmath>
#include <limits>

#include "stream/engine.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/meminfo.hpp"

namespace gs::stream {

void Engine::init_peer_state(PeerNode& p, net::NodeId v) {
  p.id = v;
  util::Rng node_setup = setup_rng_.fork(v);
  if (p.is_source()) {
    p.inbound_rate() = 0.0;
    p.outbound_rate() = config_.source_outbound;
  } else {
    p.inbound_rate() = config_.inbound.sample(node_setup);
    p.outbound_rate() = config_.outbound.sample(node_setup);
  }
  p.in_budget() = RateBudget(p.inbound_rate(), config_.budget_carry);
  p.buffer = StreamBuffer(config_.buffer_capacity, config_.peer_pool);
  p.playback = Playback(config_.playback_rate, config_.peer_pool);
  p.pending.use_flat(config_.peer_pool);
  p.rng = util::Rng(config_.seed).fork(util::hash_name("peer")).fork(v);
}

void Engine::init_peers() {
  const std::size_t n = graph_.node_count();
  peers_.resize(n);
  pool_.resize(n);
  for (net::NodeId v = 0; v < n; ++v) peers_[v].bind(pool_, v);
  transfers_.ensure_nodes(peers_.size());
  if (cdn_) cdn_->ensure_nodes(peers_.size());
  std::vector<char> is_source(graph_.node_count(), 0);
  for (const Session& s : timeline_.sessions()) is_source[s.source] = 1;
  for (net::NodeId v = 0; v < graph_.node_count(); ++v) {
    PeerNode& p = peers_[v];
    p.is_source() = is_source[v] != 0;
    init_peer_state(p, v);
    p.start_id() = 0;
  }
  membership_.bootstrap_all_live();
  for (net::NodeId v = 0; v < graph_.node_count(); ++v) {
    start_peer_tick(peers_[v], /*initial=*/true);
  }
}

double Engine::tick_offset(net::NodeId v) const {
  if (!config_.stagger_ticks) return 0.0;
  const std::size_t shard = v / std::max<std::size_t>(1, config_.tick_shard_size);
  return util::Rng(config_.seed)
      .fork(util::hash_name("tick-phase"))
      .fork(shard)
      .uniform(0.0, config_.tau);
}

void Engine::start_peer_tick(PeerNode& p, bool initial) {
  if (p.is_source()) return;  // sources never pull
  const double start = sim_.now() + tick_offset(p.id);
  if (!config_.batch_dispatch) {
    const net::NodeId id = p.id;
    p.tick_task = std::make_unique<sim::PeriodicTask>(
        sim_, start, config_.tau, [this, id](double now) { tick(peers_[id], now); });
    return;
  }
  if (!ticker_) {
    ticker_ = std::make_unique<sim::BatchTicker>(
        sim_, config_.tau,
        [this](std::uint32_t member, double now) { tick(peers_[member], now); });
    if (config_.parallel_shards > 0) {
      // The sharded core takes whole sweeps: pre in member order, plan on
      // the pool, commit in member order (same per-member semantics).
      ticker_->set_batch_sweep([this](const std::vector<std::uint32_t>& members, double now) {
        run_parallel_sweep(members, now);
      });
    }
  }
  if (initial) {
    // Initial peers of a shard share the same start time; the shard's
    // group is armed by its first non-source peer, so the group's event
    // claims exactly the sequence slot that peer's PeriodicTask would.
    const std::size_t shard = p.id / std::max<std::size_t>(1, config_.tick_shard_size);
    if (shard >= shard_group_.size()) shard_group_.resize(shard + 1, kNoTickGroup);
    if (shard_group_[shard] == kNoTickGroup) shard_group_[shard] = ticker_->add_group(start);
    p.tick_group = shard_group_[shard];
  } else {
    // Joiners tick on their own grid (join time + phase), so they get a
    // singleton group; its fresh event id matches the fresh PeriodicTask a
    // per-peer run would create at this very call.
    p.tick_group = ticker_->add_group(start);
  }
  ticker_->add_member(p.tick_group, p.id);
}

// --------------------------------------------------------------- churn ---

void Engine::churn_step(double now) {
  std::size_t live_peers = 0;
  for (const net::NodeId v : membership_.live_nodes()) {
    if (!peers_[v].is_source()) ++live_peers;
  }
  const auto n_leave = static_cast<std::size_t>(
      std::llround(config_.churn_leave_fraction * static_cast<double>(live_peers)));
  const auto n_join = static_cast<std::size_t>(
      std::llround(config_.churn_join_fraction * static_cast<double>(live_peers)));

  // Select distinct non-source victims before mutating the live list.
  std::vector<net::NodeId> victims;
  victims.reserve(n_leave);
  std::size_t attempts = 0;
  while (victims.size() < n_leave && attempts < n_leave * 30 + 30) {
    ++attempts;
    const auto& live = membership_.live_nodes();
    if (live.empty()) break;
    const net::NodeId v = live[static_cast<std::size_t>(
        churn_rng_.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
    if (peers_[v].is_source()) continue;
    if (std::find(victims.begin(), victims.end(), v) != victims.end()) continue;
    victims.push_back(v);
  }
  for (const net::NodeId v : victims) handle_leave(v);
  for (std::size_t i = 0; i < n_join; ++i) handle_join();
  (void)now;
}

void Engine::handle_leave(net::NodeId v) {
  PeerNode& p = peers_[v];
  GS_CHECK(p.alive());
  GS_CHECK(!p.is_source());
  p.alive() = false;
  if (p.tick_task) p.tick_task->cancel();
  if (p.tick_group != kNoTickGroup) {
    ticker_->remove_member(p.tick_group, p.id);
    p.tick_group = kNoTickGroup;
  }
  // Unregister from the neighbourhood views while the graph still has v's
  // edges; the repair edges membership adds below re-enter via connect().
  if (availability_.maintained()) availability_.remove_peer(graph_, peers_, v);
  membership_.leave(v);
  ++stats_.leaves;
  if (p.tracked() && p.active_switch() >= 0) {
    SwitchMetrics& m = timeline_.metrics(p.active_switch());
    if (!p.sw_finished()) {
      ++m.censored_finish;
      p.sw_finished() = true;
    }
    if (!p.sw_prepared()) {
      ++m.censored_prepare;
      p.sw_prepared() = true;
    }
    p.tracked() = false;
    check_experiment_complete();
  }
}

net::NodeId Engine::handle_join() {
  const net::NodeId v = membership_.join();
  GS_CHECK_EQ(static_cast<std::size_t>(v), peers_.size());
  latency_.add_node(std::min(churn_rng_.pareto(config_.join_ping_min_ms, config_.join_ping_shape),
                             config_.join_ping_cap_ms));
  peers_.emplace_back();
  pool_.resize(peers_.size());
  peers_.back().bind(pool_, peers_.size() - 1);
  transfers_.ensure_nodes(peers_.size());
  if (cdn_) cdn_->ensure_nodes(peers_.size());
  PeerNode& p = peers_.back();
  init_peer_state(p, v);
  ++stats_.joins;

  // "A new joining node ... starts its media playback by following its
  // neighbours' current steps" (§5.4): begin at the furthest neighbour
  // playhead instead of fetching the back catalogue.
  SegmentId start = kNoSegment;
  for (const net::NodeId nb : graph_.neighbors(v)) {
    const PeerNode& n = peers_[nb];
    if (n.alive() && n.playback.started()) start = std::max(start, n.playback.cursor());
  }
  if (start == kNoSegment) {
    start = std::max<SegmentId>(
        0, registry_.next_id() - static_cast<SegmentId>(config_.q_consecutive));
  }
  p.start_id() = start;

  // Mid-switch joiners participate mechanically but are not tracked.
  const int current = timeline_.current_switch();
  if (current >= 0 && timeline_.session(static_cast<std::size_t>(current)).ended() &&
      p.start_id() <= timeline_.session(static_cast<std::size_t>(current)).last) {
    timeline_.init_switch_counters(p, current, sim_.now(), config_.q_startup);
  }
  if (availability_.maintained()) availability_.add_peer(graph_, peers_, v);
  start_peer_tick(p, /*initial=*/false);
  return v;
}

// ---------------------------------------------------------- warm start ---

void Engine::warm_start_state() {
  const double p_rate = config_.playback_rate;
  const auto history_count =
      static_cast<std::size_t>(std::llround(config_.history_seconds * p_rate));
  if (history_count == 0) return;
  const double t0 = sim_.now();

  // Pre-generate the old source's history, timestamped in the past.
  Session& first_session = timeline_.session(0);
  PeerNode& src = peers_[first_session.source];
  for (std::size_t i = 0; i < history_count; ++i) {
    const double created = t0 - static_cast<double>(history_count - i) / p_rate;
    const SegmentId id = registry_.append(0, created, kNoSegment);
    if (first_session.first == kNoSegment) first_session.first = id;
    ++stats_.segments_generated;
    src.preload(id);
  }
  const SegmentId head = registry_.next_id() - 1;

  const std::vector<std::size_t> hops = graph_.bfs_hops(first_session.source);
  const double population = static_cast<double>(std::max<std::size_t>(peers_.size(), 2));
  const double backlog_target =
      config_.stable_backlog_scale * std::pow(population, config_.stable_backlog_exponent);
  for (PeerNode& p : peers_) {
    if (p.is_source()) continue;
    // Roughly uniform backlog (see config docs) with mild spread and an
    // optional per-hop component.  The warmup is kept short so spare
    // inbound rate does not drain the seeded state before the switch (in
    // the paper's stable phase the backlog is availability-pinned: "most
    // nodes' data delivery rate cannot catch the media play rate").
    const double hop_count = hops[p.id] == std::numeric_limits<std::size_t>::max()
                                 ? 6.0
                                 : static_cast<double>(hops[p.id]);
    const double backlog = backlog_target * p.rng.uniform(0.85, 1.15) +
                           config_.hop_lag_seconds * hop_count * p_rate +
                           config_.base_lag_segments;
    const double lag_segments = backlog / std::max(0.05, 1.0 - config_.sparse_fill);
    const SegmentId cursor =
        std::max<SegmentId>(0, head - static_cast<SegmentId>(std::llround(lag_segments)));
    // Solid prefix up to the playback position; the lag window beyond it is
    // mostly missing (this IS the node's Q0 backlog) with sparse random
    // coverage for supplier diversity.
    for (SegmentId id = 0; id <= cursor; ++id) p.preload(id);
    for (SegmentId id = cursor + 1; id <= head; ++id) {
      if (p.rng.bernoulli(config_.sparse_fill)) p.preload(id);
    }
    p.start_run() = static_cast<std::uint32_t>(cursor) + 1;
    p.playback.start(cursor, t0);
  }
}

// -------------------------------------------------------- debug series ---

void Engine::start_debug_series() {
  debug_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + config_.tau, config_.tau, [this](double now) {
        DebugPoint point;
        point.time = now;
        point.head = registry_.next_id() - 1;
        double cursor_gap = 0.0;
        double frontier_gap = 0.0;
        std::size_t counted = 0;
        for (const PeerNode& p : peers_) {
          if (p.is_source() || !p.alive()) continue;
          ++counted;
          const SegmentId cursor = p.playback_anchor();
          cursor_gap += static_cast<double>(point.head - cursor);
          const SegmentId frontier = next_missing(p.received, cursor);
          const double gap = static_cast<double>(point.head - frontier);
          frontier_gap += gap;
          point.max_frontier_gap = std::max(point.max_frontier_gap, gap);
        }
        if (counted > 0) {
          point.mean_cursor_gap = cursor_gap / static_cast<double>(counted);
          point.mean_frontier_gap = frontier_gap / static_cast<double>(counted);
        }
        point.delivered_this_period = stats_.segments_delivered - last_delivered_;
        point.requests_this_period = stats_.requests_issued - last_requests_;
        point.candidates_this_period = candidates_seen_ - last_candidates_;
        point.scheduled_this_period = scheduled_seen_ - last_scheduled_;
        point.old_req_this_period = stats_.old_stream_requests - last_old_req_;
        point.new_req_this_period = stats_.new_stream_requests - last_new_req_;
        last_delivered_ = stats_.segments_delivered;
        last_requests_ = stats_.requests_issued;
        last_candidates_ = candidates_seen_;
        last_scheduled_ = scheduled_seen_;
        last_old_req_ = stats_.old_stream_requests;
        last_new_req_ = stats_.new_stream_requests;
        debug_series_.push_back(point);
      });
}

// ------------------------------------------------------------------ run ---

std::vector<SwitchMetrics> Engine::run() {
  GS_CHECK(timeline_.configured()) << "call set_sources() first";
  GS_CHECK(peers_.empty()) << "run() may only be called once";
  init_peers();
  if (config_.warm_start) warm_start_state();
  // Build the availability views from the settled (possibly warm-started)
  // buffers; every later change flows in as a delta event.
  if (config_.incremental_availability) {
    if (config_.windowed_availability) {
      // Window span: the candidate range is at most buffer_capacity wide
      // and starts within a word of the anchored base; the extra slack
      // tracks a little ahead so slides reconstruct less.
      availability_.set_window(config_.buffer_capacity + 192);
    }
    // The plan gate rides the maintained views for free: work tracking
    // mirrors each view's missing ∧ supplied word count into the pool's
    // has_work lane, and tick_plan skips quiescent members.
    if (config_.plan_gate) availability_.enable_work_tracking(&pool_);
    availability_.build(graph_, peers_);
  } else if (config_.plan_gate && config_.plan_gate_legacy) {
    // Legacy rescan scheduler with the gate: maintain the index purely as
    // the gate's work tracker (enabled() stays false, so candidate builds
    // and adverts still run the legacy rescan they are benchmarked as).
    availability_.set_gate_only();
    availability_.enable_work_tracking(&pool_);
    availability_.build(graph_, peers_);
  }
  start_session(0);
  for (std::size_t i = 0; i < timeline_.switch_count(); ++i) {
    schedule_switch(static_cast<int>(i));
  }

  if (config_.churn_leave_fraction > 0.0 || config_.churn_join_fraction > 0.0) {
    churn_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, sim_.now() + config_.tau, config_.tau, [this](double now) { churn_step(now); });
  }
  if (timeline_.switch_count() > 0) {
    sampler_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, timeline_.switch_times().front(), config_.tau,
        [this](double now) { timeline_.sample_tracks(now, peers_, config_.q_startup); });
  }
  if (config_.flash_crowd_joins > 0) {
    // Admissions are paced against the cumulative quota so the crowd size
    // is exact regardless of the pump interval; the pump rides the segment
    // grid to interleave with generation deterministically.
    const double base =
        timeline_.switch_count() == 0 ? sim_.now() : timeline_.switch_times().front();
    const double start = base + config_.flash_crowd_start;
    const double interval = 1.0 / config_.playback_rate;
    flash_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, start, interval, [this, start, interval](double now) {
          const double elapsed = now - start + interval;
          const double frac = config_.flash_crowd_duration <= 0.0
                                  ? 1.0
                                  : std::min(1.0, elapsed / config_.flash_crowd_duration);
          const auto quota = static_cast<std::size_t>(
              std::llround(std::ceil(frac * static_cast<double>(config_.flash_crowd_joins))));
          while (flash_joined_ < quota) {
            handle_join();
            ++flash_joined_;
            ++stats_.flash_joins;
          }
          if (flash_joined_ >= config_.flash_crowd_joins) flash_task_->cancel();
        });
  }
  if (config_.debug_series) start_debug_series();

  const double stop_at =
      (timeline_.switch_count() == 0 ? 0.0 : timeline_.switch_times().back()) +
      config_.horizon;
  stats_.events_popped = sim_.run_until(stop_at);
  stats_.index_updates = availability_.updates_applied();
  stats_.cross_shard_events = sim_.cross_shard_scheduled();
  stats_.superbatch_sweeps = ticker_ ? ticker_->superbatch_count() : 0;
  // Lane-arena telemetry: total chunk allocations ever, the total frozen
  // when the adaptive fence armed (0 = never armed), and those past the
  // fence — the zero-allocation claim is that the last is exactly 0 once
  // the lanes went quiet (runs too short to arm the fence report 0 in
  // arena_warm_chunks, which the tightened test rejects).
  std::uint64_t arena_chunks = 0;
  for (const std::unique_ptr<util::Arena>& a : lane_arenas_) {
    arena_chunks += a->chunk_allocations();
  }
  stats_.arena_chunks = arena_chunks;
  stats_.arena_warm_chunks = arena_warm_marked_ ? arena_warm_chunks_ : 0;
  stats_.arena_steady_chunks = arena_warm_marked_ ? arena_chunks - arena_warm_chunks_ : 0;

  // Timing-wheel telemetry (zeros on the heap backend).
  const sim::EventQueue::WheelTelemetry wheel = sim_.wheel_telemetry();
  stats_.events_wheeled = wheel.scheduled;
  stats_.wheel_overflow_promotions = wheel.overflow_promotions;
  stats_.spill_heap_peak = wheel.spill_peak;

  // Memory-plane telemetry: heap footprint of all per-peer state plus the
  // process high-water mark (the latter includes non-peer state by nature).
  std::uint64_t peer_bytes = pool_.memory_bytes();
  for (const PeerNode& p : peers_) peer_bytes += p.memory_bytes();
  stats_.peer_state_bytes = peer_bytes;
  // NaN (not 0.0) when there are no peers: consumers must be able to tell
  // "telemetry absent" from a genuine zero-byte measurement.
  stats_.bytes_per_peer = peers_.empty() ? std::numeric_limits<double>::quiet_NaN()
                                         : static_cast<double>(peer_bytes) /
                                               static_cast<double>(peers_.size());
  // 0 means /proc (or the platform equivalent) is absent — report "n/a"
  // downstream, never "0.0 MiB".
  stats_.peak_rss_bytes = util::peak_rss_bytes();

  if (cdn_) {
    const CdnAssistPlane::Stats& cs = cdn_->stats();
    stats_.cdn_segments_served = cs.segments_served;
    stats_.cdn_bytes_served = cs.bytes_served;
    stats_.cdn_requests_rejected = cs.requests_rejected;
    stats_.cdn_assisted_switches = cs.assisted;
    stats_.cdn_handoffs = cs.handoffs;
    stats_.cdn_pauses = cs.pauses;
    stats_.cdn_resumes = cs.resumes;
    stats_.cdn_mean_assist_s =
        cs.assist_time_count == 0
            ? 0.0
            : cs.assist_time_sum / static_cast<double>(cs.assist_time_count);
  }

  // Censor peers that never completed within the horizon, then compute the
  // per-switch overhead ratios from the snapshot deltas.
  timeline_.censor_unfinished(peers_);
  timeline_.finalize_overhead(overhead_);
  return timeline_.results();
}

}  // namespace gs::stream
