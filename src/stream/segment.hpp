// Segment and session model.
//
// All sources share one global segment id space: when source k stops at
// segment `last`, source k+1 begins at `last + 1` (the paper sets
// id_begin = id_end + 1).  A "session" is one source's contiguous id range.
#pragma once

#include <cstdint>
#include <vector>

#include "gossip/buffer_map.hpp"
#include "net/graph.hpp"

namespace gs::stream {

using gossip::SegmentId;
using gossip::kNoSegment;

/// Index of a session in the serial timeline (0 = the first source).
using SessionIndex = std::int32_t;

/// Metadata of one generated segment.  Payload is never materialized; the
/// simulator only moves metadata and charges wire sizes.
struct SegmentInfo {
  SegmentId id = kNoSegment;
  SessionIndex session = 0;
  double created_at = 0.0;
  /// Ending segment id of the previous session, carried by segments of a
  /// new source as the switch announcement (kNoSegment for session 0).
  SegmentId prev_session_end = kNoSegment;
};

/// One source's streaming session.
struct Session {
  net::NodeId source = 0;
  double start_time = 0.0;
  /// First segment id; kNoSegment until the first segment is generated.
  SegmentId first = kNoSegment;
  /// Last segment id; kNoSegment while the session is still streaming.
  SegmentId last = kNoSegment;

  [[nodiscard]] bool started() const noexcept { return first != kNoSegment; }
  [[nodiscard]] bool ended() const noexcept { return last != kNoSegment; }
  /// Number of segments generated so far (0 if not started).
  [[nodiscard]] std::size_t generated(SegmentId next_global) const noexcept {
    if (!started()) return 0;
    const SegmentId upper = ended() ? last + 1 : next_global;
    return static_cast<std::size_t>(upper - first);
  }
};

/// The global registry of generated segments, indexed by id.
class SegmentRegistry {
 public:
  /// Appends a segment, returning its id.
  SegmentId append(SessionIndex session, double created_at, SegmentId prev_session_end);

  [[nodiscard]] const SegmentInfo& info(SegmentId id) const;
  [[nodiscard]] SegmentId next_id() const noexcept {
    return static_cast<SegmentId>(segments_.size());
  }
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }

 private:
  std::vector<SegmentInfo> segments_;
};

}  // namespace gs::stream
