#include "stream/scheduler.hpp"

// Interface-only translation unit (keeps the vtable anchored here).
namespace gs::stream {}  // namespace gs::stream
