// Per-peer segment buffer with FIFO replacement.
//
// The paper fixes the replacement strategy to FIFO and defines a segment's
// position p_ij in a supplier's buffer as its distance from the buffer's
// *tail* (most recent insertion): a just-inserted segment has position 1,
// the eviction candidate has position size() <= B.  rarity (eq. 8) uses
// p_ij / B as the per-supplier replacement probability.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "gossip/buffer_map.hpp"
#include "util/bitset.hpp"

namespace gs::stream {

using gossip::SegmentId;
using gossip::kNoSegment;

class StreamBuffer {
 public:
  explicit StreamBuffer(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }

  /// Inserts `id`; returns the evicted id (kNoSegment if none).  Duplicate
  /// inserts are no-ops returning kNoSegment.
  SegmentId insert(SegmentId id);

  /// True if `id` is currently held (inserted and not yet evicted).
  [[nodiscard]] bool contains(SegmentId id) const noexcept;

  /// Distance from tail: 1 for the newest segment, size() for the oldest.
  /// Returns 0 if absent.
  [[nodiscard]] std::size_t position_from_tail(SegmentId id) const noexcept;

  /// Oldest (next-to-evict) segment; kNoSegment when empty.
  [[nodiscard]] SegmentId oldest() const noexcept;
  /// Most recently inserted segment; kNoSegment when empty.
  [[nodiscard]] SegmentId newest() const noexcept;

  /// Highest segment id currently held; kNoSegment when empty.  Maintained
  /// incrementally (streaming arrival is nearly in id order, so the max is
  /// almost always the last insert; eviction of the max triggers a rescan).
  [[nodiscard]] SegmentId max_id() const noexcept { return max_id_; }

  /// Id-indexed availability, spanning [0, highest id ever inserted].
  /// Bits are cleared on eviction.  Zero-copy view for the gossip layer.
  [[nodiscard]] const util::DynamicBitset& presence() const noexcept { return presence_; }

  /// Builds the wire-format availability map: window of `window_bits`
  /// ending at the newest held id (base = max(0, max_id - window + 1)).
  [[nodiscard]] gossip::BufferMap build_map(std::size_t window_bits) const;

  [[nodiscard]] std::uint64_t eviction_count() const noexcept { return evictions_; }

 private:
  void grow_presence(SegmentId id);

  std::size_t capacity_;
  /// Insertion order (front = oldest).
  std::deque<SegmentId> order_;
  /// id -> insertion sequence number; erased on eviction.
  std::unordered_map<SegmentId, std::uint64_t> sequence_;
  util::DynamicBitset presence_;
  std::uint64_t next_sequence_ = 1;
  SegmentId max_id_ = kNoSegment;
  std::uint64_t evictions_ = 0;
};

}  // namespace gs::stream
