// Per-peer segment buffer with FIFO replacement.
//
// The paper fixes the replacement strategy to FIFO and defines a segment's
// position p_ij in a supplier's buffer as its distance from the buffer's
// *tail* (most recent insertion): a just-inserted segment has position 1,
// the eviction candidate has position size() <= B.  rarity (eq. 8) uses
// p_ij / B as the per-supplier replacement probability.
//
// Two storage backends share one observable behaviour.  The legacy backend
// (default) keeps insertion order in a std::deque and sequence numbers in a
// std::unordered_map.  The flat backend (EngineConfig::peer_pool) replaces
// them with a fixed ring of `capacity` ids plus a FlatSegmentMap — two
// contiguous allocations per peer instead of a deque chunk plus a heap node
// per held segment, which is what makes 10^6 buffers fit.  Either way the
// state is created lazily on first insert, so an empty buffer owns no heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gossip/buffer_map.hpp"
#include "util/bitset.hpp"
#include "util/flat_map.hpp"

namespace gs::stream {

using gossip::SegmentId;
using gossip::kNoSegment;

class StreamBuffer {
 public:
  /// `flat` selects the ring + flat-map backend (identical behaviour).
  explicit StreamBuffer(std::size_t capacity, bool flat = false);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept {
    if (flat_mode_) return flat_ ? flat_->count : 0;
    return legacy_ ? legacy_->order.size() : 0;
  }

  /// Inserts `id`; returns the evicted id (kNoSegment if none).  Duplicate
  /// inserts are no-ops returning kNoSegment.
  SegmentId insert(SegmentId id);

  /// True if `id` is currently held (inserted and not yet evicted).
  [[nodiscard]] bool contains(SegmentId id) const noexcept;

  /// Distance from tail: 1 for the newest segment, size() for the oldest.
  /// Returns 0 if absent.
  [[nodiscard]] std::size_t position_from_tail(SegmentId id) const noexcept;

  /// Oldest (next-to-evict) segment; kNoSegment when empty.
  [[nodiscard]] SegmentId oldest() const noexcept;
  /// Most recently inserted segment; kNoSegment when empty.
  [[nodiscard]] SegmentId newest() const noexcept;

  /// Highest segment id currently held; kNoSegment when empty.  Maintained
  /// incrementally (streaming arrival is nearly in id order, so the max is
  /// almost always the last insert; eviction of the max triggers a rescan).
  [[nodiscard]] SegmentId max_id() const noexcept { return max_id_; }

  /// Id-indexed availability, spanning [0, highest id ever inserted].
  /// Bits are cleared on eviction.  Zero-copy view for the gossip layer.
  [[nodiscard]] const util::DynamicBitset& presence() const noexcept { return presence_; }

  /// Builds the wire-format availability map: window of `window_bits`
  /// ending at the newest held id (base = max(0, max_id - window + 1)).
  [[nodiscard]] gossip::BufferMap build_map(std::size_t window_bits) const;

  /// build_map into a caller-owned scratch map (reuses its storage).
  void build_map_into(std::size_t window_bits, gossip::BufferMap& out) const;

  [[nodiscard]] std::uint64_t eviction_count() const noexcept { return evictions_; }

  /// Heap bytes owned by the active backend plus the presence bitset.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Legacy backend: deque of ids in insertion order (front = oldest) plus
  /// id -> insertion sequence number, erased on eviction.
  struct Legacy {
    std::deque<SegmentId> order;
    std::unordered_map<SegmentId, std::uint64_t> sequence;
  };
  /// Flat backend: ring of held ids (head = oldest) plus the same id ->
  /// sequence map, open-addressed.  The ring grows geometrically up to
  /// `capacity` so a near-empty buffer (short runs, fresh joiners) does not
  /// pay for B slots up front.  The map narrows both sides to 32 bits —
  /// segment ids are bounded by rate x horizon and sequence *distances*
  /// (all position_from_tail needs) stay exact under uint32 wraparound —
  /// so a slot is 8 bytes, not 16.
  struct Flat {
    std::vector<SegmentId> ring;
    std::size_t head = 0;
    std::size_t count = 0;
    util::FlatSegmentMap<std::uint32_t, std::int32_t> sequence;
  };

  void grow_presence(SegmentId id);
  [[nodiscard]] SegmentId window_base(std::size_t window_bits) const noexcept {
    if (max_id_ == kNoSegment) return 0;
    return std::max<SegmentId>(0, max_id_ - static_cast<SegmentId>(window_bits) + 1);
  }

  std::size_t capacity_;
  bool flat_mode_;
  std::unique_ptr<Legacy> legacy_;
  std::unique_ptr<Flat> flat_;
  util::DynamicBitset presence_;
  std::uint64_t next_sequence_ = 1;
  SegmentId max_id_ = kNoSegment;
  std::uint64_t evictions_ = 0;
};

}  // namespace gs::stream
