// CDN-assisted fast switch: a capacity-limited patch-source plane.
//
// Real IPTV deployments cut channel-change latency below what swarm
// dissemination alone can deliver with a unicast "patch" stream: on a
// switch, a server bursts the head of the new session to the client, then
// hands off to the swarm once it has caught up (FCC-style fast channel
// change).  This plane models the server side of that hybrid: one virtual
// CDN node whose uplink is governed by the same CapacityModel zoo as peer
// uplinks (make_capacity_model), so concurrent patch bursts contend
// realistically, plus the per-peer controller —
//
//   BURST    actively patching the missing prefix of the new session from
//            the CDN; a rest-play-time heuristic pauses the burst when the
//            peer's buffered lead reaches pause_lead_s and resumes it when
//            the lead falls under resume_lead_s (hysteresis);
//   HANDOFF  the peer's gossip suppliers cover the patch window — the CDN
//            stands down but keeps watching: supplier churn that breaks
//            coverage while playback is about to underrun re-enters BURST;
//   OFF      not enrolled (no eligible switch, or the assist finished).
//
// The engine owns the policy *inputs* (which ids are missing, whether
// gossip suppliers cover the window — it holds the buffers, the timeline
// and the availability views); the plane owns the per-peer state machine,
// the CDN uplink ledger and the delivery events.  Every entry point runs
// in the engine's sequential phases, so assisted runs stay deterministic
// for a fixed seed at every shard count — and when EngineConfig::cdn_assist
// is off the engine never constructs the plane, preserving the repo's
// bit-identity invariant for all existing flag combinations.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "stream/transfer_plane.hpp"

namespace gs::stream {

/// Knobs of the CDN patch source (mirrors EngineConfig::cdn_assist_*).
struct CdnAssistConfig {
  double rate = 120.0;          ///< CDN uplink capacity (segments/s)
  double latency_ms = 40.0;     ///< fixed server->peer latency (no jitter)
  double accept_horizon = 2.0;  ///< max CDN backlog (s) before rejecting
  double pause_lead_s = 3.0;    ///< buffered lead that pauses a burst
  double resume_lead_s = 1.0;   ///< lead under which a paused burst resumes
  /// Contention policy of the CDN uplink.  kSharedFifo / kTokenBucket model
  /// one shared server uplink; kPerLink gives every peer an independent
  /// patch lane at `rate` (the unconstrained ablation).
  SupplierCapacityModel capacity = SupplierCapacityModel::kSharedFifo;
  double token_bucket_burst = 4.0;
  /// Wire bits per patched segment (EngineConfig::wire.data_bits()); the
  /// byte-cost metric of the ablation bench derives from this.
  std::size_t data_bits = 30 * 1024;
};

class CdnAssistPlane final : public sim::EventSink {
 public:
  /// Per-peer assist state (see the file comment for the machine).
  enum class State : std::uint8_t { kOff, kBurst, kHandoff };

  /// Aggregate counters, copied into EngineStats at the end of a run.
  struct Stats {
    std::uint64_t segments_served = 0;   ///< patch segments sent
    std::uint64_t bytes_served = 0;      ///< the same in wire bytes
    std::uint64_t requests_rejected = 0; ///< backlog exceeded accept_horizon
    std::uint64_t pauses = 0;            ///< rest-play pauses
    std::uint64_t resumes = 0;           ///< underrun resumes
    std::size_t assisted = 0;            ///< (peer, switch) enrollments
    std::size_t handoffs = 0;            ///< coverage-driven handoffs
    double assist_time_sum = 0.0;        ///< enrollment -> handoff/exit (s)
    std::size_t assist_time_count = 0;
  };

  /// What the controller needs to know about a peer this tick, computed by
  /// the engine from state the plane cannot see.
  struct PeerView {
    /// Eligible switch (active, boundary known, prefix not yet gathered);
    /// -1 exits any running assist.
    int switch_index = -1;
    /// Contiguous buffered seconds ahead of the playback anchor.
    double rest_play_s = 0.0;
    /// Every missing id of the (fully generated) patch window has at least
    /// one alive gossip supplier.
    bool suppliers_cover = false;
  };

  using DeliveryFn = std::function<void(net::NodeId to, SegmentId id)>;

  /// `sim` must outlive the plane; `on_delivery` fires when a patch
  /// segment reaches the peer.
  CdnAssistPlane(sim::Simulator& sim, const CdnAssistConfig& config, DeliveryFn on_delivery);

  /// Grows per-peer state to cover node ids < `count` (overlay joins).
  void ensure_nodes(std::size_t count);

  /// Advances `peer`'s state machine against this tick's view.  Returns
  /// true when the peer should request patch segments now (BURST and not
  /// paused).
  bool control(net::NodeId peer, const PeerView& view, double now);

  /// Books one patch transfer of `id` to `peer`.  False when the CDN
  /// backlog exceeds the accept horizon (the peer retries next tick).
  bool request(net::NodeId peer, SegmentId id, double now);

  [[nodiscard]] State state(net::NodeId peer) const;
  [[nodiscard]] bool paused(net::NodeId peer) const;
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CdnAssistConfig& config() const noexcept { return config_; }

 private:
  struct PeerAssist {
    State state = State::kOff;
    bool paused = false;
    int switch_index = -1;
    double enroll_time = 0.0;
  };

  /// Pooled delivery event: `a` is the peer node id, `b` the segment id.
  void on_event(std::uint64_t a, std::uint64_t b) override;
  void exit_assist(PeerAssist& assist, double now);

  /// The CDN occupies supplier slot 0 of its private capacity model;
  /// requester ids are real peer ids (kPerLink keys on them).
  static constexpr net::NodeId kCdnNode = 0;

  sim::Simulator& sim_;
  CdnAssistConfig config_;
  DeliveryFn on_delivery_;
  std::unique_ptr<CapacityModel> capacity_;
  std::vector<PeerAssist> peers_;
  Stats stats_;
};

}  // namespace gs::stream
