// Scheduling strategy interface: the seam between the streaming substrate
// and the paper's algorithms.
//
// Every scheduling period the engine hands the strategy the node-local view
// (candidate segments with their suppliers, rate and playback state) and the
// strategy returns an ordered request list.  Global constraints are enforced
// when issuing — the inbound budget by the engine, supplier backlog by the
// TransferPlane's capacity model; strategies see only information a real
// peer would have.  Each PeerNode holds a handle to its strategy, so
// heterogeneous policies per peer are a wiring change, not a refactor.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gossip/buffer_map.hpp"
#include "net/graph.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace gs::stream {

using gossip::SegmentId;
using gossip::kNoSegment;

/// One neighbour able to supply a candidate segment.
struct SupplierView {
  net::NodeId node = 0;
  /// R(j): the supplier's advertised sending rate, segments/second.
  double send_rate = 0.0;
  /// p_ij: the segment's distance from the tail of the supplier's buffer
  /// (1 = newest).  Used by the rarity term (eq. 8).
  std::size_t buffer_position = 1;
  /// Estimated backlog at the supplier in seconds, observed from recent
  /// response times (the paper's R_ij is a measured per-link rate, so the
  /// estimate is information a real peer has).  Algorithm 1's local
  /// bookkeeping starts from this value.
  double queue_delay = 0.0;
};

/// Which stream a candidate belongs to during a switch.
enum class StreamEpoch : std::uint8_t {
  kOld,  ///< the ending source S1
  kNew,  ///< the starting source S2
};

/// Supplier lists are rebuilt from scratch every scheduling period, so they
/// can live in a per-tick arena (EngineConfig::peer_pool's sequential path);
/// the default-constructed allocator falls back to the heap everywhere else.
using SupplierList = std::vector<SupplierView, util::ArenaAllocator<SupplierView>>;

/// A segment the node needs and at least one neighbour can supply.
struct CandidateSegment {
  SegmentId id = kNoSegment;
  StreamEpoch epoch = StreamEpoch::kOld;
  SupplierList suppliers;

  CandidateSegment() = default;
  /// Puts the supplier list in `alloc`'s arena.
  explicit CandidateSegment(const util::ArenaAllocator<SupplierView>& alloc)
      : suppliers(alloc) {}
};

/// Node-local scheduling inputs (paper Table 1/2 notation in comments).
struct ScheduleContext {
  double now = 0.0;
  double period = 1.0;         ///< tau
  double playback_rate = 10.0; ///< p
  double inbound_rate = 0.0;   ///< I
  /// Segment currently playing / next due (id_play); kNoSegment before start.
  SegmentId id_play = kNoSegment;
  /// End of the old stream (id_end); kNoSegment when no switch is known.
  SegmentId s1_end = kNoSegment;
  /// First segment of the new stream (id_begin = id_end + 1).
  SegmentId s2_begin = kNoSegment;
  std::size_t q_consecutive = 10;   ///< Q
  std::size_t q_startup = 50;       ///< Qs
  /// Q1: undelivered old-stream segments (all, not just available now).
  std::size_t q1_remaining = 0;
  /// Q2: undelivered segments of the new stream's startup prefix.
  std::size_t q2_remaining = 0;
  std::size_t buffer_capacity = 600;  ///< B
  /// Whole requests the node may issue this period.
  std::size_t max_requests = 0;
  /// Node-local randomness for order randomization within priority classes
  /// (segment diversity / swarming; see core::sort_by_priority).  May be
  /// null, in which case ordering is fully deterministic.
  util::Rng* rng = nullptr;
};

/// A request the strategy wants issued, in priority order.
struct ScheduledRequest {
  SegmentId id = kNoSegment;
  net::NodeId supplier = 0;
};

class SchedulerStrategy {
 public:
  virtual ~SchedulerStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Plans this period's requests.  `candidates` is owned by the caller and
  /// may be reordered in place.  Implementations must return at most
  /// ctx.max_requests requests, each naming a supplier present in the
  /// candidate's supplier list, with no duplicate segment ids.
  [[nodiscard]] virtual std::vector<ScheduledRequest> schedule(
      const ScheduleContext& ctx, std::vector<CandidateSegment>& candidates) = 0;
};

}  // namespace gs::stream
