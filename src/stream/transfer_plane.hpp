// The transfer plane: supplier uplink queues and delivery scheduling.
//
// Owns the contention state of every data transfer — who is busy sending
// until when — behind a pluggable CapacityModel, and turns accepted requests
// into simulator delivery events.  Peers and the engine never touch busy
// timestamps directly: they ask for a queue-delay estimate (the scheduler's
// tau(j) seed) and submit request/push transfers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "net/graph.hpp"
#include "net/latency.hpp"
#include "sim/simulator.hpp"
#include "stream/peer_node.hpp"

namespace gs::stream {

/// How a supplier's outbound rate constrains concurrent transfers.
enum class SupplierCapacityModel : std::uint8_t {
  /// One FIFO per supplier shared by all requesters (default).  Uplink
  /// contention is what makes the *order* of requests matter: under the
  /// normal algorithm every uplink serves the old stream first, so the new
  /// stream's dissemination wave crawls — the effect the fast algorithm
  /// exploits (and the reason its Fig. 2 order interleaves S1 and S2).
  kSharedFifo,
  /// Relaxed model: each (requester, supplier) link independently carries
  /// up to the supplier's outbound rate; queueing (tau(j)) is requester-
  /// local, matching the paper's Algorithm-1 bookkeeping literally.  Kept
  /// for the ablation bench: with per-link capacity, supply is abundant,
  /// steady-state lag collapses, and the switch algorithms nearly tie.
  kPerLink,
  /// Token-bucket uplink (GCRA): the supplier accrues one transfer token
  /// per 1/outbound_rate seconds up to a burst of
  /// EngineConfig::token_bucket_burst tokens, and a transfer starts as soon
  /// as a token is available.  Long-run throughput equals kSharedFifo's,
  /// but an idle uplink can serve a burst back to back instead of spacing
  /// every transfer by the transmission time — the shape of real rate
  /// limiters and shaped last-mile uplinks.
  kTokenBucket,
};

/// Canonical name of a capacity model; the single string table shared by
/// CapacityModel::name(), CLI parsing and report labels.
[[nodiscard]] std::string_view to_string(SupplierCapacityModel kind) noexcept;

/// The contention policy of the transfer plane.  A model answers one
/// question — when would a transfer on (requester, supplier) start? — and
/// records commitments.  Times are absolute; "idle" is far in the past so
/// `max(now, backlog_end())` yields `now`.
class CapacityModel {
 public:
  /// Sentinel for "never been busy" (matches max(now, ·) == now).
  static constexpr double kIdle = -1e300;

  virtual ~CapacityModel() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Absolute time the constrained resource frees up for a new transfer on
  /// (requester, supplier); kIdle when unqueued.
  [[nodiscard]] virtual double backlog_end(net::NodeId requester,
                                           net::NodeId supplier) const = 0;

  /// Records a transfer occupying the constrained resource from `start`
  /// until `until` (`until - start` is the transmission time).
  virtual void commit(net::NodeId requester, net::NodeId supplier, double start,
                      double until) = 0;

  /// True when commitments are keyed by the *supplier* (shared uplink
  /// state), so one requester's commit changes the backlog every other
  /// requester of that supplier observes.  The sharded tick planner uses
  /// this to decide whether speculative plans can go stale within a sweep.
  [[nodiscard]] virtual bool supplier_shared() const noexcept = 0;

  /// Grows per-node state to cover node ids < `count` (overlay joins).
  virtual void ensure_nodes(std::size_t count) = 0;
};

/// Standalone capacity-model factory: a self-contained model of `kind`
/// owning all of its state (the shared-FIFO variant keeps its own uplink
/// vector, grown by ensure_nodes).  This is how subsystems other than the
/// TransferPlane — e.g. the CDN-assist plane's patch-source uplink — get a
/// contention policy governed by the same model zoo as peer uplinks.
[[nodiscard]] std::unique_ptr<CapacityModel> make_capacity_model(
    SupplierCapacityModel kind, double token_bucket_burst = 4.0);

class TransferPlane final : public sim::EventSink {
 public:
  using DeliveryFn = std::function<void(net::NodeId to, SegmentId id)>;
  /// Receives a batched run of deliveries (each item: at = delivery time,
  /// a = requester node id, b = segment id) popped together by the
  /// simulator's batched dispatch; see set_delivery_batch.
  using DeliveryBatchFn = std::function<void(const sim::PooledBatchItem* items,
                                             std::size_t count)>;

  /// `latency` and `sim` must outlive the plane.  `on_delivery` fires when
  /// a transfer's segment reaches the requester.  `token_bucket_burst` is
  /// the kTokenBucket burst depth in segments (ignored by other models).
  TransferPlane(sim::Simulator& sim, net::LatencyModel& latency, SupplierCapacityModel kind,
                double accept_horizon, DeliveryFn on_delivery,
                double token_bucket_burst = 4.0);

  // Single-home: the capacity model holds a reference into uplink state.
  TransferPlane(const TransferPlane&) = delete;
  TransferPlane& operator=(const TransferPlane&) = delete;

  /// Grows per-node state to cover node ids < `count`.
  void ensure_nodes(std::size_t count);

  [[nodiscard]] SupplierCapacityModel kind() const noexcept { return kind_; }
  [[nodiscard]] const CapacityModel& capacity() const noexcept { return *capacity_; }
  /// See CapacityModel::supplier_shared().
  [[nodiscard]] bool supplier_shared() const noexcept { return capacity_->supplier_shared(); }

  /// Estimated queueing delay (seconds from `now`) a request from
  /// `requester` to `supplier` would see; the SupplierView tau(j) seed.
  [[nodiscard]] double queue_delay(net::NodeId requester, net::NodeId supplier,
                                   double now) const;

  /// Submits a pull transfer of `id` from `supplier` to `requester`.
  /// Returns false (and commits nothing) when the backlog exceeds the
  /// accept horizon; otherwise books the capacity and schedules delivery
  /// after transmission plus jittered link latency.
  bool request(PeerNode& requester, const PeerNode& supplier, SegmentId id, double now);

  /// The capacity half of request(): acceptance test, capacity commit and
  /// the jittered delivery time — everything except posting the simulator
  /// event.  The parallel commit wave issues through this from concurrent
  /// lanes (same-colour members touch disjoint supplier state by
  /// construction) and stages (id, deliver_at) per member, then replays
  /// schedule_delivery in member order so event sequence numbers — and with
  /// them the global pop order — match the sequential commit exactly.
  /// Returns false (committing nothing, drawing no rng) on a backlog past
  /// the accept horizon.
  bool request_staged(PeerNode& requester, const PeerNode& supplier, SegmentId id, double now,
                      double& deliver_at);

  /// Posts the delivery event of an accepted staged request.  Must be
  /// called from the simulator thread (the sequential drain), in the order
  /// the sequential commit would have called sim_.after.
  void schedule_delivery(net::NodeId to, SegmentId id, double deliver_at, double now);

  /// Submits an unsolicited push of `id` from `from` to `to` on the
  /// pusher's own real uplink: the uplink FIFO under kSharedFifo/kPerLink
  /// (per-link pulls deliberately bypass it), the shared token ledger
  /// under kTokenBucket.  False when the uplink is saturated.
  bool push(PeerNode& from, net::NodeId to, SegmentId id, double now);

  /// Absolute time `v`'s uplink FIFO frees up (inspection/tests).
  [[nodiscard]] double uplink_busy_until(net::NodeId v) const;

  /// Installs the batched delivery drain: with a handler set (and the
  /// simulator's batch pop enabled) consecutive delivery events are popped
  /// as one run and handed over whole, instead of firing `on_delivery`
  /// inline per event.  The handler must process items in order using each
  /// item's own time.  Delivery processing schedules nothing, so runs may
  /// span distinct timestamps (batch_across_times); the engine therefore
  /// must NOT install a handler when fresh-segment push is active.
  void set_delivery_batch(DeliveryBatchFn handler) { on_delivery_batch_ = std::move(handler); }

  [[nodiscard]] bool batchable() const noexcept override {
    return on_delivery_batch_ != nullptr;
  }
  [[nodiscard]] bool batch_across_times() const noexcept override { return true; }

 private:
  /// Pooled delivery event: `a` is the requester node id, `b` the segment
  /// id.  The payload lives inline in the event-queue entry, so the per-
  /// transfer hot path schedules deliveries without allocating a closure.
  void on_event(std::uint64_t a, std::uint64_t b) override;
  /// Batched run of delivery events (batchable() handlers only).
  void on_batch(const sim::PooledBatchItem* items, std::size_t count) override;

  sim::Simulator& sim_;
  net::LatencyModel& latency_;
  SupplierCapacityModel kind_;
  double accept_horizon_;
  DeliveryFn on_delivery_;
  DeliveryBatchFn on_delivery_batch_;

  /// Per-supplier uplink FIFO state.  The shared-FIFO model queues pull
  /// transfers here; the push path uses it under either model.
  std::vector<double> uplink_busy_until_;

  std::unique_ptr<CapacityModel> capacity_;
};

}  // namespace gs::stream
