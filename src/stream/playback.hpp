// Playback engine: consumes segments in id order at `rate` segments/second.
//
// Event-free design: play times are computed lazily but *exactly*.  The
// cursor advances whenever advance() is called (from scheduling ticks and
// segment arrivals); each played segment's timestamp is its theoretical due
// time, which stalls push forward.  This gives exact finish times without
// scheduling 10 events per node per second.
//
// Session gates model the paper's startup rules: the cursor will not cross
// a gated id until the gate is released (release happens when the start
// condition — Q consecutive for the first stream, the Qs-segment prefix for
// a new source — is met; the engine owns those conditions).
#pragma once

#include <array>
#include <functional>
#include <limits>
#include <map>
#include <memory>

#include "gossip/buffer_map.hpp"

namespace gs::stream {

using gossip::SegmentId;
using gossip::kNoSegment;

class Playback {
 public:
  /// `rate` is the paper's p (segments/second).  `flat` swaps the
  /// recent-arrival std::map for a bounded direct-mapped ring
  /// (EngineConfig::peer_pool); behaviour is identical.
  explicit Playback(double rate, bool flat = false);

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }
  /// Next segment to play.
  [[nodiscard]] SegmentId cursor() const noexcept { return cursor_; }
  /// Earliest time the cursor segment may play.
  [[nodiscard]] double next_due() const noexcept { return next_due_; }
  /// Id the playback is currently gated at; kNoSegment if no gate.
  [[nodiscard]] SegmentId gate() const noexcept { return gate_; }
  /// Total seconds spent stalled waiting for data (excludes gate waits
  /// before the stream started).
  [[nodiscard]] double stall_time() const noexcept { return stall_time_; }
  [[nodiscard]] std::uint64_t played_count() const noexcept { return played_; }

  /// Begins playback at `first` with the first segment due at `now`.
  void start(SegmentId first, double now);

  /// Forbids playing ids >= `id` until release_gate().  Only one gate may
  /// be active at a time; setting a new gate requires the old one released.
  void set_gate(SegmentId id);

  /// Releases the current gate at time `now`; the gated segment becomes
  /// due no earlier than `now`.
  void release_gate(double now);

  /// Call on every fresh segment arrival.  Guarantees no segment is ever
  /// assigned a play time earlier than its arrival: an arrival at the
  /// cursor resumes a stalled stream at the arrival instant, and arrivals
  /// just ahead of the cursor are remembered so the lazy catch-up clamps
  /// their play times (and accounts the stall) correctly.
  void notify_arrival(SegmentId id, double now);

  /// Plays every due-and-available segment.  `has(id)` reports availability;
  /// `on_play(id, play_time)` observes each play with its exact timestamp.
  /// Returns the number of segments played.
  std::size_t advance(double now, const std::function<bool(SegmentId)>& has,
                      const std::function<void(SegmentId, double)>& on_play);

  /// Heap bytes owned by the recent-arrival bookkeeping.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  /// Arrivals further than this ahead of the cursor need no timestamp: the
  /// cursor cannot reach them within any realistic advance() gap, so their
  /// play times are always later than their arrivals anyway.  (A clamp
  /// could only matter if advance() went uncalled for kArrivalWindow /
  /// rate seconds — 6.4 s at the paper's p = 10 — while ticks run it every
  /// period.)  Applied identically in both modes, and sized to keep the
  /// flat ring at 1 KiB per playing peer.
  static constexpr SegmentId kArrivalWindow = 64;
  static_assert((kArrivalWindow & (kArrivalWindow - 1)) == 0,
                "ring slots are indexed by id & (kArrivalWindow - 1)");

  /// One direct-mapped ring slot: id == the stored segment, or stale.
  /// Live entries never collide: two unplayed ids sharing a residue would
  /// have to differ by >= kArrivalWindow, and notify_arrival only stores
  /// ids within kArrivalWindow of the cursor while the smaller one is
  /// still >= cursor — a contradiction.  Stale entries fail the id check
  /// and are simply overwritten, so no range cleanup is ever needed.
  struct ArrivalSlot {
    SegmentId id = kNoSegment;
    double time = 0.0;
  };
  using ArrivalRing = std::array<ArrivalSlot, static_cast<std::size_t>(kArrivalWindow)>;

  static std::size_t slot_of(SegmentId id) noexcept {
    return static_cast<std::size_t>(id) & static_cast<std::size_t>(kArrivalWindow - 1);
  }

  double rate_;
  double interval_;
  bool flat_mode_;
  bool started_ = false;
  SegmentId cursor_ = kNoSegment;
  double next_due_ = 0.0;
  SegmentId gate_ = kNoSegment;
  double stall_time_ = 0.0;
  /// True while the cursor segment was found missing at its due time.
  bool stalled_ = false;
  std::uint64_t played_ = 0;
  /// Arrival times of not-yet-played segments near the cursor (see
  /// notify_arrival); entries are erased as the cursor passes them.
  std::map<SegmentId, double> recent_arrivals_;
  /// Flat replacement for recent_arrivals_, created on first use.
  std::unique_ptr<ArrivalRing> ring_;
};

}  // namespace gs::stream
