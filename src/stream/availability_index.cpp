#include "stream/availability_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

void AvailabilityIndex::build(const net::Graph& graph, const std::vector<PeerNode>& peers) {
  views_.assign(peers.size(), View{});
  for (net::NodeId v = 0; v < peers.size(); ++v) {
    if (peers[v].alive && !peers[v].is_source) build_view(graph, peers, v);
  }
  enabled_ = true;
}

void AvailabilityIndex::build_view(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                   net::NodeId v) {
  View& w = views_[v];
  w.built = true;
  for (const net::NodeId nb : graph.neighbors(v)) {
    if (!peers[nb].alive) continue;
    w.alive_neighbors.push_back(nb);  // graph adjacency is sorted by id
    add_supplier(w, peers[nb]);
  }
}

const AvailabilityIndex::View& AvailabilityIndex::view(net::NodeId v) const {
  GS_CHECK_LT(v, views_.size());
  GS_CHECK(views_[v].built);
  return views_[v];
}

void AvailabilityIndex::ensure_capacity(View& w, SegmentId id) {
  const auto needed = static_cast<std::size_t>(id) + 1;
  if (w.supplier_count.size() < needed) {
    // Geometric growth: ids arrive in near-streaming order, so this
    // amortizes to O(1) per delivered segment.
    const std::size_t grown = std::max(needed, w.supplier_count.size() * 2 + 64);
    w.supplier_count.resize(grown, 0);
    w.supplied.resize(grown);
  }
}

void AvailabilityIndex::on_gain(const net::Graph& graph, net::NodeId owner, SegmentId id) {
  for (const net::NodeId nb : graph.neighbors(owner)) {
    View& w = views_[nb];
    if (!w.built) continue;
    ensure_capacity(w, id);
    if (w.supplier_count[static_cast<std::size_t>(id)]++ == 0) {
      w.supplied.set(static_cast<std::size_t>(id));
    }
    w.head = std::max(w.head, id);
    ++updates_;
  }
}

void AvailabilityIndex::on_evict(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                 net::NodeId owner, SegmentId victim) {
  for (const net::NodeId nb : graph.neighbors(owner)) {
    View& w = views_[nb];
    if (!w.built) continue;
    auto& count = w.supplier_count[static_cast<std::size_t>(victim)];
    GS_CHECK_GT(count, 0u);
    if (--count == 0) w.supplied.reset(static_cast<std::size_t>(victim));
    // Evicting the cached head is rare (needs heavy id reordering in the
    // owner's buffer); recompute from the post-eviction buffers.
    if (victim == w.head) recompute_head(w, peers);
    ++updates_;
  }
}

void AvailabilityIndex::on_boundary(const net::Graph& graph, net::NodeId owner, int boundary) {
  for (const net::NodeId nb : graph.neighbors(owner)) {
    View& w = views_[nb];
    if (!w.built) continue;
    w.boundary_max = std::max(w.boundary_max, boundary);
    ++updates_;
  }
}

void AvailabilityIndex::add_supplier(View& w, const PeerNode& neighbor) {
  const util::DynamicBitset& presence = neighbor.buffer.presence();
  for (std::size_t pos = presence.find_first(0); pos < presence.size();
       pos = presence.find_first(pos + 1)) {
    const auto id = static_cast<SegmentId>(pos);
    ensure_capacity(w, id);
    if (w.supplier_count[pos]++ == 0) w.supplied.set(pos);
  }
  w.head = std::max(w.head, neighbor.buffer.max_id());
  w.boundary_max = std::max(w.boundary_max, neighbor.known_boundary);
}

void AvailabilityIndex::remove_supplier(View& w, const PeerNode& neighbor) {
  const util::DynamicBitset& presence = neighbor.buffer.presence();
  for (std::size_t pos = presence.find_first(0); pos < presence.size();
       pos = presence.find_first(pos + 1)) {
    auto& count = w.supplier_count[pos];
    GS_CHECK_GT(count, 0u);
    if (--count == 0) w.supplied.reset(pos);
  }
}

void AvailabilityIndex::recompute_head(View& w, const std::vector<PeerNode>& peers) {
  w.head = kNoSegment;
  for (const net::NodeId nb : w.alive_neighbors) {
    w.head = std::max(w.head, peers[nb].buffer.max_id());
  }
}

void AvailabilityIndex::recompute_boundary(View& w, const std::vector<PeerNode>& peers) {
  w.boundary_max = -1;
  for (const net::NodeId nb : w.alive_neighbors) {
    w.boundary_max = std::max(w.boundary_max, peers[nb].known_boundary);
  }
}

void AvailabilityIndex::add_peer(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                 net::NodeId v) {
  if (views_.size() < peers.size()) views_.resize(peers.size());
  build_view(graph, peers, v);
  // Register the (empty-buffered, boundary-less) joiner with its
  // neighbours: it affects only their alive lists today, and the gain/evict
  // events keep it current from here on.
  for (const net::NodeId nb : graph.neighbors(v)) {
    View& w = views_[nb];
    if (!w.built) continue;
    w.alive_neighbors.insert(
        std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), v), v);
    ++updates_;
  }
}

void AvailabilityIndex::remove_peer(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                    net::NodeId v) {
  const PeerNode& leaver = peers[v];
  for (const net::NodeId nb : graph.neighbors(v)) {
    View& w = views_[nb];
    if (!w.built) continue;
    const auto it = std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), v);
    GS_CHECK(it != w.alive_neighbors.end() && *it == v);
    w.alive_neighbors.erase(it);
    remove_supplier(w, leaver);
    if (leaver.buffer.max_id() == w.head) recompute_head(w, peers);
    if (leaver.known_boundary == w.boundary_max) recompute_boundary(w, peers);
    ++updates_;
  }
  views_[v] = View{};
}

void AvailabilityIndex::connect(const std::vector<PeerNode>& peers, net::NodeId u,
                                net::NodeId v) {
  for (const auto& [self, other] : {std::pair{u, v}, std::pair{v, u}}) {
    View& w = views_[self];
    if (!w.built) continue;  // sources keep no view but still gain edges
    if (!peers[other].alive) continue;
    w.alive_neighbors.insert(
        std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), other), other);
    add_supplier(w, peers[other]);
    ++updates_;
  }
}

}  // namespace gs::stream
