#include "stream/availability_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t align_down(std::size_t pos) { return pos - pos % kWordBits; }

std::size_t owner_anchor(const PeerNode& p) {
  const SegmentId from = p.playback_anchor();
  return from <= 0 ? 0 : static_cast<std::size_t>(from);
}

}  // namespace

void AvailabilityIndex::set_window(std::size_t span_bits) {
  GS_CHECK(!enabled_) << "set_window must precede build()";
  GS_CHECK_GT(span_bits, 0u);
  window_span_ = (span_bits + kWordBits - 1) / kWordBits * kWordBits;
}

void AvailabilityIndex::set_gate_only() {
  GS_CHECK(!enabled_) << "set_gate_only must precede build()";
  gate_only_ = true;
}

void AvailabilityIndex::enable_work_tracking(PeerPool* pool) {
  GS_CHECK(!enabled_) << "enable_work_tracking must precede build()";
  GS_CHECK(pool != nullptr);
  track_work_ = true;
  pool_ = pool;
}

void AvailabilityIndex::build(const net::Graph& graph, const std::vector<PeerNode>& peers) {
  views_.assign(peers.size(), View{});
  for (net::NodeId v = 0; v < peers.size(); ++v) {
    if (peers[v].alive() && !peers[v].is_source()) build_view(graph, peers, v);
  }
  enabled_ = true;
}

void AvailabilityIndex::build_view(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                   net::NodeId v) {
  View& w = views_[v];
  w.built = true;
  if (window_span_ > 0) {
    w.window_base = align_down(owner_anchor(peers[v]));
    w.supplier_count.assign(window_span_, 0);
    w.supplied.resize(window_span_);
  }
  for (const net::NodeId nb : graph.neighbors(v)) {
    if (!peers[nb].alive()) continue;
    w.alive_neighbors.push_back(nb);  // graph adjacency is sorted by id
    add_supplier(w, peers[nb]);
  }
  if (track_work_) recompute_work(v, w, peers[v].received);
}

const AvailabilityIndex::View& AvailabilityIndex::view(net::NodeId v) const {
  GS_CHECK_LT(v, views_.size());
  GS_CHECK(views_[v].built);
  return views_[v];
}

bool AvailabilityIndex::track_slot(View& w, SegmentId id, std::size_t& slot) const {
  const auto pos = static_cast<std::size_t>(id);
  if (window_span_ == 0) {
    const std::size_t needed = pos + 1;
    if (w.supplier_count.size() < needed) {
      // Geometric growth: ids arrive in near-streaming order, so this
      // amortizes to O(1) per delivered segment.
      const std::size_t grown = std::max(needed, w.supplier_count.size() * 2 + 64);
      w.supplier_count.resize(grown, 0);
      w.supplied.resize(grown);
      // One work-mask bit per supplied word; the new words carry no
      // suppliers yet, so zero-fill is the correct work state.
      if (track_work_) w.work_mask.resize((grown + kWordBits - 1) / kWordBits);
    }
    slot = pos;
    return true;
  }
  if (pos < w.window_base || pos >= w.window_base + window_span_) return false;
  slot = pos - w.window_base;
  return true;
}

void AvailabilityIndex::apply_gain(net::NodeId view, SegmentId id) {
  View& w = views_[view];
  if (!w.built) return;
  // The cached head tracks the whole stream, not just the window: the
  // candidate range's upper end must see neighbour heads that run ahead of
  // the owner's playback window.
  w.head = std::max(w.head, id);
  std::size_t slot = 0;
  if (!track_slot(w, id, slot)) return;  // beyond the window: sync_window reconstructs
  if (w.supplier_count[slot]++ == 0) {
    w.supplied.set(slot);
    // A fresh supplied bit may create work; whether it actually does would
    // take the owner's received word — a cold random load per transition
    // at 10^6 peers — so the summary marks the word unconditionally and
    // the owner's next empty build collapses it via try_quiesce.
    if (track_work_) {
      const std::size_t word = slot / kWordBits;
      if (!w.work_mask.test(word)) {
        w.work_mask.set(word);
        ++w.work_words;
        sync_work_lane(view, w);
      }
    }
  }
}

bool AvailabilityIndex::apply_evict(net::NodeId view, SegmentId victim) {
  View& w = views_[view];
  if (!w.built) return false;
  std::size_t slot = 0;
  if (track_slot(w, victim, slot)) {
    auto& count = w.supplier_count[slot];
    GS_CHECK_GT(count, 0u);
    if (--count == 0) {
      w.supplied.reset(slot);
      // Losing a supplied bit can only reduce work; the summary stays
      // conservatively marked until an empty build quiesces the view.
    }
  }
  // Evicting the cached head is rare (needs heavy id reordering in the
  // owner's buffer); the caller recomputes from the settled buffers.
  return victim == w.head;
}

void AvailabilityIndex::recompute_head_for(const std::vector<PeerNode>& peers,
                                           net::NodeId view) {
  recompute_head(views_[view], peers);
}

void AvailabilityIndex::on_gain(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                net::NodeId owner, SegmentId id) {
  (void)peers;
  for (const net::NodeId nb : graph.neighbors(owner)) {
    if (!views_[nb].built) continue;
    apply_gain(nb, id);
    ++updates_;
  }
}

void AvailabilityIndex::on_evict(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                 net::NodeId owner, SegmentId victim) {
  for (const net::NodeId nb : graph.neighbors(owner)) {
    if (!views_[nb].built) continue;
    if (apply_evict(nb, victim)) recompute_head(views_[nb], peers);
    ++updates_;
  }
}

bool AvailabilityIndex::try_quiesce(net::NodeId v, const util::DynamicBitset& received,
                                    SegmentId from) {
  if (!track_work_) return false;
  View& w = views_[v];
  if (!w.built || w.work_words == 0) return false;
  // One word-level scan over the whole remaining supplied range — not just
  // the candidate window [from, to]: a missing ∧ supplied id beyond the
  // request horizon would become a candidate as playback advances with no
  // further delta, so it must keep the view awake.
  const auto start = static_cast<std::size_t>(std::max<SegmentId>(from, 0));
  const std::size_t pos = util::DynamicBitset::first_set_and_clear_offset(
      w.supplied, w.window_base, received, start);
  if (pos < w.supplied_end()) return false;
  w.work_mask.reset_all();
  w.work_words = 0;
  sync_work_lane(v, w);
  return true;
}

void AvailabilityIndex::apply_boundary(net::NodeId view, int boundary) {
  View& w = views_[view];
  if (!w.built) return;
  w.boundary_max = std::max(w.boundary_max, boundary);
}

void AvailabilityIndex::on_boundary(const net::Graph& graph, net::NodeId owner, int boundary) {
  for (const net::NodeId nb : graph.neighbors(owner)) {
    View& w = views_[nb];
    if (!w.built) continue;
    w.boundary_max = std::max(w.boundary_max, boundary);
    ++updates_;
  }
}

void AvailabilityIndex::sync_window(const std::vector<PeerNode>& peers, net::NodeId v,
                                    SegmentId from) {
  if (window_span_ == 0) return;
  View& w = views_[v];
  GS_CHECK(w.built);
  const std::size_t new_base = align_down(from <= 0 ? 0 : static_cast<std::size_t>(from));
  if (new_base <= w.window_base) return;  // the anchor is monotone
  const std::size_t shift = new_base - w.window_base;
  const std::size_t old_end = w.window_base + window_span_;
  if (shift >= window_span_) {
    std::fill(w.supplier_count.begin(), w.supplier_count.end(), 0);
    w.supplied.reset_all();
  } else {
    std::copy(w.supplier_count.begin() + static_cast<std::ptrdiff_t>(shift),
              w.supplier_count.end(), w.supplier_count.begin());
    std::fill(w.supplier_count.end() - static_cast<std::ptrdiff_t>(shift),
              w.supplier_count.end(), 0);
    w.supplied.shift_down(shift);
  }
  w.window_base = new_base;
  // Reconstruct the newly covered top range exactly from the current
  // buffers: gains for these ids were dropped while they sat beyond the
  // window, and every such segment still present is in some neighbour's
  // presence set right now (a gain followed by an in-batch eviction
  // cancels, matching the dropped pair).
  const std::size_t recon_lo = std::max(old_end, new_base);
  const std::size_t recon_hi = new_base + window_span_;
  for (const net::NodeId nb : w.alive_neighbors) {
    const util::DynamicBitset& presence = peers[nb].buffer.presence();
    for (std::size_t pos = presence.find_first(recon_lo);
         pos < std::min(recon_hi, presence.size()); pos = presence.find_first(pos + 1)) {
      const std::size_t slot = pos - new_base;
      if (w.supplier_count[slot]++ == 0) w.supplied.set(slot);
    }
  }
  // The slide moved every slot; the window is a handful of words, so a
  // full work recount is cheaper than replaying the shifts.
  if (track_work_) recompute_work(v, w, peers[v].received);
  ++updates_;
}

void AvailabilityIndex::add_supplier(View& w, const PeerNode& neighbor) const {
  const util::DynamicBitset& presence = neighbor.buffer.presence();
  for (std::size_t pos = presence.find_first(w.window_base); pos < presence.size();
       pos = presence.find_first(pos + 1)) {
    std::size_t slot = 0;
    if (!track_slot(w, static_cast<SegmentId>(pos), slot)) continue;
    if (w.supplier_count[slot]++ == 0) w.supplied.set(slot);
  }
  w.head = std::max(w.head, neighbor.buffer.max_id());
  w.boundary_max = std::max(w.boundary_max, neighbor.known_boundary());
}

void AvailabilityIndex::remove_supplier(View& w, const PeerNode& neighbor) const {
  const util::DynamicBitset& presence = neighbor.buffer.presence();
  for (std::size_t pos = presence.find_first(w.window_base); pos < presence.size();
       pos = presence.find_first(pos + 1)) {
    std::size_t slot = 0;
    if (!track_slot(w, static_cast<SegmentId>(pos), slot)) continue;
    auto& count = w.supplier_count[slot];
    GS_CHECK_GT(count, 0u);
    if (--count == 0) w.supplied.reset(slot);
  }
}

void AvailabilityIndex::recompute_head(View& w, const std::vector<PeerNode>& peers) {
  w.head = kNoSegment;
  for (const net::NodeId nb : w.alive_neighbors) {
    w.head = std::max(w.head, peers[nb].buffer.max_id());
  }
}

void AvailabilityIndex::recompute_boundary(View& w, const std::vector<PeerNode>& peers) {
  w.boundary_max = -1;
  for (const net::NodeId nb : w.alive_neighbors) {
    w.boundary_max = std::max(w.boundary_max, peers[nb].known_boundary());
  }
}

void AvailabilityIndex::add_peer(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                 net::NodeId v) {
  if (views_.size() < peers.size()) views_.resize(peers.size());
  build_view(graph, peers, v);
  // Register the (empty-buffered, boundary-less) joiner with its
  // neighbours: it affects only their alive lists today, and the gain/evict
  // events keep it current from here on.
  for (const net::NodeId nb : graph.neighbors(v)) {
    View& w = views_[nb];
    if (!w.built) continue;
    w.alive_neighbors.insert(
        std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), v), v);
    ++updates_;
  }
}

void AvailabilityIndex::remove_peer(const net::Graph& graph, const std::vector<PeerNode>& peers,
                                    net::NodeId v) {
  const PeerNode& leaver = peers[v];
  for (const net::NodeId nb : graph.neighbors(v)) {
    View& w = views_[nb];
    if (!w.built) continue;
    const auto it = std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), v);
    GS_CHECK(it != w.alive_neighbors.end() && *it == v);
    w.alive_neighbors.erase(it);
    remove_supplier(w, leaver);
    if (leaver.buffer.max_id() == w.head) recompute_head(w, peers);
    if (leaver.known_boundary() == w.boundary_max) recompute_boundary(w, peers);
    if (track_work_) recompute_work(nb, w, peers[nb].received);
    ++updates_;
  }
  views_[v] = View{};
  // A departed peer never plans again; park its gate lane closed.
  if (pool_ != nullptr && v < pool_->size()) pool_->has_work(v) = 0;
}

void AvailabilityIndex::connect(const std::vector<PeerNode>& peers, net::NodeId u,
                                net::NodeId v) {
  for (const auto& [self, other] : {std::pair{u, v}, std::pair{v, u}}) {
    View& w = views_[self];
    if (!w.built) continue;  // sources keep no view but still gain edges
    if (!peers[other].alive()) continue;
    w.alive_neighbors.insert(
        std::lower_bound(w.alive_neighbors.begin(), w.alive_neighbors.end(), other), other);
    add_supplier(w, peers[other]);
    if (track_work_) recompute_work(self, w, peers[self].received);
    ++updates_;
  }
}

void AvailabilityIndex::recompute_work(net::NodeId v, View& w,
                                       const util::DynamicBitset& received) {
  const std::size_t words = (w.supplied.size() + kWordBits - 1) / kWordBits;
  w.work_mask.resize(words);
  w.work_mask.reset_all();
  w.work_words = 0;
  for (std::size_t word = 0; word < words; ++word) {
    const std::uint64_t sup = w.supplied.extract_word(word * kWordBits);
    if (sup == 0) continue;
    const std::uint64_t rec = received.extract_word(w.window_base + word * kWordBits);
    if ((sup & ~rec) != 0) {
      w.work_mask.set(word);
      ++w.work_words;
    }
  }
  sync_work_lane(v, w);
}

void AvailabilityIndex::sync_work_lane(net::NodeId v, const View& w) {
  if (pool_ == nullptr || v >= pool_->size()) return;
  const std::uint8_t want = w.work_words != 0 ? 1 : 0;
  // Transition-only stores: during the parallel delivery merge this byte
  // belongs to the shard that owns view v, and the plan wave only reads it
  // after the phase barrier, so a plain store is race-free — but skipping
  // same-value stores keeps quiescent stretches from dirtying the lane.
  std::uint8_t& lane = pool_->has_work(v);
  if (lane != want) lane = want;
}

}  // namespace gs::stream
