#include "stream/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/stats.hpp"

namespace gs::stream {
namespace {

double mean_or_zero(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  util::RunningStats stats;
  for (double v : values) stats.add(v);
  return stats.mean();
}

double max_or_zero(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

}  // namespace

double SwitchMetrics::avg_finish_time() const { return mean_or_zero(finish_times); }
double SwitchMetrics::avg_prepared_time() const { return mean_or_zero(prepared_times); }
double SwitchMetrics::max_finish_time() const { return max_or_zero(finish_times); }
double SwitchMetrics::max_prepared_time() const { return max_or_zero(prepared_times); }
double SwitchMetrics::avg_s2_start_time() const { return mean_or_zero(s2_start_times); }

double SwitchMetrics::completion_fraction() const {
  if (tracked == 0) return 1.0;
  return static_cast<double>(std::min(finished_s1, prepared_s2)) / static_cast<double>(tracked);
}

std::string SwitchMetrics::to_string() const {
  std::ostringstream out;
  out << "switch " << switch_index << ": tracked=" << tracked << " finished=" << finished_s1
      << " prepared=" << prepared_s2 << " avg_finish=" << avg_finish_time()
      << " avg_switch=" << avg_prepared_time() << " overhead=" << overhead_ratio;
  return out.str();
}

double reduction_ratio(double normal_switch_time, double fast_switch_time) {
  if (normal_switch_time <= 0.0) return 0.0;
  return (normal_switch_time - fast_switch_time) / normal_switch_time;
}

}  // namespace gs::stream
