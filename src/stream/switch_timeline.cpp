#include "stream/switch_timeline.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

void SwitchTimeline::set_sources(std::size_t node_count, std::vector<net::NodeId> sources,
                                 std::vector<double> switch_times) {
  GS_CHECK_GE(sources.size(), 1u);
  GS_CHECK_EQ(switch_times.size(), sources.size() - 1);
  for (std::size_t i = 1; i < switch_times.size(); ++i) {
    GS_CHECK_LT(switch_times[i - 1], switch_times[i]);
  }
  sessions_.clear();
  for (net::NodeId src : sources) {
    GS_CHECK_LT(src, node_count);
    Session session;
    session.source = src;
    sessions_.push_back(session);
  }
  switch_times_ = std::move(switch_times);
  metrics_.assign(switch_times_.size(), SwitchMetrics{});
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    metrics_[i].switch_index = static_cast<int>(i);
    metrics_[i].switch_time = switch_times_[i];
  }
}

Session& SwitchTimeline::session(std::size_t k) {
  GS_CHECK_LT(k, sessions_.size());
  return sessions_[k];
}

const Session& SwitchTimeline::session(std::size_t k) const {
  GS_CHECK_LT(k, sessions_.size());
  return sessions_[k];
}

SwitchMetrics& SwitchTimeline::metrics(int k) {
  GS_CHECK_GE(k, 0);
  GS_CHECK_LT(static_cast<std::size_t>(k), metrics_.size());
  return metrics_[static_cast<std::size_t>(k)];
}

void SwitchTimeline::begin_switch(int k, double now, SegmentId last_of_old) {
  current_switch_ = k;
  Session& old = session(static_cast<std::size_t>(k));
  GS_CHECK(old.started());
  old.last = last_of_old;
  session_end_index_[old.last] = k;
  metrics(k).switch_time = now;
}

int SwitchTimeline::switch_ending_at(SegmentId id) const {
  const auto it = session_end_index_.find(id);
  return it == session_end_index_.end() ? -1 : it->second;
}

std::size_t SwitchTimeline::required_prefix(int k, std::size_t q_startup) const {
  const Session& next = session(static_cast<std::size_t>(k) + 1);
  if (next.ended()) {
    return std::min<std::size_t>(q_startup,
                                 static_cast<std::size_t>(next.last - next.first + 1));
  }
  return q_startup;
}

void SwitchTimeline::init_switch_counters(PeerNode& p, int k, double now,
                                          std::size_t q_startup) const {
  const Session& old = session(static_cast<std::size_t>(k));
  GS_CHECK(old.ended());
  // A still-armed gate from the previous switch becomes moot once an even
  // newer session exists; release it so the new switch can gate at its own
  // boundary.
  if (p.gate_armed() && p.playback.gate() != kNoSegment) {
    p.playback.release_gate(now);
  }
  p.active_switch() = k;
  p.sw_lo() = std::max(old.first, p.start_id());
  p.q1_missing() = static_cast<std::uint32_t>(p.count_missing(p.sw_lo(), old.last));
  p.q0_at_switch() = p.q1_missing();
  const SegmentId begin = old.last + 1;
  const auto prefix = static_cast<SegmentId>(required_prefix(k, q_startup));
  p.q2_missing() = static_cast<std::uint32_t>(p.count_missing(begin, begin + prefix - 1));
  p.sw_finished() = false;
  p.sw_prepared() = false;
  p.gate_armed() = false;
}

void SwitchTimeline::censor_stale(const PeerNode& p, int new_switch) {
  if (!p.tracked() || p.active_switch() < 0 || p.active_switch() >= new_switch) return;
  if (!p.sw_finished()) ++metrics(p.active_switch()).censored_finish;
  if (!p.sw_prepared()) ++metrics(p.active_switch()).censored_prepare;
}

bool SwitchTimeline::switch_closed(int k) const {
  const SwitchMetrics& m = metrics_[static_cast<std::size_t>(k)];
  return m.finished_s1 + m.censored_finish >= m.tracked &&
         m.prepared_s2 + m.censored_prepare >= m.tracked;
}

bool SwitchTimeline::experiment_complete() const {
  if (metrics_.empty()) return false;
  const int last = static_cast<int>(metrics_.size()) - 1;
  return current_switch_ == last && switch_closed(last);
}

void SwitchTimeline::sample_tracks(double now, const std::vector<PeerNode>& peers,
                                   std::size_t q_startup) {
  if (current_switch_ < 0) return;
  const int k = current_switch_;
  if (switch_closed(k)) return;  // switch complete; the tracks are closed
  SwitchMetrics& m = metrics(k);
  TrackPoint point;
  point.time = now - m.switch_time;
  double undelivered = 0.0;
  double delivered = 0.0;
  std::size_t counted = 0;
  const double prefix = static_cast<double>(required_prefix(k, q_startup));
  for (const PeerNode& p : peers) {
    if (!p.tracked() || p.active_switch() != k || !p.alive()) continue;
    ++counted;
    if (p.q0_at_switch() > 0) {
      undelivered +=
          static_cast<double>(p.q1_missing()) / static_cast<double>(p.q0_at_switch());
    }
    delivered += (prefix - static_cast<double>(p.q2_missing())) / prefix;
  }
  if (counted > 0) {
    point.undelivered_ratio_s1 = undelivered / static_cast<double>(counted);
    point.delivered_ratio_s2 = delivered / static_cast<double>(counted);
  }
  point.live_tracked = counted;
  m.track.push_back(point);
}

void SwitchTimeline::censor_unfinished(const std::vector<PeerNode>& peers) {
  for (const PeerNode& p : peers) {
    if (!p.tracked() || p.active_switch() < 0) continue;
    SwitchMetrics& m = metrics(p.active_switch());
    if (!p.sw_finished()) ++m.censored_finish;
    if (!p.sw_prepared()) ++m.censored_prepare;
  }
}

SwitchTimeline::OverheadSnapshot SwitchTimeline::take_snapshot(
    const gossip::OverheadAccountant& overhead) {
  OverheadSnapshot snap;
  snap.buffer_map_bits = overhead.buffer_map_bits();
  snap.request_bits = overhead.request_bits();
  snap.data_bits = overhead.data_bits();
  snap.data_segments = overhead.data_segments();
  return snap;
}

void SwitchTimeline::capture_overhead(const gossip::OverheadAccountant& overhead) {
  overhead_snapshots_.push_back(take_snapshot(overhead));
}

void SwitchTimeline::finalize_overhead(const gossip::OverheadAccountant& overhead) {
  overhead_snapshots_.push_back(take_snapshot(overhead));
  for (std::size_t k = 0; k + 1 < overhead_snapshots_.size(); ++k) {
    const OverheadSnapshot& a = overhead_snapshots_[k];
    const OverheadSnapshot& b = overhead_snapshots_[k + 1];
    SwitchMetrics& m = metrics_[k];
    const auto data = static_cast<double>(b.data_bits - a.data_bits);
    if (data > 0) {
      m.overhead_ratio = static_cast<double>(b.buffer_map_bits - a.buffer_map_bits) / data;
      m.control_ratio = static_cast<double>((b.buffer_map_bits - a.buffer_map_bits) +
                                            (b.request_bits - a.request_bits)) /
                        data;
    }
    m.data_segments = b.data_segments - a.data_segments;
  }
}

}  // namespace gs::stream
