// Struct-of-arrays storage for per-tick-hot peer scalars.
//
// At N = 10^6 the tick sweep touches every live peer's alive flag, budget,
// playback anchor and switch counters each period.  Keeping those scalars
// inside PeerNode means every touch drags a whole multi-cache-line node
// through the cache; packing each field into its own contiguous array keeps
// the sweep's working set at a few bytes per peer and lets unrelated cold
// state (buffers, rngs, gossip maps) stay out of the way.
//
// PeerNode does not store these fields any more — it holds a (pool, index)
// binding and exposes reference-returning accessors, so call sites read the
// same as before (`p.alive() = false`, `--p.q1_missing()`).  The engine owns
// one pool for all peers; an unbound PeerNode (unit tests, transients)
// lazily creates a private single-slot pool, so default construction stays
// allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gossip/buffer_map.hpp"
#include "stream/bandwidth.hpp"

namespace gs::stream {

using gossip::SegmentId;

class PeerPool {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return alive_.size(); }

  /// Grows (or shrinks) to `n` slots.  Existing slots keep their values;
  /// new slots get the PeerNode defaults (alive, no switch, no boundary).
  void resize(std::size_t n);

  /// Heap bytes owned by all field arrays.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  // One accessor per field, indexed by the peer's pool slot.  Bools are
  // stored as uint8_t (vector<bool> proxies cannot hand out references).
  [[nodiscard]] std::uint8_t& is_source(std::size_t i) noexcept { return is_source_[i]; }
  [[nodiscard]] std::uint8_t& alive(std::size_t i) noexcept { return alive_[i]; }
  [[nodiscard]] std::uint8_t& sw_finished(std::size_t i) noexcept { return sw_finished_[i]; }
  [[nodiscard]] std::uint8_t& sw_prepared(std::size_t i) noexcept { return sw_prepared_[i]; }
  [[nodiscard]] std::uint8_t& tracked(std::size_t i) noexcept { return tracked_[i]; }
  [[nodiscard]] std::uint8_t& gate_armed(std::size_t i) noexcept { return gate_armed_[i]; }
  /// Plan-gate work lane: nonzero while the availability plane sees at
  /// least one missing-and-supplied segment for this peer (always 1 when
  /// work tracking is off, so the gate never closes spuriously).  One byte
  /// per peer rather than one bit: entries are written by whichever shard
  /// owns the peer's view during the parallel delivery merge, and adjacent
  /// peers belong to different shards — byte stores keep those writers on
  /// distinct memory locations where bit RMWs would race.
  [[nodiscard]] std::uint8_t& has_work(std::size_t i) noexcept { return has_work_[i]; }
  [[nodiscard]] std::uint8_t& strategy(std::size_t i) noexcept { return strategy_[i]; }
  [[nodiscard]] double& inbound_rate(std::size_t i) noexcept { return inbound_rate_[i]; }
  [[nodiscard]] double& outbound_rate(std::size_t i) noexcept { return outbound_rate_[i]; }
  [[nodiscard]] RateBudget& in_budget(std::size_t i) noexcept { return in_budget_[i]; }
  [[nodiscard]] SegmentId& start_id(std::size_t i) noexcept { return start_id_[i]; }
  [[nodiscard]] SegmentId& sw_lo(std::size_t i) noexcept { return sw_lo_[i]; }
  [[nodiscard]] std::uint32_t& start_run(std::size_t i) noexcept { return start_run_[i]; }
  [[nodiscard]] std::uint32_t& q1_missing(std::size_t i) noexcept { return q1_missing_[i]; }
  [[nodiscard]] std::uint32_t& q2_missing(std::size_t i) noexcept { return q2_missing_[i]; }
  [[nodiscard]] std::uint32_t& q0_at_switch(std::size_t i) noexcept { return q0_at_switch_[i]; }
  [[nodiscard]] int& known_boundary(std::size_t i) noexcept { return known_boundary_[i]; }
  [[nodiscard]] int& active_switch(std::size_t i) noexcept { return active_switch_[i]; }

 private:
  std::vector<std::uint8_t> is_source_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> sw_finished_;
  std::vector<std::uint8_t> sw_prepared_;
  std::vector<std::uint8_t> tracked_;
  std::vector<std::uint8_t> gate_armed_;
  std::vector<std::uint8_t> has_work_;
  std::vector<std::uint8_t> strategy_;
  std::vector<double> inbound_rate_;
  std::vector<double> outbound_rate_;
  std::vector<RateBudget> in_budget_;
  std::vector<SegmentId> start_id_;
  std::vector<SegmentId> sw_lo_;
  std::vector<std::uint32_t> start_run_;
  std::vector<std::uint32_t> q1_missing_;
  std::vector<std::uint32_t> q2_missing_;
  std::vector<std::uint32_t> q0_at_switch_;
  std::vector<int> known_boundary_;
  std::vector<int> active_switch_;
};

}  // namespace gs::stream
