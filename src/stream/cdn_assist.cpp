#include "stream/cdn_assist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

CdnAssistPlane::CdnAssistPlane(sim::Simulator& sim, const CdnAssistConfig& config,
                               DeliveryFn on_delivery)
    : sim_(sim),
      config_(config),
      on_delivery_(std::move(on_delivery)),
      capacity_(make_capacity_model(config.capacity, config.token_bucket_burst)) {
  GS_CHECK(on_delivery_ != nullptr);
  GS_CHECK_GT(config_.rate, 0.0);
  GS_CHECK_GE(config_.latency_ms, 0.0);
  GS_CHECK_GE(config_.resume_lead_s, 0.0);
  GS_CHECK_GE(config_.pause_lead_s, config_.resume_lead_s);
  capacity_->ensure_nodes(1);  // the CDN's own supplier slot
}

void CdnAssistPlane::ensure_nodes(std::size_t count) {
  if (peers_.size() < count) peers_.resize(count);
  // kPerLink keys backlog state by requester, so the model needs a slot per
  // peer; the supplier-keyed models only need kCdnNode (covered above).
  capacity_->ensure_nodes(count);
}

CdnAssistPlane::State CdnAssistPlane::state(net::NodeId peer) const {
  return peer < peers_.size() ? peers_[peer].state : State::kOff;
}

bool CdnAssistPlane::paused(net::NodeId peer) const {
  return peer < peers_.size() && peers_[peer].paused;
}

void CdnAssistPlane::exit_assist(PeerAssist& assist, double now) {
  // A burst that never reached HANDOFF still contributes its assist time
  // (the peer prepared, left, or a newer switch superseded the assist);
  // HANDOFF already recorded its duration at the transition.
  if (assist.state == State::kBurst) {
    stats_.assist_time_sum += now - assist.enroll_time;
    ++stats_.assist_time_count;
  }
  assist.state = State::kOff;
  assist.paused = false;
  assist.switch_index = -1;
}

bool CdnAssistPlane::control(net::NodeId peer, const PeerView& view, double now) {
  GS_CHECK_LT(peer, peers_.size());
  PeerAssist& assist = peers_[peer];
  if (view.switch_index < 0) {
    if (assist.state != State::kOff) exit_assist(assist, now);
    return false;
  }
  if (assist.state == State::kOff || assist.switch_index != view.switch_index) {
    // Enroll (a newer switch supersedes any assist still running).
    if (assist.state != State::kOff) exit_assist(assist, now);
    assist.state = State::kBurst;
    assist.paused = false;
    assist.switch_index = view.switch_index;
    assist.enroll_time = now;
    ++stats_.assisted;
  }
  if (assist.state == State::kBurst && view.suppliers_cover) {
    assist.state = State::kHandoff;
    assist.paused = false;
    ++stats_.handoffs;
    stats_.assist_time_sum += now - assist.enroll_time;
    ++stats_.assist_time_count;
  } else if (assist.state == State::kHandoff && !view.suppliers_cover &&
             view.rest_play_s < config_.resume_lead_s) {
    // Supplier churn broke the coverage and playback is about to underrun:
    // back to the burst (no re-enrollment — same assist episode).
    assist.state = State::kBurst;
  }
  if (assist.state != State::kBurst) return false;
  if (!assist.paused && view.rest_play_s >= config_.pause_lead_s) {
    assist.paused = true;
    ++stats_.pauses;
  } else if (assist.paused && view.rest_play_s < config_.resume_lead_s) {
    assist.paused = false;
    ++stats_.resumes;
  }
  return !assist.paused;
}

bool CdnAssistPlane::request(net::NodeId peer, SegmentId id, double now) {
  const double start = std::max(now, capacity_->backlog_end(peer, kCdnNode));
  if (start - now > config_.accept_horizon) {
    ++stats_.requests_rejected;
    return false;
  }
  const double tx = 1.0 / config_.rate;
  capacity_->commit(peer, kCdnNode, start, start + tx);
  // Fixed latency, deliberately jitter-free: the patch path draws from no
  // rng, so enabling the assist never perturbs a peer's gossip rng stream.
  const double deliver_at = start + tx + config_.latency_ms / 1000.0;
  sim_.after(deliver_at - now, *this, peer, static_cast<std::uint64_t>(id));
  return true;
}

void CdnAssistPlane::on_event(std::uint64_t a, std::uint64_t b) {
  // Served = sent: the bytes left the CDN even if the peer departed while
  // the patch was in flight (the engine's delivery callback handles that).
  ++stats_.segments_served;
  stats_.bytes_served += config_.data_bits / 8;
  on_delivery_(static_cast<net::NodeId>(a), static_cast<SegmentId>(b));
}

}  // namespace gs::stream
