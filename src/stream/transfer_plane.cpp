#include "stream/transfer_plane.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/check.hpp"

namespace gs::stream {

std::string_view to_string(SupplierCapacityModel kind) noexcept {
  switch (kind) {
    case SupplierCapacityModel::kSharedFifo:
      return "shared-fifo";
    case SupplierCapacityModel::kPerLink:
      return "per-link";
    case SupplierCapacityModel::kTokenBucket:
      return "token-bucket";
  }
  return "unknown";
}

namespace {

/// One FIFO per supplier shared by all requesters: a new transfer starts
/// when the supplier's uplink drains, regardless of who asked.
///
/// Two storage modes: plane-backed (a reference into TransferPlane's uplink
/// vector, which pushes and pulls share and the plane grows itself) and
/// owned (standalone models from make_capacity_model carry their own
/// vector, grown by ensure_nodes).
class SharedFifoCapacity final : public CapacityModel {
 public:
  SharedFifoCapacity() : uplink_busy_until_(owned_) {}
  explicit SharedFifoCapacity(std::vector<double>& uplink_busy_until)
      : uplink_busy_until_(uplink_busy_until) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return to_string(SupplierCapacityModel::kSharedFifo);
  }

  [[nodiscard]] double backlog_end(net::NodeId /*requester*/,
                                   net::NodeId supplier) const override {
    return uplink_busy_until_[supplier];
  }

  void commit(net::NodeId /*requester*/, net::NodeId supplier, double /*start*/,
              double until) override {
    uplink_busy_until_[supplier] = until;
  }

  [[nodiscard]] bool supplier_shared() const noexcept override { return true; }

  void ensure_nodes(std::size_t count) override {
    // Plane-backed state is the plane's uplink vector, which the plane
    // grows itself; only owned storage grows here.
    if (&uplink_busy_until_ == &owned_ && owned_.size() < count) {
      owned_.resize(count, kIdle);
    }
  }

 private:
  std::vector<double> owned_;
  std::vector<double>& uplink_busy_until_;
};

/// Each (requester, supplier) link carries up to the supplier's outbound
/// rate independently; queueing is requester-local (Algorithm 1 literally).
class PerLinkCapacity final : public CapacityModel {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return to_string(SupplierCapacityModel::kPerLink);
  }

  [[nodiscard]] double backlog_end(net::NodeId requester,
                                   net::NodeId supplier) const override {
    const auto& links = link_busy_until_[requester];
    const auto it = links.find(supplier);
    return it == links.end() ? kIdle : it->second;
  }

  void commit(net::NodeId requester, net::NodeId supplier, double /*start*/,
              double until) override {
    link_busy_until_[requester][supplier] = until;
  }

  [[nodiscard]] bool supplier_shared() const noexcept override { return false; }

  void ensure_nodes(std::size_t count) override {
    if (link_busy_until_.size() < count) link_busy_until_.resize(count);
  }

 private:
  /// link_busy_until_[requester][supplier] = when that link frees up.
  std::vector<std::unordered_map<net::NodeId, double>> link_busy_until_;
};

/// Token-bucket uplink via the GCRA (virtual scheduling) formulation: per
/// supplier, `tat` is the theoretical arrival time of the next conforming
/// transfer and grows by one transmission time per commit; a transfer may
/// start up to `burst` transmission times *before* tat (the bucket depth).
/// An uplink idle long enough refills completely — tat trails the clock —
/// so backlog_end goes to kIdle and a full burst passes with zero queueing.
class TokenBucketCapacity final : public CapacityModel {
 public:
  explicit TokenBucketCapacity(double burst) : burst_(burst) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return to_string(SupplierCapacityModel::kTokenBucket);
  }

  [[nodiscard]] double backlog_end(net::NodeId /*requester*/,
                                   net::NodeId supplier) const override {
    const Bucket& bucket = buckets_[supplier];
    if (bucket.tat == kIdle) return kIdle;
    // burst tokens => `burst` conforming back-to-back transfers: the k-th
    // commit after a full refill puts tat at start + k*tx, so eligibility
    // tat - (burst-1)*tx crosses `start` exactly when the bucket empties.
    // burst == 1 degenerates to kSharedFifo's serialised spacing.
    return bucket.tat - (burst_ - 1.0) * bucket.tx;
  }

  void commit(net::NodeId /*requester*/, net::NodeId supplier, double start,
              double until) override {
    Bucket& bucket = buckets_[supplier];
    bucket.tx = until - start;
    // Refill up to the clock (an idle bucket holds a full burst), then
    // drain one token's worth of credit.
    bucket.tat = std::max(bucket.tat == kIdle ? start : bucket.tat, start) + bucket.tx;
  }

  [[nodiscard]] bool supplier_shared() const noexcept override { return true; }

  void ensure_nodes(std::size_t count) override {
    if (buckets_.size() < count) buckets_.resize(count);
  }

 private:
  struct Bucket {
    double tat = kIdle;  ///< theoretical arrival time of the next transfer
    double tx = 0.0;     ///< last transmission time (1/outbound_rate)
  };
  double burst_;
  std::vector<Bucket> buckets_;
};

std::unique_ptr<CapacityModel> make_capacity(SupplierCapacityModel kind,
                                             std::vector<double>& uplink_busy_until,
                                             double token_bucket_burst) {
  switch (kind) {
    case SupplierCapacityModel::kSharedFifo:
      return std::make_unique<SharedFifoCapacity>(uplink_busy_until);
    case SupplierCapacityModel::kPerLink:
      return std::make_unique<PerLinkCapacity>();
    case SupplierCapacityModel::kTokenBucket:
      return std::make_unique<TokenBucketCapacity>(token_bucket_burst);
  }
  GS_CHECK(false) << "unreachable capacity model";
  return nullptr;
}

}  // namespace

std::unique_ptr<CapacityModel> make_capacity_model(SupplierCapacityModel kind,
                                                   double token_bucket_burst) {
  switch (kind) {
    case SupplierCapacityModel::kSharedFifo:
      return std::make_unique<SharedFifoCapacity>();
    case SupplierCapacityModel::kPerLink:
      return std::make_unique<PerLinkCapacity>();
    case SupplierCapacityModel::kTokenBucket:
      return std::make_unique<TokenBucketCapacity>(token_bucket_burst);
  }
  GS_CHECK(false) << "unreachable capacity model";
  return nullptr;
}

TransferPlane::TransferPlane(sim::Simulator& sim, net::LatencyModel& latency,
                             SupplierCapacityModel kind, double accept_horizon,
                             DeliveryFn on_delivery, double token_bucket_burst)
    : sim_(sim),
      latency_(latency),
      kind_(kind),
      accept_horizon_(accept_horizon),
      on_delivery_(std::move(on_delivery)),
      capacity_(make_capacity(kind, uplink_busy_until_, token_bucket_burst)) {
  GS_CHECK(on_delivery_ != nullptr);
  GS_CHECK_GE(token_bucket_burst, 1.0);
}

void TransferPlane::ensure_nodes(std::size_t count) {
  if (uplink_busy_until_.size() < count) {
    uplink_busy_until_.resize(count, CapacityModel::kIdle);
  }
  capacity_->ensure_nodes(count);
}

double TransferPlane::queue_delay(net::NodeId requester, net::NodeId supplier,
                                  double now) const {
  return std::max(0.0, capacity_->backlog_end(requester, supplier) - now);
}

bool TransferPlane::request_staged(PeerNode& requester, const PeerNode& supplier, SegmentId id,
                                   double now, double& deliver_at) {
  (void)id;  // the payload rides with schedule_delivery
  GS_CHECK_LT(supplier.id, uplink_busy_until_.size());
  const double start = std::max(now, capacity_->backlog_end(requester.id, supplier.id));
  if (start - now > accept_horizon_) {
    // Link/supplier backlog too deep; the node retries elsewhere next period.
    return false;
  }
  const double tx = 1.0 / supplier.outbound_rate();
  capacity_->commit(requester.id, supplier.id, start, start + tx);
  // The jitter draw comes from the requester's own rng — member-local, so a
  // staged issue draws exactly what the inline issue would.
  deliver_at = start + tx + latency_.jittered_delay_s(requester.id, supplier.id, requester.rng);
  return true;
}

void TransferPlane::schedule_delivery(net::NodeId to, SegmentId id, double deliver_at,
                                      double now) {
  // One pooled event per transfer, routed to the target peer's shard.
  // Deliveries land within accept_horizon + latency of now, so under the
  // timing-wheel event plane this is an O(1) append into a near-wheel
  // bucket at most a few quanta ahead — the hot path the wheel exists for.
  sim_.after(deliver_at - now, *this, to, static_cast<std::uint64_t>(id));
}

bool TransferPlane::request(PeerNode& requester, const PeerNode& supplier, SegmentId id,
                            double now) {
  double deliver_at = 0.0;
  if (!request_staged(requester, supplier, id, now, deliver_at)) return false;
  schedule_delivery(requester.id, id, deliver_at, now);
  return true;
}

bool TransferPlane::push(PeerNode& from, net::NodeId to, SegmentId id, double now) {
  GS_CHECK_LT(from.id, uplink_busy_until_.size());
  // Pushes contend on the pusher's *real* uplink.  Under kSharedFifo that
  // is the same FIFO the pulls use; under kPerLink the pulls deliberately
  // bypass it (the relaxed ablation), so the FIFO vector stands in for the
  // real uplink.  kTokenBucket models the real uplink as the token ledger,
  // so pushes must draw from that same ledger — two independent ledgers
  // would let a supplier push and serve pulls at 2x its outbound rate.
  const bool bucket = kind_ == SupplierCapacityModel::kTokenBucket;
  const double backlog = bucket ? capacity_->backlog_end(to, from.id)
                                : uplink_busy_until_[from.id];
  const double start = std::max(now, backlog);
  if (start - now > accept_horizon_) return false;  // own uplink saturated
  const double tx = 1.0 / from.outbound_rate();
  if (bucket) {
    capacity_->commit(to, from.id, start, start + tx);
  } else {
    uplink_busy_until_[from.id] = start + tx;
  }
  const double deliver_at = start + tx + latency_.jittered_delay_s(to, from.id, from.rng);
  sim_.after(deliver_at - now, *this, to, static_cast<std::uint64_t>(id));
  return true;
}

void TransferPlane::on_event(std::uint64_t a, std::uint64_t b) {
  on_delivery_(static_cast<net::NodeId>(a), static_cast<SegmentId>(b));
}

void TransferPlane::on_batch(const sim::PooledBatchItem* items, std::size_t count) {
  // batchable() guarantees the handler exists whenever the queue batches.
  on_delivery_batch_(items, count);
}

double TransferPlane::uplink_busy_until(net::NodeId v) const {
  GS_CHECK_LT(v, uplink_busy_until_.size());
  return uplink_busy_until_[v];
}

}  // namespace gs::stream
