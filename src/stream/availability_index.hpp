// The availability plane: per-peer neighbour-availability views maintained
// by deltas instead of per-tick rescans.
//
// The legacy hot path re-derives everything from scratch every scheduling
// period: snapshot_and_learn walks a peer's neighbours for the boundary max,
// then build_candidates walks them again — once for the head and once per
// missing segment over the whole window, O(degree x buffer_capacity) per
// peer per tick.  This index inverts the dataflow: every event that changes
// what a neighbourhood can supply (a delivery, a FIFO eviction, a join, a
// leave, a repair edge, a boundary learned) pushes a delta into the affected
// peers' views, and the tick just reads them.
//
// Per peer the view keeps
//   - the alive neighbour list in graph (sorted-id) order,
//   - a per-segment supplier count plus the derived `supplied` bitset, so
//     the candidate loop can jump straight to missing-and-supplied ids with
//     DynamicBitset::first_set_and_clear_offset,
//   - the cached neighbour head (max buffer id any neighbour holds),
//   - the cached boundary max (newest switch any neighbour knows of).
//
// Two keying modes share every code path:
//   - absolute (default): supplier counts are indexed by absolute segment
//     id and the arrays grow with the stream — simple and exact, but a
//     long run accumulates O(total segments) per view;
//   - windowed (set_window): counts live in a sliding window of
//     `span` ids anchored at the owner's playback cursor (window_base,
//     always a multiple of 64 so the supplied bitset stays word-aligned
//     with the absolute received set).  Deltas outside the window are
//     dropped; sync_window slides the base forward each tick and *exactly*
//     reconstructs the newly covered top range from the neighbours'
//     buffers, so in-window counts always equal the absolute-mode counts —
//     which is what keeps windowed runs bit-identical (enforced by
//     stream_determinism_test) while bounding per-view memory at
//     O(buffer_capacity) for 10^5+-peer runs.
//
// The maintained views are exact mirrors of what the legacy rescan would
// compute, which is what makes the engine's incremental_availability mode
// bit-identical to the rescan mode (enforced by stream_determinism_test).
// State is strictly per view, and the delta entry points are split into
// apply_gain / apply_evict / recompute_head_for so the sharded engine can
// drain delivery deltas in parallel: each lane applies the deltas of the
// views its shard owns (disjoint state), defers head recomputation (which
// reads other peers' buffers) behind the wave barrier, and the end-of-batch
// state equals the sequential application exactly (supplier counts commute
// per (view, owner) stream; the cached head is exact at every batch end —
// max-monotone gains plus recompute-on-dirty cover every eviction case).
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "stream/peer_node.hpp"
#include "util/bitset.hpp"

namespace gs::stream {

class AvailabilityIndex {
 public:
  /// One peer's merged view of its neighbourhood.
  struct View {
    /// Views exist for live non-source peers only (sources never tick and
    /// dead peers never come back; their ids are not reused).
    bool built = false;
    /// Alive neighbours in ascending id order — exactly the order and set
    /// graph.neighbors() yields once dead peers are skipped.
    std::vector<net::NodeId> alive_neighbors;
    /// supplier_count[slot] = alive neighbours currently holding segment
    /// window_base + slot (window_base is 0 in absolute mode).
    std::vector<std::uint16_t> supplier_count;
    /// Bit `slot` set iff supplier_count[slot] > 0.
    util::DynamicBitset supplied;
    /// Absolute id of supplier_count[0] / supplied bit 0; multiple of 64.
    std::size_t window_base = 0;
    /// max over alive neighbours of buffer.max_id(); kNoSegment when none.
    /// Maintained across the whole stream regardless of the window.
    SegmentId head = kNoSegment;
    /// max over alive neighbours of known_boundary; -1 when none.
    int boundary_max = -1;
    /// Plan-gate work summary (enable_work_tracking): a *conservative*
    /// word-level cover of (supplied & ~owner.received) — every word with a
    /// missing ∧ supplied segment is marked, but a marked word may have
    /// gone quiet (the owner received the segments, or suppliers evicted
    /// them).  Zero work_words therefore *proves* the owner has no
    /// schedulable work and tick_plan can skip the candidate build
    /// outright; nonzero just means "build and see".  Kept conservative on
    /// purpose: deciding exactly at delta time would read the owner's
    /// received set — a cold random load per delta at 10^6 peers that
    /// costs more than the empty builds it saves.  The summary is exact
    /// right after the bulk recomputes (build, window slide, repair edge,
    /// join) and collapses back to zero via try_quiesce when an empty
    /// build proves quiescence.
    std::uint32_t work_words = 0;
    /// Bit `w` set iff word `w` of `supplied` contributes to work_words.
    util::DynamicBitset work_mask;

    /// One past the last absolute id the supplied bitset covers.
    [[nodiscard]] std::size_t supplied_end() const noexcept {
      return window_base + supplied.size();
    }
  };

  /// True when the engine should *read* views (candidate build, stale
  /// checks, advert snapshots).  False in gate-only mode, where the index
  /// is maintained purely to feed the plan gate under the legacy rescan.
  [[nodiscard]] bool enabled() const noexcept { return enabled_ && !gate_only_; }
  /// True when the views are being maintained at all — every delta entry
  /// point (deliveries, evictions, churn, repair edges, boundary learns,
  /// window slides) must fire while this holds, even in gate-only mode.
  [[nodiscard]] bool maintained() const noexcept { return enabled_; }
  [[nodiscard]] bool windowed() const noexcept { return window_span_ > 0; }
  [[nodiscard]] bool work_tracked() const noexcept { return track_work_; }

  /// Keeps the index maintained but invisible to readers (enabled() stays
  /// false).  Lets the legacy availability mode run the plan gate without
  /// switching the scheduler to incremental views.  Call before build().
  void set_gate_only();

  /// Turns on the per-view work summary and mirrors the zero/nonzero state
  /// of each view's work_words into `pool->has_work(v)` so the engine's
  /// plan gate can test quiescence with one byte load.  Call before
  /// build(); the pool must outlive the index.
  void enable_work_tracking(PeerPool* pool);

  /// Switches supplier-count keying to a sliding window of `span_bits` ids
  /// (rounded up to a word multiple) anchored at each owner's playback
  /// cursor.  Must be called before build().
  void set_window(std::size_t span_bits);

  /// Builds every live non-source peer's view from the current buffers and
  /// enables event maintenance.  Call once, after setup/warm-start filled
  /// the buffers and before the simulation loop delivers anything.
  void build(const net::Graph& graph, const std::vector<PeerNode>& peers);

  /// `owner`'s buffer gained `id` (delivery or local generation).
  void on_gain(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId owner,
               SegmentId id);
  /// `owner`'s buffer evicted `victim`.  Call after the eviction, so head
  /// recomputation sees the post-eviction buffers.
  void on_evict(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId owner,
                SegmentId victim);
  /// `owner` learned switch boundaries up to `boundary`.
  void on_boundary(const net::Graph& graph, net::NodeId owner, int boundary);

  /// The owner's candidate build came back empty: clears `v`'s work
  /// summary (and the pool lane) iff the supplied ∧ ¬received scan from
  /// `from` proves there is no schedulable work now or later without a
  /// fresh delta — a pending-deferred id is still missing ∧ supplied, so
  /// the scan seeing nothing also rules out retry-timer wakeups, and ids
  /// behind `from` are dead (the playback anchor never moves backwards).
  /// Returns true when it cleared.  No-op unless work tracking is on.
  bool try_quiesce(net::NodeId v, const util::DynamicBitset& received, SegmentId from);

  // --- journaled delta application (the engine's parallel delivery wave) ---
  //
  // apply_gain/apply_evict are the per-view halves of on_gain/on_evict:
  // they touch only views_[view] (plus the immutable window configuration),
  // so distinct views can be updated from distinct threads.  apply_evict
  // never recomputes the head — it reports whether the cached head was
  // invalidated and the caller recomputes after every buffer write of the
  // batch has landed (recompute_head_for), which yields exactly the head a
  // sequential application ends at.

  /// Applies one gain delta to `view`'s state; no-op for unbuilt views.
  void apply_gain(net::NodeId view, SegmentId id);
  /// Applies one eviction delta to `view`'s state.  Returns true when the
  /// eviction removed the cached head (caller must recompute_head_for once
  /// the batch's buffer writes are final); false otherwise.
  [[nodiscard]] bool apply_evict(net::NodeId view, SegmentId victim);
  /// Applies one journalled boundary delta to `view`: boundary_max rises to
  /// at least `boundary`.  Max-monotone, so boundary deltas commute with
  /// every other delta kind — they can ride the parallel merge wave in any
  /// cross-owner interleaving and still land on the sequential end state.
  void apply_boundary(net::NodeId view, int boundary);
  /// Recomputes `view`'s cached head from its alive neighbours' buffers.
  void recompute_head_for(const std::vector<PeerNode>& peers, net::NodeId view);
  /// Folds externally counted delta applications into updates_applied().
  void add_updates(std::uint64_t n) noexcept { updates_ += n; }

  /// Slides `v`'s window so it stays anchored at the owner's current
  /// playback position `from` (windowed mode; no-op otherwise).  Counts
  /// for the newly covered top range are reconstructed exactly from the
  /// alive neighbours' buffers, recovering any deltas dropped while those
  /// ids were beyond the window.  Call from the tick pre phase, after
  /// playback advanced.
  void sync_window(const std::vector<PeerNode>& peers, net::NodeId v, SegmentId from);

  /// A fresh joiner `v`, already wired into the graph and present in
  /// `peers`: builds its view and registers it with its neighbours.
  void add_peer(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// `v` is leaving: unregisters it from every neighbour's view and drops
  /// its own.  Call while the graph still has v's edges (before the
  /// membership protocol isolates it).
  void remove_peer(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// A repair edge appeared between existing peers `u` and `v` (either side
  /// may be a source, whose own view stays unbuilt).
  void connect(const std::vector<PeerNode>& peers, net::NodeId u, net::NodeId v);

  [[nodiscard]] const View& view(net::NodeId v) const;

  /// Delta events applied since build() (diagnostics).
  [[nodiscard]] std::uint64_t updates_applied() const noexcept { return updates_; }

 private:
  void build_view(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// Maps `id` to its count/bitset slot in `w`.  Absolute mode grows the
  /// arrays and always tracks; windowed mode reports out-of-window ids as
  /// untracked (false) without touching anything.
  bool track_slot(View& w, SegmentId id, std::size_t& slot) const;
  void add_supplier(View& w, const PeerNode& neighbor) const;
  void remove_supplier(View& w, const PeerNode& neighbor) const;
  static void recompute_head(View& w, const std::vector<PeerNode>& peers);
  static void recompute_boundary(View& w, const std::vector<PeerNode>& peers);
  /// Full from-scratch work summary for `w` (bulk ops: build, window
  /// slide, repair edge, neighbour removal).
  void recompute_work(net::NodeId v, View& w, const util::DynamicBitset& received);
  /// Mirrors work_words == 0 into pool_->has_work(v) (transition writes
  /// only, so quiescent stretches stay read-mostly).
  void sync_work_lane(net::NodeId v, const View& w);

  bool enabled_ = false;
  bool gate_only_ = false;
  bool track_work_ = false;
  PeerPool* pool_ = nullptr;
  /// 0 = absolute keying; otherwise the window span in bits (multiple of 64).
  std::size_t window_span_ = 0;
  std::vector<View> views_;
  std::uint64_t updates_ = 0;
};

}  // namespace gs::stream
