// The availability plane: per-peer neighbour-availability views maintained
// by deltas instead of per-tick rescans.
//
// The legacy hot path re-derives everything from scratch every scheduling
// period: snapshot_and_learn walks a peer's neighbours for the boundary max,
// then build_candidates walks them again — once for the head and once per
// missing segment over the whole window, O(degree x buffer_capacity) per
// peer per tick.  This index inverts the dataflow: every event that changes
// what a neighbourhood can supply (a delivery, a FIFO eviction, a join, a
// leave, a repair edge, a boundary learned) pushes a delta into the affected
// peers' views, and the tick just reads them.
//
// Per peer the view keeps
//   - the alive neighbour list in graph (sorted-id) order,
//   - a per-segment supplier count plus the derived `supplied` bitset, so
//     the candidate loop can jump straight to missing-and-supplied ids with
//     DynamicBitset::first_set_and_clear,
//   - the cached neighbour head (max buffer id any neighbour holds),
//   - the cached boundary max (newest switch any neighbour knows of).
//
// The maintained views are exact mirrors of what the legacy rescan would
// compute, which is what makes the engine's incremental_availability mode
// bit-identical to the rescan mode (enforced by stream_determinism_test).
// State is strictly per peer — no cross-view sharing — so the index shards
// cleanly if peers are ever distributed across threads (see ROADMAP).
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.hpp"
#include "stream/peer_node.hpp"
#include "util/bitset.hpp"

namespace gs::stream {

class AvailabilityIndex {
 public:
  /// One peer's merged view of its neighbourhood.
  struct View {
    /// Views exist for live non-source peers only (sources never tick and
    /// dead peers never come back; their ids are not reused).
    bool built = false;
    /// Alive neighbours in ascending id order — exactly the order and set
    /// graph.neighbors() yields once dead peers are skipped.
    std::vector<net::NodeId> alive_neighbors;
    /// supplier_count[id] = alive neighbours currently holding `id`.
    std::vector<std::uint16_t> supplier_count;
    /// Bit `id` set iff supplier_count[id] > 0.
    util::DynamicBitset supplied;
    /// max over alive neighbours of buffer.max_id(); kNoSegment when none.
    SegmentId head = kNoSegment;
    /// max over alive neighbours of known_boundary; -1 when none.
    int boundary_max = -1;
  };

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Builds every live non-source peer's view from the current buffers and
  /// enables event maintenance.  Call once, after setup/warm-start filled
  /// the buffers and before the simulation loop delivers anything.
  void build(const net::Graph& graph, const std::vector<PeerNode>& peers);

  /// `owner`'s buffer gained `id` (delivery or local generation).
  void on_gain(const net::Graph& graph, net::NodeId owner, SegmentId id);
  /// `owner`'s buffer evicted `victim`.  Call after the eviction, so head
  /// recomputation sees the post-eviction buffers.
  void on_evict(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId owner,
                SegmentId victim);
  /// `owner` learned switch boundaries up to `boundary`.
  void on_boundary(const net::Graph& graph, net::NodeId owner, int boundary);

  /// A fresh joiner `v`, already wired into the graph and present in
  /// `peers`: builds its view and registers it with its neighbours.
  void add_peer(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// `v` is leaving: unregisters it from every neighbour's view and drops
  /// its own.  Call while the graph still has v's edges (before the
  /// membership protocol isolates it).
  void remove_peer(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// A repair edge appeared between existing peers `u` and `v` (either side
  /// may be a source, whose own view stays unbuilt).
  void connect(const std::vector<PeerNode>& peers, net::NodeId u, net::NodeId v);

  [[nodiscard]] const View& view(net::NodeId v) const;

  /// Delta events applied since build() (diagnostics).
  [[nodiscard]] std::uint64_t updates_applied() const noexcept { return updates_; }

 private:
  void build_view(const net::Graph& graph, const std::vector<PeerNode>& peers, net::NodeId v);
  /// Grows the per-segment arrays of `w` to cover `id`.
  static void ensure_capacity(View& w, SegmentId id);
  static void add_supplier(View& w, const PeerNode& neighbor);
  static void remove_supplier(View& w, const PeerNode& neighbor);
  static void recompute_head(View& w, const std::vector<PeerNode>& peers);
  static void recompute_boundary(View& w, const std::vector<PeerNode>& peers);

  bool enabled_ = false;
  std::vector<View> views_;
  std::uint64_t updates_ = 0;
};

}  // namespace gs::stream
