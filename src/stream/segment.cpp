#include "stream/segment.hpp"

#include "util/check.hpp"

namespace gs::stream {

SegmentId SegmentRegistry::append(SessionIndex session, double created_at,
                                  SegmentId prev_session_end) {
  SegmentInfo info;
  info.id = static_cast<SegmentId>(segments_.size());
  info.session = session;
  info.created_at = created_at;
  info.prev_session_end = prev_session_end;
  segments_.push_back(info);
  return info.id;
}

const SegmentInfo& SegmentRegistry::info(SegmentId id) const {
  GS_CHECK_GE(id, 0);
  GS_CHECK_LT(static_cast<std::size_t>(id), segments_.size());
  return segments_[static_cast<std::size_t>(id)];
}

}  // namespace gs::stream
