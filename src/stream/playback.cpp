#include "stream/playback.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

Playback::Playback(double rate, bool flat)
    : rate_(rate), interval_(1.0 / rate), flat_mode_(flat) {
  GS_CHECK_GT(rate, 0.0);
}

void Playback::start(SegmentId first, double now) {
  GS_CHECK(!started_);
  GS_CHECK_GE(first, 0);
  started_ = true;
  cursor_ = first;
  next_due_ = now;
}

void Playback::set_gate(SegmentId id) {
  GS_CHECK_EQ(gate_, kNoSegment);
  GS_CHECK(!started_ || id >= cursor_);
  gate_ = id;
}

void Playback::release_gate(double now) {
  GS_CHECK_NE(gate_, kNoSegment);
  gate_ = kNoSegment;
  // The freshly ungated segment plays no earlier than the release instant.
  if (started_ && next_due_ < now) next_due_ = now;
}

void Playback::notify_arrival(SegmentId id, double now) {
  if (!started_ || id < cursor_) return;
  if (id == cursor_) {
    // A fresh arrival of the cursor segment means it was absent at its due
    // time (duplicates never reach here): the stream stalled from next_due_
    // until now and resumes at the arrival instant, never retroactively.
    if (next_due_ < now) {
      stall_time_ += now - next_due_;
      next_due_ = now;
    }
    stalled_ = false;
    return;
  }
  // Ahead of the cursor: remember the arrival so the catch-up loop never
  // back-dates this segment's play time.
  if (id >= cursor_ + kArrivalWindow) return;
  if (flat_mode_) {
    if (ring_ == nullptr) ring_ = std::make_unique<ArrivalRing>();
    (*ring_)[slot_of(id)] = ArrivalSlot{id, now};
  } else {
    recent_arrivals_[id] = now;
  }
}

std::size_t Playback::advance(double now, const std::function<bool(SegmentId)>& has,
                              const std::function<void(SegmentId, double)>& on_play) {
  if (!started_) return 0;
  std::size_t plays = 0;
  while (next_due_ <= now) {
    if (gate_ != kNoSegment && cursor_ >= gate_) break;
    if (!has(cursor_)) {
      stalled_ = true;
      break;
    }
    stalled_ = false;
    // Clamp to the recorded arrival: segments that turned up after their
    // theoretical due time stalled the stream until they arrived.
    if (flat_mode_) {
      if (ring_ != nullptr) {
        ArrivalSlot& slot = (*ring_)[slot_of(cursor_)];
        if (slot.id == cursor_) {
          if (slot.time > next_due_) {
            stall_time_ += slot.time - next_due_;
            next_due_ = slot.time;
          }
          slot.id = kNoSegment;
          if (next_due_ > now) break;  // resumed beyond the current horizon
        }
      }
    } else {
      const auto it = recent_arrivals_.find(cursor_);
      if (it != recent_arrivals_.end()) {
        if (it->second > next_due_) {
          stall_time_ += it->second - next_due_;
          next_due_ = it->second;
        }
        recent_arrivals_.erase(it);
        if (next_due_ > now) break;  // resumed beyond the current horizon
      }
    }
    on_play(cursor_, next_due_);
    ++played_;
    ++plays;
    ++cursor_;
    next_due_ += interval_;
    if (!flat_mode_) {
      // Drop stale bookkeeping the cursor has passed (skipped duplicates).
      // The ring needs no cleanup: passed entries fail the id check and get
      // overwritten in place.
      recent_arrivals_.erase(recent_arrivals_.begin(),
                             recent_arrivals_.lower_bound(cursor_));
    }
  }
  return plays;
}

std::size_t Playback::memory_bytes() const noexcept {
  std::size_t total = ring_ != nullptr ? sizeof(ArrivalRing) : 0;
  // std::map node estimate: payload plus three pointers and the colour.
  total += recent_arrivals_.size() * (sizeof(std::pair<SegmentId, double>) + 4 * sizeof(void*));
  return total;
}

}  // namespace gs::stream
