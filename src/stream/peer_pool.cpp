#include "stream/peer_pool.hpp"

#include <type_traits>

namespace gs::stream {

void PeerPool::resize(std::size_t n) {
  is_source_.resize(n, 0);
  alive_.resize(n, 1);
  sw_finished_.resize(n, 0);
  sw_prepared_.resize(n, 0);
  tracked_.resize(n, 0);
  gate_armed_.resize(n, 0);
  // Work lane defaults to "has work" so peers never get gated before the
  // availability plane builds their view (or at all, when tracking is off).
  has_work_.resize(n, 1);
  strategy_.resize(n, 0);
  inbound_rate_.resize(n, 0.0);
  outbound_rate_.resize(n, 0.0);
  in_budget_.resize(n);
  start_id_.resize(n, 0);
  sw_lo_.resize(n, 0);
  start_run_.resize(n, 0);
  q1_missing_.resize(n, 0);
  q2_missing_.resize(n, 0);
  q0_at_switch_.resize(n, 0);
  known_boundary_.resize(n, -1);
  active_switch_.resize(n, -1);
}

std::size_t PeerPool::memory_bytes() const noexcept {
  std::size_t total = 0;
  const auto count = [&total](const auto& v) {
    using T = typename std::decay_t<decltype(v)>::value_type;
    total += v.capacity() * sizeof(T);
  };
  count(is_source_);
  count(alive_);
  count(sw_finished_);
  count(sw_prepared_);
  count(tracked_);
  count(gate_armed_);
  count(has_work_);
  count(strategy_);
  count(inbound_rate_);
  count(outbound_rate_);
  count(in_budget_);
  count(start_id_);
  count(sw_lo_);
  count(start_run_);
  count(q1_missing_);
  count(q2_missing_);
  count(q0_at_switch_);
  count(known_boundary_);
  count(active_switch_);
  return total;
}

}  // namespace gs::stream
