#include "stream/stream_buffer.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace gs::stream {

StreamBuffer::StreamBuffer(std::size_t capacity, bool flat)
    : capacity_(capacity), flat_mode_(flat) {
  GS_CHECK_GE(capacity, 1u);
}

void StreamBuffer::grow_presence(SegmentId id) {
  const auto needed = static_cast<std::size_t>(id) + 1;
  if (presence_.size() < needed) {
    // Grow geometrically so repeated inserts stay amortized O(1).
    presence_.resize(std::max(needed, presence_.size() * 2 + 64));
  }
}

SegmentId StreamBuffer::insert(SegmentId id) {
  GS_CHECK_GE(id, 0);
  if (contains(id)) return kNoSegment;
  grow_presence(id);

  if (flat_mode_) {
    if (flat_ == nullptr) flat_ = std::make_unique<Flat>();
    Flat& f = *flat_;
    SegmentId victim = kNoSegment;
    if (f.count == capacity_) {
      // Evict-before-insert keeps the ring at `capacity` slots.  With
      // capacity >= 1 this picks the same victim and assigns the same
      // sequence numbers as the legacy insert-then-evict order, so both
      // backends stay bit-identical.
      victim = f.ring[f.head];
      f.head = f.head + 1 == f.ring.size() ? 0 : f.head + 1;
      --f.count;
      f.sequence.erase(static_cast<std::int32_t>(victim));
      presence_.reset(static_cast<std::size_t>(victim));
      ++evictions_;
      if (victim == max_id_) {
        // Rare: the max can only be evicted under heavy id reordering.
        max_id_ = kNoSegment;
        for (std::size_t i = 0; i < f.count; ++i) {
          std::size_t slot = f.head + i;
          if (slot >= f.ring.size()) slot -= f.ring.size();
          max_id_ = std::max(max_id_, f.ring[slot]);
        }
      }
    } else if (f.count == f.ring.size()) {
      // Grow geometrically towards `capacity`, relinearising so the oldest
      // element lands at slot 0.  Once count reaches capacity the ring is
      // exactly `capacity` slots and only the eviction branch runs.
      std::vector<SegmentId> bigger(
          std::min(capacity_, std::max<std::size_t>(16, f.ring.size() * 2)), kNoSegment);
      for (std::size_t i = 0; i < f.count; ++i) {
        std::size_t slot = f.head + i;
        if (slot >= f.ring.size()) slot -= f.ring.size();
        bigger[i] = f.ring[slot];
      }
      f.ring = std::move(bigger);
      f.head = 0;
    }
    std::size_t tail = f.head + f.count;
    if (tail >= f.ring.size()) tail -= f.ring.size();
    f.ring[tail] = id;
    ++f.count;
    f.sequence.set(static_cast<std::int32_t>(id),
                   static_cast<std::uint32_t>(next_sequence_++));
    presence_.set(static_cast<std::size_t>(id));
    max_id_ = std::max(max_id_, id);
    return victim;
  }

  if (legacy_ == nullptr) legacy_ = std::make_unique<Legacy>();
  Legacy& l = *legacy_;
  l.order.push_back(id);
  l.sequence[id] = next_sequence_++;
  presence_.set(static_cast<std::size_t>(id));
  max_id_ = std::max(max_id_, id);

  if (l.order.size() <= capacity_) return kNoSegment;
  const SegmentId victim = l.order.front();
  l.order.pop_front();
  l.sequence.erase(victim);
  presence_.reset(static_cast<std::size_t>(victim));
  ++evictions_;
  if (victim == max_id_) {
    // Rare: the max can only be evicted under heavy id reordering.
    max_id_ = kNoSegment;
    for (const SegmentId held : l.order) max_id_ = std::max(max_id_, held);
  }
  return victim;
}

bool StreamBuffer::contains(SegmentId id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= presence_.size()) return false;
  return presence_.test(static_cast<std::size_t>(id));
}

std::size_t StreamBuffer::position_from_tail(SegmentId id) const noexcept {
  // Every successful insert bumps next_sequence_ by one and appends one
  // element at the tail, so the distance from the tail is the number of
  // later insertions plus one.  Evictions remove from the head and do not
  // change any survivor's distance from the tail.
  if (flat_mode_) {
    if (flat_ == nullptr) return 0;
    const std::uint32_t* seq = flat_->sequence.find(static_cast<std::int32_t>(id));
    // uint32 wraparound subtraction: the distance is < capacity <= 2^32.
    return seq == nullptr
               ? 0
               : static_cast<std::size_t>(static_cast<std::uint32_t>(next_sequence_) - *seq);
  }
  if (legacy_ == nullptr) return 0;
  const auto it = legacy_->sequence.find(id);
  if (it == legacy_->sequence.end()) return 0;
  return static_cast<std::size_t>(next_sequence_ - it->second);
}

SegmentId StreamBuffer::oldest() const noexcept {
  if (flat_mode_) {
    return (flat_ == nullptr || flat_->count == 0) ? kNoSegment : flat_->ring[flat_->head];
  }
  return (legacy_ == nullptr || legacy_->order.empty()) ? kNoSegment : legacy_->order.front();
}

SegmentId StreamBuffer::newest() const noexcept {
  if (flat_mode_) {
    if (flat_ == nullptr || flat_->count == 0) return kNoSegment;
    std::size_t tail = flat_->head + flat_->count - 1;
    if (tail >= flat_->ring.size()) tail -= flat_->ring.size();
    return flat_->ring[tail];
  }
  return (legacy_ == nullptr || legacy_->order.empty()) ? kNoSegment : legacy_->order.back();
}

gossip::BufferMap StreamBuffer::build_map(std::size_t window_bits) const {
  if (max_id_ == kNoSegment) return gossip::BufferMap(0, window_bits);
  // Word-at-a-time copy out of the presence bitset: build_map runs once per
  // peer per advert under delta accounting, so the per-slot contains() loop
  // it replaced was a real per-tick cost.
  return gossip::BufferMap::from_presence(window_base(window_bits), window_bits, presence_);
}

void StreamBuffer::build_map_into(std::size_t window_bits, gossip::BufferMap& out) const {
  out.assign_from_presence(window_base(window_bits), window_bits, presence_);
}

std::size_t StreamBuffer::memory_bytes() const noexcept {
  std::size_t total = presence_.memory_bytes();
  if (flat_ != nullptr) {
    total += flat_->ring.capacity() * sizeof(SegmentId) + flat_->sequence.memory_bytes();
  }
  if (legacy_ != nullptr) {
    // Node-based estimate: deque block plus a heap node (payload + two
    // pointers of overhead) per mapped segment.
    total += legacy_->order.size() * sizeof(SegmentId) + 512 +
             legacy_->sequence.bucket_count() * sizeof(void*) +
             legacy_->sequence.size() *
                 (sizeof(std::pair<SegmentId, std::uint64_t>) + 2 * sizeof(void*));
  }
  return total;
}

}  // namespace gs::stream
