#include "stream/stream_buffer.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::stream {

StreamBuffer::StreamBuffer(std::size_t capacity) : capacity_(capacity) {
  GS_CHECK_GE(capacity, 1u);
}

void StreamBuffer::grow_presence(SegmentId id) {
  const auto needed = static_cast<std::size_t>(id) + 1;
  if (presence_.size() < needed) {
    // Grow geometrically so repeated inserts stay amortized O(1).
    presence_.resize(std::max(needed, presence_.size() * 2 + 64));
  }
}

SegmentId StreamBuffer::insert(SegmentId id) {
  GS_CHECK_GE(id, 0);
  if (contains(id)) return kNoSegment;
  grow_presence(id);
  order_.push_back(id);
  sequence_[id] = next_sequence_++;
  presence_.set(static_cast<std::size_t>(id));
  max_id_ = std::max(max_id_, id);

  if (order_.size() <= capacity_) return kNoSegment;
  const SegmentId victim = order_.front();
  order_.pop_front();
  sequence_.erase(victim);
  presence_.reset(static_cast<std::size_t>(victim));
  ++evictions_;
  if (victim == max_id_) {
    // Rare: the max can only be evicted under heavy id reordering.
    max_id_ = kNoSegment;
    for (const SegmentId held : order_) max_id_ = std::max(max_id_, held);
  }
  return victim;
}

bool StreamBuffer::contains(SegmentId id) const noexcept {
  if (id < 0 || static_cast<std::size_t>(id) >= presence_.size()) return false;
  return presence_.test(static_cast<std::size_t>(id));
}

std::size_t StreamBuffer::position_from_tail(SegmentId id) const noexcept {
  const auto it = sequence_.find(id);
  if (it == sequence_.end()) return 0;
  // Every successful insert bumps next_sequence_ by one and appends one
  // element at the tail, so the distance from the tail is the number of
  // later insertions plus one.  Evictions remove from the head and do not
  // change any survivor's distance from the tail.
  return static_cast<std::size_t>(next_sequence_ - it->second);
}

SegmentId StreamBuffer::oldest() const noexcept {
  return order_.empty() ? kNoSegment : order_.front();
}

SegmentId StreamBuffer::newest() const noexcept {
  return order_.empty() ? kNoSegment : order_.back();
}

gossip::BufferMap StreamBuffer::build_map(std::size_t window_bits) const {
  if (max_id_ == kNoSegment) return gossip::BufferMap(0, window_bits);
  const SegmentId base =
      std::max<SegmentId>(0, max_id_ - static_cast<SegmentId>(window_bits) + 1);
  // Word-at-a-time copy out of the presence bitset: build_map runs once per
  // peer per advert under delta accounting, so the per-slot contains() loop
  // it replaced was a real per-tick cost.
  return gossip::BufferMap::from_presence(base, window_bits, presence_);
}

}  // namespace gs::stream
