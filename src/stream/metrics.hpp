// Switch-experiment metrics, matching the paper's §5.2 definitions.
//
// Primary metrics: average preparing time of S2 (= average switch time),
// reduction ratio (computed by reporters from two runs), and communication
// overhead.  Supplementary: undelivered ratio of S1, delivered ratio of S2
// (per-period tracks), and average finishing time of S1.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gs::stream {

/// One sample of the per-period ratio tracks (Fig. 5 / Fig. 9).
struct TrackPoint {
  double time = 0.0;  ///< seconds since the switch instant
  /// Mean over tracked nodes of Q1(t)/Q0 (nodes with Q0 = 0 contribute 0).
  double undelivered_ratio_s1 = 0.0;
  /// Mean over tracked nodes of (Qs - Q2(t))/Qs.
  double delivered_ratio_s2 = 0.0;
  std::size_t live_tracked = 0;
};

/// Per-switch results.  Times are relative to the switch instant.
struct SwitchMetrics {
  int switch_index = 0;
  double switch_time = 0.0;  ///< absolute sim time of the switch

  std::size_t tracked = 0;           ///< nodes alive (non-source) at the switch
  std::size_t finished_s1 = 0;       ///< completed the playback of S1
  std::size_t prepared_s2 = 0;       ///< gathered the Qs-segment prefix of S2
  std::size_t censored_finish = 0;   ///< left/timed out before finishing S1
  std::size_t censored_prepare = 0;  ///< left/timed out before preparing S2

  std::vector<double> finish_times;    ///< per completed node, T1'
  std::vector<double> prepared_times;  ///< per completed node, T2 (switch time)
  std::vector<double> s2_start_times;  ///< actual playback start of S2

  std::vector<TrackPoint> track;

  /// Communication overhead over [switch, completion]: buffer-map bits over
  /// data bits (§5.3), and the wider ratio including request bits.
  double overhead_ratio = 0.0;
  double control_ratio = 0.0;
  std::uint64_t data_segments = 0;

  [[nodiscard]] double avg_finish_time() const;
  [[nodiscard]] double avg_prepared_time() const;  ///< average switch time
  [[nodiscard]] double max_finish_time() const;
  [[nodiscard]] double max_prepared_time() const;
  [[nodiscard]] double avg_s2_start_time() const;

  /// finished + prepared fraction of the tracked population.
  [[nodiscard]] double completion_fraction() const;

  [[nodiscard]] std::string to_string() const;
};

/// The paper's reduction ratio: (normal - fast) / normal average switch time.
[[nodiscard]] double reduction_ratio(double normal_switch_time, double fast_switch_time);

}  // namespace gs::stream
