// The streaming engine: gossip pull streaming with serial source switching.
//
// A thin orchestrator after the subsystem decomposition: the engine owns
// the simulator and the overlay (graph + membership + latency) and wires
// three subsystems to them —
//
//   PeerNode       per-peer buffer, playback, budget, strategy, gossip state
//   TransferPlane  supplier uplink queues and delivery scheduling
//                  (capacity models behind the CapacityModel interface)
//   SwitchTimeline epoch/session bookkeeping and per-switch metrics
//
// The scheduling *policy* is injected as a SchedulerStrategy (fast switch /
// normal switch / ...); the engine supplies mechanism only: periodic ticks,
// buffer-map snapshots, budget enforcement, playback and churn.
//
// Time convention (paper §5.1): the first switch happens at t = 0; the old
// source streams during the warm-up t in [-warmup, 0).
#pragma once

#include <memory>
#include <vector>

#include "gossip/membership.hpp"
#include "gossip/overhead.hpp"
#include "net/graph.hpp"
#include "net/latency.hpp"
#include "sim/periodic.hpp"
#include "sim/simulator.hpp"
#include "stream/availability_index.hpp"
#include "stream/cdn_assist.hpp"
#include "stream/commit_colouring.hpp"
#include "stream/bandwidth.hpp"
#include "stream/metrics.hpp"
#include "stream/peer_node.hpp"
#include "stream/scheduler.hpp"
#include "stream/segment.hpp"
#include "stream/switch_timeline.hpp"
#include "stream/transfer_plane.hpp"
#include "util/rng.hpp"

namespace gs::stream {

/// Engine knobs; defaults reproduce the paper's §5.1 setup.
struct EngineConfig {
  double tau = 1.0;                  ///< data scheduling period (s)
  double playback_rate = 10.0;       ///< p (segments/s; 300 Kbps / 30 Kb)
  std::size_t buffer_capacity = 600; ///< B
  std::size_t q_consecutive = 10;    ///< Q
  std::size_t q_startup = 50;        ///< Qs

  BandwidthSampler inbound = BandwidthSampler::paper_inbound();
  BandwidthSampler outbound = BandwidthSampler::paper_outbound();
  /// Source: zero inbound, "much larger" outbound (seg/s).
  double source_outbound = 120.0;

  double warmup = 2.0;             ///< seconds of live dynamics before t=0
  double horizon = 150.0;          ///< give-up time after the last switch

  /// Start the run in the stable streaming phase instead of cold.
  ///
  /// The paper "lets the system run for a sufficient period of time to
  /// enter its stable phase" before switching, and describes that phase as
  /// one where "most nodes' data delivery rate cannot catch the media play
  /// rate": playback rides the reception frontier, and every node carries
  /// an undelivered backlog Q0 = head - frontier that grows with its
  /// overlay depth (Fig. 6's S1 finishing times of ~5-15 s at full-rate
  /// drain imply Q0 of roughly 75-200 segments, growing with scale).
  ///
  /// warm_start constructs exactly that state: the old source holds
  /// `history_seconds` of content; each peer has a solid prefix up to its
  /// playback cursor, which lags the head by base_lag_segments plus
  /// hop_lag_seconds of stream per overlay hop from the source; the lag
  /// window beyond the cursor is mostly missing with a `sparse_fill`
  /// random coverage (the light diversity a real mesh carries).  The
  /// warmup then runs live dynamics to settle queues before t = 0.
  bool warm_start = true;
  double history_seconds = 70.0;   ///< content generated before -warmup
  /// Stable-phase backlog calibration: Q0(N) ~ scale * N^exponent segments,
  /// fitted to the S1 finishing times the paper reports in Fig. 6
  /// (~5 s at N=100 up to ~14 s at N=8000 under full-rate drain).  The
  /// paper never states its stable-phase backlog directly; this is the
  /// documented calibration knob of the reproduction.  Fig. 5's linear
  /// drain from t=0 indicates the backlog is roughly uniform across nodes
  /// (not depth-correlated), which is what warm_start seeds.
  double stable_backlog_scale = 17.0;
  double stable_backlog_exponent = 0.25;
  double base_lag_segments = 10.0;  ///< additive minimum initial head lag
  double hop_lag_seconds = 0.0;     ///< optional extra per-hop lag (ablation)
  double sparse_fill = 0.30;        ///< coverage of the missing lag window
  double pending_timeout = 2.5;    ///< s before an unanswered request retries
  double accept_horizon = 2.0;     ///< max supplier backlog (s) to accept
  SupplierCapacityModel supplier_capacity = SupplierCapacityModel::kSharedFifo;
  /// Periods of inbound budget carry-over.  1.0 = the paper's model: a node
  /// can receive at most I*tau segments per scheduling period (Fig. 2's
  /// premise "can receive 7 ... but 10 available" requires the budget to
  /// bind; banking unused budget would dissolve the S1/S2 contention the
  /// switch algorithms arbitrate).
  double budget_carry = 1.0;

  double churn_leave_fraction = 0.0;  ///< per period (dynamic runs: 0.05)
  double churn_join_fraction = 0.0;   ///< per period (dynamic runs: 0.05)

  /// Switch discovery also spreads via per-source buffer-map headers (one
  /// hop per exchange); segment metadata always announces it.
  bool discover_via_maps = true;
  /// Randomize tick phase within the period (desynchronized clients);
  /// ticks are lockstep at period boundaries when false.  Phases are drawn
  /// per *shard* (see tick_shard_size), not per peer, so the schedule is
  /// identical under both dispatch modes.
  bool stagger_ticks = true;
  /// Batched tick dispatch: sweep each shard's peers with one simulator
  /// event per period (sim::BatchTicker) instead of one PeriodicTask per
  /// peer.  Pure mechanism: fixed-seed metrics are bit-identical with the
  /// flag on or off (enforced by stream_determinism_test); only the event
  /// count and the scheduling overhead change.
  bool batch_dispatch = false;
  /// Timing-wheel event plane: back each event-queue shard with a
  /// hierarchical timing wheel (near wheel quantized at tau, coarser
  /// overflow wheel, far-horizon spill heap; see sim/timing_wheel.hpp)
  /// instead of a binary heap — amortized O(1) schedule/cancel, O(bucket)
  /// pops.  Pure mechanism like batch_dispatch: each bucket drains through
  /// a stable (time, sequence) sort, so pop order — and every fixed-seed
  /// metric — is bit-identical with the flag on or off at every shard
  /// count (enforced by stream_determinism_test and the sim_property_test
  /// backend-equivalence property); only schedule/pop cost and the wheel
  /// telemetry (EngineStats::events_wheeled / wheel_overflow_promotions /
  /// spill_heap_peak) change.
  bool timing_wheel = true;
  /// Peers per tick shard: peers [s*size, (s+1)*size) share one stagger
  /// phase and, under batch_dispatch, one sweep event.  Shared by both
  /// dispatch modes so they produce the same schedule; must be >= 1.
  /// Under parallel_shards this is also the parallel grain: one sweep's
  /// members are planned concurrently, so larger shards amortise the
  /// fork/join cost (scale runs want 128-512).
  std::size_t tick_shard_size = 16;
  /// Sharded parallel simulation core.  0 = the classic single-threaded
  /// path.  P >= 1 splits the pending-event set into per-shard queues
  /// (deliveries routed by target peer id, merged deterministically by
  /// (time, sequence)), forces batch_dispatch on, and runs every tick
  /// sweep through a three-phase pipeline on up to P lanes of
  /// util::global_pool():
  ///   pre    sequential, member order — every cross-peer-visible write
  ///          (availability adverts, boundary learning, playback/metrics);
  ///   plan   parallel, read-only — candidate build + strategy scheduling
  ///          (the dominant tick cost), speculated against the pre-sweep
  ///          transfer plane; writes only the member's own rng and slot;
  ///   commit sequential, member order — requests, capacity commits and
  ///          counters drain in the deterministic order; a member whose
  ///          supplier backlog an earlier member changed is re-planned
  ///          (rng rolled back) against the live plane.
  /// Pure mechanism like batch_dispatch: fixed-seed metrics are
  /// bit-identical for every shard count, including 0 (enforced by
  /// stream_determinism_test); only wall-clock and the shard diagnostics
  /// change.
  std::size_t parallel_shards = 0;
  /// Parallel delivery wave of the sharded core (parallel_shards > 0
  /// only).  Consecutive delivery events are popped as one batch
  /// (Simulator::enable_batch_pop), buffer writes run as a parallel wave
  /// of per-shard delivery lists, availability deltas are staged into
  /// per-lane journals and merged per owning shard, and same-timestamp
  /// tick sweeps of different groups collapse into one super-batched
  /// pipeline pass (BatchTicker::on_batch).  Pure mechanism like
  /// parallel_shards itself: fixed-seed metrics are bit-identical with the
  /// wave on or off at every shard count (enforced by
  /// stream_determinism_test); only wall clock and the drain diagnostics
  /// (EngineStats::delivery_batches / delta_journal_merges /
  /// superbatch_sweeps) change — plus, in the one batch where the
  /// experiment completes, the tail diagnostics events_popped and
  /// index_updates: the run's final batch is popped whole, so items behind
  /// the completing delivery count as popped (their ordered bookkeeping is
  /// skipped exactly like the inline stop skips them, keeping every metric
  /// and compared counter identical).  Automatically disabled when
  /// push_fresh_segments is on (push reads neighbour buffers and schedules
  /// transfers per delivery, which requires the inline pop order).
  bool parallel_delivery = true;
  /// Parallel commit + book passes of the sharded core (parallel_shards > 0
  /// only; default on, like parallel_delivery).  Closes the pipeline's last
  /// sequential fractions:
  ///   commit  members of a sweep wave whose plans touch disjoint supplier
  ///           sets commute, so the wave builds a supplier-contention graph
  ///           (contention set = the alive-neighbour set the staleness check
  ///           reads), colours it with a layered greedy colouring — a
  ///           member's colour exceeds every earlier conflicting member's,
  ///           so class-by-class execution respects the sequential
  ///           write/read order — and runs each colour class's tick_commit
  ///           on ThreadPool lanes with deliveries staged per member;
  ///           members whose speculation went stale mid-class drain through
  ///           a sequential fixup queue (the replan path generalised), and a
  ///           final member-order drain replays the staged delivery events
  ///           and deferred counters so event sequence numbers match the
  ///           sequential commit exactly;
  ///   book    deliver_bookkeeping splits into a parallel per-target-shard
  ///           phase (buffer marks, playback advance, per-peer counters and
  ///           flags, journalled boundary/availability deltas) plus a short
  ///           sequential tail that replays the batch's metric pushes and
  ///           wire counters in global pop order via a stable per-batch sort
  ///           of the logged events — restoring the exact metric-push and
  ///           experiment-stop interleaving.
  /// Pure mechanism like parallel_delivery: fixed-seed metrics are
  /// bit-identical with the flag on or off at every shard count (enforced
  /// by stream_determinism_test); only wall clock and the commit-wave
  /// diagnostics (EngineStats::commit_colour_classes / conflict fixups /
  /// parallel commits / books) change.
  bool parallel_commit = true;
  /// kTokenBucket burst depth in segments (>= 1; 1 degenerates to
  /// kSharedFifo's serialised spacing).
  double token_bucket_burst = 4.0;
  /// Million-peer memory plane.  Per-tick-hot peer scalars always live in
  /// the engine's struct-of-arrays PeerPool; this flag additionally swaps
  /// the per-peer node-based containers for flat ones — the stream buffer's
  /// deque + unordered_map become a fixed ring + open-addressed map, the
  /// pending-request book and the playback arrival record lose their heap
  /// nodes — and backs the sequential tick plan's supplier lists with a
  /// per-tick bump arena.  Pure mechanism like batch_dispatch: fixed-seed
  /// metrics are bit-identical with the flag on or off at every shard count
  /// (enforced by stream_determinism_test); only memory layout and
  /// allocation traffic change (see EngineStats::bytes_per_peer and bench
  /// BM_MillionPeer).
  bool peer_pool = false;
  /// Flash-crowd scenario: this many extra peers join at a uniform pace
  /// over [flash_crowd_start, flash_crowd_start + flash_crowd_duration)
  /// (seconds, experiment time — the first switch is at 0, so the defaults
  /// land the crowd right on a source switch).  0 disables.  Joins run
  /// through the regular churn join path (membership, ping sampling,
  /// neighbour-derived start point), so the scenario composes with every
  /// other flag and stays deterministic for a fixed seed.
  std::size_t flash_crowd_joins = 0;
  double flash_crowd_start = 0.5;
  double flash_crowd_duration = 2.0;
  /// Incremental availability plane: maintain each peer's merged view of
  /// neighbour availability (per-segment supplier counts, cached head,
  /// cached boundary max) by deltas pushed from deliveries, evictions,
  /// churn and boundary learning, instead of rescanning every neighbour's
  /// buffer each tick.  Pure mechanism like batch_dispatch: fixed-seed
  /// metrics are bit-identical with the flag on or off (enforced by
  /// stream_determinism_test); only the scan work changes (see
  /// EngineStats::availability_probes and bench BM_BuildCandidates).
  bool incremental_availability = false;
  /// Windowed availability views (requires incremental_availability):
  /// re-keys each view's supplier counts onto a sliding window anchored at
  /// the peer's playback cursor, bounding per-view memory at
  /// O(buffer_capacity) instead of O(total stream length) — the 10^5+-peer
  /// long-run configuration.  Pure mechanism: fixed-seed metrics are
  /// bit-identical with the flag on or off (enforced by
  /// stream_determinism_test); the window slides in the tick pre phase and
  /// reconstructs the entering range exactly from neighbour buffers.
  bool windowed_availability = false;
  /// The plan work-set plane (PR 10).  Two coupled mechanisms behind one
  /// switch, both "identical metrics, less work" like timing_wheel:
  ///   - the quiescence gate: under incremental availability the index
  ///     tracks each view's missing ∧ supplied word count and mirrors the
  ///     zero/nonzero state into PeerPool::has_work, and tick_plan skips
  ///     the whole NeighborScan + candidate build for peers whose lane
  ///     reads 0.  tick_plan returns before any strategy rng draw when the
  ///     candidate list is empty, so a correct gate is rng-neutral and
  ///     fixed-seed metrics stay bit-identical (enforced by
  ///     stream_determinism_test at shards 0/1/4/7);
  ///   - the neighbour-major candidate build: build_candidates collects
  ///     the missing-and-supplied ids first, then enumerates suppliers
  ///     neighbour-outer, hoisting each neighbour's rate and queue-delay
  ///     lookups once per plan instead of once per (segment, neighbour)
  ///     probe — same candidates, same supplier order, same probe
  ///     accounting, a fraction of the random memory traffic.
  /// With the flag off both paths revert to the exact pre-gate code.
  bool plan_gate = true;
  /// Maintain the availability index in gate-only mode under the *legacy*
  /// rescan scheduler (incremental_availability off) so the plan gate can
  /// fire there too.  Off by default: it adds index upkeep to a mode whose
  /// point is measuring the rescan cost (bench_ablation_availability).
  bool plan_gate_legacy = false;
  /// Debug cross-check: re-run the full candidate build for every gated
  /// peer and GS_CHECK the result is empty.  Costs what the gate saves;
  /// wired into the ASan/UBSan CI job and the PlanGate recheck tests.
  bool plan_gate_recheck = false;
  /// Charge availability gossip as BufferMapDelta exchanges (changed-bit
  /// runs + base shift) instead of full 620-bit maps, with a full-map
  /// refresh every map_refresh_period adverts and whenever the delta would
  /// not beat the full map.  Accounting-model change: the overhead-ratio
  /// metric drops by design; everything else stays bit-identical.
  /// Requires incremental_availability.
  bool delta_maps = false;
  /// Adverts between full-map refreshes under delta_maps (>= 1; 1 sends
  /// full maps every period, i.e. the paper's accounting).
  std::size_t map_refresh_period = 10;
  /// GridMedia-style extension: relay freshly received segments to random
  /// neighbours without a request (costs data bits; adds redundancy).
  bool push_fresh_segments = false;
  std::size_t push_fanout = 2;
  /// CDN-assisted fast switch (FCC-style patch source; see
  /// stream/cdn_assist.hpp).  On each source switch a capacity-limited CDN
  /// node serves the head of the new session to peers whose gossip
  /// suppliers have not caught up: after the gossip scheduler spends its
  /// tick budget, an assisted peer requests its missing prefix ids from the
  /// CDN with whatever inbound budget is left (so the patch stream never
  /// displaces scheduled gossip pulls, it fills the idle remainder of the
  /// peer's inbound link).  A per-peer controller pauses the burst when the
  /// buffered lead reaches cdn_assist_pause_s, resumes it under
  /// cdn_assist_resume_s, and hands off to the swarm once every missing
  /// patch-window id has an alive gossip supplier.  Unlike the mechanism
  /// flags above this changes the dynamics *by design* — switch latency
  /// drops at a CDN byte-cost (see bench_ablation_cdn_assist) — but with
  /// the flag off the plane is never constructed and all fixed-seed
  /// metrics stay bit-identical across every existing flag combination,
  /// and with it on they are still bit-identical at every shard count
  /// (both enforced by stream_determinism_test).
  bool cdn_assist = false;
  double cdn_assist_rate = 120.0;       ///< CDN uplink capacity (segments/s)
  double cdn_assist_latency_ms = 40.0;  ///< fixed server latency (no jitter)
  double cdn_assist_horizon = 2.0;      ///< max CDN backlog (s) to accept
  double cdn_assist_pause_s = 3.0;      ///< buffered lead that pauses a burst
  double cdn_assist_resume_s = 1.0;     ///< lead that resumes a paused burst
  /// Patch window cap in segments (0 = the whole Qs startup prefix).
  std::size_t cdn_assist_span = 0;

  /// Ping sampling for joiners (matches net::TraceSynthesisOptions).
  double join_ping_min_ms = 10.0;
  double join_ping_shape = 1.6;
  double join_ping_cap_ms = 800.0;

  /// Target neighbour count M maintained by the membership protocol.
  std::size_t membership_degree = 5;

  /// Record a per-period global health series (lag, throughput) for
  /// diagnostics; negligible cost, off by default.
  bool debug_series = false;

  gossip::WireFormat wire{};
  std::uint64_t seed = 1;
};

/// Aggregate engine statistics (diagnostics; not paper metrics).
struct EngineStats {
  std::uint64_t segments_generated = 0;
  std::uint64_t segments_delivered = 0;
  std::uint64_t segments_pushed = 0;
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t duplicates = 0;
  std::size_t joins = 0;
  std::size_t leaves = 0;
  /// Ticks where the scheduler saw an active old/new split.
  std::uint64_t split_ticks = 0;
  /// Requests issued for old-stream / new-stream segments during splits.
  std::uint64_t old_stream_requests = 0;
  std::uint64_t new_stream_requests = 0;
  /// Simulator events popped over the whole run (dispatch-cost diagnostic:
  /// batch_dispatch lowers this without changing any other stat).
  std::uint64_t events_popped = 0;
  /// Supplier-membership probes during candidate build — one per (visited
  /// segment, neighbour) pair.  The candidate-scan cost diagnostic:
  /// incremental_availability lowers it without changing any paper metric.
  std::uint64_t availability_probes = 0;
  /// Availability-index delta events applied (incremental mode only).
  std::uint64_t index_updates = 0;
  /// Plan-gate diagnostics (config_.plan_gate): member ticks whose
  /// candidate build was skipped because the work lane read quiescent,
  /// ticks that did build a non-empty candidate list, and gated ticks
  /// cross-checked by the debug recheck (plan_gate_recheck).
  std::uint64_t plans_gated = 0;
  std::uint64_t plans_built = 0;
  std::uint64_t gate_rechecks = 0;
  /// Full-map / delta adverts sent under delta_maps accounting.
  std::uint64_t full_map_adverts = 0;
  std::uint64_t delta_adverts = 0;
  /// Sharded-core diagnostics (parallel_shards > 0 only): sweeps run
  /// through the three-phase pipeline, member ticks planned in the parallel
  /// phase, and how many of those were re-planned at commit because an
  /// earlier member's capacity commit invalidated the speculation.
  std::uint64_t parallel_sweeps = 0;
  std::uint64_t planned_ticks = 0;
  std::uint64_t replanned_ticks = 0;
  /// Events routed into a foreign shard's queue (cross-shard outbox
  /// traffic; see Simulator::cross_shard_scheduled).
  std::uint64_t cross_shard_events = 0;
  /// Parallel-delivery diagnostics (parallel_shards > 0 with
  /// parallel_delivery only): multi-event delivery runs drained through
  /// the wave pipeline, availability deltas merged from the per-lane
  /// journals, and same-timestamp sweep runs collapsed into one
  /// super-batched pipeline pass.
  std::uint64_t delivery_batches = 0;
  std::uint64_t delta_journal_merges = 0;
  std::uint64_t superbatch_sweeps = 0;
  /// Commit-wave diagnostics (parallel_shards > 0 with parallel_commit
  /// only): colour classes executed across all commit waves, members
  /// committed on parallel lanes, members that went stale mid-class and
  /// drained through the sequential fixup queue (a subset of
  /// replanned_ticks), and delivery batches drained through the split
  /// book pass.
  std::uint64_t commit_colour_classes = 0;
  std::uint64_t commit_conflict_fixups = 0;
  std::uint64_t parallel_commits = 0;
  std::uint64_t parallel_books = 0;
  /// Lane-arena telemetry (parallel_shards > 0): heap chunks the per-lane
  /// plan arenas ever allocated; the chunk total frozen when the adaptive
  /// warm-up fence armed (after >= 16 parallel sweeps AND 16 consecutive
  /// sweeps with no chunk growth — 0 means the fence never armed, i.e. the
  /// arenas never went quiet); and the chunks allocated after the fence —
  /// the steady-state count the zero-allocation claim is measured by
  /// (exactly 0 once armed; counter-verified in stream_determinism_test).
  std::uint64_t arena_chunks = 0;
  std::uint64_t arena_warm_chunks = 0;
  std::uint64_t arena_steady_chunks = 0;
  /// Timing-wheel event plane (timing_wheel only; zeros on the heap
  /// backend): events scheduled through the wheels, entries promoted from
  /// the overflow wheel / spill heap into finer levels as the horizon
  /// advanced, and the spill heap's peak occupancy (max across shards).
  /// Pure-mechanism telemetry: the wheel changes no metric, only where
  /// entries wait and what schedule/pop cost.
  std::uint64_t events_wheeled = 0;
  std::uint64_t wheel_overflow_promotions = 0;
  std::uint64_t spill_heap_peak = 0;
  /// Flash-crowd joiners admitted (subset of `joins`).
  std::size_t flash_joins = 0;
  /// CDN-assist plane (cdn_assist only): patch segments / wire bytes the
  /// CDN served, requests bounced off its full backlog, (peer, switch)
  /// enrollments, coverage-driven handoffs, pause/resume controller
  /// transitions, and the mean seconds from enrollment to handoff (or
  /// assist end).
  std::uint64_t cdn_segments_served = 0;
  std::uint64_t cdn_bytes_served = 0;
  std::uint64_t cdn_requests_rejected = 0;
  std::size_t cdn_assisted_switches = 0;
  std::size_t cdn_handoffs = 0;
  std::uint64_t cdn_pauses = 0;
  std::uint64_t cdn_resumes = 0;
  double cdn_mean_assist_s = 0.0;
  /// Memory-plane telemetry, filled at the end of run(): heap bytes of all
  /// per-peer state (SoA pool + each node's containers), the same divided
  /// by the final peer count (NaN when there are no peers to divide by —
  /// absent telemetry, distinguishable from a genuine 0), and the
  /// process-wide peak RSS (0 when the platform offers no probe — report
  /// it as "n/a", not as 0 bytes; includes non-peer state by nature).
  std::uint64_t peer_state_bytes = 0;
  double bytes_per_peer = 0.0;
  std::uint64_t peak_rss_bytes = 0;
};

class Engine {
 public:
  /// `graph` is the initial overlay (already degree-repaired); `latency`
  /// must cover its nodes.  `strategy` is shared by all peers (stateless
  /// per call).
  Engine(net::Graph graph, net::LatencyModel latency, EngineConfig config,
         std::shared_ptr<SchedulerStrategy> strategy);

  /// Declares the serial source timeline: sources[k] streams session k;
  /// session 0 starts at -warmup; session k (k>=1) starts at
  /// switch_times[k-1] (strictly increasing, first one = 0).
  void set_sources(std::vector<net::NodeId> sources, std::vector<double> switch_times);

  /// Runs the whole experiment and returns per-switch metrics.
  [[nodiscard]] std::vector<SwitchMetrics> run();

  [[nodiscard]] const gossip::OverheadAccountant& overhead() const noexcept { return overhead_; }
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// One per-period sample of global pipeline health (debug_series only).
  struct DebugPoint {
    double time = 0.0;
    SegmentId head = kNoSegment;    ///< newest generated id
    double mean_cursor_gap = 0.0;   ///< head - playback cursor, averaged
    double mean_frontier_gap = 0.0; ///< head - first missing id, averaged
    double max_frontier_gap = 0.0;
    std::uint64_t delivered_this_period = 0;
    std::uint64_t requests_this_period = 0;
    std::uint64_t candidates_this_period = 0;
    std::uint64_t scheduled_this_period = 0;
    std::uint64_t old_req_this_period = 0;
    std::uint64_t new_req_this_period = 0;
  };
  [[nodiscard]] const std::vector<DebugPoint>& debug_series() const noexcept {
    return debug_series_;
  }
  [[nodiscard]] const PeerNode& peer(net::NodeId v) const;
  [[nodiscard]] std::size_t peer_count() const noexcept { return peers_.size(); }
  [[nodiscard]] const net::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const SegmentRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] const std::vector<Session>& sessions() const noexcept {
    return timeline_.sessions();
  }
  [[nodiscard]] const SwitchTimeline& timeline() const noexcept { return timeline_; }
  [[nodiscard]] const TransferPlane& transfers() const noexcept { return transfers_; }

 private:
  // --- setup / lifecycle (engine_lifecycle.cpp) ---
  void init_peers();
  void init_peer_state(PeerNode& p, net::NodeId v);
  void warm_start_state();
  /// Tick phase of peer `v`: its shard's stagger phase (0 when lockstep).
  [[nodiscard]] double tick_offset(net::NodeId v) const;
  /// `initial` peers join their shard's batch group; joiners get singleton
  /// groups (their grid starts at the join time, not the run start).
  void start_peer_tick(PeerNode& p, bool initial);
  void start_debug_series();
  net::NodeId handle_join();
  void handle_leave(net::NodeId v);
  void churn_step(double now);

  // --- orchestration (engine.cpp) ---
  void start_session(SessionIndex k);
  void schedule_switch(int switch_index);
  void generate_segment(SessionIndex k, double now);

  // --- per-tick pipeline ---
  /// Legacy-mode neighbour scan scratch: the one shared pass of
  /// snapshot_and_learn leaves the alive neighbours (graph order) and their
  /// max held id for build_candidates.  Sequential ticks reuse scan_seq_;
  /// parallel sweeps keep one slot per member so plans can run
  /// concurrently.
  struct NeighborScan {
    std::vector<net::NodeId> alive;
    SegmentId head = kNoSegment;
    net::NodeId owner = 0;
  };
  /// A delivery issued under the commit wave's stage mode: the capacity
  /// commit and the jitter draw already happened on the lane; only the
  /// simulator event is deferred, posted by the final member-order drain so
  /// event sequence numbers match the sequential commit exactly.
  struct StagedDelivery {
    SegmentId id = kNoSegment;
    double deliver_at = 0.0;
  };
  /// One tick's speculative plan: the candidate build and the strategy's
  /// request list, computed in the parallel phase against the pre-sweep
  /// transfer plane, plus everything needed to commit (or roll back and
  /// re-plan) deterministically.  Global counters touched by planning are
  /// deferred here and drained at commit.
  struct TickPlan {
    bool live = false;     ///< tick_pre ran (alive non-source member)
    bool planned = false;  ///< the budget allowed a candidate build
    bool gated = false;    ///< the plan gate skipped the candidate build
    util::Rng rng_before;  ///< p.rng before planning (restored on re-plan)
    /// capacity_commits_ when the plan was derived: commits stamped later
    /// than this are the ones the plan could not have observed.
    std::uint64_t stamp = 0;
    /// The old/new split the strategy planned under (commit charges the
    /// split stats from here, so they always describe the ctx that was
    /// actually scheduled).
    bool split_active = false;
    SegmentId s1_end = kNoSegment;
    std::vector<CandidateSegment> candidates;
    std::vector<ScheduledRequest> requests;
    std::uint64_t probes = 0;  ///< deferred EngineStats::availability_probes
    // --- commit-wave state (config_.parallel_commit only) ---
    /// Stage mode: tick_commit runs on a lane — deliveries are staged into
    /// `staged`, every global counter/event side effect is deferred to the
    /// wave's final drain, and a stale plan only raises `fixup` instead of
    /// re-planning in place.
    bool stage = false;
    /// Set by a staged stale commit; the per-class fixup drain re-plans and
    /// re-commits this member sequentially after the class barrier.
    bool fixup = false;
    /// Deferred EngineStats::requests_issued / requests_rejected (and the
    /// per-request overhead charge rides on `issued`).
    std::uint32_t issued = 0;
    std::uint32_t rejected = 0;
    /// dirty_supplier_ stamp this member's capacity commits write under
    /// stage mode: wave base + 1 + member index — deterministic, and for
    /// every `> stamp` staleness comparison equivalent to the sequential
    /// ++capacity_commits_ value.
    std::uint64_t commit_stamp = 0;
    std::vector<StagedDelivery> staged;
    /// Candidate-list arena of the lane that planned this member (null =
    /// heap).  Fixup re-plans reuse it on the drain thread; lanes reset at
    /// wave start only, so same-lane plans coexist until commit.
    util::Arena* arena = nullptr;
  };

  void tick(PeerNode& p, double now);
  /// Phase 1: budget replenish, availability exchange, pending prune,
  /// playback — every tick effect another peer (or the timeline) can
  /// observe.  False when the peer does not tick (source / dead).
  bool tick_pre(PeerNode& p, double now, NeighborScan& scan);
  /// Phase 2: candidate build + strategy scheduling into `plan`.  Reads
  /// shared state, writes only `plan` and p.rng — safe to run concurrently
  /// for distinct peers while nothing mutates.
  void tick_plan(PeerNode& p, double now, const NeighborScan& scan, TickPlan& plan);
  /// Phase 3: drains the plan in deterministic order — counters, request
  /// issue with rejection fallback, capacity commits.  With `validate`, a
  /// plan whose supplier set was dirtied earlier in the sweep is re-planned
  /// against the live transfer plane (rng rolled back first).
  void tick_commit(PeerNode& p, double now, const NeighborScan& scan, TickPlan& plan,
                   bool validate);
  /// Could a commit the plan did not observe have changed a queue delay it
  /// read?  Conservative: any alive neighbour's uplink committed to after
  /// the plan's stamp counts (only supplier-keyed capacity models can
  /// conflict — per-link state is requester-local).
  [[nodiscard]] bool plan_is_stale(const PeerNode& p, const NeighborScan& scan,
                                   const TickPlan& plan) const;
  /// The sharded sweep driver: pre in member order, plan on the pool,
  /// commit in member order (see EngineConfig::parallel_shards).
  void run_parallel_sweep(const std::vector<std::uint32_t>& members, double now);
  /// Availability exchange bookkeeping + boundary discovery.  Legacy mode
  /// walks the neighbours once into `scan` (one shared pass serving the
  /// exchange accounting, boundary discovery and build_candidates);
  /// incremental mode reads the maintained view instead.
  void snapshot_and_learn(PeerNode& p, NeighborScan& scan);
  /// Charges one availability advert from `p` to its `receivers` alive
  /// neighbours under delta_maps accounting (delta or periodic full map).
  void advert_availability(PeerNode& p, std::size_t receivers);
  void build_candidates(PeerNode& p, double now, const NeighborScan& scan, TickPlan& plan);
  /// Debug cross-check for the plan gate (config_.plan_gate_recheck): runs
  /// the full candidate build for a gated-out peer on scratch state and
  /// GS_CHECKs that it really had nothing schedulable.
  void recheck_gate(PeerNode& p, double now, const NeighborScan& scan);
  /// Issues one scheduled request.  Inline mode (plan.stage false) posts the
  /// delivery event and bumps the global counters directly; stage mode
  /// stages the delivery into the plan, stamps dirty_supplier_ with
  /// plan.commit_stamp and defers the counters (see TickPlan).
  bool issue_one(PeerNode& p, SegmentId id, net::NodeId supplier, double now, TickPlan& plan);
  /// The commit wave (config_.parallel_commit): colours wave members
  /// [base, base + count) of the sweep by supplier contention, runs each
  /// colour class's tick_commit on pool lanes with per-class sequential
  /// fixup drains, then replays staged deliveries, deferred counters and
  /// CDN ticks in member order (see EngineConfig::parallel_commit).
  void commit_wave(const std::vector<std::uint32_t>& members, std::size_t base,
                   std::size_t count, std::size_t lanes, double now);

  // --- CDN assist (config_.cdn_assist) ---
  /// Runs after tick_commit: computes the controller's view of `p` (switch
  /// eligibility, rest play time, gossip coverage of the patch window) and
  /// requests missing prefix ids from the CDN with the tick's leftover
  /// inbound budget.
  void cdn_assist_tick(PeerNode& p, double now);
  /// Every missing id in [begin, end] has at least one alive neighbour
  /// holding it.  Probes neighbour buffers directly in all availability
  /// modes so legacy / incremental / windowed runs agree bit for bit.
  [[nodiscard]] bool cdn_window_covered(const PeerNode& p, SegmentId begin,
                                        SegmentId end) const;
  void on_cdn_delivery(net::NodeId to, SegmentId id);

  // --- data path ---
  void on_delivery(net::NodeId to, SegmentId id);
  void deliver_segment(PeerNode& p, SegmentId id, double now, bool count_wire);
  /// Everything after the buffer write and availability deltas of a fresh
  /// delivery: wire accounting, boundary learning, switch progress,
  /// playback.  Split out so the batched drain can run it per delivery in
  /// pop order after the parallel mark wave.
  void deliver_bookkeeping(PeerNode& p, SegmentId id, double now, bool count_wire);
  void push_to_neighbors(PeerNode& p, SegmentId id, double now);

  // --- parallel delivery wave (config_.parallel_delivery) ---
  //
  // A batched run of delivery events (TransferPlane::set_delivery_batch)
  // drains in three passes that reproduce the inline pop sequence exactly:
  //   mark    parallel per target-peer shard — pending erase + buffer
  //           writes for peers with a single delivery in the run (their
  //           bookkeeping sees exactly the state the inline order would
  //           produce; multi-delivery peers defer the mark so their
  //           bookkeeping interleaves marks per delivery), with
  //           availability deltas staged into per-(lane, owner-shard)
  //           journals;
  //   book    sequential, pop order — duplicates/wire counters, boundary
  //           learning, switch progress and playback, i.e. every globally
  //           ordered side effect (metric pushes, experiment completion);
  //   merge   parallel per owning shard — each lane applies the journalled
  //           availability deltas of the views its shard owns (source-lane
  //           order; per-owner delta streams stay ordered, cross-owner
  //           deltas commute), then dirty cached heads are recomputed
  //           sequentially from the settled buffers.
  void on_delivery_batch(const sim::PooledBatchItem* items, std::size_t count);
  /// Stages one delivery's availability deltas (gain + optional eviction)
  /// into the journal row of `source_shard` (data_shards_ = the
  /// sequential bookkeeping row).
  void emit_view_deltas(net::NodeId owner, SegmentId gained, SegmentId evicted,
                        std::size_t source_shard);

  // --- split book pass (config_.parallel_commit with the delivery wave) ---
  //
  // deliver_bookkeeping splits into a parallel per-target-shard phase and a
  // sequential tail.  The phase runs every per-peer effect (buffer mark,
  // boundary learning with journalled deltas, switch progress, playback)
  // with book_phase_ set, which reroutes the globally ordered side effects
  // — metric pushes, wire counters, experiment completion — into per-shard
  // BookEvent logs keyed by the batch item being drained.  The tail
  // stable-sorts the logged events by item (within an item they are already
  // in call order: one item's events land in one shard's log back to back)
  // and replays them in global pop order, stopping at the completing item
  // exactly like the inline pop loop, and un-setting the finished/prepared
  // flags any post-stop phase work raised so the end-of-run censoring sees
  // the inline state.
  /// One deferred globally-ordered side effect of the book phase.
  struct BookEvent {
    enum class Kind : std::uint8_t { kFinish, kPrepared, kS2Start };
    std::uint32_t item = 0;  ///< batch item (pop order) that produced it
    Kind kind = Kind::kFinish;
    int sw = 0;              ///< switch index
    net::NodeId peer = 0;
    double time = 0.0;       ///< playback/wall time to push (pre-offset)
  };
  /// The parallel phase + sequential tail drain of one delivery batch;
  /// replaces the mark/book passes of on_delivery_batch when
  /// parallel_commit is on.  `lanes` = pool lanes of the wave.
  void book_split_drain(const sim::PooledBatchItem* items, std::size_t count,
                        std::size_t lanes);

  /// One journalled availability delta: apply a gain/evict of `id` — or,
  /// under the split book pass, a boundary raise to `id` (the boundary
  /// index rides in the id field; max-monotone, so boundary deltas commute
  /// with everything) — to views_[view] (owned by shard view % data_shards_).
  struct ViewDelta {
    enum class Kind : std::uint8_t { kGain, kEvict, kBoundary };
    net::NodeId view = 0;
    SegmentId id = kNoSegment;
    Kind kind = Kind::kGain;
  };
  /// Per-delivery outcome of the mark pass.
  enum class MarkOutcome : std::uint8_t {
    kDead,      ///< target left while the segment was in flight
    kDeferred,  ///< multi-delivery peer: mark happens in the book pass
    kDuplicate,
    kFresh,
  };

  // --- switch bookkeeping ---
  void learn_boundaries(PeerNode& p, int up_to, double now);
  void on_switch_progress(PeerNode& p, SegmentId id, double now);
  void maybe_release_gate(PeerNode& p, double now);
  void maybe_start_playback(PeerNode& p, double now);
  void advance_playback(PeerNode& p, double now);
  void record_finish(PeerNode& p, int switch_index, double play_time);
  void record_prepared(PeerNode& p, int switch_index, double now);
  void check_experiment_complete();

  [[nodiscard]] std::size_t required_prefix(int switch_index) const {
    return timeline_.required_prefix(switch_index, config_.q_startup);
  }

  net::Graph graph_;
  net::LatencyModel latency_;
  EngineConfig config_;
  /// Scheduler-strategy registry: peers carry a one-byte index into this
  /// table (see PeerNode::strategy_index) instead of a shared_ptr each.
  /// Entry 0 is the injected strategy; heterogeneous policies are an
  /// extra push_back.
  std::vector<std::shared_ptr<SchedulerStrategy>> strategies_;

  sim::Simulator sim_;
  gossip::OverheadAccountant overhead_;
  gossip::MembershipProtocol membership_;
  SegmentRegistry registry_;
  TransferPlane transfers_;
  SwitchTimeline timeline_;
  /// Incremental per-peer neighbour-availability views
  /// (config_.incremental_availability; disabled and empty otherwise).
  AvailabilityIndex availability_;
  /// CDN patch-source plane (config_.cdn_assist; null otherwise, so the
  /// disabled engine is byte-for-byte the pre-CDN engine).
  std::unique_ptr<CdnAssistPlane> cdn_;

  std::vector<PeerNode> peers_;
  /// Struct-of-arrays hot peer state; every element of peers_ is bound to
  /// its slot here (see peer_pool.hpp).
  PeerPool pool_;

  /// Sequential tick scratch (single-threaded dispatch paths).
  NeighborScan scan_seq_;
  TickPlan plan_seq_;
  /// Per-tick bump arena behind the sequential plan's supplier lists
  /// (config_.peer_pool with parallel_shards == 0; the arena is
  /// single-threaded, so parallel plan lanes keep heap allocation).  Reset
  /// at the top of every sequential plan — prior plans are dead by then.
  util::Arena plan_arena_;
  bool use_plan_arena_ = false;
  /// Advert scratch: build_map_into target reused across all peers' adverts
  /// (swapped with p.advertised_map under delta accounting).
  gossip::BufferMap advert_scratch_;
  /// Per-member slots for the sharded sweep pipeline (parallel_shards > 0);
  /// sized to the largest sweep seen and reused.
  std::vector<NeighborScan> batch_scans_;
  std::vector<TickPlan> batch_plans_;
  /// dirty_supplier_[v] = value of capacity_commits_ when v's uplink was
  /// last committed to (the plan-staleness test compares it against the
  /// plan's stamp).  Sized only in parallel mode; empty otherwise.
  std::vector<std::uint64_t> dirty_supplier_;
  /// Monotone count of capacity commits (parallel mode only).
  std::uint64_t capacity_commits_ = 0;

  /// Parallel delivery wave state (sized only when the wave is active).
  /// Peer/view ownership shard = id % data_shards_ (0 = wave inactive).
  std::size_t data_shards_ = 0;
  /// Journal row-major layout: journal of (source s, owning shard t) at
  /// s * data_shards_ + t; source data_shards_ is the sequential book
  /// pass.  Buckets keep their capacity across batches.
  std::vector<std::vector<ViewDelta>> delta_journals_;
  /// Per target-peer shard: indices into the current batch, pop order.
  std::vector<std::vector<std::uint32_t>> shard_entries_;
  /// Views whose cached head an eviction invalidated, per owning shard.
  std::vector<std::vector<net::NodeId>> dirty_views_;
  /// Deltas applied per merge lane (summed into availability updates).
  std::vector<std::uint64_t> lane_merges_;
  std::vector<MarkOutcome> batch_outcomes_;
  /// Per-peer delivery multiplicity of the current batch, saturating at 2
  /// (all the mark wave needs is single vs multi).  A flat byte per peer —
  /// no hashing on the drain hot path; entries touched by a batch are
  /// zeroed from its item list when the drain finishes.
  std::vector<std::uint8_t> batch_peer_count_;
  /// deliver_segment availability routing: journal into the sequential
  /// book row instead of applying inline (set during the book pass).
  bool journal_deltas_ = false;

  // --- commit wave + split book state (config_.parallel_commit) ---
  /// One bump arena per pool lane for the plan wave's candidate lists
  /// (parallel_shards > 0; replaces the parallel lanes' heap fallback).
  /// All lanes reset on the caller thread at wave start — never mid-wave,
  /// since a lane's earlier plans must survive to their commit.  Arena is
  /// pinned (non-movable), hence the unique_ptr pool.
  std::vector<std::unique_ptr<util::Arena>> lane_arenas_;
  /// Layered supplier-contention colouring scratch, reused across waves.
  CommitColouring colouring_;
  /// Class-bucketed wave slots: class_slots_[colour] lists the wave slots
  /// of that colour in member order (buckets keep capacity across waves).
  std::vector<std::vector<std::uint32_t>> class_slots_;
  /// Per-target-shard BookEvent logs of the split book pass (+1 spare row
  /// unused; sized with shard_entries_) and the merged replay buffer.
  std::vector<std::vector<BookEvent>> book_events_;
  std::vector<BookEvent> book_merged_;
  /// book_current_item_[shard] = pop-order index of the item that shard's
  /// lane is draining (written by the owning lane before each item's phase
  /// work; read by the logging hooks on the same lane).
  std::vector<std::uint32_t> book_current_item_;
  /// Reroutes record_finish / record_prepared / the s2-start push into the
  /// BookEvent logs (set only for the duration of the parallel book phase).
  bool book_phase_ = false;
  /// Total lane-arena chunk allocations at the end of the warm-up window;
  /// EngineStats::arena_steady_chunks measures growth past this point.
  /// The fence is adaptive: it arms after at least 16 parallel sweeps AND
  /// 16 consecutive sweeps without chunk growth, and re-arms whenever
  /// growth resumes, so ramp-phase growth at any N stays inside the
  /// warm-up count (see run_parallel_sweep).
  std::uint64_t arena_warm_chunks_ = 0;
  bool arena_warm_marked_ = false;
  /// Adaptive-fence scratch: last observed chunk total and the count of
  /// consecutive sweeps it stayed flat.
  std::uint64_t arena_fence_last_chunks_ = 0;
  std::uint32_t arena_fence_quiet_sweeps_ = 0;

  std::vector<DebugPoint> debug_series_;
  std::unique_ptr<sim::PeriodicTask> debug_task_;
  std::uint64_t last_delivered_ = 0;
  std::uint64_t last_requests_ = 0;
  std::uint64_t candidates_seen_ = 0;
  std::uint64_t scheduled_seen_ = 0;
  std::uint64_t last_candidates_ = 0;
  std::uint64_t last_scheduled_ = 0;
  std::uint64_t last_old_req_ = 0;
  std::uint64_t last_new_req_ = 0;

  std::unique_ptr<sim::PeriodicTask> generation_task_;
  std::unique_ptr<sim::PeriodicTask> churn_task_;
  std::unique_ptr<sim::PeriodicTask> sampler_task_;
  /// Flash-crowd admission pump (config_.flash_crowd_joins > 0).
  std::unique_ptr<sim::PeriodicTask> flash_task_;
  std::size_t flash_joined_ = 0;

  /// Batched tick dispatch (config_.batch_dispatch only).
  std::unique_ptr<sim::BatchTicker> ticker_;
  /// shard index -> ticker group (initial peers only; kNoTickGroup until
  /// the shard's first non-source peer arms it).
  std::vector<std::size_t> shard_group_;

  util::Rng churn_rng_;
  util::Rng setup_rng_;

  EngineStats stats_;
  bool experiment_done_ = false;
};

}  // namespace gs::stream
