// Orchestration: the per-tick pipeline, the data path and the switch
// bookkeeping that spans subsystems.  Setup, churn and the run loop live in
// engine_lifecycle.cpp.
#include "stream/engine.hpp"

#include <algorithm>
#include <thread>

#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace gs::stream {

Engine::Engine(net::Graph graph, net::LatencyModel latency, EngineConfig config,
               std::shared_ptr<SchedulerStrategy> strategy)
    : graph_(std::move(graph)),
      latency_(std::move(latency)),
      config_(std::move(config)),
      sim_(-config_.warmup),
      overhead_(config_.wire),
      membership_(graph_, config_.membership_degree,
                  util::Rng(config_.seed).fork(util::hash_name("membership")), &overhead_),
      transfers_(sim_, latency_, config_.supplier_capacity, config_.accept_horizon,
                 [this](net::NodeId to, SegmentId id) { on_delivery(to, id); },
                 config_.token_bucket_burst),
      churn_rng_(util::Rng(config_.seed).fork(util::hash_name("churn"))),
      setup_rng_(util::Rng(config_.seed).fork(util::hash_name("setup"))) {
  GS_CHECK(strategy != nullptr);
  strategies_.push_back(std::move(strategy));
  // Timing-wheel event plane, quantized at the tick cadence: gossip sweeps
  // land on bucket boundaries and deliveries fill the current-period
  // bucket, so schedule_on is a bucket append and pops walk pre-sorted
  // buckets.  Must precede any scheduling; pop order (and every metric) is
  // bit-identical to the heap backend.
  if (config_.timing_wheel) sim_.enable_timing_wheel(config_.tau);
  // The per-tick arena is single-threaded; parallel plan lanes keep heap
  // allocation (their supplier lists get the null-arena fallback).
  use_plan_arena_ = config_.peer_pool && config_.parallel_shards == 0;
  GS_CHECK_EQ(latency_.node_count(), graph_.node_count());
  GS_CHECK(!config_.delta_maps || config_.incremental_availability)
      << "delta_maps requires incremental_availability";
  if (config_.parallel_shards > 0) {
    // The sweep is the parallel unit, so the sharded core rides on batched
    // dispatch (bit-identical to per-peer dispatch by PR 2's invariant).
    config_.batch_dispatch = true;
    // Every pop scans the shard heads, so queue shards beyond a few dozen
    // only add scan cost.  The clamp is a fixed constant (not hardware-
    // dependent) — routing never affects results, but keeping the layout
    // machine-independent keeps the cross_shard_events diagnostic portable.
    const std::size_t shards = std::min<std::size_t>(config_.parallel_shards, 64);
    // Shard 0 is the control queue (ticks, generation, churn, switches);
    // each peer's deliveries live on queue 1 + id % P.  The queue merges
    // heads by (time, global sequence), so routing never changes execution
    // order — only heap sizes and the cross-shard traffic diagnostic.
    sim_.enable_shards(1 + shards, [this, shards](const sim::EventSink& sink, std::uint64_t a,
                                                  std::uint64_t /*b*/) -> std::size_t {
      if (&sink == &transfers_) return 1 + static_cast<std::size_t>(a) % shards;
      return 0;
    });
    // The parallel delivery wave: consecutive delivery events pop as one
    // batch and drain through the mark/book/merge pipeline; same-timestamp
    // tick sweeps super-batch through BatchTicker::on_batch.  Fresh-segment
    // push reads neighbour buffers and schedules transfers per delivery,
    // which only the inline pop order reproduces — the wave stands down.
    if (config_.parallel_delivery && !config_.push_fresh_segments) {
      data_shards_ = shards;
      delta_journals_.resize((shards + 1) * shards);
      shard_entries_.resize(shards);
      dirty_views_.resize(shards);
      lane_merges_.assign(shards, 0);
      book_events_.resize(shards);
      book_current_item_.assign(shards, 0);
      transfers_.set_delivery_batch(
          [this](const sim::PooledBatchItem* items, std::size_t count) {
            on_delivery_batch(items, count);
          });
      sim_.enable_batch_pop(true);
    }
    // One bump arena per plan lane: the sweep's candidate supplier lists
    // stop falling back to the heap (the zero-allocation steady state now
    // covers the parallel lanes).  Arenas reset at wave starts only.
    const std::size_t lanes = std::min<std::size_t>(
        config_.parallel_shards, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
    lane_arenas_.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      lane_arenas_.push_back(std::make_unique<util::Arena>());
    }
  }
  GS_CHECK(!config_.windowed_availability || config_.incremental_availability)
      << "windowed_availability requires incremental_availability";
  if (config_.cdn_assist) {
    // The CDN uplink runs the engine's configured contention policy over
    // the plane's own state; its (non-batchable) delivery events route to
    // the control shard, popped in the global (time, sequence) order like
    // every other event.
    CdnAssistConfig cdn_config;
    cdn_config.rate = config_.cdn_assist_rate;
    cdn_config.latency_ms = config_.cdn_assist_latency_ms;
    cdn_config.accept_horizon = config_.cdn_assist_horizon;
    cdn_config.pause_lead_s = config_.cdn_assist_pause_s;
    cdn_config.resume_lead_s = config_.cdn_assist_resume_s;
    cdn_config.capacity = config_.supplier_capacity;
    cdn_config.token_bucket_burst = config_.token_bucket_burst;
    cdn_config.data_bits = config_.wire.data_bits();
    cdn_ = std::make_unique<CdnAssistPlane>(
        sim_, cdn_config, [this](net::NodeId to, SegmentId id) { on_cdn_delivery(to, id); });
  }
  // Warm-up traffic is outside the paper's measurement window.
  overhead_.set_enabled(false);
  // Degree-repair edges appear between existing peers deep inside
  // MembershipProtocol::leave; the availability views track them from here.
  // Join wiring also fires, before the joiner's PeerNode exists — those
  // edges are picked up wholesale by add_peer in handle_join.
  membership_.set_on_edge_added([this](net::NodeId u, net::NodeId v) {
    if (!availability_.maintained()) return;
    if (u >= peers_.size() || v >= peers_.size()) return;
    availability_.connect(peers_, u, v);
  });
}

void Engine::set_sources(std::vector<net::NodeId> sources, std::vector<double> switch_times) {
  timeline_.set_sources(graph_.node_count(), std::move(sources), std::move(switch_times));
}

const PeerNode& Engine::peer(net::NodeId v) const {
  GS_CHECK_LT(v, peers_.size());
  return peers_[v];
}

void Engine::start_session(SessionIndex k) {
  timeline_.session(static_cast<std::size_t>(k)).start_time = sim_.now();
  const double interval = 1.0 / config_.playback_rate;
  generation_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now(), interval, [this, k](double now) { generate_segment(k, now); });
}

void Engine::generate_segment(SessionIndex k, double now) {
  const SegmentId announce =
      k > 0 ? timeline_.session(static_cast<std::size_t>(k) - 1).last : kNoSegment;
  const SegmentId id = registry_.append(k, now, announce);
  Session& session = timeline_.session(static_cast<std::size_t>(k));
  if (session.first == kNoSegment) session.first = id;
  ++stats_.segments_generated;
  PeerNode& src = peers_[session.source];
  // Locally generated: fills the buffer/availability but is not wire data.
  deliver_segment(src, id, now, /*count_wire=*/false);
}

void Engine::schedule_switch(int switch_index) {
  sim_.at(timeline_.switch_times()[static_cast<std::size_t>(switch_index)],
          [this, switch_index] {
    const double now = sim_.now();
    timeline_.begin_switch(switch_index, now, registry_.next_id() - 1);
    generation_task_->cancel();

    if (switch_index == 0) overhead_.set_enabled(true);
    timeline_.capture_overhead(overhead_);

    SwitchMetrics& m = timeline_.metrics(switch_index);
    const Session& old = timeline_.session(static_cast<std::size_t>(switch_index));
    for (PeerNode& p : peers_) {
      if (p.is_source() || !p.alive()) continue;
      // A peer still mid-way through the previous switch is censored there.
      timeline_.censor_stale(p, switch_index);
      timeline_.init_switch_counters(p, switch_index, now, config_.q_startup);
      p.tracked() = true;
      ++m.tracked;
      // Rare: the peer already played past the old stream's end (it was at
      // the live head).  Its finish delay is zero by definition.
      if (p.playback.started() && p.playback.cursor() > old.last) {
        record_finish(p, switch_index, now);
      }
    }

    // The new source learns the boundary immediately (it is told when S1
    // stops; §3's synchronisation assumption).
    PeerNode& next_source =
        peers_[timeline_.session(static_cast<std::size_t>(switch_index) + 1).source];
    learn_boundaries(next_source, switch_index, now);

    start_session(switch_index + 1);
  });
}

// ---------------------------------------------------------------- tick ---
//
// One tick = pre + plan + commit.  The sequential dispatch paths run the
// three phases back to back per peer, which is byte-for-byte the historical
// tick; the sharded sweep (run_parallel_sweep) runs pre for every member in
// order, plans all members concurrently, then commits in order — with the
// plan-staleness check bridging the only cross-member data flow a sweep
// has (capacity commits feeding later members' queue-delay reads).

void Engine::tick(PeerNode& p, double now) {
  if (!tick_pre(p, now, scan_seq_)) return;
  // Sequential dispatch reuses one plan slot, so the prior tick's supplier
  // lists are dead and the arena can rewind before this tick's candidate
  // build fills it.  (Parallel waves reset their lane arenas at wave start
  // instead — a lane's earlier plans must survive to their commit.)
  if (use_plan_arena_) {
    plan_arena_.reset();
    plan_seq_.arena = &plan_arena_;
  }
  tick_plan(p, now, scan_seq_, plan_seq_);
  tick_commit(p, now, scan_seq_, plan_seq_, /*validate=*/false);
  if (cdn_) cdn_assist_tick(p, now);
}

bool Engine::tick_pre(PeerNode& p, double now, NeighborScan& scan) {
  if (!p.alive() || p.is_source()) return false;
  p.in_budget().replenish(config_.tau);
  snapshot_and_learn(p, scan);
  p.prune_pending(now);

  advance_playback(p, now);
  maybe_start_playback(p, now);
  // Windowed views: re-anchor the supplier window at the settled playback
  // position so the plan phase's candidate range [from, from + B) is fully
  // covered.  Writes only this member's own view, so the sequential pre
  // order is preserved and the parallel plan phase sees a stable window.
  if (availability_.windowed()) {
    availability_.sync_window(peers_, p.id, p.playback_anchor());
  }
  return true;
}

void Engine::tick_plan(PeerNode& p, double now, const NeighborScan& scan, TickPlan& plan) {
  plan.planned = false;
  plan.gated = false;
  plan.split_active = false;
  plan.s1_end = kNoSegment;
  plan.candidates.clear();
  plan.requests.clear();
  plan.probes = 0;
  plan.issued = 0;
  plan.rejected = 0;
  plan.staged.clear();
  if (p.in_budget().whole() == 0) return;
  plan.planned = true;
  plan.rng_before = p.rng;
  plan.stamp = capacity_commits_;
  // The plan gate: a quiescent work lane proves the candidate build would
  // come back empty (the availability plane saw the last event that could
  // have created missing ∧ supplied work), and an empty build returns
  // right below without drawing from p.rng — so skipping it wholesale is
  // rng-neutral and every fixed-seed metric stays bit-identical.  The lane
  // defaults to 1 and only work tracking ever clears it, so this reads
  // "gate enabled and proven quiescent".
  if (config_.plan_gate && pool_.has_work(p.id) == 0) {
    plan.gated = true;
    if (config_.plan_gate_recheck) recheck_gate(p, now, scan);
    return;
  }
  build_candidates(p, now, scan, plan);
  if (plan.candidates.empty()) {
    // An empty build is the cheap moment to settle the conservative work
    // summary: if the supplied ∧ ¬received scan finds nothing at or past
    // the anchor, the view quiesces and the gate skips this peer until a
    // delta wakes it.  View p.id belongs to this member in both dispatch
    // paths (the plan lanes partition members), so the writes are
    // race-free, and the decision reads only pre-wave state — identical
    // at every shard count.
    if (config_.plan_gate) {
      (void)availability_.try_quiesce(p.id, p.received, p.playback_anchor());
    }
    return;
  }

  ScheduleContext ctx;
  ctx.now = now;
  ctx.period = config_.tau;
  ctx.playback_rate = config_.playback_rate;
  ctx.inbound_rate = p.inbound_rate();
  ctx.id_play = p.playback_anchor();
  ctx.q_consecutive = config_.q_consecutive;
  ctx.q_startup = config_.q_startup;
  ctx.buffer_capacity = config_.buffer_capacity;
  ctx.max_requests = p.in_budget().whole();
  ctx.rng = &p.rng;
  plan.split_active = p.active_switch() >= 0 && p.known_boundary() >= p.active_switch() &&
                      !p.sw_prepared();
  if (plan.split_active) {
    plan.s1_end = timeline_.session(static_cast<std::size_t>(p.active_switch())).last;
    ctx.s1_end = plan.s1_end;
    ctx.s2_begin = ctx.s1_end + 1;
    ctx.q1_remaining = p.q1_missing();
    ctx.q2_remaining = p.q2_missing();
  }
  plan.requests = strategies_[p.strategy_index()]->schedule(ctx, plan.candidates);
}

bool Engine::plan_is_stale(const PeerNode& p, const NeighborScan& scan,
                           const TickPlan& plan) const {
  if (dirty_supplier_.empty() || !transfers_.supplier_shared()) return false;
  // The plan's queue-delay reads covered (a subset of) the alive
  // neighbours; per-link capacity can never conflict (requester-keyed).
  const std::vector<net::NodeId>& alive =
      availability_.enabled() ? availability_.view(p.id).alive_neighbors : scan.alive;
  for (const net::NodeId nb : alive) {
    if (dirty_supplier_[nb] > plan.stamp) return true;
  }
  return false;
}

void Engine::tick_commit(PeerNode& p, double now, const NeighborScan& scan, TickPlan& plan,
                         bool validate) {
  if (!plan.planned) return;
  if (validate && !plan.candidates.empty() && plan_is_stale(p, scan, plan)) {
    if (plan.stage) {
      // Stale on a commit lane: nothing may issue from here — the class
      // barrier's fixup queue re-plans this member sequentially, where the
      // live plane state it observes is exactly the sequential prefix.
      plan.fixup = true;
      return;
    }
    // An earlier member committed capacity on a supplier this plan read:
    // its queue-delay estimates (and therefore the strategy's choices and
    // rng draws) may differ from what the sequential order would produce.
    // Roll the rng back and re-derive against the live transfer plane —
    // the candidate *set* cannot change (buffers are stable in a sweep),
    // only supplier scores.
    p.rng = plan.rng_before;
    ++stats_.replanned_ticks;
    tick_plan(p, now, scan, plan);
  }
  // Stage mode folds every global counter at the wave's final drain, from
  // the plan's final contents (a fixup re-plan overwrites them first, so
  // the fold always matches the sequential charge).
  if (!plan.stage) {
    stats_.availability_probes += plan.probes;
    if (plan.gated) {
      ++stats_.plans_gated;
      if (config_.plan_gate_recheck) ++stats_.gate_rechecks;
    } else if (!plan.candidates.empty()) {
      ++stats_.plans_built;
    }
  }
  if (plan.candidates.empty()) return;

  if (!plan.stage) {
    if (plan.split_active) {
      ++stats_.split_ticks;
      for (const ScheduledRequest& r : plan.requests) {
        if (r.id > plan.s1_end) {
          ++stats_.new_stream_requests;
        } else {
          ++stats_.old_stream_requests;
        }
      }
    }
    candidates_seen_ += plan.candidates.size();
    scheduled_seen_ += plan.requests.size();
  }

  // Supplier fallback on rejection (the strategy names one supplier per
  // segment; a saturated supplier should not cost the whole period when an
  // alternate neighbour also holds the segment).  The candidate walk emits
  // ascending ids, so the fallback lookup is a binary search — no index to
  // build, no steady-state allocation.
  for (const ScheduledRequest& r : plan.requests) {
    if (p.in_budget().whole() == 0) break;
    if (issue_one(p, r.id, r.supplier, now, plan)) continue;
    const auto it = std::lower_bound(
        plan.candidates.begin(), plan.candidates.end(), r.id,
        [](const CandidateSegment& c, SegmentId id) { return c.id < id; });
    if (it == plan.candidates.end() || it->id != r.id) continue;
    for (const SupplierView& alt : it->suppliers) {
      if (alt.node == r.supplier) continue;
      if (issue_one(p, r.id, alt.node, now, plan)) break;
    }
  }
}

void Engine::run_parallel_sweep(const std::vector<std::uint32_t>& members, double now) {
  const std::size_t n = members.size();
  ++stats_.parallel_sweeps;
  if (dirty_supplier_.size() < peers_.size()) dirty_supplier_.resize(peers_.size(), 0);
  // Lanes beyond the physical cores only thrash the scheduler (metrics are
  // lane-count-independent, so the clamp is free).
  const std::size_t lanes = std::min<std::size_t>(
      config_.parallel_shards, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  // Wave size bounds the speculation window: a member's plan can only go
  // stale against commits of its *own* wave (earlier waves are already
  // committed when it plans), so the stale-replan rate scales with the
  // wave, while each wave still carries ~16 plans per lane of parallel
  // work.  Any wave size yields identical results — valid plans equal the
  // sequential computation and stale ones are re-planned — so this is a
  // pure throughput knob.
  const std::size_t wave = std::max<std::size_t>(32, 16 * lanes);
  if (batch_scans_.size() < std::min(n, wave)) {
    batch_scans_.resize(std::min(n, wave));
    batch_plans_.resize(std::min(n, wave));
  }
  for (std::size_t base = 0; base < n; base += wave) {
    const std::size_t count = std::min(wave, n - base);
    // Rewind the lane arenas on the caller, behind the previous wave's
    // barrier: every plan of that wave is committed, so its candidate
    // lists are dead.  Never mid-wave — a lane plans several members per
    // wave and the earlier ones must survive to their commit.
    for (const std::unique_ptr<util::Arena>& a : lane_arenas_) a->reset();
    // Pre, in member order: all cross-peer-visible writes of a tick
    // (availability adverts, boundary learning, playback/metric
    // bookkeeping) happen here with exactly the interleaving the
    // per-member sweep would produce (nothing a plan reads is written by
    // pre, so running the wave's pres ahead of its plans is invisible).
    for (std::size_t i = 0; i < count; ++i) {
      batch_plans_[i].live = tick_pre(peers_[members[base + i]], now, batch_scans_[i]);
    }
    // Plan, in parallel: pure reads of shared state plus disjoint writes
    // (each member's own slot and rng).  Each lane bump-allocates supplier
    // lists from its own arena.  The pool may be saturated by outer
    // experiment sweeps — run_batch's caller lane guarantees progress.
    util::global_pool().run_batch_lanes(
        count, lanes, [this, &members, base, now](std::size_t i, std::size_t lane) {
          if (!batch_plans_[i].live) return;
          batch_plans_[i].arena = lane_arenas_[lane].get();
          tick_plan(peers_[members[base + i]], now, batch_scans_[i], batch_plans_[i]);
        });
    if (config_.parallel_commit) {
      commit_wave(members, base, count, lanes, now);
      continue;
    }
    // Commit, in member order: the per-shard outboxes (the plans) drain
    // deterministically — counters, requests, capacity commits, delivery
    // events — re-planning any member whose speculation went stale.
    for (std::size_t i = 0; i < count; ++i) {
      if (!batch_plans_[i].live) continue;
      if (batch_plans_[i].planned) ++stats_.planned_ticks;
      tick_commit(peers_[members[base + i]], now, batch_scans_[i], batch_plans_[i],
                  /*validate=*/true);
      // The CDN step reads only sweep-stable state (buffers, timeline,
      // registry) plus the member's own slot and the CDN's ledger, and the
      // commit loop runs it in member order — exactly the sequential
      // tick()'s interleaving, so assisted runs stay bit-identical at
      // every shard count.
      if (cdn_) cdn_assist_tick(peers_[members[base + i]], now);
    }
  }
  // Warm-up fence for the zero-allocation telemetry: lane-arena chunks
  // allocated past the fence count as steady-state allocations.  The fence
  // is adaptive — it arms only after at least 16 sweeps AND 16 consecutive
  // sweeps with no chunk growth, and RE-ARMS whenever growth resumes — so
  // the ramp of the candidate working set (which at N=10^5 outlives a fixed
  // 16-sweep window) stays inside the warm-up count.  At run end an armed
  // fence therefore certifies a genuinely quiet tail (the last >= 16 sweeps
  // allocated nothing, arena_steady_chunks exactly 0); a fence still
  // unarmed reports arena_warm_chunks == 0, which the steady-state test
  // rejects as "the arenas never stopped growing".
  std::uint64_t total = 0;
  for (const std::unique_ptr<util::Arena>& a : lane_arenas_) {
    total += a->chunk_allocations();
  }
  if (total != arena_fence_last_chunks_) {
    arena_fence_last_chunks_ = total;
    arena_fence_quiet_sweeps_ = 0;
    arena_warm_marked_ = false;  // growth resumed: the lanes were not warm yet
  } else if (!arena_warm_marked_ && ++arena_fence_quiet_sweeps_ >= 16 &&
             stats_.parallel_sweeps >= 16) {
    arena_warm_marked_ = true;
    arena_warm_chunks_ = total;
  }
}

void Engine::commit_wave(const std::vector<std::uint32_t>& members, std::size_t base,
                         std::size_t count, std::size_t lanes, double now) {
  // Colour by supplier contention.  A slot's contention set is exactly the
  // alive list plan_is_stale reads — it covers every supplier the plan's
  // queue-delay estimates touched and every capacity line its commit can
  // write, so same-colour slots neither race nor perturb each other's
  // staleness checks, and the layered rule (see commit_colouring.hpp) puts
  // every conflicting predecessor in an earlier class.  Per-link capacity
  // is requester-keyed — no conflicts, one class, no staleness.
  const bool shared = transfers_.supplier_shared();
  colouring_.colour_wave(
      count, peers_.size(), [&](std::size_t i) -> const std::vector<net::NodeId>* {
        const TickPlan& plan = batch_plans_[i];
        if (!shared || !plan.live || !plan.planned || plan.candidates.empty()) return nullptr;
        const net::NodeId v = members[base + i];
        return availability_.enabled() ? &availability_.view(v).alive_neighbors
                                       : &batch_scans_[i].alive;
      });
  stats_.commit_colour_classes += colouring_.classes;
  if (class_slots_.size() < colouring_.classes) class_slots_.resize(colouring_.classes);
  for (std::uint32_t c = 0; c < colouring_.classes; ++c) class_slots_[c].clear();
  const std::uint64_t wave_base = capacity_commits_;
  for (std::size_t i = 0; i < count; ++i) {
    class_slots_[colouring_.colour[i]].push_back(static_cast<std::uint32_t>(i));
    TickPlan& plan = batch_plans_[i];
    plan.stage = true;
    plan.fixup = false;
    plan.commit_stamp = wave_base + 1 + i;
  }

  for (std::uint32_t c = 0; c < colouring_.classes; ++c) {
    const std::vector<std::uint32_t>& slots = class_slots_[c];
    if (slots.empty()) continue;
    // The class commits on lanes: capacity commits and jitter draws land
    // member-locally (disjoint supplier sets within the class), deliveries
    // stage into the plan, counters defer.
    util::global_pool().run_batch(slots.size(), lanes, [this, &members, base, &slots,
                                                       now](std::size_t k) {
      const std::uint32_t i = slots[k];
      if (!batch_plans_[i].live || !batch_plans_[i].planned) return;
      tick_commit(peers_[members[base + i]], now, batch_scans_[i], batch_plans_[i],
                  /*validate=*/true);
    });
    // Fixup drain, member order within the class: a stale member re-plans
    // against the live plane.  Its conflicting predecessors all sit in
    // earlier classes (layered colouring) and are fully committed — the
    // state it observes is exactly the sequential prefix — and same-class
    // members touch none of its suppliers, so draining between classes
    // changes nothing they see.
    for (const std::uint32_t i : slots) {
      TickPlan& plan = batch_plans_[i];
      if (!plan.fixup) continue;
      PeerNode& p = peers_[members[base + i]];
      p.rng = plan.rng_before;
      ++stats_.replanned_ticks;
      ++stats_.commit_conflict_fixups;
      tick_plan(p, now, batch_scans_[i], plan);
      tick_commit(p, now, batch_scans_[i], plan, /*validate=*/false);
    }
  }

  // Final drain, member order: fold the deferred counters from each plan's
  // final contents and post the staged delivery events — sim_.after hands
  // out global sequence numbers in call order, so the event stream is
  // byte-identical to the sequential commit's.  The CDN step interleaves
  // per member exactly like the sequential loop; deferring it behind the
  // whole wave's capacity commits is invisible because it reads only
  // sweep-stable state, the member's own slot and the CDN's private ledger.
  for (std::size_t i = 0; i < count; ++i) {
    TickPlan& plan = batch_plans_[i];
    plan.stage = false;
    if (!plan.live) continue;
    PeerNode& p = peers_[members[base + i]];
    if (plan.planned) {
      ++stats_.planned_ticks;
      if (!plan.fixup) ++stats_.parallel_commits;
      plan.fixup = false;
      stats_.availability_probes += plan.probes;
      if (plan.gated) {
        ++stats_.plans_gated;
        if (config_.plan_gate_recheck) ++stats_.gate_rechecks;
      } else if (!plan.candidates.empty()) {
        ++stats_.plans_built;
      }
      if (!plan.candidates.empty()) {
        if (plan.split_active) {
          ++stats_.split_ticks;
          for (const ScheduledRequest& r : plan.requests) {
            if (r.id > plan.s1_end) {
              ++stats_.new_stream_requests;
            } else {
              ++stats_.old_stream_requests;
            }
          }
        }
        candidates_seen_ += plan.candidates.size();
        scheduled_seen_ += plan.requests.size();
      }
      stats_.requests_issued += plan.issued;
      stats_.requests_rejected += plan.rejected;
      if (plan.issued > 0) overhead_.charge_request(plan.issued);
      for (const StagedDelivery& d : plan.staged) {
        transfers_.schedule_delivery(p.id, d.id, d.deliver_at, now);
      }
    }
    if (cdn_) cdn_assist_tick(p, now);
  }
  // Advance the commit clock past every stamp this wave handed out, so the
  // next wave's plans (stamped with the new base) can never read one of
  // this wave's writes as stale.
  capacity_commits_ = wave_base + count;
}

void Engine::snapshot_and_learn(PeerNode& p, NeighborScan& scan) {
  if (availability_.enabled()) {
    // The maintained view already holds everything the legacy rescan would
    // re-derive; the tick just reads it (and pays the wire cost).
    const AvailabilityIndex::View& view = availability_.view(p.id);
    if (config_.delta_maps) {
      advert_availability(p, view.alive_neighbors.size());
    } else {
      overhead_.charge_buffer_map_exchanges(view.alive_neighbors.size());
    }
    if (config_.discover_via_maps && view.boundary_max > p.known_boundary()) {
      learn_boundaries(p, view.boundary_max, sim_.now());
    }
    return;
  }
  // Legacy: one shared pass over the neighbours serves the exchange
  // accounting, boundary discovery AND build_candidates (alive list + head
  // stashed in `scan` — nothing between here and the candidate build can
  // change neighbour state within the tick).
  scan.alive.clear();
  scan.head = kNoSegment;
  scan.owner = p.id;
  int best_boundary = p.known_boundary();
  for (const net::NodeId nb : graph_.neighbors(p.id)) {
    const PeerNode& n = peers_[nb];
    if (!n.alive()) continue;
    overhead_.charge_buffer_map_exchange();
    scan.alive.push_back(nb);
    scan.head = std::max(scan.head, n.buffer.max_id());
    if (config_.discover_via_maps) best_boundary = std::max(best_boundary, n.known_boundary());
  }
  if (best_boundary > p.known_boundary()) learn_boundaries(p, best_boundary, sim_.now());
}

void Engine::advert_availability(PeerNode& p, std::size_t receivers) {
  const std::size_t window = config_.wire.buffer_window_bits;
  // The advert runs in the sequential pre phase, so one engine-wide scratch
  // map serves every peer: build into it, diff, then swap it with the
  // peer's advertised map (both keep their bit-storage capacity, so the
  // steady state allocates nothing).
  p.buffer.build_map_into(window, advert_scratch_);
  // Full map on the first advert and every map_refresh_period-th one
  // (receivers resynchronise), or when the delta would not pay for itself.
  bool refresh = p.advertised_map.window() != window ||
                 p.adverts_since_refresh + 1 >= config_.map_refresh_period;
  gossip::BufferMapDelta delta;
  if (!refresh) {
    delta = gossip::BufferMapDelta::diff(p.advertised_map, advert_scratch_);
    // Judge "delta beats full map" in the same wire model that gets
    // charged, so ablated delta framing sizes keep the rule honest.
    refresh = !delta.encodable() ||
              config_.wire.buffer_map_delta_bits(delta.runs().size()) >=
                  config_.wire.buffer_map_bits();
  }
  if (refresh) {
    overhead_.charge_buffer_map_exchanges(receivers);
    p.adverts_since_refresh = 0;
    ++stats_.full_map_adverts;
  } else {
    overhead_.charge_buffer_map_delta(delta.runs().size(), receivers);
    ++p.adverts_since_refresh;
    ++stats_.delta_adverts;
  }
  std::swap(p.advertised_map, advert_scratch_);
}

void Engine::build_candidates(PeerNode& p, double now, const NeighborScan& scan,
                              TickPlan& plan) {
  std::vector<CandidateSegment>& out = plan.candidates;
  const SegmentId from = p.playback_anchor();

  const bool incremental = availability_.enabled();
  if (!incremental) {
    GS_CHECK_EQ(scan.owner, p.id);  // the scan scratch is this tick's
  }
  const AvailabilityIndex::View* view = incremental ? &availability_.view(p.id) : nullptr;
  const SegmentId head = incremental ? view->head : scan.head;
  if (head == kNoSegment || head < from) return;
  const SegmentId to =
      std::min<SegmentId>(head, from + static_cast<SegmentId>(config_.buffer_capacity) - 1);

  const bool split_active =
      p.active_switch() >= 0 && p.known_boundary() >= p.active_switch();
  const SegmentId boundary =
      split_active ? timeline_.session(static_cast<std::size_t>(p.active_switch())).last
                   : kNoSegment;
  const util::ArenaAllocator<SupplierView> salloc(plan.arena);

  // Legacy iterates every missing id and discovers per id that nobody
  // supplies it; the index jumps straight to missing-and-supplied ids
  // (word-level intersection), which yields the identical candidate list —
  // unsupplied ids produce no CandidateSegment either way.
  const std::vector<net::NodeId>& alive_neighbors =
      incremental ? view->alive_neighbors : scan.alive;
  const auto next_candidate = [&](SegmentId at) -> SegmentId {
    if (!incremental) return next_missing(p.received, at);
    // The supplied bitset may be windowed (bit j = id window_base + j);
    // absolute keying is the window_base == 0 case of the same walk.
    const std::size_t pos = util::DynamicBitset::first_set_and_clear_offset(
        view->supplied, view->window_base, p.received, static_cast<std::size_t>(at));
    if (pos >= view->supplied_end()) return to + 1;  // nothing supplied past `at`
    return static_cast<SegmentId>(pos);
  };

  if (!config_.plan_gate) {
    // Segment-major supplier enumeration (the pre-plan-gate build, kept
    // verbatim as the --no-plan-gate reference path).
    for (SegmentId id = next_candidate(from); id <= to; id = next_candidate(id + 1)) {
      const double* retry_at = p.pending.find(id);
      if (retry_at != nullptr && *retry_at > now) continue;
      CandidateSegment c(salloc);
      c.id = id;
      c.epoch =
          (boundary != kNoSegment && id > boundary) ? StreamEpoch::kNew : StreamEpoch::kOld;
      // Deferred to the commit phase: build may run on a pool thread.
      plan.probes += alive_neighbors.size();
      for (const net::NodeId nb : alive_neighbors) {
        const PeerNode& n = peers_[nb];
        if (!n.buffer.contains(id)) continue;
        SupplierView s;
        s.node = nb;
        s.send_rate = n.outbound_rate();
        s.buffer_position = n.buffer.position_from_tail(id);
        // The paper's R_ij is a *measured* per-link receiving rate, which
        // in a real system reflects the link's current load.  Expose the
        // backlog as the initial queueing estimate so requesters spread
        // load instead of herding onto the nominally fastest supplier.
        s.queue_delay = transfers_.queue_delay(p.id, nb, now);
        c.suppliers.push_back(s);
      }
      if (!c.suppliers.empty()) out.push_back(std::move(c));
    }
    return;
  }

  // Neighbour-major enumeration: collect the candidate ids first, then walk
  // each neighbour once across all of them.  Identical output by
  // construction — the id walk and pending filter are unchanged (ascending
  // ids), suppliers still append in ascending-neighbour order, and every
  // probed value (outbound_rate, queue_delay, buffer state) is stable for
  // the duration of a plan in both dispatch paths — but each neighbour's
  // buffer, rate and queue-delay are now touched in one contiguous burst
  // instead of once per (segment, neighbour) pair, which is where the
  // segment-major build burns its time at 10^5+ peers (random-access cache
  // misses, see BM_PlanGate).
  for (SegmentId id = next_candidate(from); id <= to; id = next_candidate(id + 1)) {
    const double* retry_at = p.pending.find(id);
    if (retry_at != nullptr && *retry_at > now) continue;
    CandidateSegment c(salloc);
    c.id = id;
    c.epoch = (boundary != kNoSegment && id > boundary) ? StreamEpoch::kNew : StreamEpoch::kOld;
    // Same accounting as the segment-major walk: one probe per (visited
    // segment, alive neighbour) pair, charged whether or not it supplies.
    plan.probes += alive_neighbors.size();
    if (incremental) {
      // The view's supplier count is exactly how many SupplierViews the
      // neighbour walk will append — one arena allocation per candidate
      // instead of a doubling chain interleaved across the whole list.
      c.suppliers.reserve(
          view->supplier_count[static_cast<std::size_t>(id) - view->window_base]);
    }
    out.push_back(std::move(c));
  }
  if (out.empty()) return;
  for (const net::NodeId nb : alive_neighbors) {
    const PeerNode& n = peers_[nb];
    // Hoisted lazily on the first supplied candidate: both are invariant
    // across the plan (rates only change in churn/setup; queue_delay reads
    // the transfer plane no commit touches while plans are in flight).
    double send_rate = 0.0;
    double queue_delay = 0.0;
    bool hoisted = false;
    // Candidate ids ascend, so the neighbour's presence bitset is read one
    // 64-bit word at a time instead of one bounds-checked test per
    // (candidate, neighbour) pair.
    const util::DynamicBitset& presence = n.buffer.presence();
    std::size_t cached_base = ~std::size_t{0};
    std::uint64_t cached_word = 0;
    for (CandidateSegment& c : out) {
      const auto pos = static_cast<std::size_t>(c.id);
      const std::size_t base = pos - pos % 64;
      if (base != cached_base) {
        cached_base = base;
        cached_word = presence.extract_word(base);
      }
      if (((cached_word >> (pos % 64)) & 1u) == 0) continue;
      if (!hoisted) {
        send_rate = n.outbound_rate();
        queue_delay = transfers_.queue_delay(p.id, nb, now);
        hoisted = true;
      }
      SupplierView s;
      s.node = nb;
      s.send_rate = send_rate;
      s.buffer_position = n.buffer.position_from_tail(c.id);
      s.queue_delay = queue_delay;
      c.suppliers.push_back(s);
    }
  }
  // Unsupplied ids produce no CandidateSegment in the segment-major build;
  // drop them here, preserving ascending-id order.
  std::erase_if(out, [](const CandidateSegment& c) { return c.suppliers.empty(); });
}

void Engine::recheck_gate(PeerNode& p, double now, const NeighborScan& scan) {
  // Scratch plan on the stack: the real plan must stay untouched (the gate
  // skipped it before any field beyond the prologue was written).  The
  // build allocates supplier lists only when a candidate has a supplier,
  // which the check forbids — so no arena is needed.
  TickPlan scratch;
  scratch.candidates.clear();
  build_candidates(p, now, scan, scratch);
  GS_CHECK(scratch.candidates.empty())
      << "plan gate fired for peer " << p.id << " with " << scratch.candidates.size()
      << " buildable candidates at t=" << now;
}

bool Engine::issue_one(PeerNode& p, SegmentId id, net::NodeId supplier, double now,
                       TickPlan& plan) {
  GS_CHECK_LT(supplier, peers_.size());
  PeerNode& s = peers_[supplier];
  if (plan.stage) {
    // Commit-lane issue: the capacity commit and jitter draw are
    // member-safe (colouring keeps same-class supplier sets disjoint; the
    // rng is the member's own); the simulator event and the global
    // counters defer to the wave's member-order drain.
    StagedDelivery d;
    if (!s.alive() || !s.buffer.contains(id) ||
        !transfers_.request_staged(p, s, id, now, d.deliver_at)) {
      ++p.requests_rejected;
      ++plan.rejected;
      return false;
    }
    d.id = id;
    plan.staged.push_back(d);
    // Deterministic dirty stamp: wave base + 1 + member index.  Every
    // staleness comparison is `stamp_written > stamp_read` with the read
    // stamp at most the wave base, so any strictly-above-base value is
    // equivalent to the sequential ++capacity_commits_ — and unlike it,
    // this one is the same no matter which lane writes it.  Per-link
    // capacity never reads these stamps (plan_is_stale short-circuits);
    // skipping the write keeps concurrent same-supplier issues race-free.
    if (transfers_.supplier_shared()) dirty_supplier_[supplier] = plan.commit_stamp;
    ++plan.issued;
    p.in_budget().spend(1.0);
    p.pending.set(id, now + config_.pending_timeout);
    ++p.requests_issued;
    return true;
  }
  if (!s.alive() || !s.buffer.contains(id) || !transfers_.request(p, s, id, now)) {
    ++p.requests_rejected;
    ++stats_.requests_rejected;
    return false;
  }
  // Parallel sweeps track when each uplink was last committed to, so later
  // members' speculative plans can detect stale queue-delay reads.
  if (!dirty_supplier_.empty()) dirty_supplier_[supplier] = ++capacity_commits_;
  overhead_.charge_request(1);
  p.in_budget().spend(1.0);
  p.pending.set(id, now + config_.pending_timeout);
  ++p.requests_issued;
  ++stats_.requests_issued;
  return true;
}

// ----------------------------------------------------------- CDN assist ---
//
// Runs after tick_commit in both dispatch paths, so patch requests consume
// only the inbound budget the gossip scheduler left this period: under
// budget_carry = 1 that remainder is use-it-or-lose-it, so the patch
// stream fills the idle tail of the peer's inbound link instead of
// displacing gossip pulls.  Requested ids enter p.pending like any gossip
// request, so the scheduler never double-requests a patched segment, and
// deliveries run through deliver_segment — q2 progress, prepared times and
// playback flow exactly as for swarm data.

void Engine::cdn_assist_tick(PeerNode& p, double now) {
  CdnAssistPlane::PeerView view;
  const int k = p.active_switch();
  SegmentId begin = 0;
  SegmentId end = kNoSegment;
  if (k >= 0 && p.known_boundary() >= k && !p.sw_prepared()) {
    view.switch_index = k;
    const SegmentId anchor = p.playback_anchor();
    view.rest_play_s = static_cast<double>(next_missing(p.received, anchor) - anchor) /
                       config_.playback_rate;
    begin = timeline_.session(static_cast<std::size_t>(k)).last + 1;
    auto span = static_cast<SegmentId>(required_prefix(k));
    if (config_.cdn_assist_span > 0) {
      span = std::min<SegmentId>(span, static_cast<SegmentId>(config_.cdn_assist_span));
    }
    end = begin + span - 1;
    // Hand off only once the whole patch window exists and every missing
    // id in it has an alive gossip supplier — before the new source has
    // generated that far, the swarm cannot yet take over.
    view.suppliers_cover =
        registry_.next_id() - 1 >= end && cdn_window_covered(p, begin, end);
  }
  if (!cdn_->control(p.id, view, now)) return;
  const SegmentId head = std::min<SegmentId>(end, registry_.next_id() - 1);
  for (SegmentId id = begin; id <= head; ++id) {
    if (p.in_budget().whole() == 0) break;
    if (p.has_received(id)) continue;
    const double* retry_at = p.pending.find(id);
    if (retry_at != nullptr && *retry_at > now) continue;
    if (!cdn_->request(p.id, id, now)) break;  // CDN backlog past the horizon
    overhead_.charge_request(1);
    p.in_budget().spend(1.0);
    p.pending.set(id, now + config_.pending_timeout);
  }
}

bool Engine::cdn_window_covered(const PeerNode& p, SegmentId begin, SegmentId end) const {
  // Direct neighbour-buffer probes in every availability mode: the
  // windowed views may not cover a far-ahead patch window, and the
  // legacy / incremental / windowed paths must agree bit for bit (the
  // composition invariant).  Only assisting mid-switch peers pay this
  // scan, and only until their handoff.
  for (SegmentId id = begin; id <= end; ++id) {
    if (p.has_received(id)) continue;
    bool supplied = false;
    for (const net::NodeId nb : graph_.neighbors(p.id)) {
      const PeerNode& n = peers_[nb];
      if (n.alive() && n.buffer.contains(id)) {
        supplied = true;
        break;
      }
    }
    if (!supplied) return false;
  }
  return true;
}

void Engine::on_cdn_delivery(net::NodeId to, SegmentId id) {
  PeerNode& p = peers_[to];
  p.pending.erase(id);
  if (!p.alive()) return;  // left while the patch was in flight
  // count_wire: a patched segment is real data over the wire — it feeds
  // the overhead-ratio denominator and segments_delivered like any swarm
  // delivery (the CDN byte-cost is tallied separately by the plane).
  deliver_segment(p, id, sim_.now(), /*count_wire=*/true);
}

// ----------------------------------------------------------- data path ---

void Engine::on_delivery(net::NodeId to, SegmentId id) {
  PeerNode& p = peers_[to];
  p.pending.erase(id);
  if (!p.alive()) return;  // left while the segment was in flight
  deliver_segment(p, id, sim_.now(), /*count_wire=*/true);
}

void Engine::deliver_segment(PeerNode& p, SegmentId id, double now, bool count_wire) {
  SegmentId evicted = kNoSegment;
  if (!p.mark_received(id, &evicted)) {
    ++p.duplicates_received;
    ++stats_.duplicates;
    return;
  }
  if (availability_.maintained()) {
    if (journal_deltas_) {
      // Batched drain, deferred-mark path: stage the deltas on the book
      // pass's journal row; the merge wave applies them.
      emit_view_deltas(p.id, id, evicted, data_shards_);
    } else {
      // Publish the buffer change to the neighbourhood's availability views.
      availability_.on_gain(graph_, peers_, p.id, id);
      if (evicted != kNoSegment) availability_.on_evict(graph_, peers_, p.id, evicted);
    }
  }
  deliver_bookkeeping(p, id, now, count_wire);
}

void Engine::deliver_bookkeeping(PeerNode& p, SegmentId id, double now, bool count_wire) {
  // Split book phase: the wire counters are globally ordered side effects —
  // the tail replays them per item in pop order.
  if (count_wire && !book_phase_) {
    overhead_.charge_data_segment();
    ++stats_.segments_delivered;
  }

  // Segments of session k announce the end of session k-1 (§3).
  const SegmentInfo& info = registry_.info(id);
  if (info.session > 0 && p.known_boundary() < info.session - 1) {
    learn_boundaries(p, info.session - 1, now);
  }

  // Startup rule bookkeeping: extend the contiguous run from start_id.
  if (id >= p.start_id()) p.extend_start_run();

  if (!p.is_source()) {
    on_switch_progress(p, id, now);
    maybe_start_playback(p, now);
    p.playback.notify_arrival(id, now);
    advance_playback(p, now);
    if (config_.push_fresh_segments && count_wire) push_to_neighbors(p, id, now);
  }
}

void Engine::emit_view_deltas(net::NodeId owner, SegmentId gained, SegmentId evicted,
                              std::size_t source_shard) {
  // Two passes to mirror the inline order per view: every gain before any
  // eviction (on_gain's whole neighbour loop runs before on_evict's).
  const std::size_t row = source_shard * data_shards_;
  for (const net::NodeId nb : graph_.neighbors(owner)) {
    delta_journals_[row + nb % data_shards_].push_back({nb, gained, ViewDelta::Kind::kGain});
  }
  if (evicted == kNoSegment) return;
  for (const net::NodeId nb : graph_.neighbors(owner)) {
    delta_journals_[row + nb % data_shards_].push_back({nb, evicted, ViewDelta::Kind::kEvict});
  }
}

void Engine::on_delivery_batch(const sim::PooledBatchItem* items, std::size_t count) {
  // A single-event run degenerates to the inline pop (the simulator's
  // clock already sits at the item's time).
  if (count == 1) {
    on_delivery(static_cast<net::NodeId>(items[0].a), static_cast<SegmentId>(items[0].b));
    return;
  }
  ++stats_.delivery_batches;
  const std::size_t shards = data_shards_;
  const std::size_t lanes = std::min<std::size_t>(
      shards, std::max<std::size_t>(1, std::thread::hardware_concurrency()));

  // Partition into per-shard delivery lists (pop order preserved within a
  // list; every delivery of one peer lands in that peer's shard list).
  // The split book pass drains a shard's items strictly in order, so a
  // multi-delivery peer's marks interleave with its bookkeeping exactly as
  // inline; the mark/book path instead defers such peers' marks, tracked
  // by the per-peer multiplicity counts.
  const bool split = config_.parallel_commit;
  for (std::vector<std::uint32_t>& list : shard_entries_) list.clear();
  if (!split && batch_peer_count_.size() < peers_.size()) {
    batch_peer_count_.resize(peers_.size(), 0);
  }
  batch_outcomes_.assign(count, MarkOutcome::kDead);
  for (std::size_t i = 0; i < count; ++i) {
    const auto to = static_cast<net::NodeId>(items[i].a);
    shard_entries_[to % shards].push_back(static_cast<std::uint32_t>(i));
    if (!split && batch_peer_count_[to] < 2) ++batch_peer_count_[to];
  }

  if (split) {
    book_split_drain(items, count, lanes);
  } else {
    // Mark wave: each lane owns one shard's peers — pending erases, buffer
    // writes and received bits touch only this lane's peers, and the staged
    // availability deltas go to this lane's private journal row.  Safe
    // concurrent reads only otherwise (graph adjacency, the batch counts).
    util::global_pool().run_batch(shards, lanes, [this, items](std::size_t s) {
      for (const std::uint32_t idx : shard_entries_[s]) {
        const auto to = static_cast<net::NodeId>(items[idx].a);
        const auto id = static_cast<SegmentId>(items[idx].b);
        PeerNode& p = peers_[to];
        p.pending.erase(id);
        if (!p.alive()) continue;  // left while the segment was in flight
        if (batch_peer_count_[to] > 1) {
          batch_outcomes_[idx] = MarkOutcome::kDeferred;
          continue;
        }
        SegmentId evicted = kNoSegment;
        if (!p.mark_received(id, &evicted)) {
          batch_outcomes_[idx] = MarkOutcome::kDuplicate;
          continue;
        }
        batch_outcomes_[idx] = MarkOutcome::kFresh;
        if (availability_.maintained()) emit_view_deltas(to, id, evicted, s);
      }
    });

    // Book pass, pop order: every globally ordered side effect — duplicate
    // and wire counters, boundary learning, switch metrics, playback — runs
    // exactly as the inline pops would.  Cross-peer state is only written
    // (metric pushes, boundary deltas), never read, so the mark wave's early
    // buffer writes for *other* peers are invisible here.
    journal_deltas_ = availability_.maintained();
    for (std::size_t i = 0; i < count; ++i) {
      if (experiment_done_) break;  // the inline order stops popping here too
      const auto to = static_cast<net::NodeId>(items[i].a);
      const auto id = static_cast<SegmentId>(items[i].b);
      PeerNode& p = peers_[to];
      switch (batch_outcomes_[i]) {
        case MarkOutcome::kDead:
          break;
        case MarkOutcome::kDeferred:
          deliver_segment(p, id, items[i].at, /*count_wire=*/true);
          break;
        case MarkOutcome::kDuplicate:
          ++p.duplicates_received;
          ++stats_.duplicates;
          break;
        case MarkOutcome::kFresh:
          deliver_bookkeeping(p, id, items[i].at, /*count_wire=*/true);
          break;
      }
    }
    journal_deltas_ = false;
  }

  // Merge wave: lane t applies the journalled deltas of the views shard t
  // owns, walking the journal rows in source order (per-owner delta
  // streams live in one row and stay ordered; cross-owner deltas commute
  // on the supplier counts).  Head recomputation reads other peers'
  // buffers, so it waits for the barrier and runs sequentially against the
  // settled state — which is exactly the head the inline order ends at.
  if (availability_.maintained()) {
    util::global_pool().run_batch(shards, lanes, [this](std::size_t t) {
      std::vector<net::NodeId>& dirty = dirty_views_[t];
      dirty.clear();
      std::uint64_t applied = 0;
      for (std::size_t s = 0; s <= data_shards_; ++s) {
        for (const ViewDelta& d : delta_journals_[s * data_shards_ + t]) {
          switch (d.kind) {
            case ViewDelta::Kind::kGain:
              availability_.apply_gain(d.view, d.id);
              break;
            case ViewDelta::Kind::kEvict:
              if (availability_.apply_evict(d.view, d.id)) {
                dirty.push_back(d.view);
              }
              break;
            case ViewDelta::Kind::kBoundary:
              availability_.apply_boundary(d.view, static_cast<int>(d.id));
              break;
          }
          ++applied;
        }
      }
      lane_merges_[t] = applied;
    });
    std::uint64_t merged = 0;
    for (std::size_t t = 0; t < shards; ++t) {
      for (const net::NodeId v : dirty_views_[t]) availability_.recompute_head_for(peers_, v);
      merged += lane_merges_[t];
    }
    availability_.add_updates(merged);
    stats_.delta_journal_merges += merged;
    for (std::vector<ViewDelta>& journal : delta_journals_) journal.clear();
  }

  // Zero only the multiplicity entries this batch touched.
  if (!split) {
    for (std::size_t i = 0; i < count; ++i) {
      batch_peer_count_[static_cast<net::NodeId>(items[i].a)] = 0;
    }
  }
}

void Engine::book_split_drain(const sim::PooledBatchItem* items, std::size_t count,
                              std::size_t lanes) {
  ++stats_.parallel_books;
  const std::size_t shards = data_shards_;

  // Phase wave: lane s drains shard s's items strictly in pop order —
  // pending erase, buffer mark, and for fresh deliveries the full per-peer
  // bookkeeping (boundary learning, switch progress, playback), all of
  // which writes only the target peer's own state plus the lane's private
  // journal row.  book_phase_ reroutes the globally ordered side effects —
  // wire counters, metric pushes, experiment completion — into the lane's
  // BookEvent log, keyed by the item being drained; boundary gossip
  // journals as kBoundary deltas instead of writing neighbour views.
  for (std::vector<BookEvent>& log : book_events_) log.clear();
  book_phase_ = true;
  util::global_pool().run_batch(shards, lanes, [this, items](std::size_t s) {
    for (const std::uint32_t idx : shard_entries_[s]) {
      book_current_item_[s] = idx;
      const auto to = static_cast<net::NodeId>(items[idx].a);
      const auto id = static_cast<SegmentId>(items[idx].b);
      PeerNode& p = peers_[to];
      p.pending.erase(id);
      if (!p.alive()) continue;  // left while the segment was in flight
      SegmentId evicted = kNoSegment;
      if (!p.mark_received(id, &evicted)) {
        // The duplicate counters are globally ordered — tail work.
        batch_outcomes_[idx] = MarkOutcome::kDuplicate;
        continue;
      }
      batch_outcomes_[idx] = MarkOutcome::kFresh;
      if (availability_.maintained()) emit_view_deltas(to, id, evicted, s);
      deliver_bookkeeping(p, id, items[idx].at, /*count_wire=*/true);
    }
  });
  book_phase_ = false;

  // Sequential tail, global pop order: one stable sort puts the logged
  // events back into the batch's item order (within an item they are
  // already in call order — one item's events land contiguously in one
  // shard's log), then the walk replays the wire counters and metric
  // pushes exactly as the inline pops would, stopping where the inline
  // order stops.  The completing item's own events all replay (inline, the
  // call stack finishes its item before the pop loop sees the stop flag).
  book_merged_.clear();
  for (const std::vector<BookEvent>& log : book_events_) {
    book_merged_.insert(book_merged_.end(), log.begin(), log.end());
  }
  std::stable_sort(book_merged_.begin(), book_merged_.end(),
                   [](const BookEvent& a, const BookEvent& b) { return a.item < b.item; });
  std::size_t ev = 0;
  for (std::size_t i = 0; i < count && !experiment_done_; ++i) {
    const auto to = static_cast<net::NodeId>(items[i].a);
    PeerNode& p = peers_[to];
    switch (batch_outcomes_[i]) {
      case MarkOutcome::kDuplicate:
        ++p.duplicates_received;
        ++stats_.duplicates;
        break;
      case MarkOutcome::kFresh:
        overhead_.charge_data_segment();
        ++stats_.segments_delivered;
        break;
      default:
        break;
    }
    for (; ev < book_merged_.size() && book_merged_[ev].item == i; ++ev) {
      const BookEvent& e = book_merged_[ev];
      SwitchMetrics& m = timeline_.metrics(e.sw);
      switch (e.kind) {
        case BookEvent::Kind::kFinish:
          m.finish_times.push_back(e.time - m.switch_time);
          ++m.finished_s1;
          check_experiment_complete();
          break;
        case BookEvent::Kind::kPrepared:
          m.prepared_times.push_back(e.time - m.switch_time);
          ++m.prepared_s2;
          check_experiment_complete();
          break;
        case BookEvent::Kind::kS2Start:
          m.s2_start_times.push_back(e.time - m.switch_time);
          break;
      }
    }
  }
  // Post-stop revert: phase work past the stop item raised finished /
  // prepared flags the inline order never reaches, and censor_unfinished
  // reads those flags after the run.  Every logged event marks a
  // false->true transition, so reverting is clearing.  The other post-stop
  // phase effects (buffer marks, playback, gates, journalled deltas) are
  // unobservable — nothing reads them after the stop, matching the
  // mark-wave precedent for post-stop buffer writes.
  for (; ev < book_merged_.size(); ++ev) {
    const BookEvent& e = book_merged_[ev];
    if (e.kind == BookEvent::Kind::kFinish) peers_[e.peer].sw_finished() = false;
    if (e.kind == BookEvent::Kind::kPrepared) peers_[e.peer].sw_prepared() = false;
  }
}

void Engine::push_to_neighbors(PeerNode& p, SegmentId id, double now) {
  // GridMedia-style relay: forward a fresh segment to random neighbours
  // that (by our availability view) lack it.  Costs outbound capacity and
  // data bits; duplicates arriving concurrently are counted as redundancy.
  const auto neighbors = graph_.neighbors(p.id);
  if (neighbors.empty()) return;
  std::vector<net::NodeId> lacking;
  for (const net::NodeId nb : neighbors) {
    const PeerNode& n = peers_[nb];
    if (n.alive() && !n.buffer.contains(id)) lacking.push_back(nb);
  }
  p.rng.shuffle(lacking);
  std::size_t pushed = 0;
  for (const net::NodeId nb : lacking) {
    if (pushed >= config_.push_fanout) break;
    if (!transfers_.push(p, nb, id, now)) break;  // own uplink saturated
    ++stats_.segments_pushed;
    ++pushed;
  }
}

// --------------------------------------------------- switch bookkeeping ---

void Engine::learn_boundaries(PeerNode& p, int up_to, double now) {
  if (up_to <= p.known_boundary()) return;
  p.known_boundary() = up_to;
  if (availability_.maintained()) {
    if (book_phase_) {
      // Split book phase: boundary gossip writes *neighbour* views, which
      // other lanes own — journal it like the gain/evict deltas (the
      // learning peer's shard is this lane's shard).  boundary_max is
      // max-monotone, so the deltas commute across the merge's row order,
      // and no view is read before the next tick pre — after the merge.
      const std::size_t row = (p.id % data_shards_) * data_shards_;
      for (const net::NodeId nb : graph_.neighbors(p.id)) {
        delta_journals_[row + nb % data_shards_].push_back(
            {nb, static_cast<SegmentId>(up_to), ViewDelta::Kind::kBoundary});
      }
    } else {
      availability_.on_boundary(graph_, p.id, up_to);
    }
  }
  if (p.is_source()) return;
  if (p.active_switch() >= 0 && up_to >= p.active_switch() && !p.gate_armed() &&
      p.playback.gate() == kNoSegment) {
    const SegmentId gate_id =
        timeline_.session(static_cast<std::size_t>(p.active_switch())).last + 1;
    if (!p.playback.started() || p.playback.cursor() <= gate_id) {
      p.playback.set_gate(gate_id);
      p.gate_armed() = true;
      maybe_release_gate(p, now);
    } else {
      p.gate_armed() = true;  // already past the boundary; nothing to gate
    }
  }
}

void Engine::on_switch_progress(PeerNode& p, SegmentId id, double now) {
  if (p.active_switch() < 0) return;
  const int k = p.active_switch();
  const Session& old = timeline_.session(static_cast<std::size_t>(k));
  if (id >= p.sw_lo() && id <= old.last) {
    if (p.q1_missing() > 0) --p.q1_missing();
  } else if (id > old.last) {
    const SegmentId begin = old.last + 1;
    if (id < begin + static_cast<SegmentId>(required_prefix(k)) && p.q2_missing() > 0) {
      --p.q2_missing();
      if (p.q2_missing() == 0) record_prepared(p, k, now);
    }
  }
  maybe_release_gate(p, now);
}

void Engine::maybe_release_gate(PeerNode& p, double now) {
  if (!p.gate_armed() || p.playback.gate() == kNoSegment) return;
  const int k = p.active_switch();
  GS_CHECK_GE(k, 0);
  bool ready = p.q2_missing() == 0;
  if (!ready && timeline_.session(static_cast<std::size_t>(k) + 1).ended()) {
    // Short final session: release once everything that exists arrived.
    const Session& next = timeline_.session(static_cast<std::size_t>(k) + 1);
    ready = p.count_missing(next.first, next.last) == 0;
  }
  if (ready) p.playback.release_gate(now);
}

void Engine::maybe_start_playback(PeerNode& p, double now) {
  if (p.is_source() || p.playback.started()) return;
  if (p.start_run() >= config_.q_consecutive) {
    p.playback.start(p.start_id(), now);
    advance_playback(p, now);
  }
}

void Engine::advance_playback(PeerNode& p, double now) {
  if (!p.playback.started()) return;
  p.playback.advance(
      now, [&p](SegmentId id) { return p.has_received(id); },
      [this, &p](SegmentId id, double play_time) {
        const int end_switch = timeline_.switch_ending_at(id);
        if (end_switch >= 0) record_finish(p, end_switch, play_time);
        const int start_switch = timeline_.switch_ending_at(id - 1);
        if (start_switch >= 0 && p.tracked() && p.active_switch() == start_switch) {
          if (book_phase_) {
            const std::size_t s = p.id % data_shards_;
            book_events_[s].push_back({book_current_item_[s], BookEvent::Kind::kS2Start,
                                       start_switch, p.id, play_time});
          } else {
            SwitchMetrics& m = timeline_.metrics(start_switch);
            m.s2_start_times.push_back(play_time - m.switch_time);
          }
        }
      });
}

void Engine::record_finish(PeerNode& p, int switch_index, double play_time) {
  if (p.sw_finished() || p.active_switch() != switch_index) return;
  p.sw_finished() = true;
  if (!p.tracked()) return;
  if (book_phase_) {
    // Split book phase: the flag transition is per-peer (this lane owns
    // the peer); the metric push and the stop check are globally ordered —
    // log them for the tail.
    const std::size_t s = p.id % data_shards_;
    book_events_[s].push_back(
        {book_current_item_[s], BookEvent::Kind::kFinish, switch_index, p.id, play_time});
    return;
  }
  SwitchMetrics& m = timeline_.metrics(switch_index);
  m.finish_times.push_back(play_time - m.switch_time);
  ++m.finished_s1;
  check_experiment_complete();
}

void Engine::record_prepared(PeerNode& p, int switch_index, double now) {
  if (p.sw_prepared() || p.active_switch() != switch_index) return;
  p.sw_prepared() = true;
  if (!p.tracked()) return;
  if (book_phase_) {
    const std::size_t s = p.id % data_shards_;
    book_events_[s].push_back(
        {book_current_item_[s], BookEvent::Kind::kPrepared, switch_index, p.id, now});
    return;
  }
  SwitchMetrics& m = timeline_.metrics(switch_index);
  m.prepared_times.push_back(now - m.switch_time);
  ++m.prepared_s2;
  check_experiment_complete();
}

void Engine::check_experiment_complete() {
  if (experiment_done_) return;
  if (timeline_.experiment_complete()) {
    experiment_done_ = true;
    sim_.stop();
  }
}

}  // namespace gs::stream
