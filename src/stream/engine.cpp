#include "stream/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/logging.hpp"

namespace gs::stream {

namespace {
/// First id >= `from` that is clear in `bits` (ids beyond the bitset's size
/// are implicitly clear).
SegmentId next_missing(const util::DynamicBitset& bits, SegmentId from) {
  GS_CHECK_GE(from, 0);
  if (static_cast<std::size_t>(from) >= bits.size()) return from;
  const std::size_t pos = bits.find_first_clear(static_cast<std::size_t>(from));
  return static_cast<SegmentId>(pos);  // == bits.size() means "just past", still correct
}
}  // namespace

Engine::Engine(net::Graph graph, net::LatencyModel latency, EngineConfig config,
               std::shared_ptr<SchedulerStrategy> strategy)
    : graph_(std::move(graph)),
      latency_(std::move(latency)),
      config_(std::move(config)),
      strategy_(std::move(strategy)),
      sim_(-config_.warmup),
      overhead_(config_.wire),
      membership_(graph_, config_.membership_degree,
                  util::Rng(config_.seed).fork(util::hash_name("membership")), &overhead_),
      churn_rng_(util::Rng(config_.seed).fork(util::hash_name("churn"))),
      setup_rng_(util::Rng(config_.seed).fork(util::hash_name("setup"))) {
  GS_CHECK(strategy_ != nullptr);
  GS_CHECK_EQ(latency_.node_count(), graph_.node_count());
  // Warm-up traffic is outside the paper's measurement window.
  overhead_.set_enabled(false);
}

void Engine::set_sources(std::vector<net::NodeId> sources, std::vector<double> switch_times) {
  GS_CHECK_GE(sources.size(), 1u);
  GS_CHECK_EQ(switch_times.size(), sources.size() - 1);
  for (std::size_t i = 1; i < switch_times.size(); ++i) {
    GS_CHECK_LT(switch_times[i - 1], switch_times[i]);
  }
  sessions_.clear();
  for (net::NodeId src : sources) {
    GS_CHECK_LT(src, graph_.node_count());
    Session session;
    session.source = src;
    sessions_.push_back(session);
  }
  switch_times_ = std::move(switch_times);
  metrics_.assign(switch_times_.size(), SwitchMetrics{});
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    metrics_[i].switch_index = static_cast<int>(i);
    metrics_[i].switch_time = switch_times_[i];
  }
}

const Peer& Engine::peer(net::NodeId v) const {
  GS_CHECK_LT(v, peers_.size());
  return peers_[v];
}

Engine::OverheadSnapshot Engine::take_overhead_snapshot() const {
  OverheadSnapshot snap;
  snap.buffer_map_bits = overhead_.buffer_map_bits();
  snap.request_bits = overhead_.request_bits();
  snap.data_bits = overhead_.data_bits();
  snap.data_segments = overhead_.data_segments();
  return snap;
}

void Engine::init_peers() {
  peers_.resize(graph_.node_count());
  std::vector<char> is_source(graph_.node_count(), 0);
  for (const Session& s : sessions_) is_source[s.source] = 1;
  for (net::NodeId v = 0; v < graph_.node_count(); ++v) {
    Peer& p = peers_[v];
    p.id = v;
    p.is_source = is_source[v] != 0;
    util::Rng node_setup = setup_rng_.fork(v);
    if (p.is_source) {
      p.inbound_rate = 0.0;
      p.outbound_rate = config_.source_outbound;
    } else {
      p.inbound_rate = config_.inbound.sample(node_setup);
      p.outbound_rate = config_.outbound.sample(node_setup);
    }
    p.in_budget = RateBudget(p.inbound_rate, config_.budget_carry);
    p.buffer = StreamBuffer(config_.buffer_capacity);
    p.playback = Playback(config_.playback_rate);
    p.rng = util::Rng(config_.seed).fork(util::hash_name("peer")).fork(v);
    p.start_id = 0;
  }
  membership_.bootstrap_all_live();
  for (net::NodeId v = 0; v < graph_.node_count(); ++v) start_peer_tick(peers_[v]);
}

void Engine::start_peer_tick(Peer& p) {
  if (p.is_source) return;  // sources never pull
  const double offset =
      config_.stagger_ticks ? p.rng.uniform(0.0, config_.tau) : 0.0;
  const net::NodeId id = p.id;
  p.tick_task = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now() + offset, config_.tau,
      [this, id](double now) { tick(peers_[id], now); });
}

void Engine::start_session(SessionIndex k) {
  GS_CHECK_LT(static_cast<std::size_t>(k), sessions_.size());
  sessions_[k].start_time = sim_.now();
  const double interval = 1.0 / config_.playback_rate;
  generation_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim_.now(), interval, [this, k](double now) { generate_segment(k, now); });
}

void Engine::generate_segment(SessionIndex k, double now) {
  const SegmentId announce = k > 0 ? sessions_[k - 1].last : kNoSegment;
  const SegmentId id = registry_.append(k, now, announce);
  if (sessions_[k].first == kNoSegment) sessions_[k].first = id;
  ++stats_.segments_generated;
  Peer& src = peers_[sessions_[k].source];
  // Locally generated: fills the buffer/availability but is not wire data.
  deliver_segment(src, id, now, /*count_wire=*/false);
}

void Engine::schedule_switch(int switch_index) {
  sim_.at(switch_times_[switch_index], [this, switch_index] {
    const double now = sim_.now();
    current_switch_ = switch_index;
    Session& old = sessions_[switch_index];
    GS_CHECK(old.started());
    old.last = registry_.next_id() - 1;
    session_end_index_[old.last] = switch_index;
    generation_task_->cancel();

    if (switch_index == 0) overhead_.set_enabled(true);
    overhead_snapshots_.push_back(take_overhead_snapshot());

    SwitchMetrics& m = metrics_[switch_index];
    m.switch_time = now;

    for (Peer& p : peers_) {
      if (p.is_source || !p.alive) continue;
      // A peer still mid-way through the previous switch is censored there.
      if (p.tracked && p.active_switch >= 0 && p.active_switch < switch_index) {
        if (!p.sw_finished) ++metrics_[p.active_switch].censored_finish;
        if (!p.sw_prepared) ++metrics_[p.active_switch].censored_prepare;
      }
      init_switch_counters(p, switch_index);
      p.tracked = true;
      ++m.tracked;
      // Rare: the peer already played past the old stream's end (it was at
      // the live head).  Its finish delay is zero by definition.
      if (p.playback.started() && p.playback.cursor() > old.last) {
        record_finish(p, switch_index, now);
      }
    }

    // The new source learns the boundary immediately (it is told when S1
    // stops; §3's synchronisation assumption).
    Peer& next_source = peers_[sessions_[switch_index + 1].source];
    next_source.known_boundary = std::max(next_source.known_boundary, switch_index);

    start_session(switch_index + 1);
  });
}

void Engine::init_switch_counters(Peer& p, int switch_index) {
  const Session& old = sessions_[switch_index];
  GS_CHECK(old.ended());
  // A still-armed gate from the previous switch becomes moot once an even
  // newer session exists (serial model: the peer follows the stream; its
  // startup buffering now concerns the newest boundary).  Release it so
  // the new switch can gate at its own boundary.
  if (p.gate_armed && p.playback.gate() != kNoSegment) {
    p.playback.release_gate(sim_.now());
  }
  p.active_switch = switch_index;
  p.sw_lo = std::max(old.first, p.start_id);
  p.q1_missing = count_missing(p, p.sw_lo, old.last);
  p.q0_at_switch = p.q1_missing;
  const SegmentId begin = old.last + 1;
  const auto prefix = static_cast<SegmentId>(required_prefix(switch_index));
  p.q2_missing = count_missing(p, begin, begin + prefix - 1);
  p.sw_finished = false;
  p.sw_prepared = false;
  p.gate_armed = false;
}

std::size_t Engine::required_prefix(int switch_index) const {
  const Session& next = sessions_[switch_index + 1];
  if (next.ended()) {
    return std::min<std::size_t>(config_.q_startup,
                                 static_cast<std::size_t>(next.last - next.first + 1));
  }
  return config_.q_startup;
}

std::size_t Engine::count_missing(const Peer& p, SegmentId lo, SegmentId hi) const {
  if (lo > hi) return 0;
  std::size_t missing = 0;
  for (SegmentId id = lo; id <= hi; ++id) {
    if (static_cast<std::size_t>(id) >= p.received.size() ||
        !p.received.test(static_cast<std::size_t>(id))) {
      ++missing;
    }
  }
  return missing;
}

// ---------------------------------------------------------------- tick ---

void Engine::tick(Peer& p, double now) {
  if (!p.alive || p.is_source) return;
  p.in_budget.replenish(config_.tau);
  snapshot_and_learn(p);

  // Drop expired in-flight entries so the segments become requestable again.
  for (auto it = p.pending.begin(); it != p.pending.end();) {
    it = it->second <= now ? p.pending.erase(it) : std::next(it);
  }

  advance_playback(p, now);
  maybe_start_playback(p, now);

  if (p.in_budget.whole() == 0) return;
  std::vector<CandidateSegment> candidates = build_candidates(p, now);
  if (candidates.empty()) return;

  ScheduleContext ctx;
  ctx.now = now;
  ctx.period = config_.tau;
  ctx.playback_rate = config_.playback_rate;
  ctx.inbound_rate = p.inbound_rate;
  ctx.id_play = p.playback.started() ? p.playback.cursor() : p.start_id;
  ctx.q_consecutive = config_.q_consecutive;
  ctx.q_startup = config_.q_startup;
  ctx.buffer_capacity = config_.buffer_capacity;
  ctx.max_requests = p.in_budget.whole();
  ctx.rng = &p.rng;
  const bool split_active = p.active_switch >= 0 && p.known_boundary >= p.active_switch &&
                            !p.sw_prepared;
  if (split_active) {
    ctx.s1_end = sessions_[p.active_switch].last;
    ctx.s2_begin = ctx.s1_end + 1;
    ctx.q1_remaining = p.q1_missing;
    ctx.q2_remaining = p.q2_missing;
    ++stats_.split_ticks;
  }

  candidates_seen_ += candidates.size();
  // Index by id for supplier fallback on rejection (the strategy names one
  // supplier per segment; a saturated supplier should not cost the whole
  // period when an alternate neighbour also holds the segment).
  std::unordered_map<SegmentId, const CandidateSegment*> by_id;
  by_id.reserve(candidates.size());
  const std::vector<ScheduledRequest> requests = strategy_->schedule(ctx, candidates);
  for (const CandidateSegment& c : candidates) by_id.emplace(c.id, &c);
  scheduled_seen_ += requests.size();
  if (split_active) {
    for (const ScheduledRequest& r : requests) {
      if (r.id > ctx.s1_end) {
        ++stats_.new_stream_requests;
      } else {
        ++stats_.old_stream_requests;
      }
    }
  }
  for (const ScheduledRequest& r : requests) {
    if (p.in_budget.whole() == 0) break;
    if (issue_one(p, r.id, r.supplier, now)) continue;
    const auto it = by_id.find(r.id);
    if (it == by_id.end()) continue;
    for (const SupplierView& alt : it->second->suppliers) {
      if (alt.node == r.supplier) continue;
      if (issue_one(p, r.id, alt.node, now)) break;
    }
  }
}

void Engine::snapshot_and_learn(Peer& p) {
  int best_boundary = p.known_boundary;
  for (const net::NodeId nb : graph_.neighbors(p.id)) {
    const Peer& n = peers_[nb];
    if (!n.alive) continue;
    overhead_.charge_buffer_map_exchange();
    if (config_.discover_via_maps) best_boundary = std::max(best_boundary, n.known_boundary);
  }
  if (best_boundary > p.known_boundary) learn_boundaries(p, best_boundary, sim_.now());
}

std::vector<CandidateSegment> Engine::build_candidates(Peer& p, double now) {
  std::vector<CandidateSegment> out;
  const SegmentId from = p.playback.started() ? p.playback.cursor() : p.start_id;

  SegmentId head = kNoSegment;
  const auto neighbors = graph_.neighbors(p.id);
  for (const net::NodeId nb : neighbors) {
    const Peer& n = peers_[nb];
    if (n.alive) head = std::max(head, n.buffer.max_id());
  }
  if (head == kNoSegment || head < from) return out;
  const SegmentId to =
      std::min<SegmentId>(head, from + static_cast<SegmentId>(config_.buffer_capacity) - 1);

  const bool split_active =
      p.active_switch >= 0 && p.known_boundary >= p.active_switch;
  const SegmentId boundary = split_active ? sessions_[p.active_switch].last : kNoSegment;

  for (SegmentId id = next_missing(p.received, from); id <= to;
       id = next_missing(p.received, id + 1)) {
    const auto pending_it = p.pending.find(id);
    if (pending_it != p.pending.end() && pending_it->second > now) continue;
    CandidateSegment c;
    c.id = id;
    c.epoch = (boundary != kNoSegment && id > boundary) ? StreamEpoch::kNew : StreamEpoch::kOld;
    for (const net::NodeId nb : neighbors) {
      const Peer& n = peers_[nb];
      if (!n.alive || !n.buffer.contains(id)) continue;
      SupplierView s;
      s.node = nb;
      s.send_rate = n.outbound_rate;
      s.buffer_position = n.buffer.position_from_tail(id);
      // The paper's R_ij is a *measured* per-link receiving rate, which in
      // a real system reflects the link's current load.  Expose the backlog
      // as the initial queueing estimate so requesters spread load instead
      // of herding onto the nominally fastest supplier.
      if (config_.supplier_capacity == SupplierCapacityModel::kSharedFifo) {
        s.queue_delay = std::max(0.0, n.out_busy_until - now);
      } else {
        const auto it = p.link_busy_until.find(nb);
        s.queue_delay =
            it == p.link_busy_until.end() ? 0.0 : std::max(0.0, it->second - now);
      }
      c.suppliers.push_back(s);
    }
    if (!c.suppliers.empty()) out.push_back(std::move(c));
  }
  return out;
}

bool Engine::issue_one(Peer& p, SegmentId id, net::NodeId supplier, double now) {
  GS_CHECK_LT(supplier, peers_.size());
  Peer& s = peers_[supplier];
  if (!s.alive || !s.buffer.contains(id)) {
    ++p.requests_rejected;
    ++stats_.requests_rejected;
    return false;
  }
  double backlog_end;
  if (config_.supplier_capacity == SupplierCapacityModel::kSharedFifo) {
    backlog_end = s.out_busy_until;
  } else {
    const auto it = p.link_busy_until.find(supplier);
    backlog_end = it == p.link_busy_until.end() ? now : it->second;
  }
  const double start = std::max(now, backlog_end);
  if (start - now > config_.accept_horizon) {
    // Link/supplier backlog too deep; the node retries elsewhere next period.
    ++p.requests_rejected;
    ++stats_.requests_rejected;
    return false;
  }
  const double tx = 1.0 / s.outbound_rate;
  if (config_.supplier_capacity == SupplierCapacityModel::kSharedFifo) {
    s.out_busy_until = start + tx;
  } else {
    p.link_busy_until[supplier] = start + tx;
  }
  const double deliver_at = start + tx + latency_.jittered_delay_s(p.id, supplier, p.rng);

  overhead_.charge_request(1);
  p.in_budget.spend(1.0);
  p.pending[id] = now + config_.pending_timeout;
  ++p.requests_issued;
  ++stats_.requests_issued;

  const net::NodeId to = p.id;
  sim_.after(deliver_at - now, [this, to, id] { on_delivery(to, id); });
  return true;
}

// ----------------------------------------------------------- data path ---

void Engine::on_delivery(net::NodeId to, SegmentId id) {
  Peer& p = peers_[to];
  p.pending.erase(id);
  if (!p.alive) return;  // left while the segment was in flight
  deliver_segment(p, id, sim_.now(), /*count_wire=*/true);
}

void Engine::deliver_segment(Peer& p, SegmentId id, double now, bool count_wire) {
  if (static_cast<std::size_t>(id) >= p.received.size()) {
    p.received.resize(std::max<std::size_t>(static_cast<std::size_t>(id) + 1,
                                            p.received.size() * 2 + 64));
  }
  if (p.received.test(static_cast<std::size_t>(id))) {
    ++p.duplicates_received;
    ++stats_.duplicates;
    return;
  }
  p.received.set(static_cast<std::size_t>(id));
  p.buffer.insert(id);
  if (count_wire) {
    overhead_.charge_data_segment();
    ++stats_.segments_delivered;
  }

  // Segments of session k announce the end of session k-1 (§3).
  const SegmentInfo& info = registry_.info(id);
  if (info.session > 0 && p.known_boundary < info.session - 1) {
    learn_boundaries(p, info.session - 1, now);
  }

  // Startup rule bookkeeping: extend the contiguous run from start_id.
  if (id >= p.start_id) {
    while (static_cast<std::size_t>(p.start_id) + p.start_run < p.received.size() &&
           p.received.test(static_cast<std::size_t>(p.start_id) + p.start_run)) {
      ++p.start_run;
    }
  }

  if (!p.is_source) {
    on_switch_progress(p, id, now);
    maybe_start_playback(p, now);
    p.playback.notify_arrival(id, now);
    advance_playback(p, now);
    if (config_.push_fresh_segments && count_wire) push_to_neighbors(p, id, now);
  }
}

void Engine::push_to_neighbors(Peer& p, SegmentId id, double now) {
  // GridMedia-style relay: forward a fresh segment to random neighbours
  // that (by our availability view) lack it.  Costs outbound capacity and
  // data bits; duplicates arriving concurrently are counted as redundancy.
  const auto neighbors = graph_.neighbors(p.id);
  if (neighbors.empty()) return;
  std::vector<net::NodeId> lacking;
  for (const net::NodeId nb : neighbors) {
    const Peer& n = peers_[nb];
    if (n.alive && !n.buffer.contains(id)) lacking.push_back(nb);
  }
  p.rng.shuffle(lacking);
  std::size_t pushed = 0;
  for (const net::NodeId nb : lacking) {
    if (pushed >= config_.push_fanout) break;
    const double start = std::max(now, p.out_busy_until);
    if (start - now > config_.accept_horizon) break;  // own uplink saturated
    const double tx = 1.0 / p.outbound_rate;
    p.out_busy_until = start + tx;
    const double deliver_at = start + tx + latency_.jittered_delay_s(nb, p.id, p.rng);
    ++stats_.segments_pushed;
    const net::NodeId to = nb;
    sim_.after(deliver_at - now, [this, to, id] { on_delivery(to, id); });
    ++pushed;
  }
}

// --------------------------------------------------- switch bookkeeping ---

void Engine::learn_boundaries(Peer& p, int up_to, double now) {
  if (up_to <= p.known_boundary) return;
  p.known_boundary = up_to;
  if (p.is_source) return;
  if (p.active_switch >= 0 && up_to >= p.active_switch && !p.gate_armed &&
      p.playback.gate() == kNoSegment) {
    const SegmentId gate_id = sessions_[p.active_switch].last + 1;
    if (!p.playback.started() || p.playback.cursor() <= gate_id) {
      p.playback.set_gate(gate_id);
      p.gate_armed = true;
      maybe_release_gate(p, now);
    } else {
      p.gate_armed = true;  // already past the boundary; nothing to gate
    }
  }
}

void Engine::on_switch_progress(Peer& p, SegmentId id, double now) {
  if (p.active_switch < 0) return;
  const int k = p.active_switch;
  const Session& old = sessions_[k];
  if (id >= p.sw_lo && id <= old.last) {
    if (p.q1_missing > 0) --p.q1_missing;
  } else if (id > old.last) {
    const SegmentId begin = old.last + 1;
    if (id < begin + static_cast<SegmentId>(required_prefix(k)) && p.q2_missing > 0) {
      --p.q2_missing;
      if (p.q2_missing == 0) record_prepared(p, k, now);
    }
  }
  maybe_release_gate(p, now);
}

void Engine::maybe_release_gate(Peer& p, double now) {
  if (!p.gate_armed || p.playback.gate() == kNoSegment) return;
  const int k = p.active_switch;
  GS_CHECK_GE(k, 0);
  bool ready = p.q2_missing == 0;
  if (!ready && sessions_[static_cast<std::size_t>(k) + 1].ended()) {
    // Short final session: release once everything that exists arrived.
    const Session& next = sessions_[static_cast<std::size_t>(k) + 1];
    ready = count_missing(p, next.first, next.last) == 0;
  }
  if (ready) p.playback.release_gate(now);
}

void Engine::maybe_start_playback(Peer& p, double now) {
  if (p.is_source || p.playback.started()) return;
  if (p.start_run >= config_.q_consecutive) {
    p.playback.start(p.start_id, now);
    advance_playback(p, now);
  }
}

void Engine::advance_playback(Peer& p, double now) {
  if (!p.playback.started()) return;
  p.playback.advance(
      now,
      [&p](SegmentId id) {
        return id >= 0 && static_cast<std::size_t>(id) < p.received.size() &&
               p.received.test(static_cast<std::size_t>(id));
      },
      [this, &p](SegmentId id, double play_time) {
        const auto end_it = session_end_index_.find(id);
        if (end_it != session_end_index_.end()) record_finish(p, end_it->second, play_time);
        const auto start_it = session_end_index_.find(id - 1);
        if (start_it != session_end_index_.end() && p.tracked &&
            p.active_switch == start_it->second) {
          metrics_[start_it->second].s2_start_times.push_back(
              play_time - metrics_[start_it->second].switch_time);
        }
      });
}

void Engine::record_finish(Peer& p, int switch_index, double play_time) {
  if (p.sw_finished || p.active_switch != switch_index) return;
  p.sw_finished = true;
  if (!p.tracked) return;
  SwitchMetrics& m = metrics_[switch_index];
  m.finish_times.push_back(play_time - m.switch_time);
  ++m.finished_s1;
  check_experiment_complete();
}

void Engine::record_prepared(Peer& p, int switch_index, double now) {
  if (p.sw_prepared || p.active_switch != switch_index) return;
  p.sw_prepared = true;
  if (!p.tracked) return;
  SwitchMetrics& m = metrics_[switch_index];
  m.prepared_times.push_back(now - m.switch_time);
  ++m.prepared_s2;
  check_experiment_complete();
}

void Engine::check_experiment_complete() {
  if (experiment_done_ || metrics_.empty()) return;
  const int last = static_cast<int>(metrics_.size()) - 1;
  if (current_switch_ != last) return;
  const SwitchMetrics& m = metrics_[last];
  if (m.finished_s1 + m.censored_finish >= m.tracked &&
      m.prepared_s2 + m.censored_prepare >= m.tracked) {
    experiment_done_ = true;
    sim_.stop();
  }
}

// --------------------------------------------------------------- churn ---

void Engine::churn_step(double now) {
  std::size_t live_peers = 0;
  for (const net::NodeId v : membership_.live_nodes()) {
    if (!peers_[v].is_source) ++live_peers;
  }
  const auto n_leave = static_cast<std::size_t>(
      std::llround(config_.churn_leave_fraction * static_cast<double>(live_peers)));
  const auto n_join = static_cast<std::size_t>(
      std::llround(config_.churn_join_fraction * static_cast<double>(live_peers)));

  // Select distinct non-source victims before mutating the live list.
  std::vector<net::NodeId> victims;
  victims.reserve(n_leave);
  std::size_t attempts = 0;
  while (victims.size() < n_leave && attempts < n_leave * 30 + 30) {
    ++attempts;
    const auto& live = membership_.live_nodes();
    if (live.empty()) break;
    const net::NodeId v = live[static_cast<std::size_t>(
        churn_rng_.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1))];
    if (peers_[v].is_source) continue;
    if (std::find(victims.begin(), victims.end(), v) != victims.end()) continue;
    victims.push_back(v);
  }
  for (const net::NodeId v : victims) handle_leave(v);
  for (std::size_t i = 0; i < n_join; ++i) handle_join();
  (void)now;
}

void Engine::handle_leave(net::NodeId v) {
  Peer& p = peers_[v];
  GS_CHECK(p.alive);
  GS_CHECK(!p.is_source);
  p.alive = false;
  if (p.tick_task) p.tick_task->cancel();
  membership_.leave(v);
  ++stats_.leaves;
  if (p.tracked && p.active_switch >= 0) {
    SwitchMetrics& m = metrics_[p.active_switch];
    if (!p.sw_finished) {
      ++m.censored_finish;
      p.sw_finished = true;
    }
    if (!p.sw_prepared) {
      ++m.censored_prepare;
      p.sw_prepared = true;
    }
    p.tracked = false;
    check_experiment_complete();
  }
}

net::NodeId Engine::handle_join() {
  const net::NodeId v = membership_.join();
  GS_CHECK_EQ(static_cast<std::size_t>(v), peers_.size());
  latency_.add_node(std::min(churn_rng_.pareto(config_.join_ping_min_ms, config_.join_ping_shape),
                             config_.join_ping_cap_ms));
  peers_.emplace_back();
  Peer& p = peers_.back();
  p.id = v;
  util::Rng node_setup = setup_rng_.fork(v);
  p.inbound_rate = config_.inbound.sample(node_setup);
  p.outbound_rate = config_.outbound.sample(node_setup);
  p.in_budget = RateBudget(p.inbound_rate, config_.budget_carry);
  p.buffer = StreamBuffer(config_.buffer_capacity);
  p.playback = Playback(config_.playback_rate);
  p.rng = util::Rng(config_.seed).fork(util::hash_name("peer")).fork(v);
  ++stats_.joins;

  // "A new joining node ... starts its media playback by following its
  // neighbours' current steps" (§5.4): begin at the furthest neighbour
  // playhead instead of fetching the back catalogue.
  SegmentId start = kNoSegment;
  for (const net::NodeId nb : graph_.neighbors(v)) {
    const Peer& n = peers_[nb];
    if (n.alive && n.playback.started()) start = std::max(start, n.playback.cursor());
  }
  if (start == kNoSegment) {
    start = std::max<SegmentId>(
        0, registry_.next_id() - static_cast<SegmentId>(config_.q_consecutive));
  }
  p.start_id = start;

  // Mid-switch joiners participate mechanically but are not tracked.
  if (current_switch_ >= 0 && sessions_[current_switch_].ended() &&
      p.start_id <= sessions_[current_switch_].last) {
    init_switch_counters(p, current_switch_);
  }
  start_peer_tick(p);
  return v;
}

// ------------------------------------------------------------- sampling ---

void Engine::sample_tracks(double now) {
  if (current_switch_ < 0) return;
  const int k = current_switch_;
  SwitchMetrics& m = metrics_[k];
  if (m.finished_s1 + m.censored_finish >= m.tracked &&
      m.prepared_s2 + m.censored_prepare >= m.tracked) {
    return;  // switch complete; the tracks are closed
  }
  TrackPoint point;
  point.time = now - m.switch_time;
  double undelivered = 0.0;
  double delivered = 0.0;
  std::size_t counted = 0;
  const double prefix = static_cast<double>(required_prefix(k));
  for (const Peer& p : peers_) {
    if (!p.tracked || p.active_switch != k || !p.alive) continue;
    ++counted;
    if (p.q0_at_switch > 0) {
      undelivered +=
          static_cast<double>(p.q1_missing) / static_cast<double>(p.q0_at_switch);
    }
    delivered += (prefix - static_cast<double>(p.q2_missing)) / prefix;
  }
  if (counted > 0) {
    point.undelivered_ratio_s1 = undelivered / static_cast<double>(counted);
    point.delivered_ratio_s2 = delivered / static_cast<double>(counted);
  }
  point.live_tracked = counted;
  m.track.push_back(point);
}

// ------------------------------------------------------------------ run ---

void Engine::warm_start_state() {
  const double p_rate = config_.playback_rate;
  const auto history_count =
      static_cast<std::size_t>(std::llround(config_.history_seconds * p_rate));
  if (history_count == 0) return;
  const double t0 = sim_.now();

  // Raw state fill: marks a segment received and buffered without touching
  // playback, announcements or metrics (those do not exist yet).
  auto preload = [](Peer& peer, SegmentId id) {
    if (static_cast<std::size_t>(id) >= peer.received.size()) {
      peer.received.resize(std::max<std::size_t>(static_cast<std::size_t>(id) + 1,
                                                 peer.received.size() * 2 + 64));
    }
    if (peer.received.test(static_cast<std::size_t>(id))) return;
    peer.received.set(static_cast<std::size_t>(id));
    peer.buffer.insert(id);
  };

  // Pre-generate the old source's history, timestamped in the past.
  Peer& src = peers_[sessions_[0].source];
  for (std::size_t i = 0; i < history_count; ++i) {
    const double created = t0 - static_cast<double>(history_count - i) / p_rate;
    const SegmentId id = registry_.append(0, created, kNoSegment);
    if (sessions_[0].first == kNoSegment) sessions_[0].first = id;
    ++stats_.segments_generated;
    preload(src, id);
  }
  const SegmentId head = registry_.next_id() - 1;

  const std::vector<std::size_t> hops = graph_.bfs_hops(sessions_[0].source);
  const double population = static_cast<double>(std::max<std::size_t>(peers_.size(), 2));
  const double backlog_target =
      config_.stable_backlog_scale * std::pow(population, config_.stable_backlog_exponent);
  for (Peer& p : peers_) {
    if (p.is_source) continue;
    // Roughly uniform backlog (see config docs) with mild spread and an
    // optional per-hop component.  The warmup is kept short so spare
    // inbound rate does not drain the seeded state before the switch (in
    // the paper's stable phase the backlog is availability-pinned: "most
    // nodes' data delivery rate cannot catch the media play rate").
    const double hop_count = hops[p.id] == std::numeric_limits<std::size_t>::max()
                                 ? 6.0
                                 : static_cast<double>(hops[p.id]);
    const double backlog = backlog_target * p.rng.uniform(0.85, 1.15) +
                           config_.hop_lag_seconds * hop_count * p_rate +
                           config_.base_lag_segments;
    const double lag_segments = backlog / std::max(0.05, 1.0 - config_.sparse_fill);
    const SegmentId cursor =
        std::max<SegmentId>(0, head - static_cast<SegmentId>(std::llround(lag_segments)));
    // Solid prefix up to the playback position; the lag window beyond it is
    // mostly missing (this IS the node's Q0 backlog) with sparse random
    // coverage for supplier diversity.
    for (SegmentId id = 0; id <= cursor; ++id) preload(p, id);
    for (SegmentId id = cursor + 1; id <= head; ++id) {
      if (p.rng.bernoulli(config_.sparse_fill)) preload(p, id);
    }
    p.start_run = static_cast<std::size_t>(cursor) + 1;
    p.playback.start(cursor, t0);
  }
}

std::vector<SwitchMetrics> Engine::run() {
  GS_CHECK(!sessions_.empty()) << "call set_sources() first";
  GS_CHECK(peers_.empty()) << "run() may only be called once";
  init_peers();
  if (config_.warm_start) warm_start_state();
  start_session(0);
  for (std::size_t i = 0; i < switch_times_.size(); ++i) schedule_switch(static_cast<int>(i));

  if (config_.churn_leave_fraction > 0.0 || config_.churn_join_fraction > 0.0) {
    churn_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, sim_.now() + config_.tau, config_.tau, [this](double now) { churn_step(now); });
  }
  if (!switch_times_.empty()) {
    sampler_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, switch_times_.front(), config_.tau, [this](double now) { sample_tracks(now); });
  }
  if (config_.debug_series) {
    debug_task_ = std::make_unique<sim::PeriodicTask>(
        sim_, sim_.now() + config_.tau, config_.tau, [this](double now) {
          DebugPoint point;
          point.time = now;
          point.head = registry_.next_id() - 1;
          double cursor_gap = 0.0;
          double frontier_gap = 0.0;
          std::size_t counted = 0;
          for (const Peer& p : peers_) {
            if (p.is_source || !p.alive) continue;
            ++counted;
            const SegmentId cursor = p.playback.started() ? p.playback.cursor() : p.start_id;
            cursor_gap += static_cast<double>(point.head - cursor);
            const SegmentId frontier = next_missing(p.received, cursor);
            const double gap = static_cast<double>(point.head - frontier);
            frontier_gap += gap;
            point.max_frontier_gap = std::max(point.max_frontier_gap, gap);
          }
          if (counted > 0) {
            point.mean_cursor_gap = cursor_gap / static_cast<double>(counted);
            point.mean_frontier_gap = frontier_gap / static_cast<double>(counted);
          }
          point.delivered_this_period = stats_.segments_delivered - last_delivered_;
          point.requests_this_period = stats_.requests_issued - last_requests_;
          point.candidates_this_period = candidates_seen_ - last_candidates_;
          point.scheduled_this_period = scheduled_seen_ - last_scheduled_;
          point.old_req_this_period = stats_.old_stream_requests - last_old_req_;
          point.new_req_this_period = stats_.new_stream_requests - last_new_req_;
          last_delivered_ = stats_.segments_delivered;
          last_requests_ = stats_.requests_issued;
          last_candidates_ = candidates_seen_;
          last_scheduled_ = scheduled_seen_;
          last_old_req_ = stats_.old_stream_requests;
          last_new_req_ = stats_.new_stream_requests;
          debug_series_.push_back(point);
        });
  }

  const double stop_at =
      (switch_times_.empty() ? 0.0 : switch_times_.back()) + config_.horizon;
  sim_.run_until(stop_at);

  // Censor peers that never completed within the horizon.
  for (Peer& p : peers_) {
    if (!p.tracked || p.active_switch < 0) continue;
    SwitchMetrics& m = metrics_[p.active_switch];
    if (!p.sw_finished) ++m.censored_finish;
    if (!p.sw_prepared) ++m.censored_prepare;
  }

  // Per-switch overhead ratios from the snapshot deltas.
  overhead_snapshots_.push_back(take_overhead_snapshot());
  for (std::size_t k = 0; k + 1 < overhead_snapshots_.size(); ++k) {
    const OverheadSnapshot& a = overhead_snapshots_[k];
    const OverheadSnapshot& b = overhead_snapshots_[k + 1];
    SwitchMetrics& m = metrics_[k];
    const auto data = static_cast<double>(b.data_bits - a.data_bits);
    if (data > 0) {
      m.overhead_ratio = static_cast<double>(b.buffer_map_bits - a.buffer_map_bits) / data;
      m.control_ratio = static_cast<double>((b.buffer_map_bits - a.buffer_map_bits) +
                                            (b.request_bits - a.request_bits)) /
                        data;
    }
    m.data_segments = b.data_segments - a.data_segments;
  }
  return metrics_;
}

}  // namespace gs::stream
