#include "stream/bandwidth.hpp"

#include <algorithm>

namespace gs::stream {

void RateBudget::replenish(double tau) noexcept {
  tokens_ = std::min(tokens_ + rate_ * tau, carry_periods_ * rate_ * tau);
}

void RateBudget::spend(double amount) noexcept {
  GS_DCHECK(amount <= tokens_ + 1e-9);
  tokens_ = std::max(0.0, tokens_ - amount);
}

BandwidthSampler::BandwidthSampler(double min, double max, double mean)
    : min_(min), max_(max), mean_(mean) {
  GS_CHECK_LT(min, max);
  GS_CHECK_GT(mean, min);
  GS_CHECK_LT(mean, max);
  // Beta(alpha, beta) scaled to [min, max]: fix alpha, solve beta from the
  // mean fraction m = alpha / (alpha + beta).  alpha = 1.2 keeps the density
  // finite at both edges while allowing strong skew.
  const double m = (mean - min) / (max - min);
  alpha_ = 1.2;
  beta_ = alpha_ * (1.0 - m) / m;
}

double BandwidthSampler::sample(util::Rng& rng) const {
  return min_ + (max_ - min_) * rng.beta(alpha_, beta_);
}

BandwidthSampler BandwidthSampler::paper_inbound() {
  // 300 Kbps .. 1 Mbps at 30 Kb/segment -> 10 .. 33.33 seg/s, mean 15.
  return BandwidthSampler(10.0, 1000.0 * 1000.0 / (30.0 * 1024.0), 15.0);
}

BandwidthSampler BandwidthSampler::paper_outbound() { return paper_inbound(); }

}  // namespace gs::stream
