// Supplier-contention colouring for the parallel commit wave.
//
// Members of one sweep wave conflict when their contention sets — the alive
// neighbour sets their plans' queue-delay reads and capacity commits cover —
// intersect.  Members with disjoint sets commute: their commits write
// disjoint capacity state and read nothing the other writes, so they can run
// on concurrent lanes.  The wave therefore colours its members and executes
// one colour class at a time.
//
// The colouring must do more than be proper: classes execute in colour
// order, so whenever members i < j conflict, j's class must come *after*
// i's, or j would commit before a conflicting predecessor and the staleness
// check would read half-updated capacity state.  Plain smallest-free-colour
// greedy violates this (conflicts (0,1) and (1,2) colour as 0,1,0 and class
// 0 runs member 2 before member 1); the *layered* greedy rule
//
//   colour(j) = 1 + max over s in set(j) of last_colour[s]   (-1 when fresh)
//
// guarantees it by construction: every earlier conflicting member already
// stamped a shared supplier, so colour(i) < colour(j).  Properness follows
// for free — two same-colour members sharing a supplier is impossible, the
// later one would have seen the earlier one's stamp.
//
// Per-supplier stamps are epoch-tagged so a wave costs O(sum of set sizes),
// with no O(node_count) clearing; all scratch is reused across waves, so a
// warm colouring allocates nothing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/graph.hpp"

namespace gs::stream {

struct CommitColouring {
  /// colour[slot] for every wave slot passed to colour_wave; slots with a
  /// null contention set get colour 0 (they commit no capacity and read no
  /// backlog, so any class — the first — is safe).
  std::vector<std::uint32_t> colour;
  /// One past the highest colour assigned (the class count).
  std::uint32_t classes = 0;

  /// Colours wave slots [0, count).  `set(slot)` returns the slot's
  /// contention set (a pointer to its alive-neighbour list, ids
  /// < node_count), or nullptr for slots that commit nothing.
  template <typename SetFn>
  void colour_wave(std::size_t count, std::size_t node_count, SetFn&& set) {
    if (last_colour_.size() < node_count) {
      last_colour_.resize(node_count, 0);
      epoch_.resize(node_count, 0);
    }
    ++cur_epoch_;
    if (cur_epoch_ == 0) {  // epoch wrap: invalidate every stale tag
      std::fill(epoch_.begin(), epoch_.end(), 0);
      cur_epoch_ = 1;
    }
    colour.assign(count, 0);
    classes = count > 0 ? 1 : 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::vector<net::NodeId>* contended = set(j);
      if (contended == nullptr) continue;
      std::uint32_t c = 0;
      for (const net::NodeId s : *contended) {
        if (epoch_[s] == cur_epoch_ && last_colour_[s] + 1 > c) c = last_colour_[s] + 1;
      }
      colour[j] = c;
      if (c + 1 > classes) classes = c + 1;
      for (const net::NodeId s : *contended) {
        epoch_[s] = cur_epoch_;
        last_colour_[s] = c;
      }
    }
  }

 private:
  std::vector<std::uint32_t> last_colour_;  ///< colour of s's latest toucher
  std::vector<std::uint32_t> epoch_;        ///< tag validating last_colour_[s]
  std::uint32_t cur_epoch_ = 0;
};

}  // namespace gs::stream
