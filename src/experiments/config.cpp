#include "experiments/config.hpp"

#include <stdexcept>

namespace gs::exp {

std::string_view to_string(TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kSyntheticTrace:
      return "synthetic-trace";
    case TopologyKind::kPreferential:
      return "preferential";
    case TopologyKind::kErdosRenyi:
      return "erdos-renyi";
    case TopologyKind::kWattsStrogatz:
      return "watts-strogatz";
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kTraceFile:
      return "trace-file";
  }
  return "unknown";
}

std::string_view to_string(AlgorithmKind kind) noexcept {
  switch (kind) {
    case AlgorithmKind::kFast:
      return "fast";
    case AlgorithmKind::kNormal:
      return "normal";
  }
  return "unknown";
}

AlgorithmKind algorithm_from_string(std::string_view name) {
  if (name == "fast") return AlgorithmKind::kFast;
  if (name == "normal") return AlgorithmKind::kNormal;
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

stream::SupplierCapacityModel capacity_from_string(std::string_view name) {
  for (const auto kind : {stream::SupplierCapacityModel::kSharedFifo,
                          stream::SupplierCapacityModel::kPerLink,
                          stream::SupplierCapacityModel::kTokenBucket}) {
    if (name == stream::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown capacity model: " + std::string(name));
}

TopologyKind topology_from_string(std::string_view name) {
  if (name == "synthetic-trace") return TopologyKind::kSyntheticTrace;
  if (name == "preferential") return TopologyKind::kPreferential;
  if (name == "erdos-renyi") return TopologyKind::kErdosRenyi;
  if (name == "watts-strogatz") return TopologyKind::kWattsStrogatz;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "trace-file") return TopologyKind::kTraceFile;
  throw std::invalid_argument("unknown topology: " + std::string(name));
}

void Config::validate() const {
  if (node_count < 3) throw std::invalid_argument("node_count must be >= 3");
  if (switch_times.empty()) throw std::invalid_argument("at least one switch required");
  for (std::size_t i = 1; i < switch_times.size(); ++i) {
    if (switch_times[i - 1] >= switch_times[i]) {
      throw std::invalid_argument("switch_times must be strictly increasing");
    }
  }
  if (source_count() >= node_count) throw std::invalid_argument("more sources than nodes");
  if (neighbor_target == 0 || neighbor_target >= node_count) {
    throw std::invalid_argument("neighbor_target must be in [1, node_count)");
  }
  if (topology == TopologyKind::kTraceFile && trace_path.empty()) {
    throw std::invalid_argument("trace_path required for kTraceFile");
  }
  if (engine.warmup <= 0.0) throw std::invalid_argument("warmup must be positive");
  if (engine.tick_shard_size == 0) {
    throw std::invalid_argument("tick_shard_size must be >= 1");
  }
  if (engine.delta_maps && !engine.incremental_availability) {
    throw std::invalid_argument("delta_maps requires incremental_availability");
  }
  if (engine.windowed_availability && !engine.incremental_availability) {
    throw std::invalid_argument("windowed_availability requires incremental_availability");
  }
  if (engine.map_refresh_period == 0) {
    throw std::invalid_argument("map_refresh_period must be >= 1");
  }
  if (engine.token_bucket_burst < 1.0) {
    throw std::invalid_argument("token_bucket_burst must be >= 1");
  }
  // Catches negative CLI values wrapping through size_t; the engine clamps
  // plan lanes to the hardware anyway, so huge counts are never meaningful.
  if (engine.parallel_shards > 4096) {
    throw std::invalid_argument("parallel_shards out of range (0 = sequential, <= 4096)");
  }
  if (switch_times.front() < 0.0) {
    throw std::invalid_argument("first switch must be at t >= 0 (warm-up is t < 0)");
  }
  if (engine.flash_crowd_joins > 0 && engine.flash_crowd_duration < 0.0) {
    throw std::invalid_argument("flash_crowd_duration must be >= 0");
  }
  if (engine.cdn_assist) {
    if (engine.cdn_assist_rate <= 0.0) {
      throw std::invalid_argument("cdn_assist_rate must be positive");
    }
    if (engine.cdn_assist_latency_ms < 0.0) {
      throw std::invalid_argument("cdn_assist_latency_ms must be >= 0");
    }
    if (engine.cdn_assist_horizon < 0.0) {
      throw std::invalid_argument("cdn_assist_horizon must be >= 0");
    }
    if (engine.cdn_assist_resume_s < 0.0 ||
        engine.cdn_assist_pause_s < engine.cdn_assist_resume_s) {
      throw std::invalid_argument("need cdn_assist_pause_s >= cdn_assist_resume_s >= 0");
    }
  }
}

Config Config::paper_static(std::size_t node_count, AlgorithmKind algorithm, std::uint64_t seed) {
  Config config;
  config.node_count = node_count;
  config.algorithm = algorithm;
  config.seed = seed;
  config.engine.seed = seed;
  return config;
}

Config Config::paper_dynamic(std::size_t node_count, AlgorithmKind algorithm, std::uint64_t seed) {
  Config config = paper_static(node_count, algorithm, seed);
  config.enable_churn(0.05);
  return config;
}

}  // namespace gs::exp
