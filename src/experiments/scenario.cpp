#include "experiments/scenario.hpp"

#include <algorithm>

#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"
#include "net/topology.hpp"
#include "util/check.hpp"

namespace gs::exp {
namespace {

/// Per-node pings for generator topologies (trace topologies carry their
/// own); same long-tailed model as the trace synthesizer.
std::vector<double> synthetic_pings(std::size_t n, const Config& config, util::Rng& rng) {
  std::vector<double> pings(n);
  for (auto& ping : pings) {
    ping = std::min(rng.pareto(config.engine.join_ping_min_ms, config.engine.join_ping_shape),
                    config.engine.join_ping_cap_ms);
  }
  return pings;
}

}  // namespace

BuiltScenario build_scenario(const Config& config) {
  config.validate();
  util::Rng rng(util::splitmix64(config.seed ^ util::hash_name("scenario")));
  BuiltScenario scenario;

  switch (config.topology) {
    case TopologyKind::kSyntheticTrace: {
      net::TraceSynthesisOptions options;
      options.node_count = config.node_count;
      util::Rng trace_rng = rng.fork(util::hash_name("trace"));
      const net::Trace trace = net::synthesize_trace(options, trace_rng);
      scenario.graph = trace.to_graph();
      std::vector<double> pings(trace.nodes.size());
      for (std::size_t i = 0; i < trace.nodes.size(); ++i) pings[i] = trace.nodes[i].ping_ms;
      scenario.latency = net::LatencyModel(std::move(pings));
      break;
    }
    case TopologyKind::kTraceFile: {
      const net::Trace trace = net::parse_trace_file(config.trace_path);
      GS_CHECK_GE(trace.node_count(), 3u);
      scenario.graph = trace.to_graph();
      std::vector<double> pings(trace.nodes.size());
      for (std::size_t i = 0; i < trace.nodes.size(); ++i) pings[i] = trace.nodes[i].ping_ms;
      scenario.latency = net::LatencyModel(std::move(pings));
      break;
    }
    case TopologyKind::kPreferential: {
      util::Rng topo_rng = rng.fork(util::hash_name("topo"));
      scenario.graph = net::preferential_attachment(config.node_count, 2, topo_rng);
      scenario.latency =
          net::LatencyModel(synthetic_pings(config.node_count, config, topo_rng));
      break;
    }
    case TopologyKind::kErdosRenyi: {
      util::Rng topo_rng = rng.fork(util::hash_name("topo"));
      scenario.graph =
          net::erdos_renyi(config.node_count, config.node_count * 2, topo_rng);
      scenario.latency =
          net::LatencyModel(synthetic_pings(config.node_count, config, topo_rng));
      break;
    }
    case TopologyKind::kWattsStrogatz: {
      util::Rng topo_rng = rng.fork(util::hash_name("topo"));
      scenario.graph = net::watts_strogatz(config.node_count, 2, 0.2, topo_rng);
      scenario.latency =
          net::LatencyModel(synthetic_pings(config.node_count, config, topo_rng));
      break;
    }
    case TopologyKind::kRing: {
      util::Rng topo_rng = rng.fork(util::hash_name("topo"));
      scenario.graph = net::ring_with_chords(config.node_count, config.node_count / 2, topo_rng);
      scenario.latency =
          net::LatencyModel(synthetic_pings(config.node_count, config, topo_rng));
      break;
    }
  }

  // The paper's repair step: "we add random edges into each overlay to let
  // every node hold M=5 connected neighbors".
  util::Rng repair_rng = rng.fork(util::hash_name("repair"));
  net::repair_min_degree(scenario.graph, config.neighbor_target, repair_rng);

  // Serial sources: distinct random nodes.
  util::Rng source_rng = rng.fork(util::hash_name("sources"));
  const auto picks =
      source_rng.sample_without_replacement(scenario.graph.node_count(), config.source_count());
  scenario.sources.reserve(picks.size());
  for (const std::size_t pick : picks) {
    scenario.sources.push_back(static_cast<net::NodeId>(pick));
  }
  return scenario;
}

std::shared_ptr<stream::SchedulerStrategy> make_strategy(const Config& config) {
  switch (config.algorithm) {
    case AlgorithmKind::kFast:
      return std::make_shared<core::FastSwitchScheduler>(config.priority);
    case AlgorithmKind::kNormal:
      return std::make_shared<core::NormalSwitchScheduler>(config.priority);
  }
  GS_CHECK(false) << "unreachable algorithm kind";
  return nullptr;
}

std::unique_ptr<stream::Engine> make_engine(const Config& config) {
  BuiltScenario scenario = build_scenario(config);
  stream::EngineConfig engine_config = config.engine;
  engine_config.membership_degree = config.neighbor_target;
  engine_config.seed = config.seed;
  auto engine = std::make_unique<stream::Engine>(std::move(scenario.graph),
                                                 std::move(scenario.latency), engine_config,
                                                 make_strategy(config));
  engine->set_sources(std::move(scenario.sources), config.switch_times);
  return engine;
}

}  // namespace gs::exp
