// Experiment configuration with the paper's §5.1 defaults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/priority.hpp"
#include "stream/engine.hpp"

namespace gs::exp {

enum class TopologyKind : std::uint8_t {
  kSyntheticTrace,  ///< Gnutella-crawl-like (power-law + pings); the default
  kPreferential,    ///< raw preferential attachment
  kErdosRenyi,
  kWattsStrogatz,
  kRing,
  kTraceFile,  ///< load a trace file (path in `trace_path`)
};

enum class AlgorithmKind : std::uint8_t {
  kFast,    ///< the paper's Algorithm 1
  kNormal,  ///< strict S1-first baseline
};

[[nodiscard]] std::string_view to_string(TopologyKind kind) noexcept;
[[nodiscard]] std::string_view to_string(AlgorithmKind kind) noexcept;
// SupplierCapacityModel's to_string lives with the enum in
// stream/transfer_plane.hpp (found via ADL).
[[nodiscard]] AlgorithmKind algorithm_from_string(std::string_view name);
[[nodiscard]] TopologyKind topology_from_string(std::string_view name);
[[nodiscard]] stream::SupplierCapacityModel capacity_from_string(std::string_view name);

struct Config {
  std::size_t node_count = 1000;
  TopologyKind topology = TopologyKind::kSyntheticTrace;
  std::string trace_path;          ///< for kTraceFile
  std::size_t neighbor_target = 5; ///< M: repair/maintenance degree

  stream::EngineConfig engine{};   ///< paper defaults (tau, p, B, Q, Qs, ...)
  AlgorithmKind algorithm = AlgorithmKind::kFast;
  core::PriorityParams priority{};

  /// Serial sources: k switches need k+1 sources.  Defaults to the paper's
  /// single switch at t = 0.
  std::vector<double> switch_times = {0.0};

  std::uint64_t seed = 1;

  [[nodiscard]] std::size_t source_count() const noexcept { return switch_times.size() + 1; }

  /// Applies the paper's dynamic-environment churn (5% leave + 5% join per
  /// scheduling period).
  void enable_churn(double fraction = 0.05) {
    engine.churn_leave_fraction = fraction;
    engine.churn_join_fraction = fraction;
  }

  /// Turns on batched tick dispatch (`--batch-dispatch` in the CLIs).
  /// Observable behaviour is unchanged — fixed-seed metrics are
  /// bit-identical either way — only simulator event counts drop.
  void enable_batch_dispatch(bool on = true) { engine.batch_dispatch = on; }

  /// Selects the timing-wheel event plane (`--timing-wheel`; on by
  /// default, pass false for the binary-heap baseline).  Pure mechanism:
  /// pop order is bit-identical on either backend, so fixed-seed metrics
  /// never change; only schedule/pop cost and the wheel telemetry
  /// (EngineStats::events_wheeled and friends) do.
  void enable_timing_wheel(bool on = true) { engine.timing_wheel = on; }

  /// Toggles the plan work-set plane (`--plan-gate`; on by default, pass
  /// false for the pre-gate baseline): the quiescence gate that skips the
  /// candidate build for peers with no missing ∧ supplied work, plus the
  /// neighbour-major candidate enumeration.  Pure mechanism: fixed-seed
  /// metrics are bit-identical either way; only plan-phase work and the
  /// gate telemetry (EngineStats::plans_gated/plans_built) change.
  /// `legacy` additionally maintains a gate-only availability index under
  /// the legacy rescan scheduler (`--plan-gate-legacy`); `recheck` turns on
  /// the debug cross-check that re-builds gated plans and asserts
  /// emptiness (`--plan-gate-recheck`).
  void enable_plan_gate(bool on = true, bool legacy = false, bool recheck = false) {
    engine.plan_gate = on;
    engine.plan_gate_legacy = on && legacy;
    engine.plan_gate_recheck = on && recheck;
  }

  /// Turns on the incremental availability plane
  /// (`--incremental-availability`).  Like batch dispatch this is pure
  /// mechanism: fixed-seed metrics are bit-identical either way; only the
  /// candidate-scan work drops.  `delta` additionally charges availability
  /// gossip as BufferMapDelta exchanges (`--delta-maps`) — an accounting
  /// change that lowers the overhead-ratio metric by design.
  void enable_incremental_availability(bool on = true, bool delta = false) {
    engine.incremental_availability = on;
    engine.delta_maps = on && delta;
  }

  /// Turns on windowed availability views (`--windowed-availability`):
  /// supplier counts keyed on a sliding window anchored at the playback
  /// cursor, bounding per-view memory at O(buffer_capacity).  Implies the
  /// incremental availability plane.  Pure mechanism: fixed-seed metrics
  /// are bit-identical either way.
  void enable_windowed_availability(bool on = true) {
    engine.windowed_availability = on;
    if (on) engine.incremental_availability = true;
  }

  /// Turns on the sharded parallel simulation core with `shards` plan
  /// lanes / event-queue shards (`--parallel-shards`; 0 = sequential).
  /// Pure mechanism: fixed-seed metrics are bit-identical at every shard
  /// count; only wall-clock and the shard diagnostics change.  Implies
  /// batched dispatch.
  void enable_parallel_shards(std::size_t shards) { engine.parallel_shards = shards; }

  /// Disables (or re-enables) the parallel commit + book passes of the
  /// sharded core (`--sequential-commit`; on by default with
  /// parallel_shards).  Pure mechanism: fixed-seed metrics are
  /// bit-identical either way; only wall clock and the commit-wave
  /// diagnostics change.
  void enable_parallel_commit(bool on = true) { engine.parallel_commit = on; }

  /// Turns on the million-peer memory plane (`--peer-pool`): flat
  /// open-addressed pending maps, ring-backed stream buffers, the bounded
  /// arrival ring and the per-tick plan arena.  Pure mechanism: fixed-seed
  /// metrics are bit-identical either way; only bytes/peer and allocation
  /// traffic change (see EngineStats::bytes_per_peer).
  void enable_peer_pool(bool on = true) { engine.peer_pool = on; }

  /// Turns on the CDN-assisted fast switch (`--cdn-assist`): a capacity-
  /// limited patch source bursts the head of the new session to switching
  /// peers and hands off once their gossip suppliers cover the window.
  /// Unlike the mechanism flags above this changes dynamics *by design*
  /// (that is the point of the assist); with it off the plane is never
  /// constructed and fixed-seed metrics stay bit-identical.  Tune via
  /// engine.cdn_assist_* (rate, latency, pause/resume leads, span).
  void enable_cdn_assist(bool on = true) { engine.cdn_assist = on; }

  /// Configures the flash-crowd scenario (`--flash-crowd-joins`): `joins`
  /// extra peers admitted at a uniform pace over `duration` seconds
  /// starting `start` seconds after the first switch.
  void enable_flash_crowd(std::size_t joins, double start = 0.5, double duration = 2.0) {
    engine.flash_crowd_joins = joins;
    engine.flash_crowd_start = start;
    engine.flash_crowd_duration = duration;
  }

  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;

  /// The paper's static-environment setup at a given scale.
  [[nodiscard]] static Config paper_static(std::size_t node_count, AlgorithmKind algorithm,
                                           std::uint64_t seed = 1);
  /// The paper's dynamic-environment setup (5%/5% churn per period).
  [[nodiscard]] static Config paper_dynamic(std::size_t node_count, AlgorithmKind algorithm,
                                            std::uint64_t seed = 1);
};

}  // namespace gs::exp
