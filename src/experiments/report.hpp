// Paper-style console reporters and CSV dumps for the figure benches.
#pragma once

#include <string>
#include <vector>

#include "experiments/runner.hpp"
#include "stream/metrics.hpp"

namespace gs::exp {

/// Fig. 5 / Fig. 9: the two ratio tracks, one row per period.
void print_ratio_tracks(const std::string& title, const stream::SwitchMetrics& fast,
                        const stream::SwitchMetrics& normal);

/// Fig. 6 / Fig. 10: the four bars per size (normal finish, fast finish,
/// fast prepare, normal prepare), in the paper's left-to-right order.
void print_times_table(const std::string& title, const std::vector<ComparisonPoint>& points);

/// Fig. 7 / Fig. 11: average switch time per algorithm plus reduction ratio.
void print_switch_reduction(const std::string& title, const std::vector<ComparisonPoint>& points);

/// Fig. 8 / Fig. 12: communication overhead per algorithm.
void print_overhead(const std::string& title, const std::vector<ComparisonPoint>& points);

/// Optional CSV dumps (one row per size / per track point).
void write_comparison_csv(const std::string& path, const std::vector<ComparisonPoint>& points);
void write_tracks_csv(const std::string& path, const stream::SwitchMetrics& fast,
                      const stream::SwitchMetrics& normal);

}  // namespace gs::exp
