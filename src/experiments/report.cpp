#include "experiments/report.hpp"

#include <algorithm>
#include <cstdio>

#include "util/csv.hpp"

namespace gs::exp {
namespace {

void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Looks up the track point nearest to `time` (tracks are sampled per
/// period, but completion can end them early).
double track_value_at(const std::vector<stream::TrackPoint>& track, double time, bool delivered) {
  if (track.empty()) return delivered ? 1.0 : 0.0;
  const stream::TrackPoint* best = &track.front();
  for (const auto& point : track) {
    if (std::abs(point.time - time) < std::abs(best->time - time)) best = &point;
  }
  if (time > track.back().time + 0.5) {
    // Past the recorded window: the switch completed.
    return delivered ? 1.0 : 0.0;
  }
  return delivered ? best->delivered_ratio_s2 : best->undelivered_ratio_s1;
}

}  // namespace

void print_ratio_tracks(const std::string& title, const stream::SwitchMetrics& fast,
                        const stream::SwitchMetrics& normal) {
  print_header(title);
  const double end = std::max(fast.track.empty() ? 0.0 : fast.track.back().time,
                              normal.track.empty() ? 0.0 : normal.track.back().time);
  std::printf("%8s  %18s  %18s  %18s  %18s\n", "time(s)", "undeliv_S1(norm)",
              "undeliv_S1(fast)", "deliv_S2(norm)", "deliv_S2(fast)");
  for (double t = 0.0; t <= end + 0.5; t += 1.0) {
    std::printf("%8.1f  %18.4f  %18.4f  %18.4f  %18.4f\n", t,
                track_value_at(normal.track, t, false), track_value_at(fast.track, t, false),
                track_value_at(normal.track, t, true), track_value_at(fast.track, t, true));
  }
}

void print_times_table(const std::string& title, const std::vector<ComparisonPoint>& points) {
  print_header(title);
  std::printf("%8s  %18s  %18s  %18s  %18s\n", "nodes", "finish_S1(norm)", "finish_S1(fast)",
              "prepare_S2(fast)", "prepare_S2(norm)");
  for (const auto& p : points) {
    std::printf("%8zu  %18.2f  %18.2f  %18.2f  %18.2f\n", p.node_count, p.normal_finish_time,
                p.fast_finish_time, p.fast_switch_time, p.normal_switch_time);
  }
}

void print_switch_reduction(const std::string& title,
                            const std::vector<ComparisonPoint>& points) {
  print_header(title);
  std::printf("%8s  %20s  %20s  %12s\n", "nodes", "switch_time(normal)", "switch_time(fast)",
              "reduction");
  for (const auto& p : points) {
    std::printf("%8zu  %14.2f±%4.2f  %14.2f±%4.2f  %12.3f\n", p.node_count,
                p.normal_switch_time, p.normal_switch_ci, p.fast_switch_time, p.fast_switch_ci,
                p.reduction());
  }
}

void print_overhead(const std::string& title, const std::vector<ComparisonPoint>& points) {
  print_header(title);
  std::printf("%8s  %18s  %18s\n", "nodes", "overhead(fast)", "overhead(normal)");
  for (const auto& p : points) {
    std::printf("%8zu  %18.5f  %18.5f\n", p.node_count, p.fast_overhead, p.normal_overhead);
  }
}

void write_comparison_csv(const std::string& path, const std::vector<ComparisonPoint>& points) {
  util::CsvWriter csv(path);
  csv.write_row({"nodes", "trials", "normal_switch_time", "fast_switch_time",
                 "normal_finish_time", "fast_finish_time", "normal_overhead", "fast_overhead",
                 "reduction"});
  for (const auto& p : points) {
    csv.write_row({std::to_string(p.node_count), std::to_string(p.trials),
                   std::to_string(p.normal_switch_time), std::to_string(p.fast_switch_time),
                   std::to_string(p.normal_finish_time), std::to_string(p.fast_finish_time),
                   std::to_string(p.normal_overhead), std::to_string(p.fast_overhead),
                   std::to_string(p.reduction())});
  }
}

void write_tracks_csv(const std::string& path, const stream::SwitchMetrics& fast,
                      const stream::SwitchMetrics& normal) {
  util::CsvWriter csv(path);
  csv.write_row({"time", "undelivered_s1_normal", "undelivered_s1_fast", "delivered_s2_normal",
                 "delivered_s2_fast"});
  const double end = std::max(fast.track.empty() ? 0.0 : fast.track.back().time,
                              normal.track.empty() ? 0.0 : normal.track.back().time);
  for (double t = 0.0; t <= end + 0.5; t += 1.0) {
    csv.write_row({std::to_string(t), std::to_string(track_value_at(normal.track, t, false)),
                   std::to_string(track_value_at(fast.track, t, false)),
                   std::to_string(track_value_at(normal.track, t, true)),
                   std::to_string(track_value_at(fast.track, t, true))});
  }
}

}  // namespace gs::exp
