// Experiment drivers: single runs, paired fast/normal comparisons, and
// parallel sweeps over network sizes (the shape of every figure in §5).
#pragma once

#include <vector>

#include "experiments/config.hpp"
#include "stream/metrics.hpp"

namespace gs::exp {

/// Result of one simulation run.
struct RunResult {
  Config config;  ///< the exact configuration that ran
  std::vector<stream::SwitchMetrics> switches;
  stream::EngineStats stats;
  double wall_seconds = 0.0;

  /// First switch's metrics (the figures use a single switch).
  [[nodiscard]] const stream::SwitchMetrics& primary() const;
};

/// Builds and runs one engine.
[[nodiscard]] RunResult run_once(const Config& config);

/// Paired fast-vs-normal aggregate at one network size.  Each trial t runs
/// both algorithms on the *same* scenario seed (same topology, bandwidths,
/// churn schedule), so the comparison is paired; trial metrics are averaged.
struct ComparisonPoint {
  std::size_t node_count = 0;
  std::size_t trials = 0;

  double fast_switch_time = 0.0;    ///< avg preparing time of S2 (fast)
  double normal_switch_time = 0.0;  ///< avg preparing time of S2 (normal)
  double fast_finish_time = 0.0;    ///< avg finishing time of S1 (fast)
  double normal_finish_time = 0.0;  ///< avg finishing time of S1 (normal)
  double fast_overhead = 0.0;
  double normal_overhead = 0.0;
  double fast_switch_ci = 0.0;   ///< 95% CI half-width over trials
  double normal_switch_ci = 0.0;

  /// (normal - fast) / normal of the average switch times.
  [[nodiscard]] double reduction() const;
};

/// Runs `trials` paired comparisons at `node_count`, in parallel on the
/// global thread pool.  `base` supplies everything but size/algorithm/seed.
[[nodiscard]] ComparisonPoint compare_at_size(const Config& base, std::size_t node_count,
                                              std::size_t trials);

/// The figure sweep: one ComparisonPoint per size (sizes as in Fig. 6-8:
/// 100, 500, 1000, 2000, 4000, 8000).
[[nodiscard]] std::vector<ComparisonPoint> sweep_sizes(const Config& base,
                                                       const std::vector<std::size_t>& sizes,
                                                       std::size_t trials);

/// The paper's size axis.
[[nodiscard]] std::vector<std::size_t> paper_sizes();

}  // namespace gs::exp
