// Builds a runnable scenario (overlay + latency + sources + strategy) from
// a Config, mirroring the paper's methodology: take a crawl-like topology,
// add random edges until every node holds M connected neighbours, assign
// bandwidths, pick the serial sources.
#pragma once

#include <memory>

#include "experiments/config.hpp"
#include "net/latency.hpp"
#include "net/trace.hpp"
#include "stream/engine.hpp"

namespace gs::exp {

struct BuiltScenario {
  net::Graph graph;
  net::LatencyModel latency;
  std::vector<net::NodeId> sources;
};

/// Deterministic in (config.seed, config fields).
[[nodiscard]] BuiltScenario build_scenario(const Config& config);

/// Instantiates the configured scheduling strategy.
[[nodiscard]] std::shared_ptr<stream::SchedulerStrategy> make_strategy(const Config& config);

/// Convenience: fully wired engine, ready to run().
[[nodiscard]] std::unique_ptr<stream::Engine> make_engine(const Config& config);

}  // namespace gs::exp
