#include "experiments/runner.hpp"

#include <chrono>

#include "experiments/scenario.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace gs::exp {

const stream::SwitchMetrics& RunResult::primary() const {
  GS_CHECK(!switches.empty());
  return switches.front();
}

RunResult run_once(const Config& config) {
  const auto start = std::chrono::steady_clock::now();
  auto engine = make_engine(config);
  RunResult result;
  result.config = config;
  result.switches = engine->run();
  result.stats = engine->stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

double ComparisonPoint::reduction() const {
  return stream::reduction_ratio(normal_switch_time, fast_switch_time);
}

ComparisonPoint compare_at_size(const Config& base, std::size_t node_count, std::size_t trials) {
  GS_CHECK_GE(trials, 1u);
  struct TrialOutcome {
    double fast_switch = 0.0, normal_switch = 0.0;
    double fast_finish = 0.0, normal_finish = 0.0;
    double fast_overhead = 0.0, normal_overhead = 0.0;
  };
  std::vector<TrialOutcome> outcomes(trials);

  util::global_pool().parallel_for(trials * 2, [&](std::size_t task) {
    const std::size_t trial = task / 2;
    const bool fast = (task % 2) == 0;
    Config config = base;
    config.node_count = node_count;
    config.algorithm = fast ? AlgorithmKind::kFast : AlgorithmKind::kNormal;
    // Same scenario seed for both algorithms of a trial: paired comparison.
    config.seed = util::splitmix64(base.seed ^ util::splitmix64(trial + 1));
    config.engine.seed = config.seed;
    const RunResult result = run_once(config);
    const stream::SwitchMetrics& m = result.primary();
    TrialOutcome& out = outcomes[trial];
    if (fast) {
      out.fast_switch = m.avg_prepared_time();
      out.fast_finish = m.avg_finish_time();
      out.fast_overhead = m.overhead_ratio;
    } else {
      out.normal_switch = m.avg_prepared_time();
      out.normal_finish = m.avg_finish_time();
      out.normal_overhead = m.overhead_ratio;
    }
  });

  ComparisonPoint point;
  point.node_count = node_count;
  point.trials = trials;
  std::vector<double> fast_switches;
  std::vector<double> normal_switches;
  util::RunningStats fs;
  util::RunningStats ns;
  util::RunningStats ff;
  util::RunningStats nf;
  util::RunningStats fo;
  util::RunningStats no;
  for (const TrialOutcome& out : outcomes) {
    fs.add(out.fast_switch);
    ns.add(out.normal_switch);
    ff.add(out.fast_finish);
    nf.add(out.normal_finish);
    fo.add(out.fast_overhead);
    no.add(out.normal_overhead);
    fast_switches.push_back(out.fast_switch);
    normal_switches.push_back(out.normal_switch);
  }
  point.fast_switch_time = fs.mean();
  point.normal_switch_time = ns.mean();
  point.fast_finish_time = ff.mean();
  point.normal_finish_time = nf.mean();
  point.fast_overhead = fo.mean();
  point.normal_overhead = no.mean();
  point.fast_switch_ci = util::ci95_halfwidth(fast_switches);
  point.normal_switch_ci = util::ci95_halfwidth(normal_switches);
  return point;
}

std::vector<ComparisonPoint> sweep_sizes(const Config& base, const std::vector<std::size_t>& sizes,
                                         std::size_t trials) {
  std::vector<ComparisonPoint> points;
  points.reserve(sizes.size());
  for (const std::size_t n : sizes) points.push_back(compare_at_size(base, n, trials));
  return points;
}

std::vector<std::size_t> paper_sizes() { return {100, 500, 1000, 2000, 4000, 8000}; }

}  // namespace gs::exp
