#include "util/rng.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace gs::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept { return std::rotl(x, k); }

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  seed_ = seed;
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s = splitmix64(s);
    word = s;
  }
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t key) const noexcept {
  return Rng(splitmix64(seed_ ^ splitmix64(key)));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  GS_DCHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  GS_DCHECK(lambda > 0);
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; draws until the radius is nonzero.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::gamma(double shape) noexcept {
  GS_DCHECK(shape > 0);
  // Marsaglia-Tsang for shape >= 1; boost trick for shape < 1.
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double Rng::beta(double alpha, double b) noexcept {
  const double x = gamma(alpha);
  const double y = gamma(b);
  return x / (x + y);
}

double Rng::pareto(double x_m, double alpha) noexcept {
  GS_DCHECK(x_m > 0 && alpha > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) noexcept {
  GS_DCHECK(k <= n);
  // Floyd's algorithm: O(k) expected insertions, no O(n) scratch.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(j)));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

}  // namespace gs::util
