// Dynamic bitset backing the 600-bit buffer-availability maps.
//
// std::vector<bool> has no word-level access and std::bitset is fixed-size;
// buffer maps need runtime size plus fast popcount and byte serialization
// for the wire format, hence this small purpose-built type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace gs::util {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits) { resize(bits); }

  /// Resizes, preserving existing bits (new bits are zero).
  void resize(std::size_t bits);
  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  // set/test/extract_word are defined inline: they sit on the per-delta and
  // per-probe hot paths of the availability plane, where an out-of-line
  // call costs as much as the word access itself.
  void set(std::size_t pos, bool value = true) {
    GS_CHECK_LT(pos, bits_);
    const std::uint64_t mask = 1ULL << (pos % kWordBits);
    if (value) {
      words_[pos / kWordBits] |= mask;
    } else {
      words_[pos / kWordBits] &= ~mask;
    }
  }
  void reset(std::size_t pos) { set(pos, false); }
  void reset_all() noexcept;
  [[nodiscard]] bool test(std::size_t pos) const {
    GS_CHECK_LT(pos, bits_);
    return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1ULL;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// Index of the first set bit at or after `from`; size() when none.
  [[nodiscard]] std::size_t find_first(std::size_t from = 0) const noexcept;
  /// Index of the first clear bit at or after `from`; size() when none.
  [[nodiscard]] std::size_t find_first_clear(std::size_t from = 0) const noexcept;

  /// First position >= `from` that is set in `set_in` and clear in
  /// `clear_in`; set_in.size() when none.  Sizes may differ: positions past
  /// either bitset's size read as clear.  Word-at-a-time, so callers can
  /// intersect (e.g. "supplied and not yet received") without materializing
  /// a combined bitset.
  [[nodiscard]] static std::size_t first_set_and_clear(const DynamicBitset& set_in,
                                                       const DynamicBitset& clear_in,
                                                       std::size_t from) noexcept;

  /// first_set_and_clear for a *windowed* `set_in`: bit j of `set_in`
  /// represents absolute position `offset + j` (offset must be a multiple
  /// of 64 so the two bitsets stay word-aligned), while `clear_in` is
  /// absolute-indexed.  `from` is absolute; positions below `offset` are
  /// skipped.  Returns the absolute position, or `offset + set_in.size()`
  /// when none.  Backs the sliding availability window: the supplied ring
  /// can intersect with the absolute received set without rebasing either.
  [[nodiscard]] static std::size_t first_set_and_clear_offset(const DynamicBitset& set_in,
                                                              std::size_t offset,
                                                              const DynamicBitset& clear_in,
                                                              std::size_t from) noexcept;

  /// Discards the lowest `bits` bits and shifts the rest down; size is
  /// unchanged and the vacated top bits read clear.  `bits` must be a
  /// multiple of 64 (the shift is a word move, which is what keeps the
  /// sliding availability window cheap).
  void shift_down(std::size_t bits);

  /// 64 bits starting at `from` (unaligned); positions past size() read 0.
  /// Lets callers diff/scan windows word-at-a-time at arbitrary offsets.
  [[nodiscard]] std::uint64_t extract_word(std::size_t from) const noexcept {
    if (from >= bits_) return 0;
    const std::size_t word = from / kWordBits;
    const std::size_t shift = from % kWordBits;
    // trim() keeps bits past size() clear, so no tail masking is needed.
    std::uint64_t out = words_[word] >> shift;
    if (shift != 0 && word + 1 < words_.size()) out |= words_[word + 1] << (kWordBits - shift);
    return out;
  }

  /// A new `bits`-bit bitset holding src[from, from + bits); positions past
  /// src's size read 0.  Word-at-a-time window extraction.
  [[nodiscard]] static DynamicBitset copy_window(const DynamicBitset& src, std::size_t from,
                                                 std::size_t bits);

  /// In-place copy_window: this bitset becomes src[from, from + bits),
  /// reusing the existing word storage so steady-state callers (the advert
  /// scratch maps) allocate nothing.  `src` must not alias this bitset.
  void assign_window(const DynamicBitset& src, std::size_t from, std::size_t bits);

  /// Heap bytes owned by the word array.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator|=(const DynamicBitset& other);

  [[nodiscard]] bool operator==(const DynamicBitset& other) const noexcept = default;

  /// Serializes to ceil(size/8) bytes, LSB-first within each byte.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;
  /// Rebuilds a bitset of `bits` bits from `to_bytes()` output.
  [[nodiscard]] static DynamicBitset from_bytes(const std::vector<std::uint8_t>& bytes,
                                                std::size_t bits);

 private:
  static constexpr std::size_t kWordBits = 64;
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }
  /// Clears any bits beyond size() in the last word.
  void trim() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t bits_ = 0;
};

}  // namespace gs::util
