#include "util/flags.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gs::util {

Flags& Flags::define(std::string name, std::string default_value, std::string help) {
  Entry entry;
  entry.value = default_value;
  entry.default_value = std::move(default_value);
  entry.help = std::move(help);
  entries_.insert_or_assign(std::move(name), std::move(entry));
  return *this;
}

Flags& Flags::define_int(std::string name, std::int64_t default_value, std::string help) {
  return define(std::move(name), std::to_string(default_value), std::move(help));
}

Flags& Flags::define_double(std::string name, double default_value, std::string help) {
  std::ostringstream out;
  out << default_value;
  return define(std::move(name), out.str(), std::move(help));
}

Flags& Flags::define_bool(std::string name, bool default_value, std::string help) {
  return define(std::move(name), default_value ? "true" : "false", std::move(help));
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stdout);
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) throw std::runtime_error("unknown flag --" + name);
    if (!value) {
      // Booleans may be bare; other types consume the next argv element.
      const bool is_bool =
          it->second.default_value == "true" || it->second.default_value == "false";
      if (is_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::runtime_error("flag --" + name + " expects a value");
      }
    }
    it->second.value = *value;
  }
  return true;
}

const Flags::Entry& Flags::find(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) throw std::runtime_error("flag not defined: " + std::string(name));
  return it->second;
}

std::string Flags::get(std::string_view name) const { return find(name).value; }

std::int64_t Flags::get_int(std::string_view name) const {
  const auto& entry = find(name);
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(entry.value, &pos);
    if (pos != entry.value.size()) throw std::invalid_argument(entry.value);
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + std::string(name) + ": not an integer: " + entry.value);
  }
}

double Flags::get_double(std::string_view name) const {
  const auto& entry = find(name);
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(entry.value, &pos);
    if (pos != entry.value.size()) throw std::invalid_argument(entry.value);
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("flag --" + std::string(name) + ": not a number: " + entry.value);
  }
}

bool Flags::get_bool(std::string_view name) const {
  const auto& value = find(name).value;
  if (value == "true" || value == "1" || value == "yes") return true;
  if (value == "false" || value == "0" || value == "no") return false;
  throw std::runtime_error("flag --" + std::string(name) + ": not a boolean: " + value);
}

std::string Flags::usage(std::string_view program) const {
  std::ostringstream out;
  out << "Usage: " << program << " [flags]\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << " (default: " << entry.default_value << ")  " << entry.help << "\n";
  }
  return out.str();
}

}  // namespace gs::util
