#include "util/meminfo.hpp"

#include <cstdio>
#include <cstring>

namespace gs::util {
namespace {

/// Reads a "<field>:  <kB> kB" line from /proc/self/status; 0 if absent.
std::uint64_t status_field_bytes(const char* field) noexcept {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  const std::size_t field_len = std::strlen(field);
  std::uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) != 0 || line[field_len] != ':') continue;
    unsigned long long kb = 0;
    if (std::sscanf(line + field_len + 1, "%llu", &kb) == 1) {
      bytes = static_cast<std::uint64_t>(kb) * 1024;
    }
    break;
  }
  std::fclose(f);
  return bytes;
#else
  (void)field;
  return 0;
#endif
}

}  // namespace

std::uint64_t peak_rss_bytes() noexcept { return status_field_bytes("VmHWM"); }

std::uint64_t current_rss_bytes() noexcept { return status_field_bytes("VmRSS"); }

}  // namespace gs::util
