#include "util/csv.hpp"

#include <stdexcept>

namespace gs::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path, std::ios::trunc) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

void CsvWriter::write_fields(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (std::string_view f : fields) copy.emplace_back(f);
  write_fields(copy);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) { write_fields(fields); }

void CsvWriter::flush() { out_.flush(); }

}  // namespace gs::util
