// Bump/arena allocation for per-tick transients.
//
// The sequential tick pipeline allocates short-lived supplier lists and
// gossip scratch every period and frees them all before the next one.  An
// Arena turns that churn into pointer bumps: allocate() carves from chunked
// slabs, deallocation is a no-op, and reset() rewinds to empty while keeping
// the slabs for reuse — steady-state ticks allocate nothing from the heap.
//
// ArenaAllocator<T> adapts an Arena to the std allocator interface so
// standard containers (e.g. the candidate supplier lists) can live in it.
// A null arena falls back to operator new/delete, which is what the
// parallel plan lanes use: the arena is single-threaded by design, so it is
// only installed on the sequential path.
//
// Lifetime rule: memory from an arena is valid until the next reset().
// Containers may outlive a reset only if they are cleared first (clearing
// destroys the elements; vector's deallocate is a no-op here).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace gs::util {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` with `alignment` (a power of two).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t alignment);

  /// Rewinds to empty, keeping every chunk for reuse.  Invalidates all
  /// outstanding allocations.
  void reset() noexcept {
    current_ = 0;
    offset_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last reset (including alignment padding).
  [[nodiscard]] std::size_t allocated_bytes() const noexcept { return allocated_; }
  /// Heap chunks ever allocated (never reset): a warm arena's steady state
  /// stops growing this, which is how the engine proves its zero-allocation
  /// claim for the parallel lanes (EngineStats::arena_steady_chunks).
  [[nodiscard]] std::uint64_t chunk_allocations() const noexcept { return chunk_allocs_; }
  /// Heap bytes held across resets.
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  ///< chunk being bumped
  std::size_t offset_ = 0;   ///< bump position within it
  std::size_t allocated_ = 0;
  std::uint64_t chunk_allocs_ = 0;
};

/// std-conforming allocator over an Arena; nullptr arena = plain heap.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr) return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
    // Arena memory is reclaimed wholesale by reset().
  }

  /// Copies keep the arena: a container copied on the sequential path stays
  /// in the same tick-scoped lifetime as its source.
  [[nodiscard]] ArenaAllocator select_on_container_copy_construction() const noexcept {
    return *this;
  }

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_ = nullptr;
};

}  // namespace gs::util
