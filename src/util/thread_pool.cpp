#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace gs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // An atomic cursor instead of one task per index: iterations can be very
  // uneven (an 8000-node sim vs a 100-node sim), so workers self-schedule.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const std::size_t lanes = std::min(n, thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([=, &body] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error->load() && *error) std::rethrow_exception(*error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gs::util
