#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <latch>

namespace gs::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // An atomic cursor instead of one task per index: iterations can be very
  // uneven (an 8000-node sim vs a 100-node sim), so workers self-schedule.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();

  const std::size_t lanes = std::min(n, thread_count());
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(submit([=, &body] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= n) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!first_error->exchange(true)) *error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (first_error->load() && *error) std::rethrow_exception(*error);
}

void ThreadPool::run_batch(std::size_t n, std::size_t lanes,
                           const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (lanes <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Shared batch state outlives the call: helper tasks may still be queued
  // when the caller returns, but they claim nothing once the cursor is
  // exhausted, so they never touch `body` (caller-owned) after completion.
  struct BatchState {
    explicit BatchState(std::size_t count) : done(static_cast<std::ptrdiff_t>(count)) {}
    std::atomic<std::size_t> cursor{0};
    std::latch done;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<BatchState>(n);
  // One claim loop shared by the caller and every helper task.  It holds a
  // raw pointer to the caller-owned body, which is safe: the pointer is
  // only dereferenced after winning a claim (i < n), and the caller cannot
  // return — so body cannot die — before all n claims completed.
  const std::function<void(std::size_t)>* body_ptr = &body;
  const auto claim_loop = [n, state, body_ptr] {
    for (;;) {
      const std::size_t i = state->cursor.fetch_add(1);
      if (i >= n) return;
      try {
        (*body_ptr)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (!state->failed.exchange(true)) state->error = std::current_exception();
      }
      state->done.count_down();
    }
  };
  // A saturated pool (outer parallel_for simulations each calling
  // run_batch) would never pop these helpers: the caller lane does all the
  // work and the dead closures pile up in tasks_.  Cap the outstanding
  // helpers instead of enqueueing blindly; the cap is approximate (racy
  // load) and results never depend on how many helpers actually run.
  const std::size_t helper_cap = 2 * thread_count();
  const std::size_t backlog = queued_helpers_.load();
  std::size_t helpers = std::min(lanes, n) - 1;
  helpers = std::min(helpers, helper_cap > backlog ? helper_cap - backlog : 0);
  if (helpers > 0) {
    queued_helpers_.fetch_add(helpers);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace([this, claim_loop] {
        queued_helpers_.fetch_sub(1);
        claim_loop();
      });
    }
  }
  if (helpers > 0) cv_.notify_all();
  claim_loop();          // the caller is a lane: no deadlock on a busy pool
  state->done.wait();    // indices claimed by helpers may still be running
  if (state->failed.load() && state->error) std::rethrow_exception(state->error);
}

void ThreadPool::run_batch_lanes(std::size_t n, std::size_t lanes,
                                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (lanes <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  struct BatchState {
    explicit BatchState(std::size_t count) : done(static_cast<std::ptrdiff_t>(count)) {}
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> next_lane{1};  ///< the caller owns lane 0
    std::latch done;
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  auto state = std::make_shared<BatchState>(n);
  const std::function<void(std::size_t, std::size_t)>* body_ptr = &body;
  // Helpers claim a dense lane id on entry; at most `lanes` executors exist
  // (caller + helpers, see the cap below), so ids stay within [0, lanes).
  const auto claim_loop = [n, state, body_ptr](std::size_t lane) {
    for (;;) {
      const std::size_t i = state->cursor.fetch_add(1);
      if (i >= n) return;
      try {
        (*body_ptr)(i, lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (!state->failed.exchange(true)) state->error = std::current_exception();
      }
      state->done.count_down();
    }
  };
  const std::size_t helper_cap = 2 * thread_count();
  const std::size_t backlog = queued_helpers_.load();
  std::size_t helpers = std::min(lanes, n) - 1;
  helpers = std::min(helpers, helper_cap > backlog ? helper_cap - backlog : 0);
  // Unlike run_batch, the lane-id space bounds the executor count, so the
  // helper count may never exceed lanes - 1 even if the cap would allow it.
  helpers = std::min(helpers, lanes - 1);
  if (helpers > 0) {
    queued_helpers_.fetch_add(helpers);
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t h = 0; h < helpers; ++h) {
      tasks_.emplace([this, state, claim_loop] {
        queued_helpers_.fetch_sub(1);
        claim_loop(state->next_lane.fetch_add(1));
      });
    }
  }
  if (helpers > 0) cv_.notify_all();
  claim_loop(0);         // the caller is lane 0: no deadlock on a busy pool
  state->done.wait();    // indices claimed by helpers may still be running
  if (state->failed.load() && state->error) std::rethrow_exception(state->error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gs::util
