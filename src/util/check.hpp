// Runtime invariant checks that stay enabled in release builds.
//
// Simulation correctness depends on invariants (budgets never negative,
// segment ids monotone, ...) that are cheap to verify relative to the work
// they guard, so GS_CHECK is always on.  GS_DCHECK compiles out in NDEBUG
// builds and is meant for hot-path checks.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace gs::util {

/// Formats the failure message and aborts.  Marked noreturn so GS_CHECK can
/// be used in functions with non-void returns without dummy values.
[[noreturn]] void check_failed(std::string_view condition, std::string_view file, int line,
                               const std::string& message);

namespace detail {

/// Lazily builds the streamed message only when a check actually fails.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* condition, const char* file, int line)
      : condition_(condition), file_(file), line_(line) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    check_failed(condition_, file_, line_, stream_.str());
  }

 private:
  const char* condition_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace gs::util

#define GS_CHECK(cond)                                                 \
  if (cond) {                                                          \
  } else                                                               \
    ::gs::util::detail::CheckMessageBuilder(#cond, __FILE__, __LINE__)

#define GS_CHECK_OP(op, a, b) GS_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define GS_CHECK_EQ(a, b) GS_CHECK_OP(==, a, b)
#define GS_CHECK_NE(a, b) GS_CHECK_OP(!=, a, b)
#define GS_CHECK_LT(a, b) GS_CHECK_OP(<, a, b)
#define GS_CHECK_LE(a, b) GS_CHECK_OP(<=, a, b)
#define GS_CHECK_GT(a, b) GS_CHECK_OP(>, a, b)
#define GS_CHECK_GE(a, b) GS_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define GS_DCHECK(cond) GS_CHECK(true)
#else
#define GS_DCHECK(cond) GS_CHECK(cond)
#endif
