// Process memory probes for the scale benches and diagnostics.
#pragma once

#include <cstdint>

namespace gs::util {

/// Peak resident set size of this process in bytes (Linux: VmHWM from
/// /proc/self/status).  Returns 0 when the platform offers no probe.
[[nodiscard]] std::uint64_t peak_rss_bytes() noexcept;

/// Current resident set size in bytes (Linux: VmRSS); 0 when unavailable.
[[nodiscard]] std::uint64_t current_rss_bytes() noexcept;

}  // namespace gs::util
