// Flat open-addressed map keyed by non-negative 64-bit ids.
//
// The hot per-peer segment maps (pending requests, buffer sequence numbers)
// hold a handful of entries but are touched on every tick and every
// delivery.  std::unordered_map pays a heap node plus a pointer chase per
// entry; this map stores its entries inline in one power-of-two slot array
// (linear probing, backward-shift deletion), so lookup is one hash plus a
// short contiguous scan and the only allocation is the slot array itself —
// which is created lazily, so an empty map owns no heap at all.
//
// Key -1 (gs::gossip::kNoSegment) is reserved as the empty-slot sentinel;
// all real keys must be >= 0.
//
// `K` narrows the stored key when the caller's ids provably fit (segment
// ids are bounded by rate x horizon, far below 2^31): an {int32, uint32}
// slot is 8 bytes instead of 16, which at 10^6 peers halves the dominant
// per-buffer map.  The hash is computed on the numeric key value, so the
// probe layout is identical for every K.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"  // splitmix64

namespace gs::util {

template <typename V, typename K = std::int64_t>
class FlatSegmentMap {
 public:
  using Key = K;
  static_assert(std::is_integral_v<K> && std::is_signed_v<K>,
                "keys are non-negative ids with -1 as the empty sentinel");
  static constexpr Key kEmptyKey = -1;

  FlatSegmentMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Pointer to the value for `key`, or nullptr when absent.
  [[nodiscard]] const V* find(Key key) const noexcept {
    if (slots_.empty()) return nullptr;
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] V* find(Key key) noexcept {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  [[nodiscard]] bool contains(Key key) const noexcept { return find(key) != nullptr; }

  /// Inserts or overwrites.
  void set(Key key, V value) {
    GS_CHECK_GE(key, 0);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = index_of(key);
    while (slots_[i].key != kEmptyKey) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
  }

  /// Removes `key` if present; returns whether an entry was erased.
  bool erase(Key key) noexcept {
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    while (slots_[i].key != key) {
      if (slots_[i].key == kEmptyKey) return false;
      i = (i + 1) & mask_;
    }
    erase_at(i);
    return true;
  }

  /// Erases every entry whose value satisfies `pred`.  `pred` must be pure:
  /// backward-shift deletion can re-present a surviving entry, and the
  /// second evaluation must agree with the first.
  template <typename Pred>
  void erase_if(Pred pred) {
    for (std::size_t i = 0; i < slots_.size();) {
      if (slots_[i].key != kEmptyKey && pred(slots_[i].value)) {
        erase_at(i);  // may pull a later entry into slot i: re-examine it
      } else {
        ++i;
      }
    }
  }

  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmptyKey) fn(s.key, s.value);
    }
  }

  void clear() noexcept {
    for (Slot& s : slots_) s.key = kEmptyKey;
    size_ = 0;
  }

  /// Heap bytes owned by the slot array.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    Key key = kEmptyKey;
    V value{};
  };

  [[nodiscard]] std::size_t index_of(Key key) const noexcept {
    return static_cast<std::size_t>(splitmix64(static_cast<std::uint64_t>(key))) & mask_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 8 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.key != kEmptyKey) set(s.key, std::move(s.value));
    }
  }

  /// Backward-shift deletion: close the hole at `hole` by walking the
  /// probe cluster and moving back every entry whose probe path crosses
  /// the hole, so lookups never need tombstones.
  void erase_at(std::size_t hole) noexcept {
    --size_;
    std::size_t j = hole;
    for (;;) {
      slots_[hole].key = kEmptyKey;
      for (;;) {
        j = (j + 1) & mask_;
        if (slots_[j].key == kEmptyKey) return;
        const std::size_t home = index_of(slots_[j].key);
        // Move j back iff its home position does not lie in the cyclic
        // range (hole, j] — i.e. probing from home must pass the hole.
        const bool home_in_range = hole <= j ? (home > hole && home <= j)
                                             : (home > hole || home <= j);
        if (!home_in_range) {
          slots_[hole] = std::move(slots_[j]);
          hole = j;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gs::util
