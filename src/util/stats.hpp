// Streaming and batch statistics used by the metrics collectors and the
// figure reporters.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace gs::util {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;
  void reset() noexcept { *this = RunningStats(); }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// Mean of the samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// +inf when empty, mirroring the identity of min.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Linear-interpolation percentile of an unsorted sample (copies + sorts).
/// q is in [0, 1].  Returns NaN for empty input.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Batch summary of a sample: n, mean, stddev, min, p50, p90, max.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;

  [[nodiscard]] static Summary of(std::span<const double> values);
  [[nodiscard]] std::string to_string() const;
};

/// Mean of a sample; NaN when empty.
[[nodiscard]] double mean_of(std::span<const double> values);

/// 95% confidence half-width assuming normality (1.96 * s / sqrt(n));
/// 0 for fewer than two samples.
[[nodiscard]] double ci95_halfwidth(std::span<const double> values);

}  // namespace gs::util
