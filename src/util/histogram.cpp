#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace gs::util {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  GS_CHECK(bins >= 1);
  GS_CHECK(lo < hi);
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::size_t n) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += n;
  total_ += n;
}

std::size_t Histogram::count(std::size_t bin) const {
  GS_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  GS_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  GS_CHECK(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin + 1);
}

double Histogram::cdf(std::size_t bin) const {
  GS_CHECK(bin < counts_.size());
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i <= bin; ++i) acc += counts_[i];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / peak;
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") " << std::string(bar, '#') << " "
        << counts_[b] << "\n";
  }
  return out.str();
}

}  // namespace gs::util
