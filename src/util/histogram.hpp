// Fixed-width histogram for time/latency distributions in reports.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gs::util {

/// Uniform-bin histogram over [lo, hi); out-of-range samples are clamped to
/// the edge bins so no sample is silently dropped.
class Histogram {
 public:
  /// Requires bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_n(double x, std::size_t n) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Inclusive lower edge of a bin.
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;
  /// Fraction of samples at or below the upper edge of `bin`.
  [[nodiscard]] double cdf(std::size_t bin) const;

  /// ASCII rendering (one row per bin) for example programs.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gs::util
