// Fixed-size thread pool for running many independent simulations (trials,
// sweep points) concurrently.
//
// Simulations are deterministic and share nothing, so a plain mutex-guarded
// task queue is ample: task granularity is whole simulation runs (tens of
// milliseconds to seconds), making queue contention irrelevant.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace gs::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result (or rethrows
  /// its exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs body(i) for i in [0, n) across the pool and blocks until all
  /// complete.  Exceptions from any iteration are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool shared by benches; constructed on first use.
ThreadPool& global_pool();

}  // namespace gs::util
