// Fixed-size thread pool for running many independent simulations (trials,
// sweep points) concurrently, plus the bounded fork/join primitive the
// sharded engine core uses inside one simulation.
//
// Simulations are deterministic and share nothing, so a plain mutex-guarded
// task queue is ample: task granularity is whole simulation runs (tens of
// milliseconds to seconds), making queue contention irrelevant.  run_batch
// is the exception — it dispatches micro-tasks (per-peer tick planning) —
// so it self-schedules over an atomic cursor and the *caller participates*,
// which keeps it deadlock-free even when every pool worker is itself busy
// inside a simulation that called run_batch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace gs::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result (or rethrows
  /// its exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs body(i) for i in [0, n) across the pool and blocks until all
  /// complete.  Exceptions from any iteration are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Fork/join batch: runs body(i) for i in [0, n) on at most `lanes`
  /// executors and blocks until every index completed.  The calling thread
  /// is one of the lanes — it claims indices itself while waiting — so the
  /// batch finishes even if no pool worker ever becomes free (the pool may
  /// be saturated by outer parallel_for simulations that each call
  /// run_batch).  `lanes <= 1` degenerates to an inline loop.  Index
  /// assignment to lanes is racy by design; callers must make iterations
  /// independent (the sharded engine writes disjoint per-index slots).
  /// Exceptions from any iteration are rethrown in the caller (first wins).
  void run_batch(std::size_t n, std::size_t lanes, const std::function<void(std::size_t)>& body);

  /// Lane-identified variant of run_batch: body(i, lane) where `lane` is a
  /// dense id in [0, lanes) stable for the executing thread across the whole
  /// batch (the caller claims lane 0; each helper claims the next free id on
  /// entry).  Callers use it to index per-lane scratch — e.g. one bump arena
  /// per lane — without thread-local state.  Same progress/exception
  /// semantics as run_batch.
  void run_batch_lanes(std::size_t n, std::size_t lanes,
                       const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  /// Helper closures enqueued by run_batch that have not started yet.
  /// Bounds queue growth when the pool is saturated: a busy pool would
  /// otherwise accumulate one dead helper per batch, forever.
  std::atomic<std::size_t> queued_helpers_{0};
  bool stopping_ = false;
};

/// Process-wide pool shared by benches; constructed on first use.
ThreadPool& global_pool();

}  // namespace gs::util
