#include "util/bitset.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace gs::util {

void DynamicBitset::resize(std::size_t bits) {
  // Preserves existing bits; new bits are zero.  Shrinking trims the tail.
  bits_ = bits;
  words_.resize((bits + kWordBits - 1) / kWordBits, 0);
  trim();
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::any() const noexcept {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::find_first(std::size_t from) const noexcept {
  if (from >= bits_) return bits_;
  std::size_t word = from / kWordBits;
  std::uint64_t current = words_[word] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos = word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < bits_ ? pos : bits_;
    }
    if (++word >= word_count()) return bits_;
    current = words_[word];
  }
}

std::size_t DynamicBitset::find_first_clear(std::size_t from) const noexcept {
  if (from >= bits_) return bits_;
  std::size_t word = from / kWordBits;
  // Invert and mask off bits below `from`.
  std::uint64_t current = ~words_[word] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos = word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < bits_ ? pos : bits_;
    }
    if (++word >= word_count()) return bits_;
    current = ~words_[word];
  }
}

std::size_t DynamicBitset::first_set_and_clear(const DynamicBitset& set_in,
                                               const DynamicBitset& clear_in,
                                               std::size_t from) noexcept {
  return first_set_and_clear_offset(set_in, 0, clear_in, from);
}

std::size_t DynamicBitset::first_set_and_clear_offset(const DynamicBitset& set_in,
                                                      std::size_t offset,
                                                      const DynamicBitset& clear_in,
                                                      std::size_t from) noexcept {
  // offset % 64 == 0 keeps set_in's word w aligned with clear_in's word
  // w + offset/64; callers (the windowed availability views) slide their
  // base in word multiples to preserve this.
  const std::size_t none = offset + set_in.bits_;
  if (from < offset) from = offset;
  if (from >= none) return none;
  const std::size_t word_offset = offset / kWordBits;
  std::size_t word = (from - offset) / kWordBits;
  const auto combined = [&](std::size_t w) {
    const std::uint64_t a = set_in.words_[w];
    const std::size_t cw = w + word_offset;
    const std::uint64_t b = cw < clear_in.words_.size() ? clear_in.words_[cw] : 0;
    return a & ~b;
  };
  std::uint64_t current = combined(word) & (~0ULL << ((from - offset) % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos =
          offset + word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < none ? pos : none;
    }
    if (++word >= set_in.word_count()) return none;
    current = combined(word);
  }
}

void DynamicBitset::shift_down(std::size_t bits) {
  GS_CHECK_EQ(bits % kWordBits, 0u);
  const std::size_t words = bits / kWordBits;
  if (words == 0) return;
  if (words >= words_.size()) {
    reset_all();
    return;
  }
  std::copy(words_.begin() + static_cast<std::ptrdiff_t>(words), words_.end(), words_.begin());
  std::fill(words_.end() - static_cast<std::ptrdiff_t>(words), words_.end(), 0ULL);
}

DynamicBitset DynamicBitset::copy_window(const DynamicBitset& src, std::size_t from,
                                         std::size_t bits) {
  DynamicBitset out(bits);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = src.extract_word(from + i * kWordBits);
  }
  out.trim();
  return out;
}

void DynamicBitset::assign_window(const DynamicBitset& src, std::size_t from, std::size_t bits) {
  bits_ = bits;
  words_.resize((bits + kWordBits - 1) / kWordBits);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] = src.extract_word(from + i * kWordBits);
  }
  trim();
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  GS_CHECK_EQ(bits_, other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  GS_CHECK_EQ(bits_, other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  trim();
  return *this;
}

void DynamicBitset::trim() noexcept {
  const std::size_t tail = bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) words_.back() &= (1ULL << tail) - 1;
}

std::vector<std::uint8_t> DynamicBitset::to_bytes() const {
  std::vector<std::uint8_t> bytes((bits_ + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t word = i / 8;
    const std::size_t shift = (i % 8) * 8;
    if (word < words_.size()) bytes[i] = static_cast<std::uint8_t>(words_[word] >> shift);
  }
  return bytes;
}

DynamicBitset DynamicBitset::from_bytes(const std::vector<std::uint8_t>& bytes, std::size_t bits) {
  GS_CHECK_GE(bytes.size() * 8, bits);
  DynamicBitset result(bits);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t word = i / 8;
    const std::size_t shift = (i % 8) * 8;
    if (word < result.words_.size()) {
      result.words_[word] |= static_cast<std::uint64_t>(bytes[i]) << shift;
    }
  }
  result.trim();
  return result;
}

}  // namespace gs::util
