#include "util/bitset.hpp"

#include <bit>

#include "util/check.hpp"

namespace gs::util {

void DynamicBitset::resize(std::size_t bits) {
  // Preserves existing bits; new bits are zero.  Shrinking trims the tail.
  bits_ = bits;
  words_.resize((bits + kWordBits - 1) / kWordBits, 0);
  trim();
}

void DynamicBitset::set(std::size_t pos, bool value) {
  GS_CHECK_LT(pos, bits_);
  const std::uint64_t mask = 1ULL << (pos % kWordBits);
  if (value) {
    words_[pos / kWordBits] |= mask;
  } else {
    words_[pos / kWordBits] &= ~mask;
  }
}

void DynamicBitset::reset_all() noexcept {
  for (auto& w : words_) w = 0;
}

bool DynamicBitset::test(std::size_t pos) const {
  GS_CHECK_LT(pos, bits_);
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1ULL;
}

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool DynamicBitset::any() const noexcept {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t DynamicBitset::find_first(std::size_t from) const noexcept {
  if (from >= bits_) return bits_;
  std::size_t word = from / kWordBits;
  std::uint64_t current = words_[word] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos = word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < bits_ ? pos : bits_;
    }
    if (++word >= word_count()) return bits_;
    current = words_[word];
  }
}

std::size_t DynamicBitset::find_first_clear(std::size_t from) const noexcept {
  if (from >= bits_) return bits_;
  std::size_t word = from / kWordBits;
  // Invert and mask off bits below `from`.
  std::uint64_t current = ~words_[word] & (~0ULL << (from % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos = word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < bits_ ? pos : bits_;
    }
    if (++word >= word_count()) return bits_;
    current = ~words_[word];
  }
}

std::size_t DynamicBitset::first_set_and_clear(const DynamicBitset& set_in,
                                               const DynamicBitset& clear_in,
                                               std::size_t from) noexcept {
  if (from >= set_in.bits_) return set_in.bits_;
  std::size_t word = from / kWordBits;
  const auto combined = [&](std::size_t w) {
    const std::uint64_t a = set_in.words_[w];
    const std::uint64_t b = w < clear_in.words_.size() ? clear_in.words_[w] : 0;
    return a & ~b;
  };
  std::uint64_t current = combined(word) & (~0ULL << (from % kWordBits));
  for (;;) {
    if (current != 0) {
      const auto pos = word * kWordBits + static_cast<std::size_t>(std::countr_zero(current));
      return pos < set_in.bits_ ? pos : set_in.bits_;
    }
    if (++word >= set_in.word_count()) return set_in.bits_;
    current = combined(word);
  }
}

std::uint64_t DynamicBitset::extract_word(std::size_t from) const noexcept {
  if (from >= bits_) return 0;
  const std::size_t word = from / kWordBits;
  const std::size_t shift = from % kWordBits;
  // trim() keeps bits past size() clear, so no tail masking is needed.
  std::uint64_t out = words_[word] >> shift;
  if (shift != 0 && word + 1 < words_.size()) out |= words_[word + 1] << (kWordBits - shift);
  return out;
}

DynamicBitset DynamicBitset::copy_window(const DynamicBitset& src, std::size_t from,
                                         std::size_t bits) {
  DynamicBitset out(bits);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = src.extract_word(from + i * kWordBits);
  }
  out.trim();
  return out;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  GS_CHECK_EQ(bits_, other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  GS_CHECK_EQ(bits_, other.bits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  trim();
  return *this;
}

void DynamicBitset::trim() noexcept {
  const std::size_t tail = bits_ % kWordBits;
  if (tail != 0 && !words_.empty()) words_.back() &= (1ULL << tail) - 1;
}

std::vector<std::uint8_t> DynamicBitset::to_bytes() const {
  std::vector<std::uint8_t> bytes((bits_ + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t word = i / 8;
    const std::size_t shift = (i % 8) * 8;
    if (word < words_.size()) bytes[i] = static_cast<std::uint8_t>(words_[word] >> shift);
  }
  return bytes;
}

DynamicBitset DynamicBitset::from_bytes(const std::vector<std::uint8_t>& bytes, std::size_t bits) {
  GS_CHECK_GE(bytes.size() * 8, bits);
  DynamicBitset result(bits);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const std::size_t word = i / 8;
    const std::size_t shift = (i % 8) * 8;
    if (word < result.words_.size()) {
      result.words_[word] |= static_cast<std::uint64_t>(bytes[i]) << shift;
    }
  }
  result.trim();
  return result;
}

}  // namespace gs::util
