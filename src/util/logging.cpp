#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>

namespace gs::util {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  // Strip the directory part so log lines stay short.
  std::string_view path(file);
  const auto slash = path.find_last_of('/');
  if (slash != std::string_view::npos) path.remove_prefix(slash + 1);
  stream_ << "[" << level_tag(level) << " " << path << ":" << line << "] ";
}

LogLine::~LogLine() {
  const std::string text = stream_.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "%s\n", text.c_str());
}

}  // namespace detail
}  // namespace gs::util
