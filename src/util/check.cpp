#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace gs::util {

void check_failed(std::string_view condition, std::string_view file, int line,
                  const std::string& message) {
  std::fprintf(stderr, "GS_CHECK failed: %.*s at %.*s:%d %s\n",
               static_cast<int>(condition.size()), condition.data(),
               static_cast<int>(file.size()), file.data(), line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace gs::util
