// Deterministic random number generation.
//
// Every simulation entity (node, topology generator, churn process, ...)
// derives its own independent stream from a single experiment seed via
// SplitMix64 hashing, so adding an entity or reordering calls in one
// component never perturbs the random sequence seen by another.  The core
// generator is xoshiro256** which is fast, high-quality and trivially
// reproducible across platforms (unlike std::mt19937 distributions, whose
// outputs are implementation-defined for e.g. std::normal_distribution —
// all sampling helpers here are hand-rolled for bit-for-bit determinism).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace gs::util {

/// SplitMix64 hash step; used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words by iterating SplitMix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return std::numeric_limits<result_type>::max(); }

  result_type operator()() noexcept;

  /// Derives an independent child stream keyed by (this stream's seed, key).
  /// Children of distinct keys are statistically independent.
  [[nodiscard]] Rng fork(std::uint64_t key) const noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;
  /// Exponential with rate lambda (mean 1/lambda).
  [[nodiscard]] double exponential(double lambda) noexcept;
  /// Standard normal via Box-Muller (deterministic across platforms).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;
  /// Beta(alpha, beta) via Jöhnk/gamma sampling; used for skewed bandwidth draws.
  [[nodiscard]] double beta(double alpha, double beta) noexcept;
  /// Pareto with scale x_m and shape alpha (long-tailed ping times).
  [[nodiscard]] double pareto(double x_m, double alpha) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k) noexcept;

  /// Seed this generator was constructed/reseeded with (for fork derivation).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  [[nodiscard]] double gamma(double shape) noexcept;

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_ = 0;
};

/// Stable 64-bit FNV-1a hash of a string; lets callers derive streams from
/// human-readable component names ("churn", "topology", ...).
[[nodiscard]] constexpr std::uint64_t hash_name(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace gs::util
