// Tiny command-line flag parser for benches and examples.
//
// Supports --name=value, --name value, and bare --name for booleans.
// Unknown flags are an error (typos in sweep scripts should fail fast).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gs::util {

class Flags {
 public:
  /// Registers a flag with its default and help text.  Must be called before
  /// parse().  Returns *this for chaining.
  Flags& define(std::string name, std::string default_value, std::string help);
  Flags& define_int(std::string name, std::int64_t default_value, std::string help);
  Flags& define_double(std::string name, double default_value, std::string help);
  Flags& define_bool(std::string name, bool default_value, std::string help);

  /// Parses argv.  On --help prints usage and returns false (caller should
  /// exit 0).  Throws std::runtime_error on unknown flags or bad values.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::string get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  [[nodiscard]] std::string usage(std::string_view program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
  };

  const Entry& find(std::string_view name) const;

  std::map<std::string, Entry, std::less<>> entries_;
  std::vector<std::string> positional_;
};

}  // namespace gs::util
