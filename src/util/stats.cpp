#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gs::util {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel merge of Welford accumulators.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary Summary::of(std::span<const double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream out;
  out << "n=" << n << " mean=" << mean << " sd=" << stddev << " min=" << min << " p50=" << p50
      << " p90=" << p90 << " max=" << max;
  return out.str();
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.mean();
}

double ci95_halfwidth(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  RunningStats rs;
  for (double v : values) rs.add(v);
  return 1.96 * rs.stddev() / std::sqrt(static_cast<double>(values.size()));
}

}  // namespace gs::util
