// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but sweeps run
// many simulations concurrently, so the sink is protected by a mutex.  Log
// level is a process-wide setting; benches default to kWarn so that figure
// output stays clean.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace gs::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current process-wide log threshold.
LogLevel log_level() noexcept;

/// Sets the process-wide log threshold.  Thread-safe.
void set_log_level(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Returns kInfo for unrecognised names.
LogLevel parse_log_level(std::string_view name) noexcept;

namespace detail {

/// Accumulates one log line and flushes it (with a level tag) on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

bool log_enabled(LogLevel level) noexcept;

}  // namespace detail
}  // namespace gs::util

#define GS_LOG(level)                                                      \
  if (!::gs::util::detail::log_enabled(::gs::util::LogLevel::level)) {     \
  } else                                                                   \
    ::gs::util::detail::LogLine(::gs::util::LogLevel::level, __FILE__, __LINE__)

#define GS_LOG_DEBUG GS_LOG(kDebug)
#define GS_LOG_INFO GS_LOG(kInfo)
#define GS_LOG_WARN GS_LOG(kWarn)
#define GS_LOG_ERROR GS_LOG(kError)
