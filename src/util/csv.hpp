// CSV emission for bench results (consumed by plotting scripts).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace gs::util {

/// Writes RFC-4180-ish CSV: fields containing comma/quote/newline are quoted
/// with doubled inner quotes.  The writer owns the output stream.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates).  Throws std::runtime_error on
  /// failure so benches fail loudly rather than silently dropping results.
  explicit CsvWriter(const std::string& path);

  /// Writes a header or data row.
  void write_row(std::initializer_list<std::string_view> fields);
  void write_row(const std::vector<std::string>& fields);

  /// Flushes buffered output.
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Escapes one field per the quoting rules above (exposed for tests).
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::string path_;
  std::ofstream out_;
};

}  // namespace gs::util
