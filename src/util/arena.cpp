#include "util/arena.hpp"

#include <algorithm>

namespace gs::util {

void* Arena::allocate(std::size_t bytes, std::size_t alignment) {
  if (bytes == 0) bytes = 1;
  for (;;) {
    if (current_ < chunks_.size()) {
      Chunk& chunk = chunks_[current_];
      const std::size_t aligned =
          (offset_ + alignment - 1) & ~(alignment - 1);
      if (aligned + bytes <= chunk.size) {
        offset_ = aligned + bytes;
        allocated_ += bytes;
        return chunk.data.get() + aligned;
      }
      // Chunk exhausted: move to the next (pre-existing after a reset, or
      // freshly grown below).
      ++current_;
      offset_ = 0;
      continue;
    }
    // Oversized requests get a dedicated chunk so they never force the
    // regular chunk size up; new chunks double to keep chunk count O(log).
    const std::size_t grown = chunk_bytes_ << std::min<std::size_t>(chunks_.size(), 10);
    const std::size_t size = std::max(bytes + alignment, grown);
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(size), size});
    ++chunk_allocs_;
  }
}

}  // namespace gs::util
