// Undirected overlay graph.
//
// Adjacency is stored as per-node sorted vectors: neighbour sets are small
// (M≈5) and iterated every scheduling period by every node, so contiguous
// storage beats hash sets for both speed and determinism of iteration order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gs::net {

using NodeId = std::uint32_t;

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adjacency_(node_count) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  /// Appends a new isolated node, returning its id.
  NodeId add_node();

  /// Adds the undirected edge {u, v}.  Self-loops and duplicate edges are
  /// rejected (returns false).
  bool add_edge(NodeId u, NodeId v);

  /// Removes the undirected edge {u, v}; false if absent.
  bool remove_edge(NodeId u, NodeId v);

  /// Detaches `v` from all neighbours (the node id remains valid but
  /// isolated; ids are never reused so metrics stay keyed consistently).
  void isolate(NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;
  [[nodiscard]] std::size_t degree(NodeId v) const;

  /// Minimum degree over `nodes`; 0 for an empty set.
  [[nodiscard]] std::size_t min_degree(std::span<const NodeId> nodes) const;

  /// True if every node in `nodes` can reach the first one using only edges
  /// between nodes in `nodes`.
  [[nodiscard]] bool connected(std::span<const NodeId> nodes) const;

  /// BFS hop distances from `origin` (unreachable = SIZE_MAX).
  [[nodiscard]] std::vector<std::size_t> bfs_hops(NodeId origin) const;

 private:
  void check_node(NodeId v) const;

  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t edge_count_ = 0;
};

}  // namespace gs::net
