// Pairwise link latency derived from per-node crawl ping times.
//
// Crawl records carry one RTT per node (crawler -> peer).  Following common
// practice for reconstructing pairwise delay from single-point pings, the
// one-way latency of link (u, v) is modelled as half of each node's
// crawler RTT contribution: (ping_u + ping_v) / 4 one-way (i.e. the peers
// sit "behind" their measured access delay).  A multiplicative jitter keeps
// ties broken realistically.
#pragma once

#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace gs::net {

class LatencyModel {
 public:
  LatencyModel() = default;

  /// Builds from per-node ping milliseconds.
  explicit LatencyModel(std::vector<double> ping_ms) : ping_ms_(std::move(ping_ms)) {}

  [[nodiscard]] std::size_t node_count() const noexcept { return ping_ms_.size(); }

  /// Registers an additional node (joiners under churn).
  void add_node(double ping_ms) { ping_ms_.push_back(ping_ms); }

  [[nodiscard]] double ping_ms(NodeId v) const;

  /// Deterministic one-way delay of link (u, v), in seconds.
  [[nodiscard]] double link_delay_s(NodeId u, NodeId v) const;

  /// link_delay_s with +-20% multiplicative jitter from `rng`.
  [[nodiscard]] double jittered_delay_s(NodeId u, NodeId v, util::Rng& rng) const;

 private:
  std::vector<double> ping_ms_;
};

}  // namespace gs::net
