#include "net/topology.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace gs::net {

Graph preferential_attachment(std::size_t node_count, std::size_t attach, util::Rng& rng) {
  GS_CHECK_GE(node_count, 2u);
  GS_CHECK_GE(attach, 1u);
  Graph graph(node_count);
  // Repeated-endpoint list: sampling an index uniformly from `endpoints`
  // is sampling a node proportionally to its degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(node_count * attach * 2);
  graph.add_edge(0, 1);
  endpoints.push_back(0);
  endpoints.push_back(1);
  for (NodeId v = 2; v < node_count; ++v) {
    const std::size_t links = std::min<std::size_t>(attach, v);
    std::size_t made = 0;
    std::size_t attempts = 0;
    while (made < links && attempts < links * 20) {
      ++attempts;
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(endpoints.size()) - 1));
      const NodeId target = endpoints[pick];
      if (graph.add_edge(v, target)) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++made;
      }
    }
    // Degenerate fallback (tiny graphs): attach to the lowest-id node not
    // yet adjacent, so the generator never emits an isolated node.
    if (made == 0) {
      for (NodeId u = 0; u < v; ++u) {
        if (graph.add_edge(v, u)) {
          endpoints.push_back(v);
          endpoints.push_back(u);
          break;
        }
      }
    }
  }
  return graph;
}

Graph erdos_renyi(std::size_t node_count, std::size_t edge_count, util::Rng& rng) {
  GS_CHECK_GE(node_count, 2u);
  const std::size_t max_edges = node_count * (node_count - 1) / 2;
  GS_CHECK_LE(edge_count, max_edges);
  Graph graph(node_count);
  while (graph.edge_count() < edge_count) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    graph.add_edge(u, v);
  }
  return graph;
}

Graph watts_strogatz(std::size_t node_count, std::size_t k, double beta, util::Rng& rng) {
  GS_CHECK_GE(node_count, 2u * k + 1);
  GS_CHECK_GE(k, 1u);
  Graph graph(node_count);
  for (NodeId v = 0; v < node_count; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      graph.add_edge(v, static_cast<NodeId>((v + j) % node_count));
    }
  }
  // Rewire each lattice edge (v, v+j) with probability beta.
  for (NodeId v = 0; v < node_count; ++v) {
    for (std::size_t j = 1; j <= k; ++j) {
      if (!rng.bernoulli(beta)) continue;
      const auto old_target = static_cast<NodeId>((v + j) % node_count);
      if (!graph.has_edge(v, old_target)) continue;  // already rewired away
      for (std::size_t attempt = 0; attempt < 20; ++attempt) {
        const auto fresh = static_cast<NodeId>(
            rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
        if (fresh == v || graph.has_edge(v, fresh)) continue;
        graph.remove_edge(v, old_target);
        graph.add_edge(v, fresh);
        break;
      }
    }
  }
  return graph;
}

Graph ring_with_chords(std::size_t node_count, std::size_t extra, util::Rng& rng) {
  GS_CHECK_GE(node_count, 3u);
  Graph graph(node_count);
  for (NodeId v = 0; v < node_count; ++v) {
    graph.add_edge(v, static_cast<NodeId>((v + 1) % node_count));
  }
  std::size_t added = 0;
  std::size_t attempts = 0;
  while (added < extra && attempts < extra * 50 + 100) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(node_count) - 1));
    if (graph.add_edge(u, v)) ++added;
  }
  return graph;
}

std::size_t connect_components(Graph& graph, util::Rng& rng) {
  const std::size_t n = graph.node_count();
  if (n == 0) return 0;
  std::size_t added = 0;
  for (;;) {
    const auto hops = graph.bfs_hops(0);
    std::vector<NodeId> unreached;
    for (NodeId v = 0; v < n; ++v) {
      if (hops[v] == std::numeric_limits<std::size_t>::max()) unreached.push_back(v);
    }
    if (unreached.empty()) return added;
    // Link a random unreached node to a random reached node.
    std::vector<NodeId> reached;
    reached.reserve(n - unreached.size());
    for (NodeId v = 0; v < n; ++v) {
      if (hops[v] != std::numeric_limits<std::size_t>::max()) reached.push_back(v);
    }
    const NodeId u = unreached[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(unreached.size()) - 1))];
    const NodeId w = reached[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(reached.size()) - 1))];
    if (graph.add_edge(u, w)) ++added;
  }
}

std::size_t repair_min_degree(Graph& graph, std::size_t m, util::Rng& rng) {
  const std::size_t n = graph.node_count();
  GS_CHECK_GT(n, m);
  std::size_t added = connect_components(graph, rng);
  // Round-robin over deficient nodes, pairing each with a random partner.
  // Pairing two deficient nodes when possible keeps the added edge count
  // near the lower bound.
  for (;;) {
    std::vector<NodeId> deficient;
    for (NodeId v = 0; v < n; ++v) {
      if (graph.degree(v) < m) deficient.push_back(v);
    }
    if (deficient.empty()) return added;
    rng.shuffle(deficient);
    bool progressed = false;
    for (NodeId v : deficient) {
      if (graph.degree(v) >= m) continue;
      // Prefer another deficient partner; fall back to any random node.
      NodeId partner = v;
      for (std::size_t attempt = 0; attempt < 50; ++attempt) {
        const NodeId candidate =
            attempt < 25 && deficient.size() > 1
                ? deficient[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<std::int64_t>(deficient.size()) - 1))]
                : static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (candidate != v && !graph.has_edge(v, candidate)) {
          partner = candidate;
          break;
        }
      }
      if (partner != v && graph.add_edge(v, partner)) {
        ++added;
        progressed = true;
      }
    }
    // Dense corner case: a node adjacent to everyone else can never reach
    // degree m > n-1; the GS_CHECK above excludes it, but guard against a
    // pathological stall anyway.
    if (!progressed) return added;
  }
}

}  // namespace gs::net
