#include "net/latency.hpp"

#include "util/check.hpp"

namespace gs::net {

double LatencyModel::ping_ms(NodeId v) const {
  GS_CHECK_LT(v, ping_ms_.size());
  return ping_ms_[v];
}

double LatencyModel::link_delay_s(NodeId u, NodeId v) const {
  return (ping_ms(u) + ping_ms(v)) / 4.0 / 1000.0;
}

double LatencyModel::jittered_delay_s(NodeId u, NodeId v, util::Rng& rng) const {
  return link_delay_s(u, v) * rng.uniform(0.8, 1.2);
}

}  // namespace gs::net
