#include "net/trace.hpp"

#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace gs::net {

Graph Trace::to_graph() const {
  Graph graph(nodes.size());
  for (const auto& [u, v] : edges) graph.add_edge(u, v);
  return graph;
}

double Trace::average_degree() const noexcept {
  if (nodes.empty()) return 0.0;
  // Each undirected edge contributes 2 endpoint slots.
  return 2.0 * static_cast<double>(edges.size()) / static_cast<double>(nodes.size());
}

Trace parse_trace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_number = 0;
  auto fail = [&](const std::string& what) {
    throw std::runtime_error("trace parse error at line " + std::to_string(line_number) + ": " +
                             what);
  };
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "trace") {
      fields >> trace.name;
    } else if (kind == "node") {
      TraceNode node;
      if (!(fields >> node.id >> node.ip >> node.port >> node.ping_ms >> node.speed_kbps)) {
        fail("bad node record");
      }
      if (node.id != trace.nodes.size()) fail("node ids must be dense and ascending");
      trace.nodes.push_back(std::move(node));
    } else if (kind == "edge") {
      NodeId u = 0;
      NodeId v = 0;
      if (!(fields >> u >> v)) fail("bad edge record");
      if (u >= trace.nodes.size() || v >= trace.nodes.size()) fail("edge endpoint out of range");
      trace.edges.emplace_back(u, v);
    } else {
      fail("unknown record kind '" + kind + "'");
    }
  }
  return trace;
}

Trace parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return parse_trace(in);
}

void write_trace(const Trace& trace, std::ostream& out) {
  // Round-trip exactness for the floating-point fields.
  out.precision(17);
  out << "# gossipstream overlay trace v1\n";
  if (!trace.name.empty()) out << "trace " << trace.name << "\n";
  for (const auto& node : trace.nodes) {
    out << "node " << node.id << " " << node.ip << " " << node.port << " " << node.ping_ms << " "
        << node.speed_kbps << "\n";
  }
  for (const auto& [u, v] : trace.edges) out << "edge " << u << " " << v << "\n";
}

void write_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file for writing: " + path);
  write_trace(trace, out);
}

namespace {

std::string random_ip(util::Rng& rng) {
  std::ostringstream out;
  // Avoid 0/255 octets so addresses look like real unicast hosts.
  out << rng.uniform_int(1, 223) << '.' << rng.uniform_int(0, 254) << '.'
      << rng.uniform_int(0, 254) << '.' << rng.uniform_int(1, 254);
  return out.str();
}

double random_speed_kbps(util::Rng& rng) {
  // 2000-2001 population: dial-up heavy with a broadband/LAN tail.
  const double roll = rng.uniform();
  if (roll < 0.35) return 56.0;
  if (roll < 0.55) return 128.0;
  if (roll < 0.80) return 768.0;
  if (roll < 0.95) return 1500.0;
  return 10000.0;
}

}  // namespace

Trace synthesize_trace(const TraceSynthesisOptions& options, util::Rng& rng) {
  GS_CHECK_GE(options.node_count, 2u);
  Trace trace;
  trace.name = "synthetic-" + std::to_string(options.node_count);
  trace.nodes.reserve(options.node_count);
  for (NodeId id = 0; id < options.node_count; ++id) {
    TraceNode node;
    node.id = id;
    node.ip = random_ip(rng);
    node.port = static_cast<std::uint16_t>(rng.bernoulli(0.8) ? 6346 : rng.uniform_int(1025, 65535));
    node.ping_ms = std::min(rng.pareto(options.ping_min_ms, options.ping_shape), options.ping_cap_ms);
    node.speed_kbps = random_speed_kbps(rng);
    trace.nodes.push_back(std::move(node));
  }
  util::Rng topology_rng = rng.fork(util::hash_name("topology"));
  const Graph graph = preferential_attachment(options.node_count, options.attach, topology_rng);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    for (NodeId u : graph.neighbors(v)) {
      if (u > v) trace.edges.emplace_back(v, u);
    }
  }
  return trace;
}

std::vector<Trace> synthesize_trace_family(std::size_t count, std::size_t min_nodes,
                                           std::size_t max_nodes, std::uint64_t seed) {
  GS_CHECK_GE(count, 1u);
  GS_CHECK_GE(min_nodes, 2u);
  GS_CHECK_GE(max_nodes, min_nodes);
  std::vector<Trace> family;
  family.reserve(count);
  const double log_lo = std::log(static_cast<double>(min_nodes));
  const double log_hi = std::log(static_cast<double>(max_nodes));
  for (std::size_t i = 0; i < count; ++i) {
    const double frac = count == 1 ? 0.0 : static_cast<double>(i) / static_cast<double>(count - 1);
    const auto size = static_cast<std::size_t>(std::lround(std::exp(log_lo + frac * (log_hi - log_lo))));
    TraceSynthesisOptions options;
    options.node_count = std::max<std::size_t>(2, size);
    util::Rng rng(util::splitmix64(seed ^ util::splitmix64(i)));
    Trace trace = synthesize_trace(options, rng);
    trace.name = "synthetic-" + std::to_string(i) + "-" + std::to_string(options.node_count);
    family.push_back(std::move(trace));
  }
  return family;
}

}  // namespace gs::net
