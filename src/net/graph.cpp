#include "net/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace gs::net {

void Graph::check_node(NodeId v) const { GS_CHECK_LT(v, adjacency_.size()); }

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

bool Graph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  if (u == v) return false;
  auto& nu = adjacency_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it != nu.end() && *it == v) return false;
  nu.insert(it, v);
  auto& nv = adjacency_[v];
  nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
  ++edge_count_;
  return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  auto& nu = adjacency_[u];
  const auto it = std::lower_bound(nu.begin(), nu.end(), v);
  if (it == nu.end() || *it != v) return false;
  nu.erase(it);
  auto& nv = adjacency_[v];
  nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
  --edge_count_;
  return true;
}

void Graph::isolate(NodeId v) {
  check_node(v);
  // Copy: remove_edge mutates adjacency_[v].
  const std::vector<NodeId> neighbors_copy = adjacency_[v];
  for (NodeId u : neighbors_copy) remove_edge(v, u);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& nu = adjacency_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  check_node(v);
  return adjacency_[v];
}

std::size_t Graph::degree(NodeId v) const {
  check_node(v);
  return adjacency_[v].size();
}

std::size_t Graph::min_degree(std::span<const NodeId> nodes) const {
  std::size_t lo = std::numeric_limits<std::size_t>::max();
  for (NodeId v : nodes) lo = std::min(lo, degree(v));
  return nodes.empty() ? 0 : lo;
}

bool Graph::connected(std::span<const NodeId> nodes) const {
  if (nodes.empty()) return true;
  std::vector<char> in_set(adjacency_.size(), 0);
  for (NodeId v : nodes) {
    check_node(v);
    in_set[v] = 1;
  }
  std::vector<char> seen(adjacency_.size(), 0);
  std::queue<NodeId> frontier;
  frontier.push(nodes.front());
  seen[nodes.front()] = 1;
  std::size_t reached = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    ++reached;
    for (NodeId u : adjacency_[v]) {
      if (in_set[u] && !seen[u]) {
        seen[u] = 1;
        frontier.push(u);
      }
    }
  }
  return reached == nodes.size();
}

std::vector<std::size_t> Graph::bfs_hops(NodeId origin) const {
  check_node(origin);
  constexpr auto kUnreached = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> hops(adjacency_.size(), kUnreached);
  std::queue<NodeId> frontier;
  hops[origin] = 0;
  frontier.push(origin);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop();
    for (NodeId u : adjacency_[v]) {
      if (hops[u] == kUnreached) {
        hops[u] = hops[v] + 1;
        frontier.push(u);
      }
    }
  }
  return hops;
}

}  // namespace gs::net
