// dss.clip2.com-style overlay trace records.
//
// The paper's topologies come from Gnutella crawls published on
// dss.clip2.com (offline since ~2001); each record held ID, IP, host name,
// port, ping time and speed, of which the paper uses ID, IP and ping time.
// This module defines a plain-text trace format able to carry those fields,
// a parser/serializer, and a synthesizer producing crawl-like traces
// (power-law degrees, long-tailed pings, modem-to-broadband speed mix) so
// the experiments run without the defunct data source.  Real crawls can be
// converted to this format and dropped in unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace gs::net {

/// One crawled peer.
struct TraceNode {
  NodeId id = 0;
  std::string ip;        ///< dotted quad (synthetic for generated traces)
  std::uint16_t port = 6346;  ///< Gnutella default
  double ping_ms = 0.0;  ///< crawl-time RTT to the peer
  double speed_kbps = 0.0;  ///< advertised link speed
};

/// A full crawl snapshot: peers plus overlay edges.
struct Trace {
  std::string name;
  std::vector<TraceNode> nodes;
  std::vector<std::pair<NodeId, NodeId>> edges;

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges.size(); }

  /// Builds the overlay graph (ignores duplicate edges in the record list).
  [[nodiscard]] Graph to_graph() const;

  /// Average degree of the recorded overlay.
  [[nodiscard]] double average_degree() const noexcept;
};

/// Parses the text format; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] Trace parse_trace(std::istream& in);
[[nodiscard]] Trace parse_trace_file(const std::string& path);

/// Serializes in the same format parse_trace accepts (round-trips exactly).
void write_trace(const Trace& trace, std::ostream& out);
void write_trace_file(const Trace& trace, const std::string& path);

/// Parameters for crawl-like synthesis.  Defaults approximate the 2000-2001
/// Gnutella snapshots: sparse power-law overlay (avg degree ~3, "too small
/// for media streaming" per the paper), long-tailed pings, mixed dial-up /
/// DSL / LAN speed population.
struct TraceSynthesisOptions {
  std::size_t node_count = 1000;
  std::size_t attach = 2;        ///< preferential-attachment links per node
  double ping_min_ms = 10.0;     ///< Pareto scale
  double ping_shape = 1.6;       ///< Pareto shape (heavier tail = smaller)
  double ping_cap_ms = 800.0;    ///< crawl timeouts clip the tail
};

/// Deterministically synthesizes a crawl-like trace from `rng`.
[[nodiscard]] Trace synthesize_trace(const TraceSynthesisOptions& options, util::Rng& rng);

/// The paper uses 30 snapshots spanning 100..10000 nodes; this reproduces
/// such a family (sizes log-spaced, seeds derived from `seed`).
[[nodiscard]] std::vector<Trace> synthesize_trace_family(std::size_t count, std::size_t min_nodes,
                                                         std::size_t max_nodes, std::uint64_t seed);

}  // namespace gs::net
