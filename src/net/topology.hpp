// Overlay topology generators and the paper's degree-repair step.
//
// The paper evaluates on Gnutella crawl snapshots whose average degree is
// "too small for media streaming" and repairs them by adding random edges
// until every node holds M=5 connected neighbours.  The generators here
// produce the pre-repair graphs; repair_min_degree implements the paper's
// augmentation verbatim.
#pragma once

#include <cstdint>

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace gs::net {

/// Barabási-Albert preferential attachment: each new node attaches to
/// `attach` existing nodes chosen proportionally to degree.  Produces the
/// power-law degree skew observed in Gnutella crawls.
[[nodiscard]] Graph preferential_attachment(std::size_t node_count, std::size_t attach,
                                            util::Rng& rng);

/// Erdős-Rényi G(n, m): `edge_count` distinct random edges.
[[nodiscard]] Graph erdos_renyi(std::size_t node_count, std::size_t edge_count, util::Rng& rng);

/// Watts-Strogatz small world: ring lattice with `k` nearest neighbours per
/// side rewired with probability `beta`.
[[nodiscard]] Graph watts_strogatz(std::size_t node_count, std::size_t k, double beta,
                                   util::Rng& rng);

/// Ring plus `extra` random chords; the minimal connected baseline.
[[nodiscard]] Graph ring_with_chords(std::size_t node_count, std::size_t extra, util::Rng& rng);

/// The paper's repair: add random edges until min degree >= m.  Also links
/// disconnected components so the overlay is usable for streaming.
/// Returns the number of edges added.
std::size_t repair_min_degree(Graph& graph, std::size_t m, util::Rng& rng);

/// Adds the fewest random inter-component edges needed to connect all nodes.
/// Returns the number of edges added.
std::size_t connect_components(Graph& graph, util::Rng& rng);

}  // namespace gs::net
