// Communication-overhead accounting.
//
// The paper's metric: bits spent on buffer-map exchange divided by bits of
// data segments actually transferred, accumulated over the measurement
// window.  Request and membership bits are tracked separately so extensions
// (push-pull) can report their extra control cost.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gossip/message.hpp"

namespace gs::gossip {

class OverheadAccountant {
 public:
  explicit OverheadAccountant(WireFormat wire = paper_wire_format()) : wire_(wire) {}

  [[nodiscard]] const WireFormat& wire() const noexcept { return wire_; }

  /// Starts/stops attribution; charges outside the window are dropped.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void charge_buffer_map_exchange() noexcept;
  /// `count` full-map exchanges at once (one per neighbour of a tick).
  void charge_buffer_map_exchanges(std::size_t count) noexcept;
  /// One delta advert of `run_count` toggled-bit runs sent to
  /// `receiver_count` neighbours (incremental availability mode).
  void charge_buffer_map_delta(std::size_t run_count, std::size_t receiver_count) noexcept;
  void charge_request(std::size_t segment_count) noexcept;
  void charge_data_segment() noexcept;
  void charge_membership(std::size_t records) noexcept;

  [[nodiscard]] std::uint64_t control_bits() const noexcept {
    return buffer_map_bits_ + request_bits_;
  }
  [[nodiscard]] std::uint64_t buffer_map_bits() const noexcept { return buffer_map_bits_; }
  [[nodiscard]] std::uint64_t request_bits() const noexcept { return request_bits_; }
  [[nodiscard]] std::uint64_t data_bits() const noexcept { return data_bits_; }
  [[nodiscard]] std::uint64_t membership_bits() const noexcept { return membership_bits_; }
  [[nodiscard]] std::uint64_t data_segments() const noexcept { return data_segments_; }

  /// The paper's ratio: buffer-map bits / data bits.  0 when no data moved.
  [[nodiscard]] double overhead_ratio() const noexcept;

  /// Wider ratio including request bits (reported by extensions).
  [[nodiscard]] double control_ratio() const noexcept;

  void reset() noexcept;

 private:
  WireFormat wire_;
  bool enabled_ = true;
  std::uint64_t buffer_map_bits_ = 0;
  std::uint64_t request_bits_ = 0;
  std::uint64_t data_bits_ = 0;
  std::uint64_t membership_bits_ = 0;
  std::uint64_t data_segments_ = 0;
};

}  // namespace gs::gossip
