#include "gossip/buffer_map_delta.hpp"

#include <bit>

#include "util/check.hpp"

namespace gs::gossip {

BufferMapDelta BufferMapDelta::diff(const BufferMap& from, const BufferMap& to) {
  GS_CHECK_EQ(from.window(), to.window());
  BufferMapDelta delta;
  delta.base_ = to.base();
  delta.window_ = to.window();
  // Toggles are positions (relative to the new base) where the new map
  // differs from the old map rebased into the new window: slots the old
  // window does not cover read as absent, so forward shifts drop FIFO
  // evictions for free and backward shifts drop stale head bits.
  //
  // This runs once per peer per advert under delta accounting, so it works
  // word-at-a-time: XOR 64 rebased slots per step, then walk only the
  // toggled bits (a handful per scheduling period in steady state).
  std::size_t run_start = 0;
  std::size_t run_length = 0;
  const auto flush = [&] {
    if (run_length == 0) return;
    delta.runs_.push_back(
        {static_cast<std::uint16_t>(run_start), static_cast<std::uint16_t>(run_length)});
    run_length = 0;
  };
  for (std::size_t word_pos = 0; word_pos < delta.window_; word_pos += 64) {
    const SegmentId word_id = delta.base_ + static_cast<SegmentId>(word_pos);
    std::uint64_t toggles = from.window_word(word_id) ^ to.window_word(word_id);
    // `from` rebased can carry bits past the window end on backward shifts.
    if (delta.window_ - word_pos < 64) {
      toggles &= ~std::uint64_t{0} >> (64 - (delta.window_ - word_pos));
    }
    while (toggles != 0) {
      const std::size_t pos =
          word_pos + static_cast<std::size_t>(std::countr_zero(toggles));
      toggles &= toggles - 1;
      const bool contiguous = run_length > 0 && pos == run_start + run_length;
      if (!contiguous || run_length == kMaxRunLength) flush();
      if (run_length == 0) run_start = pos;
      ++run_length;
    }
  }
  flush();
  return delta;
}

BufferMap BufferMapDelta::apply(const BufferMap& from) const {
  GS_CHECK_EQ(from.window(), window_);
  BufferMap to(base_, window_);
  std::size_t next_run = 0;
  for (std::size_t pos = 0; pos < window_; ++pos) {
    while (next_run < runs_.size() &&
           pos >= static_cast<std::size_t>(runs_[next_run].offset) + runs_[next_run].length) {
      ++next_run;
    }
    const bool toggled = next_run < runs_.size() && pos >= runs_[next_run].offset;
    const SegmentId id = base_ + static_cast<SegmentId>(pos);
    if (from.available(id) != toggled) to.mark(id);
  }
  return to;
}

std::size_t BufferMapDelta::toggled_count() const noexcept {
  std::size_t total = 0;
  for (const Run& run : runs_) total += run.length;
  return total;
}

std::vector<std::uint8_t> BufferMapDelta::encode() const {
  GS_CHECK(encodable());
  const auto truncated =
      static_cast<std::uint32_t>(base_ & ((1u << BufferMap::kBaseIdBits) - 1));
  std::vector<std::uint8_t> bytes;
  bytes.reserve(4 + 2 * runs_.size());
  bytes.push_back(static_cast<std::uint8_t>(truncated));
  bytes.push_back(static_cast<std::uint8_t>(truncated >> 8));
  bytes.push_back(static_cast<std::uint8_t>(truncated >> 16));
  bytes.push_back(static_cast<std::uint8_t>(runs_.size()));
  for (const Run& run : runs_) {
    GS_CHECK_LT(run.offset, window_);
    GS_CHECK_GE(run.length, 1u);
    GS_CHECK_LE(run.length, kMaxRunLength);
    const auto packed = static_cast<std::uint16_t>(
        run.offset | static_cast<std::uint16_t>(run.length << kRunOffsetBits));
    bytes.push_back(static_cast<std::uint8_t>(packed));
    bytes.push_back(static_cast<std::uint8_t>(packed >> 8));
  }
  return bytes;
}

BufferMapDelta BufferMapDelta::decode(const std::vector<std::uint8_t>& bytes,
                                      std::size_t window_bits, SegmentId base_hint) {
  GS_CHECK_GE(bytes.size(), 4u);
  // Reuse BufferMap's truncated-base reconstruction by decoding a header-only
  // map with the same 3-byte base field.
  const std::vector<std::uint8_t> header(bytes.begin(), bytes.begin() + 3);
  const BufferMap base_probe = BufferMap::decode(header, 0, base_hint);
  BufferMapDelta delta;
  delta.base_ = base_probe.base();
  delta.window_ = window_bits;
  const std::size_t run_count = bytes[3];
  GS_CHECK_EQ(bytes.size(), 4 + 2 * run_count);
  delta.runs_.reserve(run_count);
  for (std::size_t i = 0; i < run_count; ++i) {
    const auto packed = static_cast<std::uint16_t>(
        bytes[4 + 2 * i] | static_cast<std::uint16_t>(bytes[5 + 2 * i]) << 8);
    Run run;
    run.offset = packed & ((1u << kRunOffsetBits) - 1);
    run.length = packed >> kRunOffsetBits;
    delta.runs_.push_back(run);
  }
  return delta;
}

}  // namespace gs::gossip
