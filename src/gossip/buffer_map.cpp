#include "gossip/buffer_map.hpp"

#include <cmath>

#include "util/check.hpp"

namespace gs::gossip {

BufferMap::BufferMap(SegmentId base, std::size_t window_bits) : base_(base), bits_(window_bits) {
  GS_CHECK_GE(base, 0);
}

bool BufferMap::in_window(SegmentId id) const noexcept {
  return id >= base_ && id < base_ + static_cast<SegmentId>(bits_.size());
}

void BufferMap::mark(SegmentId id) {
  if (!in_window(id)) return;
  bits_.set(static_cast<std::size_t>(id - base_));
}

BufferMap BufferMap::from_presence(SegmentId base, std::size_t window_bits,
                                   const util::DynamicBitset& presence) {
  GS_CHECK_GE(base, 0);
  BufferMap map(base, window_bits);
  map.bits_ =
      util::DynamicBitset::copy_window(presence, static_cast<std::size_t>(base), window_bits);
  return map;
}

void BufferMap::assign_from_presence(SegmentId base, std::size_t window_bits,
                                     const util::DynamicBitset& presence) {
  GS_CHECK_GE(base, 0);
  base_ = base;
  bits_.assign_window(presence, static_cast<std::size_t>(base), window_bits);
}

bool BufferMap::available(SegmentId id) const noexcept {
  if (!in_window(id)) return false;
  return bits_.test(static_cast<std::size_t>(id - base_));
}

std::uint64_t BufferMap::window_word(SegmentId from_id) const noexcept {
  const SegmentId offset = from_id - base_;
  if (offset >= static_cast<SegmentId>(bits_.size()) || offset <= -64) return 0;
  if (offset >= 0) return bits_.extract_word(static_cast<std::size_t>(offset));
  // Straddling the window start: the below-base ids read 0.
  return bits_.extract_word(0) << static_cast<std::size_t>(-offset);
}

std::optional<SegmentId> BufferMap::first_available(SegmentId from) const noexcept {
  const SegmentId clamped = from < base_ ? base_ : from;
  if (clamped >= base_ + static_cast<SegmentId>(bits_.size())) return std::nullopt;
  const std::size_t pos = bits_.find_first(static_cast<std::size_t>(clamped - base_));
  if (pos == bits_.size()) return std::nullopt;
  return base_ + static_cast<SegmentId>(pos);
}

std::vector<std::uint8_t> BufferMap::encode() const {
  const auto truncated = static_cast<std::uint32_t>(base_ & ((1u << kBaseIdBits) - 1));
  std::vector<std::uint8_t> bytes;
  bytes.reserve(3 + (bits_.size() + 7) / 8);
  bytes.push_back(static_cast<std::uint8_t>(truncated));
  bytes.push_back(static_cast<std::uint8_t>(truncated >> 8));
  bytes.push_back(static_cast<std::uint8_t>(truncated >> 16));
  const auto bitmap = bits_.to_bytes();
  bytes.insert(bytes.end(), bitmap.begin(), bitmap.end());
  return bytes;
}

BufferMap BufferMap::decode(const std::vector<std::uint8_t>& bytes, std::size_t window_bits,
                            SegmentId base_hint) {
  GS_CHECK_GE(bytes.size(), 3u);
  const std::uint32_t truncated = static_cast<std::uint32_t>(bytes[0]) |
                                  (static_cast<std::uint32_t>(bytes[1]) << 8) |
                                  (static_cast<std::uint32_t>(bytes[2]) << 16);
  constexpr SegmentId kModulus = SegmentId{1} << kBaseIdBits;
  // Reconstruct the base nearest to the hint with matching low 20 bits.
  const SegmentId hint_block = base_hint >= 0 ? base_hint / kModulus : 0;
  SegmentId best = kNoSegment;
  for (SegmentId block = hint_block == 0 ? 0 : hint_block - 1; block <= hint_block + 1; ++block) {
    const SegmentId candidate = block * kModulus + static_cast<SegmentId>(truncated & (kModulus - 1));
    if (candidate < 0) continue;
    if (best == kNoSegment ||
        std::abs(candidate - base_hint) < std::abs(best - base_hint)) {
      best = candidate;
    }
  }
  BufferMap map(best, window_bits);
  const std::vector<std::uint8_t> bitmap(bytes.begin() + 3, bytes.end());
  map.bits_ = util::DynamicBitset::from_bytes(bitmap, window_bits);
  return map;
}

}  // namespace gs::gossip
