// Gossip membership: partial views with join/leave and degree repair.
//
// Modeled after the peer-sampling style of Ganesh et al. (the paper's
// reference [4]): every peer keeps a small partial view (its overlay
// neighbours); a joiner contacts the overlay and is wired to `target_degree`
// random live peers; when a peer leaves, neighbours whose view drops below
// the target re-fill it with random live peers.  The overlay graph is the
// single source of truth for views; this class mutates it and reports
// membership traffic for accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gossip/overhead.hpp"
#include "net/graph.hpp"
#include "util/rng.hpp"

namespace gs::gossip {

class MembershipProtocol {
 public:
  /// `pinned` nodes (sources) never leave and are never chosen for random
  /// attachment beyond their normal appearance in the live set.
  MembershipProtocol(net::Graph& graph, std::size_t target_degree, util::Rng rng,
                     OverheadAccountant* overhead = nullptr);

  /// Marks all current graph nodes live.  Call once after topology setup.
  void bootstrap_all_live();

  [[nodiscard]] bool alive(net::NodeId v) const;
  [[nodiscard]] const std::vector<net::NodeId>& live_nodes() const noexcept { return live_list_; }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_list_.size(); }
  [[nodiscard]] std::size_t target_degree() const noexcept { return target_degree_; }

  /// Adds a brand-new peer: allocates a graph node, wires it to
  /// `target_degree` random live peers, marks it live.  Returns its id.
  net::NodeId join();

  /// Removes `v` from the overlay: detaches its edges, marks it dead, and
  /// repairs neighbours whose degree fell below the target.
  void leave(net::NodeId v);

  /// Re-fills any live node's view below the target degree (periodic
  /// maintenance; also invoked by leave() for affected neighbours).
  void repair_all();

  /// Uniform random live node; requires live_count() > 0.
  [[nodiscard]] net::NodeId random_live();

  /// Called with every node id created by join() (lets the scenario layer
  /// grow its parallel per-node state).
  void set_on_join(std::function<void(net::NodeId)> callback) { on_join_ = std::move(callback); }

  /// Called with every overlay edge this protocol adds (join wiring and
  /// degree repair), after the edge is in the graph.  Lets incremental
  /// availability views track topology changes without rescans.  During a
  /// join, edges fire before the joiner's parallel per-node state exists;
  /// listeners growing such state should ignore ids they do not know yet
  /// and pick the joiner up via set_on_join.
  void set_on_edge_added(std::function<void(net::NodeId, net::NodeId)> callback) {
    on_edge_added_ = std::move(callback);
  }

  [[nodiscard]] std::size_t join_count() const noexcept { return joins_; }
  [[nodiscard]] std::size_t leave_count() const noexcept { return leaves_; }

 private:
  void mark_live(net::NodeId v);
  void mark_dead(net::NodeId v);
  void repair_node(net::NodeId v);

  net::Graph& graph_;
  std::size_t target_degree_;
  util::Rng rng_;
  OverheadAccountant* overhead_;
  std::function<void(net::NodeId)> on_join_;
  std::function<void(net::NodeId, net::NodeId)> on_edge_added_;

  std::vector<char> alive_;
  std::vector<net::NodeId> live_list_;
  /// live_index_[v] = position of v in live_list_, or npos.
  std::vector<std::size_t> live_index_;
  std::size_t joins_ = 0;
  std::size_t leaves_ = 0;

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
};

}  // namespace gs::gossip
