// Incremental buffer-map exchange: what changed since the last advert.
//
// A full BufferMap costs 620 bits per neighbour per scheduling period
// (§5.3).  Between two consecutive adverts of the same peer, though, only a
// handful of slots change: ~p*tau arrivals near the head, the matching FIFO
// evictions (which mostly fall *below* the shifted window base and need no
// bits at all), and the occasional retry filling an old hole.  A
// BufferMapDelta carries exactly that difference as a base shift plus a
// short list of toggled-bit runs, so steady-state availability gossip costs
// a fraction of the full map.  Real deployments resynchronise periodically;
// the engine refreshes with a full map every `map_refresh_period` adverts
// (and whenever the delta would not be smaller than the map it replaces).
//
// Wire format (accounted bit-exactly, serialized byte-wise like BufferMap):
//   20 bits  new window base id (truncated, same convention as BufferMap)
//    8 bits  run count R (deltas needing more runs fall back to a full map)
//   16 bits  per run: 10-bit start offset from the new base + 6-bit length
#pragma once

#include <cstdint>
#include <vector>

#include "gossip/buffer_map.hpp"

namespace gs::gossip {

class BufferMapDelta {
 public:
  /// A maximal run of toggled bits, positioned relative to the new base.
  struct Run {
    std::uint16_t offset = 0;  ///< first toggled slot, < window
    std::uint16_t length = 0;  ///< in [1, kMaxRunLength]

    [[nodiscard]] bool operator==(const Run& other) const noexcept = default;
  };

  BufferMapDelta() = default;

  /// The delta transforming `from` into `to`.  Both maps must share one
  /// window size; any base movement (forward on head progress, backward in
  /// the rare evicted-max case) is representable.  Runs longer than
  /// kMaxRunLength are split so the result always encodes.
  [[nodiscard]] static BufferMapDelta diff(const BufferMap& from, const BufferMap& to);

  /// Reconstructs `to` from `from`: rebases the window, drops bits that
  /// fall outside it, then applies the toggles.  apply(from, diff(from, to))
  /// == to for all map pairs sharing a window.
  [[nodiscard]] BufferMap apply(const BufferMap& from) const;

  [[nodiscard]] SegmentId base() const noexcept { return base_; }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] const std::vector<Run>& runs() const noexcept { return runs_; }
  /// Total toggled slots across all runs.
  [[nodiscard]] std::size_t toggled_count() const noexcept;

  /// Wire size in bits: header + 16 per run.  Compare against
  /// BufferMap::wire_bits() to decide delta vs full-map refresh.
  [[nodiscard]] std::size_t wire_bits() const noexcept {
    return kHeaderBits + kRunBits * runs_.size();
  }
  /// True when the delta fits the wire format (run count and window caps).
  [[nodiscard]] bool encodable() const noexcept {
    return runs_.size() <= kMaxRuns && window_ <= kMaxWindow;
  }

  /// Serializes: 3-byte truncated base, 1-byte run count, 2 bytes per run
  /// (offset | length << 10, little endian).  Requires encodable().
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Decodes `encode()` output.  `window_bits` must match the encoder's;
  /// `base_hint` disambiguates the truncated base exactly as
  /// BufferMap::decode does.
  [[nodiscard]] static BufferMapDelta decode(const std::vector<std::uint8_t>& bytes,
                                             std::size_t window_bits, SegmentId base_hint);

  [[nodiscard]] bool operator==(const BufferMapDelta& other) const noexcept = default;

  static constexpr std::size_t kRunOffsetBits = 10;
  static constexpr std::size_t kRunLengthBits = 6;
  static constexpr std::size_t kRunCountBits = 8;
  static constexpr std::size_t kRunBits = kRunOffsetBits + kRunLengthBits;
  static constexpr std::size_t kHeaderBits = BufferMap::kBaseIdBits + kRunCountBits;
  static constexpr std::size_t kMaxRunLength = (1u << kRunLengthBits) - 1;
  static constexpr std::size_t kMaxRuns = (1u << kRunCountBits) - 1;
  static constexpr std::size_t kMaxWindow = 1u << kRunOffsetBits;

 private:
  SegmentId base_ = 0;       ///< the new map's window base
  std::size_t window_ = 0;   ///< shared window size in slots
  std::vector<Run> runs_;    ///< sorted, non-overlapping, non-adjacent
};

}  // namespace gs::gossip
