#include "gossip/overhead.hpp"

namespace gs::gossip {

void OverheadAccountant::charge_buffer_map_exchange() noexcept {
  if (!enabled_) return;
  buffer_map_bits_ += wire_.buffer_map_bits();
}

void OverheadAccountant::charge_buffer_map_exchanges(std::size_t count) noexcept {
  if (!enabled_) return;
  buffer_map_bits_ += wire_.buffer_map_bits() * count;
}

void OverheadAccountant::charge_buffer_map_delta(std::size_t run_count,
                                                 std::size_t receiver_count) noexcept {
  if (!enabled_) return;
  buffer_map_bits_ += wire_.buffer_map_delta_bits(run_count) * receiver_count;
}

void OverheadAccountant::charge_request(std::size_t segment_count) noexcept {
  if (!enabled_) return;
  request_bits_ += wire_.request_bits(segment_count);
}

void OverheadAccountant::charge_data_segment() noexcept {
  if (!enabled_) return;
  data_bits_ += wire_.data_bits();
  ++data_segments_;
}

void OverheadAccountant::charge_membership(std::size_t records) noexcept {
  if (!enabled_) return;
  membership_bits_ += wire_.membership_bits(records);
}

double OverheadAccountant::overhead_ratio() const noexcept {
  if (data_bits_ == 0) return 0.0;
  return static_cast<double>(buffer_map_bits_) / static_cast<double>(data_bits_);
}

double OverheadAccountant::control_ratio() const noexcept {
  if (data_bits_ == 0) return 0.0;
  return static_cast<double>(buffer_map_bits_ + request_bits_) / static_cast<double>(data_bits_);
}

void OverheadAccountant::reset() noexcept {
  buffer_map_bits_ = 0;
  request_bits_ = 0;
  data_bits_ = 0;
  membership_bits_ = 0;
  data_segments_ = 0;
}

}  // namespace gs::gossip
