// Buffer-availability map: the per-neighbour data structure exchanged every
// scheduling period in pull-based gossip streaming.
//
// Wire format follows the paper's overhead accounting exactly (§5.3): the id
// of the first segment in the buffer takes 20 bits (a source emits at most
// 10*3600*24 = 864000 < 2^20 segments per day) and availability of the B=600
// buffer slots takes B bits, i.e. 620 bits per exchange for the defaults.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bitset.hpp"

namespace gs::gossip {

/// Global segment sequence number.  S2 continues S1's numbering
/// (id_begin = id_end + 1), so one id space serves all sessions.
using SegmentId = std::int64_t;

/// Sentinel for "no segment".
inline constexpr SegmentId kNoSegment = -1;

class BufferMap {
 public:
  BufferMap() = default;
  /// An empty map covering `window_bits` slots starting at `base`.
  BufferMap(SegmentId base, std::size_t window_bits);

  [[nodiscard]] SegmentId base() const noexcept { return base_; }
  [[nodiscard]] std::size_t window() const noexcept { return bits_.size(); }

  /// True if `id` falls inside [base, base + window).
  [[nodiscard]] bool in_window(SegmentId id) const noexcept;

  /// Marks `id` available; ignores ids outside the window.
  void mark(SegmentId id);

  /// A map whose window [base, base + window_bits) is copied word-at-a-time
  /// from an id-indexed presence bitset (bit i of `presence` = id i held).
  [[nodiscard]] static BufferMap from_presence(SegmentId base, std::size_t window_bits,
                                               const util::DynamicBitset& presence);

  /// In-place from_presence: rebuilds this map over [base, base +
  /// window_bits), reusing the bit storage so per-advert scratch maps stop
  /// allocating.
  void assign_from_presence(SegmentId base, std::size_t window_bits,
                            const util::DynamicBitset& presence);
  /// Availability of `id`; false outside the window.
  [[nodiscard]] bool available(SegmentId id) const noexcept;

  /// Availability of the 64 ids starting at `from_id` as one word (bit i =
  /// from_id + i); ids outside the window read 0.  `from_id` may be below
  /// the base or even negative — this is the word-at-a-time kernel
  /// BufferMapDelta::diff uses to compare differently-based windows.
  [[nodiscard]] std::uint64_t window_word(SegmentId from_id) const noexcept;

  [[nodiscard]] std::size_t available_count() const noexcept { return bits_.count(); }

  /// First available id at or after `from`; nullopt if none in window.
  [[nodiscard]] std::optional<SegmentId> first_available(SegmentId from) const noexcept;

  /// Wire size in bits: 20 (base id) + window bits.
  [[nodiscard]] std::size_t wire_bits() const noexcept { return kBaseIdBits + bits_.size(); }

  /// Heap bytes owned by the bit storage.
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return bits_.memory_bytes(); }

  /// Serializes to bytes: 3-byte little-endian truncated base id (20 bits
  /// zero-padded to 24) followed by the packed bitmap.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Decodes `encode()` output; `window_bits` must match the encoder's.
  /// `base_hint` disambiguates the 20-bit truncated base (the decoder picks
  /// the base congruent mod 2^20 nearest to the hint, as a real client
  /// tracking the stream would).
  [[nodiscard]] static BufferMap decode(const std::vector<std::uint8_t>& bytes,
                                        std::size_t window_bits, SegmentId base_hint);

  [[nodiscard]] bool operator==(const BufferMap& other) const noexcept = default;

  static constexpr std::size_t kBaseIdBits = 20;

 private:
  SegmentId base_ = 0;
  util::DynamicBitset bits_;
};

}  // namespace gs::gossip
