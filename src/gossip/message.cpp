#include "gossip/message.hpp"

// Header-only definitions; this translation unit exists so the target has a
// stable archive member and the header stays checked by the compiler even
// when nothing else includes it yet.
namespace gs::gossip {

static_assert(paper_wire_format().buffer_map_bits() == 620,
              "paper accounting (S5.3): 20-bit base id + 600-bit window");
static_assert(paper_wire_format().data_bits() == 30720, "30 Kb segments");

}  // namespace gs::gossip
