// Message catalogue with bit-accurate wire sizes.
//
// The simulator does not serialize real packets between in-process peers —
// it charges each exchange its wire size so the communication-overhead
// metric (§5.3 of the paper: control bits / data bits) is exact.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gossip/buffer_map.hpp"
#include "gossip/buffer_map_delta.hpp"

namespace gs::gossip {

/// Message kinds that cross the overlay.
enum class MessageKind : std::uint8_t {
  kBufferMap,       ///< periodic full availability exchange (control)
  kBufferMapDelta,  ///< incremental availability exchange (control)
  kRequest,         ///< segment pull request (control)
  kData,            ///< segment payload (data)
  kMembership,      ///< join/leave/repair traffic (control, not in paper's ratio)
};

/// Wire-size model, configurable so ablations can change segment size or
/// buffer depth without touching accounting call sites.
struct WireFormat {
  std::size_t buffer_window_bits = 600;   ///< B slots in the availability map
  std::size_t base_id_bits = BufferMap::kBaseIdBits;  ///< 20 bits (§5.3)
  std::size_t request_id_bits = BufferMap::kBaseIdBits;  ///< one id per requested segment
  std::size_t segment_payload_bits = 30 * 1024;  ///< 30 Kb per segment (§5.1)
  std::size_t membership_record_bits = 48;  ///< ip+port of one peer
  /// Delta exchange framing (see BufferMapDelta): base + run count header,
  /// then one offset/length pair per toggled-bit run.
  std::size_t delta_header_bits = BufferMapDelta::kHeaderBits;
  std::size_t delta_run_bits = BufferMapDelta::kRunBits;

  /// Bits of one buffer-map exchange: base id + window bitmap.
  [[nodiscard]] constexpr std::size_t buffer_map_bits() const noexcept {
    return base_id_bits + buffer_window_bits;
  }
  /// Bits of one incremental buffer-map exchange carrying `runs` runs.
  [[nodiscard]] constexpr std::size_t buffer_map_delta_bits(std::size_t runs) const noexcept {
    return delta_header_bits + delta_run_bits * runs;
  }
  /// Bits of a pull request for `segment_count` segments.
  [[nodiscard]] constexpr std::size_t request_bits(std::size_t segment_count) const noexcept {
    return request_id_bits * segment_count;
  }
  /// Bits of one data segment on the wire.
  [[nodiscard]] constexpr std::size_t data_bits() const noexcept { return segment_payload_bits; }
  /// Bits of a membership message carrying `records` peer records.
  [[nodiscard]] constexpr std::size_t membership_bits(std::size_t records) const noexcept {
    return membership_record_bits * records;
  }
};

/// Paper defaults: 620-bit maps, 30 Kb segments.
[[nodiscard]] constexpr WireFormat paper_wire_format() noexcept { return WireFormat{}; }

}  // namespace gs::gossip
