#include "gossip/membership.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace gs::gossip {

MembershipProtocol::MembershipProtocol(net::Graph& graph, std::size_t target_degree, util::Rng rng,
                                       OverheadAccountant* overhead)
    : graph_(graph), target_degree_(target_degree), rng_(rng), overhead_(overhead) {
  alive_.resize(graph_.node_count(), 0);
  live_index_.resize(graph_.node_count(), kNpos);
}

void MembershipProtocol::bootstrap_all_live() {
  for (net::NodeId v = 0; v < graph_.node_count(); ++v) mark_live(v);
}

bool MembershipProtocol::alive(net::NodeId v) const {
  return v < alive_.size() && alive_[v] != 0;
}

void MembershipProtocol::mark_live(net::NodeId v) {
  if (v >= alive_.size()) {
    alive_.resize(v + 1, 0);
    live_index_.resize(v + 1, kNpos);
  }
  if (alive_[v]) return;
  alive_[v] = 1;
  live_index_[v] = live_list_.size();
  live_list_.push_back(v);
}

void MembershipProtocol::mark_dead(net::NodeId v) {
  if (v >= alive_.size() || !alive_[v]) return;
  alive_[v] = 0;
  // Swap-remove from the live list, fixing the displaced node's index.
  const std::size_t pos = live_index_[v];
  GS_CHECK_NE(pos, kNpos);
  const net::NodeId last = live_list_.back();
  live_list_[pos] = last;
  live_index_[last] = pos;
  live_list_.pop_back();
  live_index_[v] = kNpos;
}

net::NodeId MembershipProtocol::random_live() {
  GS_CHECK_GT(live_list_.size(), 0u);
  const auto pick = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(live_list_.size()) - 1));
  return live_list_[pick];
}

net::NodeId MembershipProtocol::join() {
  const net::NodeId v = graph_.add_node();
  alive_.resize(graph_.node_count(), 0);
  live_index_.resize(graph_.node_count(), kNpos);
  // Wire to target_degree random live peers (fewer if the overlay is tiny).
  const std::size_t want = std::min(target_degree_, live_list_.size());
  std::size_t made = 0;
  std::size_t attempts = 0;
  while (made < want && attempts < want * 20 + 20) {
    ++attempts;
    const net::NodeId peer = random_live();
    if (graph_.add_edge(v, peer)) {
      ++made;
      if (on_edge_added_) on_edge_added_(v, peer);
    }
  }
  mark_live(v);
  ++joins_;
  if (overhead_ != nullptr) overhead_->charge_membership(made + 1);
  if (on_join_) on_join_(v);
  return v;
}

void MembershipProtocol::leave(net::NodeId v) {
  GS_CHECK(alive(v));
  // Snapshot neighbours before detaching; they are the repair candidates.
  const std::vector<net::NodeId> affected(graph_.neighbors(v).begin(), graph_.neighbors(v).end());
  graph_.isolate(v);
  mark_dead(v);
  ++leaves_;
  if (overhead_ != nullptr) overhead_->charge_membership(affected.size());
  for (const net::NodeId u : affected) {
    if (alive(u)) repair_node(u);
  }
}

void MembershipProtocol::repair_node(net::NodeId v) {
  std::size_t attempts = 0;
  while (graph_.degree(v) < target_degree_ && live_list_.size() > 1 &&
         attempts < target_degree_ * 30 + 30) {
    ++attempts;
    const net::NodeId peer = random_live();
    if (peer == v || !alive(peer)) continue;
    if (graph_.add_edge(v, peer)) {
      if (overhead_ != nullptr) overhead_->charge_membership(1);
      if (on_edge_added_) on_edge_added_(v, peer);
    }
  }
}

void MembershipProtocol::repair_all() {
  // Iterate a snapshot: repair_node mutates degrees but not the live list.
  const std::vector<net::NodeId> snapshot = live_list_;
  for (const net::NodeId v : snapshot) {
    if (alive(v) && graph_.degree(v) < target_degree_) repair_node(v);
  }
}

}  // namespace gs::gossip
