// Ablation A4: the value of the closed-form split (eq. 4 + the four capped
// cases) against naive fixed splits, holding everything else equal.
//
// Implemented as alternative SchedulerStrategy variants that bypass the
// solver: "half" always splits the inbound budget 50:50; "s2first" gives
// the new stream absolute priority (the mirror image of the normal
// algorithm).
#include <memory>

#include "bench_common.hpp"
#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"
#include "core/supplier_selection.hpp"
#include "experiments/scenario.hpp"

namespace {

using gs::core::Assignment;
using gs::core::greedy_assign;
using gs::core::PriorityParams;
using gs::core::promote_fresh_candidates;
using gs::core::sort_by_priority;
using gs::stream::CandidateSegment;
using gs::stream::ScheduleContext;
using gs::stream::ScheduledRequest;
using gs::stream::StreamEpoch;

/// Fixed-ratio splitter: i2 = ratio * I during a switch (capped by O2).
class FixedSplitScheduler final : public gs::stream::SchedulerStrategy {
 public:
  FixedSplitScheduler(std::string name, double s2_share) : name_(std::move(name)), share_(s2_share) {}

  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::vector<ScheduledRequest> schedule(
      const ScheduleContext& ctx, std::vector<CandidateSegment>& candidates) override {
    std::vector<ScheduledRequest> requests;
    if (candidates.empty() || ctx.max_requests == 0) return requests;
    std::vector<double> priorities = sort_by_priority(ctx, candidates, params_);
    if (ctx.s1_end == gs::stream::kNoSegment) {
      promote_fresh_candidates(ctx, candidates, priorities, params_);
      for (const Assignment& a : greedy_assign(ctx, candidates, priorities)) {
        if (requests.size() >= ctx.max_requests) break;
        requests.push_back({a.id, a.supplier});
      }
      return requests;
    }
    const std::vector<Assignment> assignments = greedy_assign(ctx, candidates, priorities);
    std::vector<const Assignment*> o1;
    std::vector<const Assignment*> o2;
    for (const Assignment& a : assignments) {
      (a.epoch == StreamEpoch::kOld ? o1 : o2).push_back(&a);
    }
    auto n2 = std::min<std::size_t>(
        o2.size(), static_cast<std::size_t>(share_ * static_cast<double>(ctx.max_requests)));
    auto n1 = std::min(o1.size(), ctx.max_requests - n2);
    std::size_t i1 = 0;
    std::size_t i2 = 0;
    while ((i1 < n1 || i2 < n2) && requests.size() < ctx.max_requests) {
      if (i2 * n1 <= i1 * n2 && i2 < n2) {
        requests.push_back({o2[i2]->id, o2[i2]->supplier});
        ++i2;
      } else if (i1 < n1) {
        requests.push_back({o1[i1]->id, o1[i1]->supplier});
        ++i1;
      } else {
        break;
      }
    }
    // Leftover budget: remaining assignments by priority.
    for (const Assignment& a : assignments) {
      if (requests.size() >= ctx.max_requests) break;
      bool taken = false;
      for (const auto& r : requests) {
        if (r.id == a.id) {
          taken = true;
          break;
        }
      }
      if (!taken) requests.push_back({a.id, a.supplier});
    }
    return requests;
  }

 private:
  std::string name_;
  double share_;
  PriorityParams params_;
};

struct PolicyOutcome {
  double prepared = 0.0;  ///< T2: avg preparing time of S2
  double finish = 0.0;    ///< T1': avg finishing time of S1
  double start = 0.0;     ///< actual S2 playback start = max of the two gates
};

PolicyOutcome run_with(const gs::exp::Config& base,
                       std::shared_ptr<gs::stream::SchedulerStrategy> s) {
  gs::exp::BuiltScenario scenario = gs::exp::build_scenario(base);
  gs::stream::EngineConfig engine_config = base.engine;
  engine_config.membership_degree = base.neighbor_target;
  gs::stream::Engine engine(std::move(scenario.graph), std::move(scenario.latency), engine_config,
                            std::move(s));
  engine.set_sources(std::move(scenario.sources), base.switch_times);
  const auto metrics = engine.run();
  PolicyOutcome out;
  out.prepared = metrics.front().avg_prepared_time();
  out.finish = metrics.front().avg_finish_time();
  out.start = metrics.front().avg_s2_start_time();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "1000")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 1000 : options.sizes.front();

  std::printf("=== A4: rate-split policy ablation (%zu nodes) ===\n", nodes);
  std::printf("%-26s %14s %14s %16s\n", "policy", "T2 (prepare)", "T1' (finish)",
              "S2 play start");
  struct Named {
    const char* label;
    std::shared_ptr<gs::stream::SchedulerStrategy> (*make)();
  };
  const Named policies[] = {
      {"closed form (eq.4, paper)",
       [] { return std::shared_ptr<gs::stream::SchedulerStrategy>(
                std::make_shared<gs::core::FastSwitchScheduler>()); }},
      {"fixed 50:50 split",
       [] { return std::shared_ptr<gs::stream::SchedulerStrategy>(
                std::make_shared<FixedSplitScheduler>("half", 0.5)); }},
      {"S2-first (starves S1)",
       [] { return std::shared_ptr<gs::stream::SchedulerStrategy>(
                std::make_shared<FixedSplitScheduler>("s2first", 1.0)); }},
      {"normal (S1-first)",
       [] { return std::shared_ptr<gs::stream::SchedulerStrategy>(
                std::make_shared<gs::core::NormalSwitchScheduler>()); }},
  };
  for (const Named& policy : policies) {
    PolicyOutcome sum;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      gs::exp::Config config = gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast,
                                                             options.seed + trial * 1000);
      config.engine.seed = config.seed;
      options.apply_engine(config);
      const PolicyOutcome out = run_with(config, policy.make());
      sum.prepared += out.prepared;
      sum.finish += out.finish;
      sum.start += out.start;
    }
    const auto n = static_cast<double>(options.trials);
    std::printf("%-26s %12.2f s %12.2f s %14.2f s\n", policy.label, sum.prepared / n,
                sum.finish / n, sum.start / n);
  }
  std::printf("\nT2 alone rewards starving S1 (S2-first); the user-visible metric is the\n"
              "S2 playback start, where the closed form balances both gates without\n"
              "hand-tuning, and the finish column shows what S2-first sacrifices.\n");
  return 0;
}
