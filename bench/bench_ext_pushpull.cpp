// Extension E1: GridMedia-style push-pull relaying (related work, §2).
//
// The paper: "pushing packets would bring considerable communication
// overhead" but accelerates dissemination.  This bench quantifies the
// trade-off in our substrate: push lowers the switch time further but pays
// in redundant deliveries.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "500,1000")) return 0;

  std::printf("=== E1: push-pull extension (fast switch + fresh-segment push) ===\n");
  std::printf("%8s %8s  %14s  %14s  %12s  %14s\n", "nodes", "fanout", "avg_switch",
              "avg_finish_S1", "redundancy", "ctrl+data_ovh");
  for (const std::size_t nodes : options.sizes) {
    for (const std::size_t fanout : {0u, 1u, 2u, 4u}) {
      double switch_time = 0.0;
      double finish = 0.0;
      double redundancy = 0.0;
      double control = 0.0;
      for (std::size_t trial = 0; trial < options.trials; ++trial) {
        gs::exp::Config config = gs::exp::Config::paper_static(
            nodes, gs::exp::AlgorithmKind::kFast, options.seed + trial * 1000);
        config.engine.push_fresh_segments = fanout > 0;
        config.engine.push_fanout = fanout;
        options.apply_engine(config);
        const gs::exp::RunResult result = gs::exp::run_once(config);
        switch_time += result.primary().avg_prepared_time();
        finish += result.primary().avg_finish_time();
        const auto delivered = static_cast<double>(result.stats.segments_delivered);
        redundancy += delivered > 0 ? static_cast<double>(result.stats.duplicates) / delivered : 0;
        control += result.primary().control_ratio;
      }
      const auto n = static_cast<double>(options.trials);
      std::printf("%8zu %8zu  %14.2f  %14.2f  %12.4f  %14.5f\n", nodes, fanout, switch_time / n,
                  finish / n, redundancy / n, control / n);
    }
  }
  std::printf("\nGridMedia's trade-off, §2 of the paper: push accelerates dissemination\n"
              "but 'pushing packets would bring considerable communication overhead'.\n"
              "In a capacity-contended mesh the redundant copies (redundancy column)\n"
              "consume the very uplinks the switch needs, so large fanouts can *hurt*\n"
              "switch times — the overhead the paper warns about, made concrete.\n");
  return 0;
}
