// Microbenchmarks of the hot kernels (google-benchmark): rate solver,
// priority computation, Algorithm 1 greedy, buffer-map codec, stream
// buffer, event queue — plus the end-to-end engine dispatch benchmark
// comparing per-peer and batched tick dispatch.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "core/fast_switch.hpp"
#include "core/priority.hpp"
#include "core/rate_solver.hpp"
#include "core/supplier_selection.hpp"
#include "experiments/config.hpp"
#include "experiments/scenario.hpp"
#include "gossip/buffer_map.hpp"
#include "sim/event_queue.hpp"
#include "stream/stream_buffer.hpp"
#include "util/rng.hpp"

namespace {

using gs::stream::CandidateSegment;
using gs::stream::ScheduleContext;
using gs::stream::StreamEpoch;
using gs::stream::SupplierView;

void BM_RateSolverUnconstrained(benchmark::State& state) {
  gs::core::SplitInput in{128, 50, 10, 10, 15};
  for (auto _ : state) {
    in.q1 = 50.0 + std::fmod((in.q1 + 1.0) * 31.0, 200.0);  // vary inputs to defeat CSE
    benchmark::DoNotOptimize(gs::core::solve_unconstrained(in));
  }
}
BENCHMARK(BM_RateSolverUnconstrained);

void BM_RateSolverCapped(benchmark::State& state) {
  gs::core::SplitInput in{128, 50, 10, 10, 15};
  double o1 = 8.0;
  for (auto _ : state) {
    o1 = 1.0 + (o1 * 7.0 + 3.0) * 0.5;
    if (o1 > 30.0) o1 = 1.0;
    benchmark::DoNotOptimize(gs::core::solve_capped(in, o1, 12.0 - o1 * 0.2));
  }
}
BENCHMARK(BM_RateSolverCapped);

std::vector<CandidateSegment> make_candidates(std::size_t count, std::size_t suppliers,
                                              gs::util::Rng& rng) {
  std::vector<CandidateSegment> candidates(count);
  for (std::size_t i = 0; i < count; ++i) {
    candidates[i].id = 100 + static_cast<gs::stream::SegmentId>(i);
    candidates[i].epoch = i % 3 == 0 ? StreamEpoch::kNew : StreamEpoch::kOld;
    for (std::size_t j = 0; j < suppliers; ++j) {
      SupplierView s;
      s.node = static_cast<gs::net::NodeId>(j);
      s.send_rate = rng.uniform(10.0, 33.0);
      s.buffer_position = static_cast<std::size_t>(rng.uniform_int(1, 600));
      candidates[i].suppliers.push_back(s);
    }
  }
  return candidates;
}

ScheduleContext bench_ctx() {
  ScheduleContext ctx;
  ctx.id_play = 95;
  ctx.playback_rate = 10.0;
  ctx.inbound_rate = 15.0;
  ctx.buffer_capacity = 600;
  ctx.max_requests = 15;
  ctx.s1_end = 160;
  ctx.s2_begin = 161;
  ctx.q1_remaining = 60;
  ctx.q2_remaining = 50;
  return ctx;
}

void BM_PriorityKernel(benchmark::State& state) {
  gs::util::Rng rng(1);
  const auto candidates = make_candidates(static_cast<std::size_t>(state.range(0)), 5, rng);
  const ScheduleContext ctx = bench_ctx();
  const gs::core::PriorityParams params;
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& c : candidates) acc += gs::core::segment_priority(c, ctx, params);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PriorityKernel)->Arg(32)->Arg(128)->Arg(512);

void BM_GreedyAssign(benchmark::State& state) {
  gs::util::Rng rng(2);
  const auto base = make_candidates(static_cast<std::size_t>(state.range(0)), 5, rng);
  const ScheduleContext ctx = bench_ctx();
  std::vector<double> priorities(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) priorities[i] = 1.0 / (1.0 + static_cast<double>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::core::greedy_assign(ctx, base, priorities));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GreedyAssign)->Arg(32)->Arg(128)->Arg(512);

void BM_FastSwitchSchedule(benchmark::State& state) {
  gs::util::Rng rng(3);
  const auto base = make_candidates(static_cast<std::size_t>(state.range(0)), 5, rng);
  ScheduleContext ctx = bench_ctx();
  gs::util::Rng node_rng(4);
  ctx.rng = &node_rng;
  gs::core::FastSwitchScheduler scheduler;
  for (auto _ : state) {
    auto candidates = base;
    benchmark::DoNotOptimize(scheduler.schedule(ctx, candidates));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FastSwitchSchedule)->Arg(32)->Arg(128)->Arg(512);

void BM_BufferMapEncodeDecode(benchmark::State& state) {
  gs::util::Rng rng(5);
  gs::gossip::BufferMap map(123456, 600);
  for (gs::gossip::SegmentId id = 123456; id < 123456 + 600; ++id) {
    if (rng.bernoulli(0.6)) map.mark(id);
  }
  for (auto _ : state) {
    const auto bytes = map.encode();
    benchmark::DoNotOptimize(gs::gossip::BufferMap::decode(bytes, 600, 123000));
  }
}
BENCHMARK(BM_BufferMapEncodeDecode);

void BM_StreamBufferInsert(benchmark::State& state) {
  gs::stream::StreamBuffer buffer(600);
  gs::stream::SegmentId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffer.insert(id++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamBufferInsert);

// Closure events, heap (wheel=0) vs timing-wheel (wheel=1) backend on the
// same workload: the row pair isolates the O(log n) sift vs O(1) bucket
// append schedule cost (pop order is identical by contract).
void BM_EventQueueScheduleRun(benchmark::State& state) {
  const bool wheel = state.range(1) != 0;
  for (auto _ : state) {
    gs::sim::EventQueue queue;
    if (wheel) queue.enable_timing_wheel(1.0);
    int sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule(static_cast<double>((i * 7919) % 1000), [&sink] { ++sink; });
    }
    while (!queue.empty()) queue.pop_and_run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)
    ->ArgNames({"events", "wheel"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

/// Pooled plain-struct events on the same workload as the closure variant
/// above: the delta is the per-event std::function allocation.
struct CountingSink final : gs::sim::EventSink {
  int count = 0;
  void on_event(std::uint64_t, std::uint64_t) override { ++count; }
};

void BM_EventQueuePooledScheduleRun(benchmark::State& state) {
  const bool wheel = state.range(1) != 0;
  for (auto _ : state) {
    gs::sim::EventQueue queue;
    if (wheel) queue.enable_timing_wheel(1.0);
    CountingSink sink;
    for (int i = 0; i < state.range(0); ++i) {
      queue.schedule(static_cast<double>((i * 7919) % 1000), sink,
                     static_cast<std::uint64_t>(i), 0);
    }
    while (!queue.empty()) queue.pop_and_run();
    benchmark::DoNotOptimize(sink.count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePooledScheduleRun)
    ->ArgNames({"events", "wheel"})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

// Engine dispatch cost: a full (trimmed-horizon) switch experiment per
// iteration, per-peer vs batched tick dispatch.  The two rows of a size are
// the same seed and produce bit-identical metrics (stream_determinism_test
// enforces that); only the dispatch mechanism differs, so the wall-clock
// delta and the events_popped counter isolate the scheduling overhead.
void BM_EngineDispatch(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool batch = state.range(1) != 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(batch);
    config.engine.horizon = 15.0;        // dispatch cost, not paper metrics
    config.engine.history_seconds = 30.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    events += engine->stats().events_popped;
    delivered += engine->stats().segments_delivered;
    ++runs;
  }
  state.counters["events_popped"] =
      benchmark::Counter(static_cast<double>(events) / static_cast<double>(runs));
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
}
BENCHMARK(BM_EngineDispatch)
    ->ArgNames({"peers", "batch"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

// Candidate-build cost: the same trimmed-horizon experiment with the
// availability plane rescanning neighbour buffers per tick (incremental=0)
// vs maintained by deltas (incremental=1).  The two rows of a size are the
// same seed and produce bit-identical metrics (stream_determinism_test
// enforces that); availability_probes counts supplier-membership probes
// during candidate build and index_updates the delta events that replaced
// the rescans, so the wall-clock delta and the probe drop isolate the
// scan-work saving.
void BM_BuildCandidates(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool incremental = state.range(1) != 0;
  std::uint64_t probes = 0;
  std::uint64_t index_updates = 0;
  std::uint64_t delivered = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_incremental_availability(incremental);
    config.engine.horizon = 15.0;        // scan cost, not paper metrics
    config.engine.history_seconds = 30.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    probes += engine->stats().availability_probes;
    index_updates += engine->stats().index_updates;
    delivered += engine->stats().segments_delivered;
    ++runs;
  }
  state.counters["availability_probes"] =
      benchmark::Counter(static_cast<double>(probes) / static_cast<double>(runs));
  state.counters["index_updates"] =
      benchmark::Counter(static_cast<double>(index_updates) / static_cast<double>(runs));
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
}
BENCHMARK(BM_BuildCandidates)
    ->ArgNames({"peers", "incremental"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

// Sharded-core scaling: the same trimmed-horizon experiment sequential
// (shards=0) vs on the sharded parallel core, at the scale configuration
// (wide tick shards so one sweep carries enough planning work to amortise
// the fork/join).  The rows of a size share the seed and produce
// bit-identical metrics (stream_determinism_test enforces that); only
// wall clock and the shard diagnostics differ, so the row pair is the
// speedup measurement.  Emit BENCH_*.json via
//   bench_micro_core --benchmark_filter=BM_ShardedDispatch
//     --benchmark_out=BENCH_sharded_dispatch.json --benchmark_out_format=json
void BM_ShardedDispatch(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  std::uint64_t delivered = 0;
  std::uint64_t sweeps = 0;
  std::uint64_t replanned = 0;
  std::uint64_t cross_shard = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(true);
    config.enable_incremental_availability(true);
    config.enable_parallel_shards(shards);
    config.engine.tick_shard_size = 256;   // the scale grain (see README)
    config.engine.horizon = nodes >= 100000 ? 5.0 : 10.0;
    config.engine.history_seconds = nodes >= 100000 ? 20.0 : 30.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    delivered += engine->stats().segments_delivered;
    sweeps += engine->stats().parallel_sweeps;
    replanned += engine->stats().replanned_ticks;
    cross_shard += engine->stats().cross_shard_events;
    ++runs;
  }
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
  state.counters["parallel_sweeps"] =
      benchmark::Counter(static_cast<double>(sweeps) / static_cast<double>(runs));
  state.counters["replanned_ticks"] =
      benchmark::Counter(static_cast<double>(replanned) / static_cast<double>(runs));
  state.counters["cross_shard_events"] =
      benchmark::Counter(static_cast<double>(cross_shard) / static_cast<double>(runs));
}
BENCHMARK(BM_ShardedDispatch)
    ->ArgNames({"peers", "shards"})
    ->Args({10000, 0})
    ->Args({10000, 4})
    ->Args({100000, 0})
    ->Args({100000, 4})
    ->Unit(benchmark::kMillisecond);

// Delivery-drain scaling: the BM_ShardedDispatch configuration with the
// delivery path isolated — sequential (shards=0, inline delivery pops) vs
// the sharded core whose batched delivery drain marks buffers in a
// parallel wave and merges availability deltas per owning shard, with
// same-timestamp sweeps super-batched.  The rows of a size share the seed
// and produce bit-identical metrics (stream_determinism_test's
// ParallelDelivery suite enforces that); the wall-clock delta plus the
// drain counters (delivery_batches / delta_journal_merges /
// superbatch_sweeps) report how much of the former sequential remainder
// the wave absorbed.  Emit BENCH_*.json via
//   bench_micro_core --benchmark_filter=BM_DeliveryDrain
//     --benchmark_out=BENCH_delivery_drain.json --benchmark_out_format=json
void BM_DeliveryDrain(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  std::uint64_t delivered = 0;
  std::uint64_t batches = 0;
  std::uint64_t merges = 0;
  std::uint64_t superbatches = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(true);
    config.enable_incremental_availability(true);
    config.enable_parallel_shards(shards);
    config.engine.tick_shard_size = 256;   // the scale grain (see README)
    config.engine.horizon = nodes >= 100000 ? 5.0 : 10.0;
    config.engine.history_seconds = nodes >= 100000 ? 20.0 : 30.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    delivered += engine->stats().segments_delivered;
    batches += engine->stats().delivery_batches;
    merges += engine->stats().delta_journal_merges;
    superbatches += engine->stats().superbatch_sweeps;
    ++runs;
  }
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
  state.counters["delivery_batches"] =
      benchmark::Counter(static_cast<double>(batches) / static_cast<double>(runs));
  state.counters["delta_journal_merges"] =
      benchmark::Counter(static_cast<double>(merges) / static_cast<double>(runs));
  state.counters["superbatch_sweeps"] =
      benchmark::Counter(static_cast<double>(superbatches) / static_cast<double>(runs));
}
BENCHMARK(BM_DeliveryDrain)
    ->ArgNames({"peers", "shards"})
    ->Args({10000, 0})
    ->Args({10000, 4})
    ->Args({100000, 0})
    ->Args({100000, 4})
    ->Unit(benchmark::kMillisecond);

// Plan-gate payoff where the gate genuinely fires: a caught-up steady
// swarm (sparse_fill=1.0, no synthetic backlog or lag) in which most peers
// have no missing ∧ supplied work most of the time, so the quiescence gate
// skips their candidate builds outright.  The rows of a size share the
// seed and produce bit-identical metrics (stream_determinism_test's
// PlanGate suite enforces that); plans_gated / plans_built report the gate
// hit rate and the wall-clock delta is the saving.  The busy-swarm payoff
// of the bundled neighbour-major candidate build shows up on the
// BM_FullPipeline / BM_MillionPeer gate axes instead.  Emit BENCH_*.json
// via
//   bench_micro_core --benchmark_filter=BM_PlanGate
//     --benchmark_out=BENCH_plan_gate.json --benchmark_out_format=json
void BM_PlanGate(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool gate = state.range(1) != 0;
  std::uint64_t delivered = 0;
  std::uint64_t gated = 0;
  std::uint64_t built = 0;
  std::uint64_t probes = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(true);
    config.enable_incremental_availability(true);
    config.enable_windowed_availability(true);
    config.enable_peer_pool(true);
    config.enable_plan_gate(gate);
    config.engine.tick_shard_size = 1024;  // wide sweeps; dispatch is not the point
    config.engine.horizon = 2.0;           // plan cost, not paper metrics
    config.engine.history_seconds = 10.0;
    config.engine.sparse_fill = 1.0;       // caught-up steady swarm: most peers
    config.engine.stable_backlog_scale = 0.0;  // quiesce between deliveries, so
    config.engine.base_lag_segments = 0.0;     // the gate has real work to skip
    config.engine.hop_lag_seconds = 0.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    delivered += engine->stats().segments_delivered;
    gated += engine->stats().plans_gated;
    built += engine->stats().plans_built;
    probes += engine->stats().availability_probes;
    ++runs;
  }
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
  state.counters["plans_gated"] =
      benchmark::Counter(static_cast<double>(gated) / static_cast<double>(runs));
  state.counters["plans_built"] =
      benchmark::Counter(static_cast<double>(built) / static_cast<double>(runs));
  state.counters["availability_probes"] =
      benchmark::Counter(static_cast<double>(probes) / static_cast<double>(runs));
}
BENCHMARK(BM_PlanGate)
    ->ArgNames({"peers", "gate"})
    ->Args({100000, 0})
    ->Args({100000, 1})
    ->Args({1000000, 0})
    ->Args({1000000, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Whole-pipeline throughput: batched dispatch + incremental windowed
// availability + the memory plane, sequential vs the sharded core, at
// N=100000.  This is the "everything on" configuration the scale runs use;
// the memory counters come from the engine's end-of-run telemetry.  Emit
// BENCH_*.json via
//   bench_micro_core --benchmark_filter=BM_FullPipeline
//     --benchmark_out=BENCH_full_pipeline.json --benchmark_out_format=json
void BM_FullPipeline(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const bool commit = state.range(2) != 0;
  const bool wheel = state.range(3) != 0;
  const bool gate = state.range(4) != 0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  double bytes_per_peer = 0.0;
  std::uint64_t colour_classes = 0;
  std::uint64_t fixups = 0;
  std::uint64_t commits = 0;
  std::uint64_t books = 0;
  std::uint64_t steady_chunks = 0;
  std::uint64_t wheeled = 0;
  std::uint64_t promotions = 0;
  std::uint64_t spill_peak = 0;
  std::uint64_t gated = 0;
  std::uint64_t built = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(true);
    config.enable_incremental_availability(true);
    config.enable_windowed_availability(true);
    config.enable_parallel_shards(shards);
    config.enable_parallel_commit(commit);
    config.enable_peer_pool(true);
    config.enable_timing_wheel(wheel);
    config.enable_plan_gate(gate);
    config.engine.tick_shard_size = 256;   // the scale grain (see README)
    config.engine.horizon = 5.0;           // pipeline cost, not paper metrics
    config.engine.history_seconds = 20.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    delivered += engine->stats().segments_delivered;
    events += engine->stats().events_popped;
    bytes_per_peer += engine->stats().bytes_per_peer;
    colour_classes += engine->stats().commit_colour_classes;
    fixups += engine->stats().commit_conflict_fixups;
    commits += engine->stats().parallel_commits;
    books += engine->stats().parallel_books;
    steady_chunks += engine->stats().arena_steady_chunks;
    wheeled += engine->stats().events_wheeled;
    promotions += engine->stats().wheel_overflow_promotions;
    spill_peak = std::max(spill_peak, engine->stats().spill_heap_peak);
    gated += engine->stats().plans_gated;
    built += engine->stats().plans_built;
    ++runs;
  }
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
  state.counters["events_popped"] =
      benchmark::Counter(static_cast<double>(events) / static_cast<double>(runs));
  state.counters["bytes_per_peer"] =
      benchmark::Counter(bytes_per_peer / static_cast<double>(runs));
  state.counters["commit_colour_classes"] =
      benchmark::Counter(static_cast<double>(colour_classes) / static_cast<double>(runs));
  state.counters["commit_conflict_fixups"] =
      benchmark::Counter(static_cast<double>(fixups) / static_cast<double>(runs));
  state.counters["parallel_commits"] =
      benchmark::Counter(static_cast<double>(commits) / static_cast<double>(runs));
  state.counters["parallel_books"] =
      benchmark::Counter(static_cast<double>(books) / static_cast<double>(runs));
  state.counters["arena_steady_chunks"] =
      benchmark::Counter(static_cast<double>(steady_chunks) / static_cast<double>(runs));
  state.counters["events_wheeled"] =
      benchmark::Counter(static_cast<double>(wheeled) / static_cast<double>(runs));
  state.counters["wheel_overflow_promotions"] =
      benchmark::Counter(static_cast<double>(promotions) / static_cast<double>(runs));
  state.counters["spill_heap_peak"] = benchmark::Counter(static_cast<double>(spill_peak));
  state.counters["plans_gated"] =
      benchmark::Counter(static_cast<double>(gated) / static_cast<double>(runs));
  state.counters["plans_built"] =
      benchmark::Counter(static_cast<double>(built) / static_cast<double>(runs));
}
BENCHMARK(BM_FullPipeline)
    ->ArgNames({"peers", "shards", "commit", "wheel", "gate"})
    ->Args({100000, 0, 1, 0, 1})
    ->Args({100000, 0, 1, 1, 0})
    ->Args({100000, 0, 1, 1, 1})
    ->Args({100000, 4, 0, 1, 1})
    ->Args({100000, 4, 1, 0, 1})
    ->Args({100000, 4, 1, 1, 0})
    ->Args({100000, 4, 1, 1, 1})
    ->Unit(benchmark::kMillisecond);

// Million-peer memory smoke: one trimmed-dynamics switch experiment at
// N=10^6, legacy containers (pool=0) vs the memory plane (pool=1), plus a
// gate=0 row isolating the plan work-set plane (quiescence gate +
// neighbour-major candidate build) on the pooled configuration — at this
// scale neighbour presence bitsets are cache-cold, so the pooled
// gate-on/gate-off pair is the headline plan-phase speedup.  The
// point of the pool axis is the footprint, not the wall clock:
// bytes_per_peer comes from the
// engine's container accounting and peak_rss_mb from the process high-water
// mark (cumulative across rows by nature — run one filter per process for
// clean RSS numbers).  Fixed-seed metrics are bit-identical across the two
// rows (stream_determinism_test enforces the flag's purity).  Emit
// BENCH_*.json via
//   bench_micro_core --benchmark_filter=BM_MillionPeer
//     --benchmark_out=BENCH_million_peer.json --benchmark_out_format=json
void BM_MillionPeer(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool pool = state.range(1) != 0;
  const bool wheel = state.range(2) != 0;
  const bool gate = state.range(3) != 0;
  std::uint64_t delivered = 0;
  double bytes_per_peer = 0.0;
  double peak_rss = 0.0;
  std::uint64_t wheeled = 0;
  std::uint64_t gated = 0;
  std::uint64_t built = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    gs::exp::Config config =
        gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, 1);
    config.enable_batch_dispatch(true);
    config.enable_incremental_availability(true);
    config.enable_windowed_availability(true);
    config.enable_peer_pool(pool);
    config.enable_timing_wheel(wheel);
    config.enable_plan_gate(gate);
    config.engine.tick_shard_size = 1024;  // wide sweeps; dispatch is not the point
    config.engine.horizon = 2.0;           // memory smoke, not paper metrics
    config.engine.history_seconds = 10.0;
    auto engine = gs::exp::make_engine(config);
    state.ResumeTiming();
    benchmark::DoNotOptimize(engine->run());
    delivered += engine->stats().segments_delivered;
    bytes_per_peer += engine->stats().bytes_per_peer;
    peak_rss += static_cast<double>(engine->stats().peak_rss_bytes);
    wheeled += engine->stats().events_wheeled;
    gated += engine->stats().plans_gated;
    built += engine->stats().plans_built;
    ++runs;
  }
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered) / static_cast<double>(runs));
  state.counters["bytes_per_peer"] =
      benchmark::Counter(bytes_per_peer / static_cast<double>(runs));
  state.counters["peak_rss_mb"] =
      benchmark::Counter(peak_rss / static_cast<double>(runs) / (1024.0 * 1024.0));
  state.counters["events_wheeled"] =
      benchmark::Counter(static_cast<double>(wheeled) / static_cast<double>(runs));
  state.counters["plans_gated"] =
      benchmark::Counter(static_cast<double>(gated) / static_cast<double>(runs));
  state.counters["plans_built"] =
      benchmark::Counter(static_cast<double>(built) / static_cast<double>(runs));
}
BENCHMARK(BM_MillionPeer)
    ->ArgNames({"peers", "pool", "wheel", "gate"})
    ->Args({1000000, 0, 1, 1})
    ->Args({1000000, 1, 0, 1})
    ->Args({1000000, 1, 1, 0})
    ->Args({1000000, 1, 1, 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
