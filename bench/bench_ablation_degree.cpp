// Ablation A2: neighbour count M.  The paper: "M=5 is usually a good
// practical choice and using a larger M cannot bring more benefit."
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "1000")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 1000 : options.sizes.front();

  std::printf("=== A2: neighbour count M sweep (%zu nodes, fast switch) ===\n", nodes);
  std::printf("%4s  %18s  %18s  %14s\n", "M", "avg_switch_time", "avg_finish_S1", "overhead");
  for (const std::size_t m : {3u, 4u, 5u, 7u, 10u, 15u}) {
    double switch_time = 0.0;
    double finish = 0.0;
    double overhead = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      gs::exp::Config config = gs::exp::Config::paper_static(
          nodes, gs::exp::AlgorithmKind::kFast, options.seed + trial * 1000);
      config.neighbor_target = m;
      options.apply_engine(config);
      const auto& metrics = gs::exp::run_once(config).primary();
      switch_time += metrics.avg_prepared_time();
      finish += metrics.avg_finish_time();
      overhead += metrics.overhead_ratio;
    }
    const auto n = static_cast<double>(options.trials);
    std::printf("%4zu  %18.2f  %18.2f  %14.5f\n", m, switch_time / n, finish / n, overhead / n);
  }
  std::printf("\nexpect diminishing returns beyond M=5 at rising map-exchange overhead\n"
              "(overhead grows linearly with M).\n");
  return 0;
}
