// Figure 10: average finishing/preparing times across network sizes,
// dynamic environments (5% leave + 5% join per period).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options)) return 0;

  gs::exp::Config base =
      gs::exp::Config::paper_dynamic(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
  gs::exp::print_times_table(
      "Fig. 10: avg finishing time of S1 and preparing time of S2 (dynamic)", points);
  if (!options.csv.empty()) gs::exp::write_comparison_csv(options.csv, points);
  return 0;
}
