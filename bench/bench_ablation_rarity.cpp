// Ablation A1: the paper's buffer-position rarity (eq. 8) versus the
// "traditional" 1/n_i rarity the paper argues against (§4).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "500,1000")) return 0;

  std::printf("=== A1: rarity definition ablation (fast switch algorithm) ===\n");
  std::printf("%8s  %22s  %22s\n", "nodes", "switch_time(eq.8)", "switch_time(1/n)");
  for (const std::size_t nodes : options.sizes) {
    double paper_rarity = 0.0;
    double traditional = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed = options.seed + trial * 1000;
      gs::exp::Config a = gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, seed);
      options.apply_engine(a);
      paper_rarity += gs::exp::run_once(a).primary().avg_prepared_time();
      gs::exp::Config b = a;
      b.priority.traditional_rarity = true;
      traditional += gs::exp::run_once(b).primary().avg_prepared_time();
    }
    const auto n = static_cast<double>(options.trials);
    std::printf("%8zu  %22.2f  %22.2f\n", nodes, paper_rarity / n, traditional / n);
  }
  std::printf("\npaper's claim: the replacement-probability rarity is the more reasonable\n"
              "definition; expect comparable or slightly better switch times with eq. 8.\n");
  return 0;
}
