// Figure 5: undelivered ratio of S1 and delivered ratio of S2 over time,
// static network with 1000 nodes, both algorithms.
//
// Paper result: the normal algorithm drains S1 faster but prepares S2
// slower; the fast algorithm "compromises" and finishes both around the
// same time, making the whole switch faster.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "1000")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 1000 : options.sizes.front();

  gs::exp::Config fast_config =
      gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(fast_config);
  gs::exp::Config normal_config =
      gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kNormal, options.seed);
  options.apply_engine(normal_config);
  const gs::exp::RunResult fast = gs::exp::run_once(fast_config);
  const gs::exp::RunResult normal = gs::exp::run_once(normal_config);

  gs::exp::print_ratio_tracks(
      "Fig. 5: ratio tracks in a static network with " + std::to_string(nodes) + " nodes",
      fast.primary(), normal.primary());
  std::printf("\nlast finish (normal %.1f s, fast %.1f s); last prepare (normal %.1f s, fast %.1f s)\n",
              normal.primary().max_finish_time(), fast.primary().max_finish_time(),
              normal.primary().max_prepared_time(), fast.primary().max_prepared_time());
  if (!options.csv.empty()) {
    gs::exp::write_tracks_csv(options.csv, fast.primary(), normal.primary());
  }
  return 0;
}
