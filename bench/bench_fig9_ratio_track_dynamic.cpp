// Figure 9: ratio tracks in a dynamic network (5% leave + 5% join per
// scheduling period) with 1000 nodes.
//
// Paper result: consistent with the static environment (Fig. 5).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "1000")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 1000 : options.sizes.front();

  gs::exp::Config fast_config =
      gs::exp::Config::paper_dynamic(nodes, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(fast_config);
  gs::exp::Config normal_config =
      gs::exp::Config::paper_dynamic(nodes, gs::exp::AlgorithmKind::kNormal, options.seed);
  options.apply_engine(normal_config);
  const gs::exp::RunResult fast = gs::exp::run_once(fast_config);
  const gs::exp::RunResult normal = gs::exp::run_once(normal_config);

  gs::exp::print_ratio_tracks(
      "Fig. 9: ratio tracks in a dynamic network with " + std::to_string(nodes) +
          " nodes (5%/5% churn per period)",
      fast.primary(), normal.primary());
  std::printf("\nchurn: fast run %zu joins / %zu leaves; censored prepare: fast %zu, normal %zu\n",
              fast.stats.joins, fast.stats.leaves, fast.primary().censored_prepare,
              normal.primary().censored_prepare);
  if (!options.csv.empty()) {
    gs::exp::write_tracks_csv(options.csv, fast.primary(), normal.primary());
  }
  return 0;
}
