// Figure 12: communication overhead across network sizes, dynamic
// environments (5% leave + 5% join per period).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options)) return 0;

  gs::exp::Config base =
      gs::exp::Config::paper_dynamic(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
  gs::exp::print_overhead("Fig. 12: communication overhead (dynamic environments)", points);
  if (!options.csv.empty()) gs::exp::write_comparison_csv(options.csv, points);
  return 0;
}
