// Figure 7: average switch time and its reduction ratio, static environments.
//
// Paper result: reduction ratio between 0.2 and 0.3, tending to increase
// with the network scale (100..8000 nodes).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options)) return 0;

  gs::exp::Config base =
      gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
  gs::exp::print_switch_reduction(
      "Fig. 7: avg switch time and reduction ratio (static environments)", points);
  if (!options.csv.empty()) gs::exp::write_comparison_csv(options.csv, points);
  return 0;
}
