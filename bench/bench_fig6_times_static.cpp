// Figure 6: average finishing time of S1 and preparing time of S2 across
// network sizes, static environments.  Four bars per size in the paper's
// order: normal-finish, fast-finish, fast-prepare, normal-prepare.
//
// Paper result: the fast algorithm "splits the difference" — it finishes S1
// slightly later but prepares S2 markedly earlier.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options)) return 0;

  gs::exp::Config base =
      gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
  gs::exp::print_times_table(
      "Fig. 6: avg finishing time of S1 and preparing time of S2 (static)", points);
  if (!options.csv.empty()) gs::exp::write_comparison_csv(options.csv, points);
  return 0;
}
