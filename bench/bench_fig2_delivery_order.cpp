// Figure 2: the delivery-order comparison between the fast and normal
// switch algorithms on the paper's example — the node can receive 7 data
// segments per scheduling period but 10 are available (5 of S1, 5 of S2).
#include <cstdio>
#include <vector>

#include "core/fast_switch.hpp"
#include "core/normal_switch.hpp"
#include "util/flags.hpp"

namespace {

using gs::stream::CandidateSegment;
using gs::stream::ScheduleContext;
using gs::stream::StreamEpoch;
using gs::stream::SupplierView;

ScheduleContext fig2_context() {
  ScheduleContext ctx;
  ctx.period = 1.0;
  ctx.playback_rate = 10.0;
  ctx.inbound_rate = 7.0;  // "can receive 7 data segments per period"
  ctx.id_play = 101;
  ctx.s1_end = 105;
  ctx.s2_begin = 106;
  ctx.q1_remaining = 5;
  ctx.q2_remaining = 5;
  ctx.q_consecutive = 10;
  ctx.q_startup = 50;
  ctx.buffer_capacity = 600;
  ctx.max_requests = 7;
  return ctx;
}

std::vector<CandidateSegment> fig2_candidates() {
  std::vector<CandidateSegment> candidates;
  for (gs::stream::SegmentId id = 101; id <= 110; ++id) {
    CandidateSegment c;
    c.id = id;
    c.epoch = id <= 105 ? StreamEpoch::kOld : StreamEpoch::kNew;
    SupplierView s1;
    s1.node = 1;
    s1.send_rate = 30.0;
    s1.buffer_position = 40;
    SupplierView s2;
    s2.node = 2;
    s2.send_rate = 25.0;
    s2.buffer_position = 90;
    c.suppliers = {s1, s2};
    candidates.push_back(c);
  }
  return candidates;
}

void print_order(const char* label, const std::vector<gs::stream::ScheduledRequest>& requests,
                 gs::stream::SegmentId s1_end) {
  std::printf("%-22s", label);
  for (const auto& r : requests) {
    if (r.id <= s1_end) {
      std::printf(" S1#%lld", static_cast<long long>(r.id - 101 + 1));
    } else {
      std::printf(" S2#%lld", static_cast<long long>(r.id - s1_end));
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  gs::util::Flags flags;
  if (!flags.parse(argc, argv)) return 0;

  std::printf("=== Fig. 2: delivery order, budget 7/period, 5xS1 + 5xS2 available ===\n");
  const ScheduleContext ctx = fig2_context();

  gs::core::NormalSwitchScheduler normal;
  auto candidates = fig2_candidates();
  print_order("normal switch:", normal.schedule(ctx, candidates), ctx.s1_end);

  gs::core::FastSwitchScheduler fast;
  candidates = fig2_candidates();
  gs::core::RateSplit split{};
  print_order("fast switch:", fast.schedule_with_split(ctx, candidates, &split), ctx.s1_end);
  std::printf("\nclosed-form split: r1=%.3f r2=%.3f (case %d) -> I1=%.3f I2=%.3f\n", split.r1,
              split.r2, split.case_id, split.i1, split.i2);
  std::printf("paper: normal fetches all of S1 first; fast interleaves both streams.\n");
  return 0;
}
