// Figure 8: communication overhead across network sizes, static
// environments.
//
// Paper result: around 1-2% for both algorithms (a little above the 1%
// back-of-envelope of S5.3 because most nodes' delivery rate trails the
// play rate), with the fast algorithm slightly lower.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options)) return 0;

  gs::exp::Config base =
      gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
  gs::exp::print_overhead("Fig. 8: communication overhead (static environments)", points);
  if (!options.csv.empty()) gs::exp::write_comparison_csv(options.csv, points);
  return 0;
}
