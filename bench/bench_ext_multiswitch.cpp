// Extension E2: serial multi-switch sessions (the paper's video-conference
// motivation: "there is usually only one source (that is the speaker) at a
// time", switching repeatedly).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "500")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 500 : options.sizes.front();

  std::printf("=== E2: four speakers in series (%zu nodes) ===\n", nodes);
  std::printf("%10s  %10s  %18s  %18s\n", "algorithm", "switch#", "avg_switch_time",
              "avg_finish_prev");
  for (const auto algorithm : {gs::exp::AlgorithmKind::kNormal, gs::exp::AlgorithmKind::kFast}) {
    gs::exp::Config config = gs::exp::Config::paper_static(nodes, algorithm, options.seed);
    config.switch_times = {0.0, 60.0, 120.0};  // 4 speakers, 3 hand-overs
    config.engine.horizon = 150.0;
    options.apply_engine(config);
    const gs::exp::RunResult result = gs::exp::run_once(config);
    for (const auto& m : result.switches) {
      std::printf("%10s  %10d  %18.2f  %18.2f\n",
                  std::string(gs::exp::to_string(algorithm)).c_str(), m.switch_index,
                  m.avg_prepared_time(), m.avg_finish_time());
    }
  }
  std::printf("\nevery hand-over should show the fast algorithm ahead; later switches\n"
              "start from the steady state the previous session re-established.\n");
  return 0;
}
