// Ablation A5: the diversity reservation of the pull substrate.
//
// Shows why the substrate reserves a slice of the request budget for
// randomized fresh-segment fetches: without it, deadline-ordered pulling
// degenerates into a source-rooted tree whose interior saturates, and the
// mesh cannot sustain the playback rate.  The collapse shows in sustained
// live streaming, so this bench runs a *cold start* (no constructed stable
// phase) with a long live phase and measures the mesh's health directly:
// per-node lag behind the live head and playback stalls.
#include "bench_common.hpp"
#include "experiments/scenario.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "300")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 300 : options.sizes.front();

  std::printf("=== A5: diversity reservation, cold-start live streaming (%zu nodes) ===\n",
              nodes);
  std::printf("%10s  %14s  %16s  %16s  %14s\n", "fraction", "avg_switch", "mean_stall(s)",
              "end_lag(segs)", "deliv/node/s");
  for (const double fraction : {0.0, 0.1, 0.25, 0.4, 0.6}) {
    double switch_time = 0.0;
    double stall = 0.0;
    double lag = 0.0;
    double rate = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      gs::exp::Config config = gs::exp::Config::paper_static(nodes, gs::exp::AlgorithmKind::kFast,
                                                             options.seed + trial * 1000);
      config.priority.diversity_fraction = fraction;
      config.engine.warm_start = false;  // cold start: the mesh must bootstrap
      config.engine.warmup = 40.0;
      config.engine.debug_series = true;
      options.apply_engine(config);
      auto engine = gs::exp::make_engine(config);
      const auto metrics = engine->run();
      switch_time += metrics.front().avg_prepared_time();
      double stall_sum = 0.0;
      std::size_t counted = 0;
      for (std::size_t v = 0; v < engine->peer_count(); ++v) {
        const auto& p = engine->peer(static_cast<gs::net::NodeId>(v));
        if (p.is_source() || !p.playback.started()) continue;
        stall_sum += p.playback.stall_time();
        ++counted;
      }
      stall += counted > 0 ? stall_sum / static_cast<double>(counted) : 0.0;
      const auto& series = engine->debug_series();
      // Mesh health at the switch instant (end of the live warmup).
      for (const auto& point : series) {
        if (point.time >= -1.5 && point.time <= -0.4) {
          lag += point.mean_frontier_gap;
          rate += static_cast<double>(point.delivered_this_period) /
                  static_cast<double>(nodes);
          break;
        }
      }
    }
    const auto n = static_cast<double>(options.trials);
    std::printf("%10.2f  %14.2f  %16.2f  %16.1f  %14.2f\n", fraction, switch_time / n,
                stall / n, lag / n, rate / n);
  }
  std::printf("\nfraction 0: the frontier gap grows without bound and delivery trails the\n"
              "play rate (10/s); a modest reservation (0.1-0.25) keeps the mesh healthy.\n");
  return 0;
}
