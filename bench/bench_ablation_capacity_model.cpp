// Ablation A6: supplier capacity model.
//
// kSharedFifo (default): one FIFO per uplink shared by all requesters —
// request order matters, the switch algorithms separate.
// kPerLink: the literal reading of the paper's requester-local tau(j)
// bookkeeping — supply becomes abundant and the algorithms nearly tie.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "500,1000")) return 0;

  for (const auto model : {gs::stream::SupplierCapacityModel::kSharedFifo,
                           gs::stream::SupplierCapacityModel::kPerLink}) {
    gs::exp::Config base =
        gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
    base.engine.supplier_capacity = model;
    options.apply_engine(base);
    const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
    gs::exp::print_switch_reduction(
        std::string("A6: supplier capacity = ") + std::string(gs::stream::to_string(model)),
        points);
  }
  std::printf("\nexpect the reduction ratio to collapse under per-link capacity: without\n"
              "uplink contention the S1-first order costs the normal algorithm little.\n");
  return 0;
}
