// Ablation A6: supplier capacity model.
//
// kSharedFifo (default): one FIFO per uplink shared by all requesters —
// request order matters, the switch algorithms separate.
// kPerLink: the literal reading of the paper's requester-local tau(j)
// bookkeeping — supply becomes abundant and the algorithms nearly tie.
// kTokenBucket: shared uplink with burst tolerance — contention persists
// (long-run rate equals the FIFO's), so the separation should survive.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "500,1000")) return 0;

  for (const auto model : {gs::stream::SupplierCapacityModel::kSharedFifo,
                           gs::stream::SupplierCapacityModel::kPerLink,
                           gs::stream::SupplierCapacityModel::kTokenBucket}) {
    gs::exp::Config base =
        gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
    options.apply_engine(base);
    base.engine.supplier_capacity = model;  // after apply_engine: the ablation owns this axis
    const auto points = gs::exp::sweep_sizes(base, options.sizes, options.trials);
    gs::exp::print_switch_reduction(
        std::string("A6: supplier capacity = ") + std::string(gs::stream::to_string(model)),
        points);
  }
  std::printf("\nexpect the reduction ratio to collapse under per-link capacity (without\n"
              "uplink contention the S1-first order costs the normal algorithm little)\n"
              "but to survive token-bucket uplinks, whose bursts relax spacing, not rate.\n");
  return 0;
}
