// Ablation A7: CDN-assisted fast switch.
//
// Pairs runs of the fast algorithm with and without the CDN patch plane on
// the *same* scenario seed (same topology, bandwidths, churn schedule) and
// reports the switch-time win the assist buys against the byte bill the
// CDN pays for it.  The assist changes dynamics by design — this bench is
// the cost/benefit ledger, not a determinism check (those live in
// stream_determinism_test).
//
//   ./bench_ablation_cdn_assist --sizes 1000,4000 --trials 3
//   ./bench_ablation_cdn_assist --sizes 10000 --trials 2 --json out.json
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "util/rng.hpp"

namespace {

struct Point {
  std::size_t node_count = 0;
  std::size_t trials = 0;
  double gossip_switch_time = 0.0;  ///< avg preparing time, assist off
  double assist_switch_time = 0.0;  ///< avg preparing time, assist on
  double gossip_finish_time = 0.0;
  double assist_finish_time = 0.0;
  double cdn_mb = 0.0;              ///< CDN bytes served per run (MiB)
  double assisted = 0.0;            ///< (peer, switch) enrollments per run
  double handoffs = 0.0;
  double rejected = 0.0;            ///< patch requests past the accept horizon
  double mean_assist_s = 0.0;       ///< enrollment -> handoff/exit

  [[nodiscard]] double reduction() const {
    return gossip_switch_time <= 0.0
               ? 0.0
               : (gossip_switch_time - assist_switch_time) / gossip_switch_time;
  }
};

Point measure(const gs::exp::Config& base, std::size_t node_count, std::size_t trials) {
  Point point;
  point.node_count = node_count;
  point.trials = trials;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    gs::exp::Config config = base;
    config.node_count = node_count;
    config.algorithm = gs::exp::AlgorithmKind::kFast;
    // Same scenario seed with and without the assist: paired comparison.
    config.seed = gs::util::splitmix64(base.seed ^ gs::util::splitmix64(trial + 1));
    config.engine.seed = config.seed;

    config.enable_cdn_assist(false);
    const gs::exp::RunResult off = gs::exp::run_once(config);
    config.enable_cdn_assist(true);
    const gs::exp::RunResult on = gs::exp::run_once(config);

    point.gossip_switch_time += off.primary().avg_prepared_time();
    point.assist_switch_time += on.primary().avg_prepared_time();
    point.gossip_finish_time += off.primary().avg_finish_time();
    point.assist_finish_time += on.primary().avg_finish_time();
    point.cdn_mb += static_cast<double>(on.stats.cdn_bytes_served) / (1024.0 * 1024.0);
    point.assisted += static_cast<double>(on.stats.cdn_assisted_switches);
    point.handoffs += static_cast<double>(on.stats.cdn_handoffs);
    point.rejected += static_cast<double>(on.stats.cdn_requests_rejected);
    point.mean_assist_s += on.stats.cdn_mean_assist_s;
  }
  const auto denom = static_cast<double>(trials);
  point.gossip_switch_time /= denom;
  point.assist_switch_time /= denom;
  point.gossip_finish_time /= denom;
  point.assist_finish_time /= denom;
  point.cdn_mb /= denom;
  point.assisted /= denom;
  point.handoffs /= denom;
  point.rejected /= denom;
  point.mean_assist_s /= denom;
  return point;
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"cdn_assist\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"peers\": %zu, \"trials\": %zu, \"gossip_switch_s\": %.6f, "
                 "\"assist_switch_s\": %.6f, \"reduction\": %.6f, \"gossip_finish_s\": %.6f, "
                 "\"assist_finish_s\": %.6f, \"cdn_mb\": %.3f, \"assisted\": %.1f, "
                 "\"handoffs\": %.1f, \"rejected\": %.1f, \"mean_assist_s\": %.6f}%s\n",
                 p.node_count, p.trials, p.gossip_switch_time, p.assist_switch_time,
                 p.reduction(), p.gossip_finish_time, p.assist_finish_time, p.cdn_mb,
                 p.assisted, p.handoffs, p.rejected, p.mean_assist_s,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  // --json is this bench's own output knob; the shared parser rejects flags
  // it does not define, so peel it off argv before delegating.
  std::string json_path;
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (i > 0 && arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (i > 0 && arg.starts_with("--json=")) {
      json_path = std::string(arg.substr(7));
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (!gs::benchtool::parse_bench_flags(static_cast<int>(rest.size()), rest.data(), options,
                                        "500,1000,2000")) {
    return 0;
  }

  gs::exp::Config base =
      gs::exp::Config::paper_static(1000, gs::exp::AlgorithmKind::kFast, options.seed);
  options.apply_engine(base);
  base.enable_cdn_assist(false);  // measure() owns the ablation axis

  std::vector<Point> points;
  points.reserve(options.sizes.size());
  for (const std::size_t n : options.sizes) {
    points.push_back(measure(base, n, options.trials));
  }

  std::printf("A7: CDN-assisted switch vs pure gossip (fast algorithm, paired seeds)\n");
  std::printf("%8s %10s %10s %8s %10s %10s %9s %9s %9s %9s %11s\n", "peers", "gossip_s",
              "assist_s", "redux", "fin_goss", "fin_asst", "cdn_mb", "assisted", "handoffs",
              "rejected", "mean_asst_s");
  for (const Point& p : points) {
    std::printf("%8zu %10.3f %10.3f %7.1f%% %10.3f %10.3f %9.2f %9.1f %9.1f %9.1f %11.3f\n",
                p.node_count, p.gossip_switch_time, p.assist_switch_time,
                100.0 * p.reduction(), p.gossip_finish_time, p.assist_finish_time, p.cdn_mb,
                p.assisted, p.handoffs, p.rejected, p.mean_assist_s);
  }
  std::printf("\nexpect assist_s < gossip_s at every size: the CDN serves the Qs-prefix\n"
              "head the swarm has not replicated yet, then hands off; cdn_mb is the\n"
              "byte bill for that head start (and should stay a small fraction of the\n"
              "stream: at most Qs segments per assisted peer, usually far fewer).\n");

  if (!json_path.empty()) write_json(json_path, points);
  return 0;
}
