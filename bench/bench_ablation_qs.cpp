// Ablation A3: sensitivity to the startup threshold Qs (the paper fixes
// Qs=50 and notes Qs is "configured much bigger than Q to guarantee a
// smooth startup of the new source").
#include "bench_common.hpp"

int main(int argc, char** argv) {
  gs::benchtool::BenchOptions options;
  if (!gs::benchtool::parse_bench_flags(argc, argv, options, "1000")) return 0;
  const std::size_t nodes = options.sizes.empty() ? 1000 : options.sizes.front();

  std::printf("=== A3: Qs sweep (%zu nodes) ===\n", nodes);
  std::printf("%4s  %20s  %20s  %12s\n", "Qs", "switch_time(norm)", "switch_time(fast)",
              "reduction");
  for (const std::size_t qs : {10u, 25u, 50u, 75u, 100u}) {
    double fast_time = 0.0;
    double normal_time = 0.0;
    for (std::size_t trial = 0; trial < options.trials; ++trial) {
      const std::uint64_t seed = options.seed + trial * 1000;
      for (const bool fast : {true, false}) {
        gs::exp::Config config = gs::exp::Config::paper_static(
            nodes, fast ? gs::exp::AlgorithmKind::kFast : gs::exp::AlgorithmKind::kNormal, seed);
        config.engine.q_startup = qs;
        options.apply_engine(config);
        const double t = gs::exp::run_once(config).primary().avg_prepared_time();
        (fast ? fast_time : normal_time) += t;
      }
    }
    const auto n = static_cast<double>(options.trials);
    std::printf("%4zu  %20.2f  %20.2f  %12.3f\n", qs, normal_time / n, fast_time / n,
                gs::stream::reduction_ratio(normal_time / n, fast_time / n));
  }
  std::printf("\nlarger Qs lengthens every switch; the fast algorithm's advantage should\n"
              "persist across the sweep.\n");
  return 0;
}
