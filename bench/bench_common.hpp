// Shared flag handling for the figure benches.
//
// Every figure bench accepts --trials / --seed / --sizes / --quick so the
// full suite can be run fast in CI (`--quick`) or at paper scale (default).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "experiments/config.hpp"
#include "experiments/report.hpp"
#include "experiments/runner.hpp"
#include "util/flags.hpp"
#include "util/logging.hpp"

namespace gs::benchtool {

struct BenchOptions {
  std::vector<std::size_t> sizes;
  std::size_t trials = 3;
  std::uint64_t seed = 1;
  std::string csv;  ///< optional CSV output path
  bool batch_dispatch = false;
  bool incremental_availability = false;
  bool delta_maps = false;
  bool windowed_availability = false;
  std::size_t parallel_shards = 0;
  bool sequential_delivery = false;
  bool sequential_commit = false;
  bool peer_pool = false;
  std::size_t flash_crowd_joins = 0;
  double flash_crowd_start = 0.5;
  double flash_crowd_duration = 2.0;
  /// 0 = keep the engine default; ablation benches pass --tick-shard-size
  /// to exercise sweep granularity (and super-batching under lockstep)
  /// without recompiling.
  std::size_t tick_shard_size = 0;
  bool timing_wheel = true;
  bool plan_gate = true;
  bool plan_gate_legacy = false;
  bool plan_gate_recheck = false;
  std::string capacity_model = "shared-fifo";
  bool cdn_assist = false;
  double cdn_rate = 120.0;
  double cdn_pause = 3.0;
  double cdn_resume = 1.0;

  /// Applies the engine-level options to a run configuration.  Every bench
  /// calls this on its base Config so flags like --batch-dispatch work
  /// uniformly across the suite.
  void apply_engine(exp::Config& config) const {
    config.enable_batch_dispatch(batch_dispatch);
    config.enable_incremental_availability(
        incremental_availability || delta_maps || windowed_availability, delta_maps);
    config.enable_windowed_availability(windowed_availability);
    config.enable_parallel_shards(parallel_shards);
    config.engine.parallel_delivery = !sequential_delivery;
    config.enable_parallel_commit(!sequential_commit);
    config.enable_peer_pool(peer_pool);
    if (flash_crowd_joins > 0) {
      config.enable_flash_crowd(flash_crowd_joins, flash_crowd_start, flash_crowd_duration);
    }
    if (tick_shard_size > 0) config.engine.tick_shard_size = tick_shard_size;
    config.enable_timing_wheel(timing_wheel);
    config.enable_plan_gate(plan_gate, plan_gate_legacy, plan_gate_recheck);
    config.engine.supplier_capacity = exp::capacity_from_string(capacity_model);
    config.enable_cdn_assist(cdn_assist);
    config.engine.cdn_assist_rate = cdn_rate;
    config.engine.cdn_assist_pause_s = cdn_pause;
    config.engine.cdn_assist_resume_s = cdn_resume;
  }
};

/// Parses the standard bench flags.  Returns false if --help was printed.
inline bool parse_bench_flags(int argc, char** argv, BenchOptions& options,
                              const std::string& default_sizes = "100,500,1000,2000,4000,8000") {
  util::Flags flags;
  flags.define("sizes", default_sizes, "comma-separated overlay sizes");
  flags.define_int("trials", 3, "paired trials per size");
  flags.define_int("seed", 1, "base experiment seed");
  flags.define_bool("quick", false, "small sizes / single trial (CI smoke)");
  flags.define_bool("batch-dispatch", false,
                    "batched tick dispatch (identical metrics, fewer events)");
  flags.define_bool("incremental-availability", false,
                    "delta-maintained availability views (identical metrics, less scan work)");
  flags.define_bool("delta-maps", false,
                    "charge availability gossip as buffer-map deltas (implies "
                    "--incremental-availability; lowers the overhead metric)");
  flags.define_bool("windowed-availability", false,
                    "sliding supplier-count windows anchored at the playback cursor "
                    "(implies --incremental-availability; identical metrics, "
                    "O(buffer) per-view memory)");
  flags.define_int("parallel-shards", 0,
                   "sharded parallel core: plan lanes / event-queue shards "
                   "(identical metrics at any count; 0 = sequential)");
  flags.define_bool("sequential-delivery", false,
                    "disable the parallel delivery wave of the sharded core "
                    "(ablation; identical metrics, inline delivery pops)");
  flags.define_bool("sequential-commit", false,
                    "disable the parallel commit + book passes of the sharded "
                    "core (ablation; identical metrics, member-order commits)");
  flags.define_bool("peer-pool", false,
                    "million-peer memory plane: flat pending/buffer/arrival "
                    "structures and the plan arena (identical metrics, "
                    "smaller bytes/peer)");
  flags.define_int("flash-crowd-joins", 0,
                   "flash-crowd scenario: this many extra peers join shortly "
                   "after the first switch (0 = off)");
  flags.define_double("flash-crowd-start", 0.5,
                      "seconds after the first switch the crowd starts joining");
  flags.define_double("flash-crowd-duration", 2.0,
                      "seconds over which the crowd is admitted");
  flags.define_int("tick-shard-size", 0,
                   "peers per tick shard / sweep group (0 = engine default)");
  flags.define_bool("timing-wheel", true,
                    "timing-wheel event plane (identical metrics, O(1) "
                    "schedule; --timing-wheel=false for the heap baseline)");
  flags.define_bool("plan-gate", true,
                    "plan work-set plane: quiescence gate + neighbour-major "
                    "candidate build (identical metrics, less plan work; "
                    "--plan-gate=false for the pre-gate baseline)");
  flags.define_bool("plan-gate-legacy", false,
                    "maintain a gate-only availability index under the legacy "
                    "rescan scheduler so the plan gate fires there too");
  flags.define_bool("plan-gate-recheck", false,
                    "debug cross-check: rebuild gated plans and assert they "
                    "are empty (costs what the gate saves)");
  flags.define("capacity-model", "shared-fifo",
               "supplier capacity model: shared-fifo|per-link|token-bucket");
  flags.define_bool("cdn-assist", false,
                    "CDN-assisted fast switch (changes dynamics by design)");
  flags.define_double("cdn-rate", 120.0, "CDN uplink capacity (segments/s)");
  flags.define_double("cdn-pause", 3.0,
                      "buffered lead (s) at which a patch burst pauses");
  flags.define_double("cdn-resume", 1.0,
                      "buffered lead (s) under which a paused burst resumes");
  flags.define("csv", "", "optional CSV output path");
  flags.define("log", "warn", "log level");
  if (!flags.parse(argc, argv)) return false;
  util::set_log_level(util::parse_log_level(flags.get("log")));

  options.trials = static_cast<std::size_t>(flags.get_int("trials"));
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  options.csv = flags.get("csv");
  options.batch_dispatch = flags.get_bool("batch-dispatch");
  options.incremental_availability = flags.get_bool("incremental-availability");
  options.delta_maps = flags.get_bool("delta-maps");
  options.windowed_availability = flags.get_bool("windowed-availability");
  options.parallel_shards = static_cast<std::size_t>(flags.get_int("parallel-shards"));
  options.sequential_delivery = flags.get_bool("sequential-delivery");
  options.sequential_commit = flags.get_bool("sequential-commit");
  options.peer_pool = flags.get_bool("peer-pool");
  options.flash_crowd_joins = static_cast<std::size_t>(flags.get_int("flash-crowd-joins"));
  options.flash_crowd_start = flags.get_double("flash-crowd-start");
  options.flash_crowd_duration = flags.get_double("flash-crowd-duration");
  options.tick_shard_size = static_cast<std::size_t>(flags.get_int("tick-shard-size"));
  options.timing_wheel = flags.get_bool("timing-wheel");
  options.plan_gate = flags.get_bool("plan-gate");
  options.plan_gate_legacy = flags.get_bool("plan-gate-legacy");
  options.plan_gate_recheck = flags.get_bool("plan-gate-recheck");
  options.capacity_model = flags.get("capacity-model");
  options.cdn_assist = flags.get_bool("cdn-assist");
  options.cdn_rate = flags.get_double("cdn-rate");
  options.cdn_pause = flags.get_double("cdn-pause");
  options.cdn_resume = flags.get_double("cdn-resume");

  std::string list = flags.get_bool("quick") ? "100,500" : flags.get("sizes");
  if (flags.get_bool("quick")) options.trials = 1;
  options.sizes.clear();
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string token = list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!token.empty()) options.sizes.push_back(static_cast<std::size_t>(std::stoull(token)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return true;
}

}  // namespace gs::benchtool
